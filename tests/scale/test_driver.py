"""Stochastic SketchRefine driver: end-to-end behaviour and invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, SPQConfig
from repro.core.engine import SPQEngine
from repro.datasets.portfolio import (
    PortfolioParams,
    build_portfolio,
    build_portfolio_store,
)
from repro.errors import EvaluationError
from repro.mcdb.stochastic import StochasticModel
from repro.scale.driver import scale_sketch_refine_evaluate
from repro.scale.metrics import scale_metrics
from repro.scale.partition import PartitionIndex
from repro.silp.compile import compile_query
from repro.workloads import get_query

SPEC = get_query("portfolio", "Q1")


def test_end_to_end_feasible_and_validated(portfolio_problem, scale_config):
    problem, _, _ = portfolio_problem
    result = scale_sketch_refine_evaluate(problem, scale_config)
    assert result.method == "sketchrefine"
    assert result.succeeded
    assert result.validation is not None and result.validation.feasible
    # The combined package respects the deterministic budget exactly.
    assert result.package.deterministic_total("price") <= 1000 + 1e-6
    # Out-of-sample: the chance constraint holds at the original p.
    (item,) = [i for i in result.validation.items if not i.is_objective]
    assert item.satisfied_fraction >= SPEC.probability
    meta = result.meta
    assert meta["n_partitions"] >= 1
    assert meta["n_refined"] >= 1
    assert meta["partition_index_hit"] is False
    assert meta["refine_probability_boost"][SPEC.probability] >= SPEC.probability
    # Stats carry one sketch record plus one per refined partition.
    assert result.stats.n_iterations == 1 + meta["n_refined"]


def test_repeat_run_hits_partition_index(portfolio_problem, scale_config):
    problem, _, _ = portfolio_problem
    first = scale_sketch_refine_evaluate(problem, scale_config)
    second = scale_sketch_refine_evaluate(problem, scale_config)
    assert second.meta["partition_index_hit"] is True
    assert (
        second.package.key_multiplicities()
        == first.package.key_multiplicities()
    )
    assert second.objective == first.objective


def test_bit_identical_for_any_worker_count(portfolio_problem, scale_config):
    problem, _, _ = portfolio_problem
    sequential = scale_sketch_refine_evaluate(problem, scale_config)
    PartitionIndex.clear_memory()
    parallel = scale_sketch_refine_evaluate(
        problem, scale_config.replace(n_workers=4)
    )
    assert (
        parallel.package.key_multiplicities()
        == sequential.package.key_multiplicities()
    )
    assert parallel.objective == sequential.objective


def test_bit_identical_across_storage_backends(scale_config, tmp_path):
    params = PortfolioParams(n_stocks=120, seed=7)
    relation, model = build_portfolio(params)
    catalog = Catalog()
    catalog.register(relation, model)
    in_memory = scale_sketch_refine_evaluate(
        compile_query(SPEC.spaql, catalog), scale_config
    )
    PartitionIndex.clear_memory()
    store, store_model = build_portfolio_store(
        params, tmp_path / "p", chunk_rows=64
    )
    disk_catalog = Catalog()
    disk_catalog.register(store, store_model)
    on_disk = scale_sketch_refine_evaluate(
        compile_query(SPEC.spaql, disk_catalog), scale_config
    )
    assert (
        on_disk.package.key_multiplicities()
        == in_memory.package.key_multiplicities()
    )
    assert on_disk.objective == in_memory.objective
    store.close()


def test_infeasible_sketch_reports_cleanly(portfolio_problem, scale_config):
    problem, relation, model = portfolio_problem
    catalog = Catalog()
    catalog.register(relation, model)
    impossible = compile_query(
        "SELECT PACKAGE(*) FROM stock_investments SUCH THAT\n"
        "    SUM(price) <= 1 AND\n"
        "    SUM(Gain) >= 50 WITH PROBABILITY >= 0.95\n"
        "MAXIMIZE EXPECTED SUM(Gain)",
        catalog,
    )
    result = scale_sketch_refine_evaluate(impossible, scale_config)
    assert not result.feasible
    assert result.package is None
    assert "sketch" in result.message


def test_probability_objective_rejected(items_catalog_scale, scale_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3\n"
        "MAXIMIZE PROBABILITY OF SUM(Value) >= 10",
        items_catalog_scale,
    )
    with pytest.raises(EvaluationError, match="probability objectives"):
        scale_sketch_refine_evaluate(problem, scale_config)


@pytest.fixture
def items_catalog_scale():
    from repro import Relation
    from repro.mcdb import GaussianNoiseVG

    relation = Relation(
        "items",
        {"price": [5.0, 8.0, 3.0, 6.0, 4.0]},
    )
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    catalog = Catalog()
    catalog.register(relation, model)
    return catalog


def test_deterministic_query_rejected(scale_config):
    from repro import Relation
    from repro.silp.model import StochasticPackageProblem

    relation = Relation("t", {"cost": [1.0, 2.0, 3.0]})
    problem = StochasticPackageProblem(
        relation=relation,
        model=None,
        active_rows=np.arange(3, dtype=np.int64),
        objective=None,
        constraints=[],
    )
    with pytest.raises(EvaluationError, match="chance constraint"):
        scale_sketch_refine_evaluate(problem, scale_config)


def test_empty_problem_raises(portfolio_problem, scale_config):
    from repro.silp.model import StochasticPackageProblem

    problem, relation, model = portfolio_problem
    empty = StochasticPackageProblem(
        relation=relation,
        model=model,
        active_rows=np.empty(0, dtype=np.int64),
        objective=problem.objective,
        constraints=problem.constraints,
    )
    with pytest.raises(EvaluationError, match="no active tuples"):
        scale_sketch_refine_evaluate(empty, scale_config)


def test_driver_updates_scale_metrics(portfolio_problem, scale_config):
    problem, _, _ = portfolio_problem
    before = scale_metrics.snapshot()
    scale_sketch_refine_evaluate(problem, scale_config)
    after = scale_metrics.snapshot()
    assert after["runs"] == before["runs"] + 1
    assert after["partitions"] > before["partitions"]
    assert after["refines"] > before["refines"]
    assert after["refine_seconds"] > before["refine_seconds"]
    assert after["index_misses"] == before["index_misses"] + 1


# --- engine routing -------------------------------------------------------------


def _engine(scale_config, n_stocks=120):
    relation, model = build_portfolio(PortfolioParams(n_stocks=n_stocks, seed=7))
    engine = SPQEngine(config=scale_config)
    engine.register(relation, model)
    return engine


def test_engine_method_sketchrefine_routes_stochastic(scale_config):
    engine = _engine(scale_config)
    result = engine.execute(SPEC.spaql, method="sketchrefine")
    assert result.method == "sketchrefine"
    assert result.meta.get("n_partitions") is not None  # scale driver ran


def test_engine_method_sketchrefine_routes_deterministic(scale_config):
    engine = _engine(scale_config)
    result = engine.execute(
        "SELECT PACKAGE(*) FROM stock_investments SUCH THAT"
        " SUM(price) <= 100 MAXIMIZE EXPECTED SUM(Gain)",
        method="sketchrefine",
    )
    assert result.method == "sketchrefine"
    assert result.feasible
    # The deterministic path reports its own meta shape.
    assert "n_refined" not in result.meta


def test_engine_auto_routes_oversized_summarysearch(scale_config):
    engine = _engine(scale_config)
    routed = engine.execute(
        SPEC.spaql, method="summarysearch", scale_threshold_rows=10
    )
    assert routed.method == "sketchrefine"
    direct = engine.execute(SPEC.spaql, method="summarysearch")
    assert direct.method == "summarysearch"


def test_unknown_method_still_rejected(scale_config):
    engine = _engine(scale_config)
    with pytest.raises(EvaluationError):
        engine.execute(SPEC.spaql, method="sketchy")
