"""Chunked columnar storage: round trips, pushdown, budget, pickling."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import Catalog, Relation
from repro.db.expressions import parse_expression
from repro.errors import SchemaError
from repro.scale import ColumnStore, ColumnStoreWriter, open_store
from repro.scale.metrics import scale_metrics
from repro.service.store import relation_fingerprint
from repro.silp.compile import compile_query


@pytest.fixture
def mixed_relation() -> Relation:
    rng = np.random.default_rng(5)
    n = 900
    return Relation(
        "mixed",
        {
            "price": np.round(rng.uniform(1, 100, n), 2),
            "qty": rng.integers(0, 50, n),
            "sector": np.array([f"SEC{i % 7}" for i in range(n)], dtype=object),
            "flag": rng.integers(0, 2, n).astype(bool),
        },
    )


def test_round_trip_preserves_every_dtype_and_value(mixed_relation, tmp_path):
    store = mixed_relation.to_disk(tmp_path / "m", chunk_rows=128)
    assert store.n_rows == mixed_relation.n_rows
    assert store.n_chunks == 8
    assert store.column_names == mixed_relation.column_names
    for name in mixed_relation.column_names:
        expected = mixed_relation.column(name)
        got = store.column(name)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)
    # Content fingerprints match the in-memory relation: every
    # fingerprint-keyed cache is shared between representations.
    assert relation_fingerprint(store) == relation_fingerprint(mixed_relation)
    store.close()


def test_missing_key_column_synthesized_positionally(tmp_path):
    writer = ColumnStoreWriter(tmp_path / "s", name="s", chunk_rows=10)
    writer.append({"x": np.arange(25, dtype=float)})
    writer.close()
    store = open_store(tmp_path / "s")
    assert np.array_equal(store.key_values(), np.arange(25))
    store.close()


def test_writer_widens_int_to_float_across_batches(tmp_path):
    writer = ColumnStoreWriter(tmp_path / "w", name="w", chunk_rows=4)
    writer.append({"v": np.array([1, 2, 3])})
    writer.append({"v": np.array([4.5, 5.5])})
    writer.close()
    store = open_store(tmp_path / "w")
    assert np.array_equal(store.column("v"), [1.0, 2.0, 3.0, 4.5, 5.5])
    store.close()


def test_writer_rejects_schema_drift(tmp_path):
    writer = ColumnStoreWriter(tmp_path / "d", name="d")
    writer.append({"a": [1.0], "b": [2.0]})
    with pytest.raises(SchemaError):
        writer.append({"a": [1.0]})


def test_predicate_pushdown_matches_full_evaluation(mixed_relation, tmp_path):
    store = mixed_relation.to_disk(tmp_path / "m", chunk_rows=64)
    predicate = parse_expression("price <= 40 AND qty > 5")
    positions = store.filter_positions(predicate)
    expected = mixed_relation.filter(predicate)
    assert np.array_equal(
        store.take(positions).column("price"), expected.column("price")
    )
    # Equality predicates over dictionary-encoded text columns work too.
    sec = store.filter_positions(parse_expression("sector = 'SEC3'"))
    assert np.array_equal(
        store.take(sec).column("sector"),
        mixed_relation.filter(parse_expression("sector = 'SEC3'")).column(
            "sector"
        ),
    )
    store.close()


def test_compile_routes_where_through_pushdown(mixed_relation, tmp_path):
    store = mixed_relation.to_disk(tmp_path / "m", chunk_rows=64)
    catalog_mem = Catalog()
    catalog_mem.register(mixed_relation)
    catalog_disk = Catalog()
    catalog_disk.register(store)
    query = (
        "SELECT PACKAGE(*) FROM mixed WHERE price <= 30 SUCH THAT"
        " COUNT(*) <= 5 MINIMIZE SUM(price)"
    )
    mem = compile_query(query, catalog_mem)
    disk = compile_query(query, catalog_disk)
    assert np.array_equal(mem.active_rows, disk.active_rows)
    store.close()


def test_take_preserves_requested_order(mixed_relation, tmp_path):
    store = mixed_relation.to_disk(tmp_path / "m", chunk_rows=100)
    indices = np.array([700, 3, 512, 3 + 100, 899, 0])
    taken = store.take(indices)
    for name in mixed_relation.column_names:
        assert np.array_equal(
            taken.column(name), mixed_relation.column(name)[indices]
        )
    with pytest.raises(SchemaError):
        store.take(np.array([900]))
    store.close()


def test_resident_budget_bounds_chunk_cache(mixed_relation, tmp_path):
    mixed_relation.to_disk(tmp_path / "m", chunk_rows=64)
    budget = 4_000
    store = Relation.from_disk(tmp_path / "m", resident_budget=budget)
    before = scale_metrics.snapshot()["resident_bytes"]
    for chunk in range(store.n_chunks):
        store.column_chunk("price", chunk)
        store.column_chunk("qty", chunk)
        assert store.resident_bytes <= budget
    assert store.peak_resident_bytes <= budget
    assert scale_metrics.snapshot()["resident_bytes"] >= before
    store.close()
    # close() returns the bytes to the process-wide gauge.
    assert store.resident_bytes == 0


def test_chunk_reads_are_cached(mixed_relation, tmp_path):
    store = mixed_relation.to_disk(tmp_path / "m", chunk_rows=64)
    first = store.column_chunk("price", 2)
    assert store.column_chunk("price", 2) is first
    store.close()


def test_pickle_round_trip_reopens_from_path(mixed_relation, tmp_path):
    store = mixed_relation.to_disk(tmp_path / "m", chunk_rows=64)
    clone = pickle.loads(pickle.dumps(store))
    assert clone.resident_bytes == 0  # caches never cross the boundary
    assert np.array_equal(clone.column("qty"), mixed_relation.column("qty"))
    store.close()
    clone.close()


def test_open_missing_store_raises_file_not_found(tmp_path):
    (tmp_path / "empty-dir").mkdir()
    with pytest.raises(FileNotFoundError):
        ColumnStore(tmp_path / "empty-dir")


def test_iter_rows_and_row_access(mixed_relation, tmp_path):
    store = mixed_relation.to_disk(tmp_path / "m", chunk_rows=200)
    rows = list(store.iter_rows())
    assert len(rows) == store.n_rows
    assert rows[450] == store.row(450)
    assert rows[450] == mixed_relation.row(450)
    store.close()


def test_empty_relation_round_trips(tmp_path):
    empty = Relation("e", {"a": np.empty(0, dtype=float)})
    store = empty.to_disk(tmp_path / "e", chunk_rows=8)
    assert store.n_rows == 0
    assert store.column("a").shape == (0,)
    assert store.key_values().shape == (0,)
    assert relation_fingerprint(store) == relation_fingerprint(empty)
    assert list(store.iter_rows()) == []
    store.close()


def test_concurrent_chunk_loads_account_once(mixed_relation, tmp_path):
    """Racing loaders of one chunk must not inflate resident accounting."""
    import threading

    store = mixed_relation.to_disk(tmp_path / "m", chunk_rows=64)
    barrier = threading.Barrier(8)

    def hammer():
        barrier.wait()
        for _ in range(50):
            for chunk in range(4):
                store.column_chunk("price", chunk)
                store.column_chunk("qty", chunk)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    expected = sum(
        store.column_chunk(name, chunk).nbytes
        for name in ("price", "qty")
        for chunk in range(4)
    )
    assert store.resident_bytes == expected
    store.close()
