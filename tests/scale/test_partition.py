"""Pilot statistics, quantile partitioning, and the partition index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scale.partition import (
    PartitionIndex,
    PilotStats,
    partition_index_key,
    partition_labels,
    pilot_statistics,
)


def test_pilot_statistics_cover_active_rows(portfolio_problem, scale_config):
    problem, _, _ = portfolio_problem
    pilot = pilot_statistics(problem, scale_config)
    assert pilot.mean.shape == (problem.n_vars,)
    assert pilot.std.shape == (problem.n_vars,)
    assert set(pilot.per_attr) == {"Gain"}
    assert np.all(pilot.std >= 0)
    assert pilot.n_pilot == scale_config.scale_pilot_scenarios


def test_pilot_statistics_deterministic(portfolio_problem, scale_config):
    problem, _, _ = portfolio_problem
    a = pilot_statistics(problem, scale_config)
    b = pilot_statistics(problem, scale_config)
    assert np.array_equal(a.mean, b.mean)
    assert np.array_equal(a.std, b.std)


def _stats(mean, std):
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    return PilotStats(mean=mean, std=std, per_attr={}, n_pilot=8)


def test_labels_partition_every_tuple_exactly_once():
    rng = np.random.default_rng(0)
    stats = _stats(rng.normal(size=200), np.abs(rng.normal(size=200)))
    labels = partition_labels(stats, 12)
    assert labels.shape == (200,)
    assert labels.min() == 0
    assert labels.max() + 1 <= 12
    # Every label used; groups are balanced within one quantile band.
    counts = np.bincount(labels)
    assert np.all(counts > 0)


def test_labels_group_similar_means_together():
    stats = _stats(np.arange(100, dtype=float), np.zeros(100))
    labels = partition_labels(stats, 4)
    # Tuples sorted by mean must have monotonically grouped labels.
    means_by_label = [
        (stats.mean[labels == g].min(), stats.mean[labels == g].max())
        for g in range(labels.max() + 1)
    ]
    means_by_label.sort()
    for (_, hi), (lo, _) in zip(means_by_label, means_by_label[1:]):
        assert hi <= lo


def test_labels_clamp_to_population():
    stats = _stats([1.0, 2.0, 3.0], [0.1, 0.2, 0.3])
    labels = partition_labels(stats, 50)
    assert labels.max() + 1 <= 3


def test_index_key_sensitive_to_seed_and_partitions(
    portfolio_problem, scale_config
):
    problem, _, _ = portfolio_problem
    base = partition_index_key(problem, scale_config, 5)
    assert base == partition_index_key(problem, scale_config, 5)
    assert base != partition_index_key(problem, scale_config, 6)
    assert base != partition_index_key(
        problem, scale_config.replace(seed=99), 5
    )
    assert base != partition_index_key(
        problem, scale_config.replace(scale_pilot_scenarios=4), 5
    )


def test_memory_index_round_trip(portfolio_problem, scale_config):
    problem, relation, _ = portfolio_problem
    pilot = pilot_statistics(problem, scale_config)
    labels = partition_labels(pilot, 5)
    index = PartitionIndex(relation)  # in-memory relation: no disk home
    key = partition_index_key(problem, scale_config, 5)
    assert index.get(key) is None
    index.put(key, labels, pilot)
    cached = index.get(key)
    assert cached is not None
    got_labels, got_pilot = cached
    assert np.array_equal(got_labels, labels)
    assert np.array_equal(got_pilot.mean, pilot.mean)
    assert np.array_equal(got_pilot.per_attr["Gain"][1], pilot.per_attr["Gain"][1])
    assert got_pilot.n_pilot == pilot.n_pilot


def test_disk_index_round_trip(portfolio_problem, scale_config, tmp_path):
    problem, relation, _ = portfolio_problem
    store = relation.to_disk(tmp_path / "p", chunk_rows=64)
    pilot = pilot_statistics(problem, scale_config)
    labels = partition_labels(pilot, 5)
    index = PartitionIndex(store)
    key = partition_index_key(problem, scale_config, 5)
    index.put(key, labels, pilot)
    PartitionIndex.clear_memory()  # must come back from disk alone
    fresh = PartitionIndex(store)
    cached = fresh.get(key)
    assert cached is not None
    assert np.array_equal(cached[0], labels)
    assert (tmp_path / "p" / "partition-index").is_dir()
    store.close()


def test_index_key_sensitive_to_probed_attributes(scale_config):
    """Queries constraining different stochastic attrs never share keys."""
    from repro import Catalog, Relation
    from repro.mcdb import GaussianNoiseVG
    from repro.mcdb.stochastic import StochasticModel
    from repro.silp.compile import compile_query

    relation = Relation("t", {"price": [5.0, 8.0, 3.0, 6.0]})
    model = StochasticModel(
        relation,
        {
            "A": GaussianNoiseVG("price", 1.0),
            "B": GaussianNoiseVG("price", 2.0),
        },
    )
    catalog = Catalog()
    catalog.register(relation, model)
    template = (
        "SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) <= 2 AND"
        " SUM({attr}) >= 1 WITH PROBABILITY >= 0.8"
        " MINIMIZE EXPECTED SUM({attr})"
    )
    over_a = compile_query(template.format(attr="A"), catalog)
    over_b = compile_query(template.format(attr="B"), catalog)
    assert partition_index_key(over_a, scale_config, 2) != partition_index_key(
        over_b, scale_config, 2
    )


def test_streaming_pilot_path_matches_matrix_path(
    portfolio_problem, scale_config, monkeypatch
):
    """Past the matrix cap, per-scenario accumulation gives the same
    statistics (up to accumulation-order float noise)."""
    from repro.scale import partition as partition_module

    problem, _, _ = portfolio_problem
    via_matrix = pilot_statistics(problem, scale_config)
    monkeypatch.setattr(partition_module, "_PILOT_MATRIX_BYTES_CAP", 0)
    via_stream = pilot_statistics(problem, scale_config)
    assert np.allclose(via_stream.mean, via_matrix.mean, rtol=1e-10)
    assert np.allclose(via_stream.std, via_matrix.std, rtol=1e-9, atol=1e-12)
    assert set(via_stream.per_attr) == set(via_matrix.per_attr)


def test_disk_index_prunes_oldest_entries(
    portfolio_problem, scale_config, tmp_path, monkeypatch
):
    from repro.scale import partition as partition_module

    monkeypatch.setattr(partition_module, "_DISK_INDEX_LIMIT", 3)
    problem, relation, _ = portfolio_problem
    store = relation.to_disk(tmp_path / "p", chunk_rows=64)
    pilot = pilot_statistics(problem, scale_config)
    labels = partition_labels(pilot, 5)
    index = PartitionIndex(store)
    import os
    import time

    base = time.time() - 1_000  # backdated: deterministic prune order
    for i in range(6):
        index.put(f"key-{i}", labels, pilot)
        stamp = base + i
        path = tmp_path / "p" / "partition-index" / f"key-{i}.npz"
        if path.exists():  # earlier keys may already be pruned
            os.utime(path, (stamp, stamp))
    files = sorted(
        f.name for f in (tmp_path / "p" / "partition-index").iterdir()
    )
    assert len(files) == 3
    assert index.get("key-5") is not None
    assert index.get("key-0") is None
    store.close()
