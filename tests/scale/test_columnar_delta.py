"""ColumnStore mutation: in-place deltas, atomic rewrites, refresh.

The disk-backed path of the live-data tier (docs/live_data.md).  The
anchor property throughout: applying a delta to a ColumnStore must be
*bit-identical* to applying the same delta to the equivalent in-memory
relation — same columns, same dirty rows, same content fingerprint —
because every fingerprint-keyed cache is shared between representations.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Relation
from repro.db.delta import RelationDelta
from repro.errors import SchemaError
from repro.scale import open_store
from repro.service.store import relation_fingerprint


@pytest.fixture
def relation() -> Relation:
    rng = np.random.default_rng(11)
    n = 300
    return Relation(
        "goods",
        {
            "id": np.arange(n, dtype=np.int64),
            "price": np.round(rng.uniform(1, 50, n), 2),
            "qty": rng.integers(0, 9, n),
            "sector": np.array([f"S{i % 5}" for i in range(n)], dtype=object),
        },
        key="id",
    )


DELTA = RelationDelta(
    inserts=[{"id": 900, "price": 3.25, "qty": 2, "sector": "S9"}],
    updates={7: {"price": 42.0, "qty": 1}, 120: {"sector": "S0"}},
    deletes=[250, 299],
)


def test_columnstore_delta_matches_in_memory_application(relation, tmp_path):
    store = relation.to_disk(tmp_path / "g", chunk_rows=64)
    mem_after, mem_app = relation.apply_delta(DELTA)
    same_store, disk_app = store.apply_delta(DELTA)
    assert same_store is store  # in-place mutation
    assert store.n_rows == mem_after.n_rows
    for name in mem_after.column_names:
        np.testing.assert_array_equal(store.column(name), mem_after.column(name))
    # Identical application records: dirty set, shift point, digest.
    np.testing.assert_array_equal(disk_app.dirty, mem_app.dirty)
    assert disk_app.shifted_from == mem_app.shifted_from
    assert disk_app.digest == mem_app.digest
    # And the fingerprint — the key every shared cache hangs off.
    assert relation_fingerprint(store) == relation_fingerprint(mem_after)
    store.close()


def test_columnstore_delta_extends_text_vocabulary(relation, tmp_path):
    store = relation.to_disk(tmp_path / "g", chunk_rows=64)
    store.apply_delta(RelationDelta(updates={3: {"sector": "BRAND-NEW"}}))
    assert store.column("sector")[3] == "BRAND-NEW"
    # A fresh open sees the republished manifest (vocab included).
    reopened = open_store(tmp_path / "g")
    assert reopened.column("sector")[3] == "BRAND-NEW"
    reopened.close()
    store.close()


def test_columnstore_bad_delta_leaves_files_untouched(relation, tmp_path):
    store = relation.to_disk(tmp_path / "g", chunk_rows=64)
    fp_before = relation_fingerprint(store)
    mtimes = {
        name: os.path.getmtime(os.path.join(store.path, meta["file"]))
        for name, meta in store._meta.items()
    }
    with pytest.raises(SchemaError, match="integer column"):
        store.apply_delta(RelationDelta(updates={0: {"qty": 1.5}}))
    for name, meta in store._meta.items():
        path = os.path.join(store.path, meta["file"])
        assert os.path.getmtime(path) == mtimes[name]
    assert relation_fingerprint(store) == fp_before
    store.close()


def test_refresh_adopts_external_mutation(relation, tmp_path):
    writer_view = relation.to_disk(tmp_path / "g", chunk_rows=64)
    reader_view = open_store(tmp_path / "g")
    assert reader_view.n_rows == 300
    writer_view.apply_delta(RelationDelta(deletes=[0]))
    # The reader's cached state predates the delta until refresh.
    reader_view.refresh()
    assert reader_view.n_rows == 299
    assert reader_view.column("id")[0] == 1
    assert relation_fingerprint(reader_view) == relation_fingerprint(writer_view)
    reader_view.close()
    writer_view.close()


def test_delete_everything_then_reinsert(relation, tmp_path):
    small = relation.take(np.arange(3))
    store = small.to_disk(tmp_path / "tiny", chunk_rows=2)
    store.apply_delta(RelationDelta(deletes=[0, 1, 2]))
    assert store.n_rows == 0
    store.apply_delta(
        RelationDelta(inserts=[{"id": 5, "price": 1.0, "qty": 1, "sector": "S1"}])
    )
    assert store.n_rows == 1
    assert store.column("id").tolist() == [5]
    store.close()
