"""Shared fixtures for the out-of-core tier tests."""

from __future__ import annotations

import pytest

from repro import Catalog, SPQConfig
from repro.datasets.portfolio import PortfolioParams, build_portfolio
from repro.scale.partition import PartitionIndex
from repro.silp.compile import compile_query
from repro.workloads import get_query


@pytest.fixture(autouse=True)
def _clear_partition_memory():
    """Isolate tests from the in-process partition-index cache."""
    PartitionIndex.clear_memory()
    yield
    PartitionIndex.clear_memory()


@pytest.fixture
def scale_config() -> SPQConfig:
    """Small everything: quick but meaningful scale-driver runs."""
    return SPQConfig(
        seed=1234,
        n_validation_scenarios=800,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        n_expectation_scenarios=400,
        n_probe_scenarios=16,
        epsilon=0.5,
        solver_time_limit=15.0,
        time_limit=120.0,
        scale_n_partitions=5,
        scale_pilot_scenarios=8,
    )


@pytest.fixture
def portfolio_problem():
    """Portfolio Q1 compiled over a 150-stock universe (300 trades)."""
    spec = get_query("portfolio", "Q1")
    relation, model = build_portfolio(PortfolioParams(n_stocks=150, seed=7))
    catalog = Catalog()
    catalog.register(relation, model)
    return compile_query(spec.spaql, catalog), relation, model
