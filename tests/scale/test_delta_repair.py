"""Delta-scoped repair through the SketchRefine driver.

The live-data loop (docs/live_data.md): a cold solve records a
per-partition artifact; a catalog delta extends the fingerprint chain;
the next solve finds the pre-delta artifact through lineage, reuses the
sub-packages of every untouched partition, and re-refines only the
dirty ones.  Two anchors pinned here:

* **Equivalence** — delta-then-solve is bit-identical to rebuilding the
  post-delta relation from scratch, because content-addressed
  fingerprints make both paths hit the same caches.
* **Safety** — reuse is an optimization, never a correctness
  dependency: a reused combination that fails out-of-sample validation
  is discarded and the solve re-runs cold.
"""

from __future__ import annotations

import pytest

from repro import Catalog
from repro.datasets.portfolio import PortfolioParams, build_portfolio
from repro.db.delta import RelationDelta, lineage
from repro.mcdb import StochasticModel
from repro.scale import scale_sketch_refine_evaluate
from repro.scale.metrics import scale_metrics
from repro.scale.refinecache import query_digest, refine_cache
from repro.service.store import model_fingerprint
from repro.silp.compile import compile_query
from repro.workloads import get_query

SPEC = get_query("portfolio", "Q1")
TABLE = "stock_investments"


@pytest.fixture(autouse=True)
def _clean_repair_state():
    refine_cache.clear()
    lineage.clear()
    yield
    refine_cache.clear()
    lineage.clear()


def _fresh_catalog() -> Catalog:
    relation, model = build_portfolio(PortfolioParams(n_stocks=150, seed=7))
    catalog = Catalog()
    catalog.register(relation, model)
    return catalog


def _solve(catalog: Catalog, config):
    problem = compile_query(SPEC.spaql, catalog)
    return problem, scale_sketch_refine_evaluate(problem, config)


def _localized_delta() -> RelationDelta:
    # Three updated rows at the head of the relation: a localized delta
    # that leaves most partitions with zero dirty members.
    return RelationDelta(
        updates={
            0: {"price": 12.5},
            1: {"price": 9.75},
            2: {"price": 14.0},
        }
    )


def test_delta_repair_reuses_clean_partitions_and_matches_rebuild(
    scale_config,
):
    catalog = _fresh_catalog()
    _, run1 = _solve(catalog, scale_config)
    assert run1.feasible

    before = scale_metrics.snapshot()
    summary = catalog.apply_delta(TABLE, _localized_delta())
    assert summary["dirty_rows"] == 3

    _, run2 = _solve(catalog, scale_config)
    assert run2.feasible
    repair = run2.meta["delta_repair"]
    assert repair["dirty_rows"] == 3
    assert repair["partitions_reused"] >= 1
    assert repair["partitions_dirty"] >= 1
    assert 0.0 < repair["reuse_ratio"] <= 1.0
    assert (
        repair["partitions_reused"] + repair["partitions_refined"]
        == run2.meta["n_refined"]
    )
    # The index was spliced, not rebuilt, and the counters moved.
    assert run2.meta["partition_index_delta_refreshed"] is True
    after = scale_metrics.snapshot()
    assert (
        after["delta_partitions_reused"]
        >= before["delta_partitions_reused"] + repair["partitions_reused"]
    )

    # Equivalence: rebuilding the post-delta relation from scratch gives
    # the same fingerprint, hence the same caches, hence the same
    # package — multiplicities and objective bit-identical.
    rebuilt = catalog.relation(TABLE)
    source_model = catalog.model(TABLE)
    rebuilt_model = StochasticModel(
        rebuilt,
        {
            attr: source_model.vg(attr).unbound_copy()
            for attr in source_model.attribute_names
        },
    )
    assert model_fingerprint(rebuilt_model) == summary["fingerprint"]
    catalog2 = Catalog()
    catalog2.register(rebuilt, rebuilt_model)
    _, run3 = _solve(catalog2, scale_config)
    assert run3.feasible
    assert (
        run3.package.key_multiplicities() == run2.package.key_multiplicities()
    )
    assert run3.objective == run2.objective


def test_disabling_reuse_solves_cold_after_delta(scale_config):
    catalog = _fresh_catalog()
    _, run1 = _solve(catalog, scale_config)
    assert run1.feasible
    catalog.apply_delta(TABLE, _localized_delta())

    cold = scale_config.replace(scale_delta_reuse=False)
    _, run2 = _solve(catalog, cold)
    assert run2.feasible
    assert "delta_repair" not in run2.meta


def test_failed_validation_discards_reuse_and_reruns_cold(scale_config):
    catalog = _fresh_catalog()
    problem1, run1 = _solve(catalog, scale_config)
    assert run1.feasible

    # Corrupt the recorded artifact: absurd multiplicities make any
    # reused combination violate the deterministic SUM(price) <= 1000
    # bound, so out-of-sample validation must reject the repair.
    fp = model_fingerprint(problem1.model)
    artifact = refine_cache.get(fp, query_digest(problem1, scale_config))
    assert artifact is not None
    for mult in artifact.multiplicities.values():
        mult[:] = 1000

    catalog.apply_delta(TABLE, RelationDelta(updates={0: {"price": 11.0}}))
    before = scale_metrics.snapshot()["delta_repair_fallbacks"]
    _, run2 = _solve(catalog, scale_config)
    # The fallback re-ran cold: still a valid package, no repair meta.
    assert run2.feasible
    assert "delta_repair" not in run2.meta
    assert scale_metrics.snapshot()["delta_repair_fallbacks"] == before + 1
