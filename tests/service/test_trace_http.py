"""Traced queries over HTTP, on both backends: span trees, the ring,
cross-process re-parenting, and per-stage histograms on /metrics."""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro import Catalog, Relation, SPQConfig
from repro.mcdb import GaussianNoiseVG, StochasticModel
from repro.service import QueryBroker, SPQService

QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 6 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""

BACKENDS = ("thread", "process")


def _catalog() -> Catalog:
    relation = Relation("items", {"price": [5.0, 8.0, 3.0, 6.0, 4.0]})
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    catalog = Catalog()
    catalog.register(relation, model)
    return catalog


@contextmanager
def _service(backend: str = "thread", **config_overrides):
    config = SPQConfig(
        n_validation_scenarios=500,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        epsilon=0.8,
        seed=11,
        service_backend=backend,
        **config_overrides,
    )
    broker = QueryBroker(_catalog(), config=config, pool_size=2)
    svc = SPQService(broker, port=0, own_broker=True).start_background()
    try:
        yield svc
    finally:
        svc.shutdown()


def _post(service, payload: dict):
    host, port = service.address
    request = urllib.request.Request(
        f"http://{host}:{port}/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def _get(service, path: str):
    host, port = service.address
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=60
        ) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def _iter_tree(node):
    yield node
    for child in node.get("children", ()):
        yield from _iter_tree(child)


def _pid_of(span_id: str) -> str:
    return span_id.partition("-")[0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_traced_query_inlines_span_tree(backend):
    with _service(backend) as service:
        code, payload = _post(service, {"query": QUERY, "trace": True})
        assert code == 200 and payload["feasible"]
        trace_id = payload["trace_id"]
        tree = payload["trace"]
        assert tree["trace_id"] == trace_id
        root = tree["root"]
        assert root["name"] == "query"
        assert root["attrs"]["backend"] == backend
        assert root["attrs"]["method"] == "summarysearch"
        spans = list(_iter_tree(root))
        names = {s["name"] for s in spans}
        assert {"query", "execute", "compile", "parse", "solve.q0",
                "csa", "solve", "validate"} <= names, names
        # Every span belongs to this trace — nothing leaked in.
        assert all(s.get("trace_id", trace_id) == trace_id for s in spans)
        if backend == "process":
            workers = [s for s in spans if s["name"] == "worker"]
            assert len(workers) == 1
            worker = workers[0]
            # The worker span was recorded in the worker process and
            # re-parented under the broker's root across the forkserver
            # boundary: pid-prefixed span ids differ, parent matches.
            assert worker["parent_id"] == root["span_id"]
            assert _pid_of(worker["span_id"]) != _pid_of(root["span_id"])
            assert worker["attrs"]["pid"] != 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_get_trace_endpoint_serves_finished_tree(backend):
    with _service(backend) as service:
        code, payload = _post(service, {"query": QUERY})
        assert code == 200
        assert "trace" not in payload  # inlining is opt-in
        trace_id = payload["trace_id"]
        code, body = _get(service, f"/trace/{trace_id}")
        assert code == 200
        tree = json.loads(body)
        assert tree["trace_id"] == trace_id
        assert tree["complete"] is True
        assert tree["root"]["name"] == "query"

        code, body = _get(service, "/trace/no-such-trace")
        assert code == 404
        assert json.loads(body)["error"]["kind"] == "unknown-trace"


def _query_observations(service) -> int:
    _, metrics = _get(service, "/metrics")
    match = re.search(
        r'^repro_stage_seconds_count\{stage="query"\} (\d+)$', metrics, re.M
    )
    return int(match.group(1)) if match else 0


def test_tracing_disabled_is_dark():
    with _service("thread", trace_enabled=False) as service:
        # The stage-histogram registry is process-wide, so other tests'
        # observations may already show; disabled tracing must add none.
        before = _query_observations(service)
        code, payload = _post(service, {"query": QUERY, "trace": True})
        assert code == 200
        assert "trace_id" not in payload
        assert "trace" not in payload
        code, body = _get(service, "/trace/anything")
        assert code == 404
        assert json.loads(body)["error"]["kind"] == "tracing-disabled"
        time.sleep(0.2)  # let the done-callback run, had it observed
        assert _query_observations(service) == before


def test_ring_evicts_oldest_trace_first():
    with _service("thread", trace_ring_size=2) as service:
        ids = []
        for _ in range(3):
            code, payload = _post(service, {"query": QUERY})
            assert code == 200
            ids.append(payload["trace_id"])
        assert len(set(ids)) == 3
        code, body = _get(service, f"/trace/{ids[0]}")
        assert code == 404  # evicted, oldest first
        assert json.loads(body)["error"]["kind"] == "unknown-trace"
        for kept in ids[1:]:
            code, _ = _get(service, f"/trace/{kept}")
            assert code == 200


def test_worker_recycling_leaks_no_spans():
    """Each query's tree holds exactly its own spans even when every
    task runs on a freshly recycled worker process."""
    with _service("process", worker_recycle_after=1) as service:
        trees = []
        for _ in range(3):
            code, payload = _post(service, {"query": QUERY, "trace": True})
            assert code == 200
            trees.append(payload["trace"])
        counts = []
        for tree in trees:
            spans = list(_iter_tree(tree["root"]))
            assert all(
                s.get("trace_id", tree["trace_id"]) == tree["trace_id"]
                for s in spans
            )
            assert sum(s["name"] == "worker" for s in spans) == 1
            assert sum(s["name"] == "execute" for s in spans) == 1
            assert tree["dropped"] == 0
            counts.append(len(spans))
        # Span counts stay flat across recycles — a leak would compound.
        assert max(counts) - min(counts) <= 2, counts


@pytest.mark.parametrize("backend", BACKENDS)
def test_metrics_expose_stage_histograms(backend):
    with _service(backend) as service:
        code, _ = _post(service, {"query": QUERY})
        assert code == 200
        # The "query" observation lands in the future's done-callback,
        # which may trail the HTTP response by a beat — poll briefly.
        count = None
        for _ in range(100):
            _, metrics = _get(service, "/metrics")
            count = re.search(
                r'^repro_stage_seconds_count\{stage="query"\} (\d+)$',
                metrics, re.M,
            )
            if count:
                break
            time.sleep(0.05)
        assert "# TYPE repro_stage_seconds histogram" in metrics
        assert count and int(count.group(1)) >= 1
        assert re.search(
            r'^repro_stage_seconds_bucket\{stage="validate",le="\+Inf"\} \d+$',
            metrics, re.M,
        )
        if backend == "process":
            # Worker-side histograms merged across the farm boundary.
            assert re.search(
                r'^repro_stage_seconds_count\{stage="worker"\} \d+$',
                metrics, re.M,
            )
