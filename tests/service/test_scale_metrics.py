"""``repro_scale_*`` counters on /status and /metrics, both backends."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import Catalog, SPQConfig
from repro.datasets.portfolio import PortfolioParams, build_portfolio
from repro.scale.metrics import COUNTER_FIELDS, GAUGE_FIELDS
from repro.scale.partition import PartitionIndex
from repro.service import QueryBroker, SPQService
from repro.workloads import get_query

SPEC = get_query("portfolio", "Q1")

pytestmark = pytest.mark.usefixtures("_fresh_partition_cache")


@pytest.fixture
def _fresh_partition_cache():
    PartitionIndex.clear_memory()
    yield
    PartitionIndex.clear_memory()


def _config(**overrides) -> SPQConfig:
    return SPQConfig(
        n_validation_scenarios=500,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        epsilon=0.5,
        seed=1234,
        scale_n_partitions=3,
        scale_pilot_scenarios=8,
        **overrides,
    )


def _catalog() -> Catalog:
    relation, model = build_portfolio(PortfolioParams(n_stocks=60, seed=7))
    catalog = Catalog()
    catalog.register(relation, model)
    return catalog


def test_status_exposes_scale_section_with_all_fields():
    broker = QueryBroker(_catalog(), config=_config(), pool_size=1)
    try:
        scale = broker.status()["scale"]
        for field in COUNTER_FIELDS + GAUGE_FIELDS:
            assert field in scale
    finally:
        broker.close()


def test_thread_backend_counters_monotonic_across_scale_queries():
    broker = QueryBroker(_catalog(), config=_config(), pool_size=1)
    try:
        before = broker.status()["scale"]
        broker.execute(SPEC.spaql, method="sketchrefine")
        middle = broker.status()["scale"]
        broker.execute(SPEC.spaql, method="sketchrefine")
        after = broker.status()["scale"]
        for field in COUNTER_FIELDS:
            assert before[field] <= middle[field] <= after[field], field
        assert middle["runs"] >= before["runs"] + 1
        assert after["runs"] >= middle["runs"] + 1
        assert after["partitions"] > before["partitions"]
        assert after["refine_seconds"] > before["refine_seconds"]
        # The second identical query hits the partition index.
        assert after["index_hits"] > middle["index_hits"] - 1
    finally:
        broker.close()


def test_metrics_exposition_includes_scale_series():
    broker = QueryBroker(_catalog(), config=_config(), pool_size=1)
    service = SPQService(broker, port=0, own_broker=True).start_background()
    try:
        host, port = service.address
        broker.execute(SPEC.spaql, method="sketchrefine")
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=60
        ) as response:
            text = response.read().decode()
        for name in (
            "repro_scale_runs_total",
            "repro_scale_partitions_total",
            "repro_scale_refines_total",
            "repro_scale_sketch_seconds_total",
            "repro_scale_refine_seconds_total",
            "repro_scale_index_hits_total",
            "repro_scale_index_misses_total",
            "repro_scale_resident_bytes",
            "repro_scale_resident_peak_bytes",
        ):
            assert f"\n{name} " in "\n" + text or text.startswith(f"{name} "), name
        with urllib.request.urlopen(
            f"http://{host}:{port}/status", timeout=60
        ) as response:
            status = json.loads(response.read())
        assert status["scale"]["runs"] >= 1
    finally:
        service.shutdown()


def test_process_backend_aggregates_worker_scale_counters():
    broker = QueryBroker(
        _catalog(),
        config=_config(service_backend="process"),
        pool_size=1,
    )
    try:
        result = broker.execute(SPEC.spaql, method="sketchrefine")
        assert result.method == "sketchrefine"
        scale = broker.status()["scale"]
        # The run happened in a worker process; its snapshot ships with
        # the done message and feeds the farm-wide aggregate.
        assert scale["runs"] >= 1
        assert scale["partitions"] >= 1
        assert scale["refines"] >= 1
        broker.execute(SPEC.spaql, method="sketchrefine", seed=4321)
        after = broker.status()["scale"]
        for field in COUNTER_FIELDS:
            assert after[field] >= scale[field], field
        assert after["runs"] >= scale["runs"] + 1
    finally:
        broker.close()
