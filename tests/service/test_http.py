"""End-to-end ``repro serve`` protocol tests over a local socket."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import Catalog, Relation, SPQConfig
from repro.mcdb import GaussianNoiseVG, StochasticModel
from repro.service import QueryBroker, SPQService

QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 6 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""


@pytest.fixture
def service():
    relation = Relation("items", {"price": [5.0, 8.0, 3.0, 6.0, 4.0]})
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    catalog = Catalog()
    catalog.register(relation, model)
    config = SPQConfig(
        n_validation_scenarios=500,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        epsilon=0.8,
        seed=11,
    )
    broker = QueryBroker(catalog, config=config, pool_size=2)
    svc = SPQService(broker, port=0, own_broker=True).start_background()
    try:
        yield svc
    finally:
        svc.shutdown()


def _url(service, path: str) -> str:
    host, port = service.address
    return f"http://{host}:{port}{path}"


def _post(service, payload: dict):
    request = urllib.request.Request(
        _url(service, "/query"),
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def _get(service, path: str):
    with urllib.request.urlopen(_url(service, path), timeout=30) as response:
        body = response.read()
        content_type = response.headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            return response.status, json.loads(body)
        return response.status, body.decode()


def test_query_roundtrip_and_cache_hit_on_repeat(service):
    status, first = _post(service, {"query": QUERY})
    assert status == 200
    assert first["feasible"] is True
    assert first["package"]["total_count"] >= 1
    assert first["package"]["rows"]
    assert {"price", "id"} <= set(first["package"]["columns"])
    assert first["store"]["generations"] > 0

    status, second = _post(service, {"query": QUERY})
    assert status == 200
    # The repeat is served from the shared store: the generation counter
    # is unchanged while the hit counter moved.
    assert second["store"]["generations"] == first["store"]["generations"]
    assert second["store"]["hits"] > first["store"]["hits"]
    assert second["objective"] == first["objective"]
    assert second["package"]["multiplicities"] == first["package"]["multiplicities"]


def test_status_endpoint(service):
    _post(service, {"query": QUERY})
    status, body = _get(service, "/status")
    assert status == 200
    assert body["status"] == "ok"
    assert body["pool_size"] == 2
    assert body["submitted"] >= 1
    assert body["uptime_s"] >= 0
    assert "hits" in body["store"]


def test_metrics_endpoint_exposes_store_counters(service):
    _post(service, {"query": QUERY})
    _post(service, {"query": QUERY})
    status, text = _get(service, "/metrics")
    assert status == 200
    metrics = {
        line.split()[0]: line.split()[1]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    assert int(metrics["repro_store_hits_total"]) > 0
    assert int(metrics["repro_store_generations_total"]) >= 1
    assert int(metrics["repro_broker_submitted_total"]) >= 2
    assert "repro_store_evictions_total" in metrics
    assert "repro_store_bytes_resident" in metrics


def test_overrides_are_applied(service):
    status, body = _post(
        service, {"query": QUERY, "method": "naive", "overrides": {"seed": 9}}
    )
    assert status == 200
    assert body["method"] == "naive"


def _status_of(exc: urllib.error.HTTPError):
    return exc.code, json.loads(exc.read())


def test_saturation_is_counted_and_exposed_as_rejected_total():
    # A broker with no headroom: one session, one pending slot, and the
    # evaluation gated so the slot stays occupied while we overflow it.
    import threading

    relation = Relation("items", {"price": [5.0, 8.0, 3.0, 6.0, 4.0]})
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    catalog = Catalog()
    catalog.register(relation, model)
    broker = QueryBroker(
        catalog,
        config=SPQConfig(
            n_validation_scenarios=200,
            n_initial_scenarios=10,
            scenario_increment=10,
            max_scenarios=30,
            epsilon=0.9,
        ),
        pool_size=1,
        max_pending=1,
    )
    gate = threading.Event()
    original = broker._run

    def gated(query, method, overrides, *args):
        gate.wait(60)
        return original(query, method, overrides, *args)

    broker._run = gated
    svc = SPQService(broker, port=0, own_broker=True).start_background()
    try:
        first = threading.Thread(target=lambda: _post(svc, {"query": QUERY}))
        first.start()
        deadline = 60
        import time

        start = time.time()
        while broker.status()["pending"] < 1 and time.time() - start < deadline:
            time.sleep(0.01)

        # The overflow request is rejected with 503 ...
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(svc, {"query": QUERY, "overrides": {"seed": 99}})
        code, body = _status_of(excinfo.value)
        assert code == 503
        assert body["error"]["kind"] == "saturated"

        # ... and the event is visible on /status and /metrics.
        _, status_body = _get(svc, "/status")
        assert status_body["rejected_total"] == 1
        assert status_body["rejected"] == 1  # backwards-compatible alias
        _, metrics = _get(svc, "/metrics")
        assert "repro_broker_rejected_total 1" in metrics.splitlines()

        gate.set()
        first.join(120)
    finally:
        gate.set()
        svc.shutdown()


def test_error_mapping(service):
    # Invalid JSON → 400.
    request = urllib.request.Request(
        _url(service, "/query"),
        data=b"{nope",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    code, body = _status_of(excinfo.value)
    assert code == 400
    assert body["error"]["kind"] == "bad-request"

    # sPaQL parse errors → 400 with kind "parse".
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(service, {"query": "SELEC PACKAGE nonsense"})
    code, body = _status_of(excinfo.value)
    assert code == 400
    assert body["error"]["kind"] == "parse"

    # Unknown route → 404.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(service, "/nope")
    assert excinfo.value.code == 404

    # Unknown config override → 400.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(service, {"query": QUERY, "overrides": {"bogus_knob": 1}})
    code, body = _status_of(excinfo.value)
    assert code == 400


# --- POST /update (docs/live_data.md) ----------------------------------------


def _post_update(service, payload: dict):
    request = urllib.request.Request(
        _url(service, "/update"),
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _delta_counters(service) -> dict:
    _, text = _get(service, "/metrics")
    samples = {
        line.split()[0]: line.split()[1]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    return {
        name: int(samples.get(name, 0))
        for name in ("repro_delta_applied_total", "repro_delta_rows_dirty_total")
    }


def test_update_roundtrip_and_version_labeling(service):
    status, before = _post(service, {"query": QUERY})
    assert status == 200
    v0 = before["catalog_version"]
    counters_before = _delta_counters(service)

    status, summary = _post_update(
        service,
        {"table": "items", "delta": {"updates": [[0, {"price": 50.0}]]}},
    )
    assert status == 200
    assert summary["status"] == "ok"
    assert summary["dirty_rows"] == 1
    assert summary["catalog_version"] == v0 + 1

    # A post-delta query answers against the new version (never a stale
    # cache hit from before the update).
    status, after = _post(service, {"query": QUERY})
    assert status == 200
    assert after["catalog_version"] == v0 + 1

    # Counters are process-global: assert the delta, not the absolute value.
    counters_after = _delta_counters(service)
    applied = "repro_delta_applied_total"
    dirty = "repro_delta_rows_dirty_total"
    assert counters_after[applied] == counters_before[applied] + 1
    assert counters_after[dirty] == counters_before[dirty] + 1

    status, text = _get(service, "/metrics")
    metrics = {
        line.split()[0]: line.split()[1]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    assert "repro_delta_partitions_dirty_total" in metrics
    assert "repro_store_stale_dropped_total" in metrics


def test_update_error_mapping(service):
    # Unknown table → 404.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_update(service, {"table": "ghost", "delta": {"deletes": [0]}})
    code, body = _status_of(excinfo.value)
    assert code == 404
    assert body["error"]["kind"] == "unknown-table"

    # Missing/ill-typed delta body → 400 bad-request.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_update(service, {"table": "items"})
    code, body = _status_of(excinfo.value)
    assert code == 400
    assert body["error"]["kind"] == "bad-request"

    # Structurally valid JSON that is not a valid delta → 400 bad-delta.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_update(service, {"table": "items", "delta": {}})
    code, body = _status_of(excinfo.value)
    assert code == 400
    assert body["error"]["kind"] == "bad-delta"

    # Updating the key column is a delta-validation error, not a crash.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_update(
            service,
            {"table": "items", "delta": {"updates": [[0, {"id": 9}]]}},
        )
    code, body = _status_of(excinfo.value)
    assert code == 400
    assert body["error"]["kind"] == "bad-delta"
