"""QoS tier: EDF ordering, deadline expiry races, admission, HTTP 504.

Every scheduling assertion runs on an injected fake clock — no sleeps,
no wall-clock flakiness.  The HTTP tests at the bottom exercise the
full ``deadline_ms`` round trip against a live socket.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import Catalog, Relation, SPQConfig
from repro.errors import EvaluationError
from repro.mcdb import GaussianNoiseVG, StochasticModel
from repro.service import (
    DeadlineExpiredError,
    EDFQueue,
    QueryBroker,
    SPQService,
    TaskDeadline,
)

QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 6 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


# --- TaskDeadline ----------------------------------------------------------


def test_task_deadline_pins_absolute_expiry():
    clock = FakeClock(100.0)
    deadline = TaskDeadline(250.0, clock=clock)
    assert deadline.expires_at == pytest.approx(100.25)
    assert deadline.remaining_ms() == pytest.approx(250.0)
    assert not deadline.expired()
    clock.now = 100.2
    assert deadline.remaining_ms() == pytest.approx(50.0)
    clock.now = 100.25
    assert deadline.expired()  # boundary counts as expired
    clock.now = 101.0
    assert deadline.remaining_ms() == pytest.approx(-750.0)


def test_queue_time_counts_against_budget():
    # A query admitted with 50ms that waits 60ms is dead on dispatch even
    # though no solving happened — the absolute pin makes this automatic.
    clock = FakeClock(0.0)
    deadline = TaskDeadline(50.0, clock=clock)
    clock.now = 0.06
    assert deadline.expired()


# --- EDFQueue --------------------------------------------------------------


def test_edf_orders_by_expiry_not_arrival():
    clock = FakeClock(0.0)
    queue = EDFQueue()
    queue.push("loose", TaskDeadline(5_000.0, clock=clock))
    queue.push("tight", TaskDeadline(100.0, clock=clock))
    queue.push("medium", TaskDeadline(1_000.0, clock=clock))
    assert queue.items() == ["tight", "medium", "loose"]
    assert [queue.pop() for _ in range(3)] == ["tight", "medium", "loose"]
    assert not queue


def test_deadline_less_work_keeps_fifo_behind_deadlined():
    clock = FakeClock(0.0)
    queue = EDFQueue()
    queue.push("a")
    queue.push("b")
    queue.push("urgent", TaskDeadline(10.0, clock=clock))
    queue.push("c")
    assert [queue.pop() for _ in range(4)] == ["urgent", "a", "b", "c"]


def test_front_push_keeps_deadline_order():
    # Crash-retry regression (the pre-fix queue ranked every front push
    # at -inf expiry, so a deadline-LESS retry starved deadlined work):
    # a retried task keeps its own expiry rank — an undeadlined retry
    # goes to the head of the FIFO tail, never ahead of a tight deadline.
    clock = FakeClock(0.0)
    queue = EDFQueue()
    queue.push("plain-1")
    queue.push("tight", TaskDeadline(1.0, clock=clock))
    queue.push("retried", front=True)  # crash victim with no deadline
    assert queue.pop() == "tight"
    assert queue.pop() == "retried"  # head of the FIFO tail
    assert queue.pop() == "plain-1"


def test_front_push_outranks_equal_deadlines_only():
    clock = FakeClock(0.0)
    queue = EDFQueue()
    queue.push("tighter", TaskDeadline(50.0, clock=clock))
    queue.push("peer", TaskDeadline(100.0, clock=clock))
    retried = "retried"
    queue.push(retried, TaskDeadline(100.0, clock=clock), front=True)
    # The retry overtakes its equal-deadline peer (it already waited a
    # full solve) but an earlier deadline still wins — EDF holds.
    assert queue.items() == ["tighter", "retried", "peer"]
    assert [queue.pop() for _ in range(3)] == ["tighter", "retried", "peer"]


def test_deadline_less_retry_does_not_starve_late_deadlines():
    # Even a deadline that ARRIVES after the retry was requeued must
    # still dispatch first (the old -inf rank made retries unpassable).
    clock = FakeClock(0.0)
    queue = EDFQueue()
    queue.push("retried-1", front=True)
    queue.push("retried-2", front=True)
    queue.push("urgent", TaskDeadline(10.0, clock=clock))
    assert queue.pop() == "urgent"
    # Among deadline-less retries, the most recent front push is
    # closest to having been running and goes first.
    assert queue.pop() == "retried-2"
    assert queue.pop() == "retried-1"


def test_edf_tie_breaks_fifo_and_remove_by_identity():
    clock = FakeClock(0.0)
    queue = EDFQueue()
    first = {"id": 1}
    twin = {"id": 1}  # equal by value, distinct by identity
    queue.push(first, TaskDeadline(100.0, clock=clock))
    queue.push(twin, TaskDeadline(100.0, clock=clock))
    queue.remove(twin)
    assert len(queue) == 1
    assert queue.pop() is first
    with pytest.raises(ValueError):
        queue.remove(twin)


def test_edf_clear_returns_items_for_settlement():
    queue = EDFQueue()
    queue.push("x")
    queue.push("y")
    assert sorted(queue.clear()) == ["x", "y"]
    assert len(queue) == 0
    with pytest.raises(IndexError):
        queue.pop()


def test_expiry_race_item_queued_then_clock_advances():
    # The queue itself never drops items — expiry is the dispatcher's
    # call (farm checks at pop time) — but EDF rank is frozen at push, so
    # an expired item surfaces first and is rejected promptly, not last.
    clock = FakeClock(0.0)
    queue = EDFQueue()
    dead = TaskDeadline(10.0, clock=clock)
    queue.push("doomed", dead)
    queue.push("fine", TaskDeadline(10_000.0, clock=clock))
    clock.now = 5.0  # way past 10ms
    assert dead.expired()
    assert queue.pop() == "doomed"


# --- broker admission ------------------------------------------------------


@pytest.fixture
def catalog() -> Catalog:
    relation = Relation("items", {"price": [5.0, 8.0, 3.0, 6.0, 4.0]})
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    out = Catalog()
    out.register(relation, model)
    return out


@pytest.fixture
def config() -> SPQConfig:
    return SPQConfig(
        n_validation_scenarios=500,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        epsilon=0.8,
        seed=11,
    )


def test_broker_rejects_expired_budget_at_admission(catalog, config):
    with QueryBroker(catalog, config=config, pool_size=1) as broker:
        with pytest.raises(DeadlineExpiredError, match="rejected at admission"):
            broker.submit(QUERY, deadline_ms=0)
        with pytest.raises(DeadlineExpiredError):
            broker.submit(QUERY, deadline_ms=-10.0)
        with pytest.raises(EvaluationError, match="must be a number"):
            broker.submit(QUERY, deadline_ms="soon")
        status = broker.status()
        assert status["deadline"]["rejected"] == 2
        assert status["submitted"] == 0  # rejected before accounting


def test_broker_counts_deadline_verdicts(catalog, config):
    with QueryBroker(catalog, config=config, pool_size=1) as broker:
        broker.execute(QUERY)  # no deadline: counts as met
        broker.execute(QUERY, deadline_ms=3_600_000.0)  # ample: met
        status = broker.status()
    assert status["deadline"]["met"] == 2
    assert status["deadline"]["missed"] == 0
    assert status["deadline"]["last_gap"] == 0.0


def test_broker_result_carries_anytime_envelope(catalog, config):
    with QueryBroker(catalog, config=config, pool_size=1) as broker:
        result = broker.execute(QUERY, deadline_ms=3_600_000.0)
    assert result.anytime is not None
    assert result.anytime.deadline_met
    assert result.anytime.gap == 0.0


def test_queued_expiry_fails_future_with_504_error(catalog, config):
    # Hold the only worker hostage, queue a 1ms query behind it: by the
    # time the slot frees, the budget is gone and the future must fail
    # with DeadlineExpiredError (not run the solve).
    with QueryBroker(catalog, config=config, pool_size=1) as broker:
        gate = threading.Event()
        original = broker._run

        def gated(query, method, overrides, *args):
            gate.wait(60)
            return original(query, method, overrides, *args)

        broker._run = gated
        blocker = broker.submit(QUERY)
        doomed = broker.submit(QUERY, seed=77, deadline_ms=1.0)
        import time

        time.sleep(0.05)  # let the 1ms budget drain while queued
        gate.set()
        assert blocker.result(timeout=120) is not None
        with pytest.raises(DeadlineExpiredError, match="expired"):
            doomed.result(timeout=120)
        status = broker.status()
    assert status["failed"] == 1


# --- HTTP round trip -------------------------------------------------------


@pytest.fixture
def service(catalog, config):
    broker = QueryBroker(catalog, config=config, pool_size=2)
    svc = SPQService(broker, port=0, own_broker=True).start_background()
    try:
        yield svc
    finally:
        svc.shutdown()


def _post(service, payload: dict):
    host, port = service.address
    request = urllib.request.Request(
        f"http://{host}:{port}/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def _get(service, path: str):
    host, port = service.address
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=30
    ) as response:
        body = response.read()
        if response.headers.get("Content-Type", "").startswith(
            "application/json"
        ):
            return response.status, json.loads(body)
        return response.status, body.decode()


def test_http_every_response_states_deadline_verdict(service):
    status, body = _post(service, {"query": QUERY})
    assert status == 200
    assert body["deadline_met"] is True
    assert body["gap"] == 0.0


def test_http_ample_deadline_roundtrip(service):
    status, body = _post(service, {"query": QUERY, "deadline_ms": 3_600_000})
    assert status == 200
    assert body["deadline_met"] is True
    assert body["gap"] == 0.0
    assert body["anytime"]["deadline_ms"] is not None
    assert body["anytime"]["elapsed_ms"] > 0


def test_http_expired_deadline_maps_to_504(service):
    request_payload = {"query": QUERY, "deadline_ms": 0}
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(service, request_payload)
    assert excinfo.value.code == 504
    body = json.loads(excinfo.value.read())
    assert body["error"]["kind"] == "deadline-expired"


def test_http_bad_deadline_type_maps_to_400(service):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(service, {"query": QUERY, "deadline_ms": "soon"})
    assert excinfo.value.code == 400


def test_http_tight_deadline_returns_200_with_incumbent_and_gap():
    """Acceptance: deadline < exact solve time → 200, feasible incumbent,
    finite gap, on a warm engine."""
    from repro.workloads import get_query

    spec = get_query("portfolio", "Q1")
    relation, model = spec.build_dataset(40, seed=7)
    catalog = Catalog()
    catalog.register(relation, model)
    config = SPQConfig(
        n_validation_scenarios=1_000,
        n_initial_scenarios=24,
        scenario_increment=24,
        max_scenarios=1_000_000,
        n_expectation_scenarios=400,
        seed=3,
    )
    broker = QueryBroker(catalog, config=config, pool_size=1)
    svc = SPQService(broker, port=0, own_broker=True).start_background()
    try:
        # Warm the engine/store with a cheap exact run first.
        status, _ = _post(
            svc,
            {"query": spec.spaql, "overrides": {"epsilon": 0.9,
                                                "max_scenarios": 48}},
        )
        assert status == 200
        # An unattainable epsilon forces refinement until the deadline.
        status, body = _post(
            svc,
            {
                "query": spec.spaql,
                "deadline_ms": 1_200,
                "overrides": {"epsilon": 1e-9, "max_quality_rounds": None},
            },
        )
        assert status == 200
        assert body["feasible"] is True  # validator-feasible incumbent
        assert body["deadline_met"] is False
        assert body["gap"] is not None and body["gap"] >= 0.0
        assert body["anytime"]["stages_truncated"] == ["csa"]
        # The verdict lands on the broker's QoS counters too.
        _, metrics = _get(svc, "/metrics")
        lines = metrics.splitlines()
        assert "repro_deadline_missed_total 1" in lines
    finally:
        svc.shutdown()


def test_http_metrics_expose_deadline_families(service):
    _post(service, {"query": QUERY, "deadline_ms": 3_600_000})
    with pytest.raises(urllib.error.HTTPError):
        _post(service, {"query": QUERY, "deadline_ms": -1})
    status, text = _get(service, "/metrics")
    assert status == 200
    metrics = {
        line.split()[0]: line.split()[1]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    assert int(metrics["repro_deadline_met_total"]) >= 1
    assert int(metrics["repro_deadline_rejected_total"]) == 1
    assert "repro_deadline_missed_total" in metrics
    assert "repro_deadline_expired_total" in metrics
    assert float(metrics["repro_query_gap"]) == 0.0
    # /status mirrors the same counters.
    _, status_body = _get(service, "/status")
    assert status_body["deadline"]["rejected"] == 1
