"""Stress/soak: threads hammering overlapping store keys under pressure.

The store's hardest regime at once: many threads, few (overlapping)
keys, growth requests racing prefix hits, a byte budget far below the
working set so every insert triggers LRU spilling.  Three invariants:

* **No corruption** — every returned matrix hashes exactly to the
  deterministic content its key implies (content-hash check, not just
  shape/dtype).
* **No handle leaks** — after ``close()`` no ``np.memmap`` over a spill
  file remains reachable.
* **No file leaks** — after ``close()`` the spill directory is empty.
"""

from __future__ import annotations

import gc
import hashlib
import threading

import numpy as np

from repro.service.store import ScenarioStore

N_ROWS = 16
N_THREADS = 8
N_KEYS = 5
ITERATIONS = 40
MAX_WIDTH = 24


def _content(key_id: int, start: int, stop: int) -> np.ndarray:
    """Deterministic fill: column j of key k holds k*1000 + j."""
    cols = np.arange(start, stop, dtype=float)[None, :] + 1000.0 * key_id
    return np.broadcast_to(cols, (N_ROWS, stop - start)).copy()


def _expected_hash(key_id: int, width: int) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(_content(key_id, 0, width)).tobytes()
    ).hexdigest()


def test_concurrent_overlapping_keys_under_tiny_budget_never_corrupt(tmp_path):
    # Budget fits roughly one mid-sized entry: every generation forces
    # spills, and growth constantly races hits on the same keys.
    store = ScenarioStore(
        budget_bytes=N_ROWS * 8 * 8, spill=True, spill_dir=str(tmp_path)
    )
    expected = {
        (key_id, width): _expected_hash(key_id, width)
        for key_id in range(N_KEYS)
        for width in range(1, MAX_WIDTH + 1)
    }
    failures: list[str] = []
    barrier = threading.Barrier(N_THREADS)

    def hammer(thread_id: int) -> None:
        rng = np.random.default_rng(thread_id)
        barrier.wait(30)
        for i in range(ITERATIONS):
            key_id = int(rng.integers(N_KEYS))
            width = int(rng.integers(1, MAX_WIDTH + 1))
            if i % 11 == 0:
                store.clear()  # races growth: the retry path must hold
            got = store.coefficient_matrix(
                (key_id,), width, lambda a, b, k=key_id: _content(k, a, b)
            )
            digest = hashlib.sha256(
                np.ascontiguousarray(got).tobytes()
            ).hexdigest()
            if digest != expected[(key_id, width)]:
                failures.append(
                    f"thread {thread_id}: key {key_id} width {width}"
                    f" returned corrupt content"
                )

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
        assert not thread.is_alive(), "stress thread wedged"
    assert not failures, failures[:5]

    stats = store.stats()
    assert stats.spills > 0, "budget pressure never spilled — test is inert"
    assert stats.generations > 0

    store.close()
    # File-leak check: close() must have removed every owned spill file.
    assert not list(tmp_path.iterdir()), "spill files leaked after close()"
    # Handle-leak check: no memmap over the spill dir stays reachable.
    gc.collect()
    leaked = [
        obj
        for obj in gc.get_objects()
        if isinstance(obj, np.memmap)
        and str(getattr(obj, "filename", "")).startswith(str(tmp_path))
    ]
    assert not leaked, f"{len(leaked)} memmap handles leaked after close()"


def test_soak_with_eviction_and_growth_is_exact(tmp_path):
    # Spill disabled: pressure evicts outright, so regenerated entries
    # must reproduce identical bytes every time.
    store = ScenarioStore(budget_bytes=N_ROWS * 8 * 6, spill=False)
    errors: list[str] = []

    def worker(thread_id: int) -> None:
        rng = np.random.default_rng(100 + thread_id)
        for _ in range(ITERATIONS):
            key_id = int(rng.integers(N_KEYS))
            width = int(rng.integers(1, MAX_WIDTH + 1))
            got = store.coefficient_matrix(
                (key_id,), width, lambda a, b, k=key_id: _content(k, a, b)
            )
            if not np.array_equal(got, _content(key_id, 0, width)):
                errors.append(f"key {key_id} width {width} mismatch")

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
        assert not thread.is_alive()
    assert not errors, errors[:5]
    assert store.stats().evictions > 0
    store.close()
    assert store.stats().entries == 0
