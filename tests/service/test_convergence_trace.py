"""Acceptance: a deadline-truncated branch-and-bound query's trace
carries a monotone non-increasing gap event series whose final record
equals the ``AnytimeResult`` gap — on both service backends.

The workload is a deterministic, strongly-correlated 0/1 knapsack that
branch and bound cannot finish within the budget (near-tied values make
bound pruning useless), so the solve reliably truncates on the deadline
and returns the anytime incumbent with its certified gap.  The solver's
per-node convergence events ride the trace session across the farm
boundary and surface on ``GET /trace/<id>``.
"""

from __future__ import annotations

import json
import urllib.request
from contextlib import contextmanager

import numpy as np
import pytest

from repro import Catalog, Relation, SPQConfig
from repro.service import QueryBroker, SPQService

BACKENDS = ("thread", "process")

N_ITEMS = 150
DEADLINE_MS = 800.0


def _knapsack_catalog() -> tuple[Catalog, float]:
    rng = np.random.default_rng(5)
    weight = rng.integers(5, 50, size=N_ITEMS).astype(float)
    # Near-perfect value/weight correlation: every subset swap moves the
    # objective by at most ~0.05, so the LP bound never separates from
    # the incumbent and the search tree stays open far past any
    # sub-second budget.
    gain = weight + rng.uniform(0.0, 0.05, size=N_ITEMS)
    capacity = float(weight.sum()) - 2.0 * float(weight.mean())
    catalog = Catalog()
    catalog.register(Relation("inv", {"weight": weight, "gain": gain}))
    return catalog, capacity


@contextmanager
def _service(backend: str):
    catalog, capacity = _knapsack_catalog()
    config = SPQConfig(seed=11, solver="branch-bound", service_backend=backend)
    broker = QueryBroker(catalog, config=config, pool_size=1)
    svc = SPQService(broker, port=0, own_broker=True).start_background()
    try:
        yield svc, capacity
    finally:
        svc.shutdown()


def _post(service, payload: dict):
    host, port = service.address
    request = urllib.request.Request(
        f"http://{host}:{port}/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def _get_json(service, path: str):
    host, port = service.address
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=60
    ) as response:
        return response.status, json.loads(response.read())


def _query(capacity: float) -> str:
    return (
        "SELECT PACKAGE(*) FROM inv REPEAT 0 SUCH THAT"
        f" SUM(weight) <= {capacity:.1f} MAXIMIZE SUM(gain)"
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_truncated_bb_trace_gap_series_matches_envelope(backend):
    with _service(backend) as (service, capacity):
        # Warm-up: pay worker spawn / compile outside the timed query
        # (capacity 0 solves at the root).
        status, _ = _post(service, {"query": _query(0.0)})
        assert status == 200

        status, body = _post(
            service, {"query": _query(capacity), "deadline_ms": DEADLINE_MS}
        )
        assert status == 200
        # The deadline truncated the solve mid-search: an anytime
        # incumbent with a certified gap, not a bare timeout.
        assert body["deadline_met"] is False
        assert body["feasible"] is True
        assert body["anytime"]["stages_truncated"] == ["solve"]
        envelope_gap = body["gap"]
        assert envelope_gap is not None and envelope_gap > 0.0

        status, tree = _get_json(service, f"/trace/{body['trace_id']}")
        assert status == 200
        series = [
            e for e in tree["events"] if e["kind"] == "solver.node"
        ]
        assert len(series) >= 2, tree["events"]

        # Monotone non-increasing gap over the whole emitted series.
        gaps = [e["gap"] for e in series if e["gap"] is not None]
        assert gaps, series
        assert all(a >= b for a, b in zip(gaps, gaps[1:])), gaps

        # Exactly one terminal record, last in the series, and its gap
        # is the envelope gap (carried bit-for-bit through
        # meta["solver_gap"] into finalize_anytime).
        finals = [e for e in series if e.get("final")]
        assert len(finals) == 1 and series[-1] is finals[0]
        assert finals[0]["gap"] == envelope_gap

        # Best-bound consistency on the terminal record: the envelope's
        # bound is the solver's, in the caller's objective sense.
        assert finals[0]["best_bound"] == body["anytime"]["best_bound"]

        # The event t-axis is the solver's own clock: non-negative,
        # non-decreasing, and within the deadline's order of magnitude.
        ts = [e["t"] for e in series]
        assert all(t >= 0.0 for t in ts)
        assert all(a <= b + 1e-9 for a, b in zip(ts, ts[1:]))

        # Resource accounting rode the same payload: the LP solves that
        # produced this series are charged to the query's trace.
        assert tree["resources"]["lp_solves"] >= len(series) - 1
