"""SolveFarm: process backend, memmap handoff, recycling, crash recovery."""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import OrderedDict

import numpy as np
import pytest

from repro import Catalog, Relation, SPQConfig
from repro.errors import SPQError
from repro.mcdb import GaussianNoiseVG, StochasticModel
from repro.service import QueryBroker, WorkerCrashError
from repro.service import farm as farm_module
from repro.service.farm import SolveFarm, _Worker

QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 6 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""


def _catalog(n_rows: int = 5) -> Catalog:
    if n_rows == 5:
        prices = [5.0, 8.0, 3.0, 6.0, 4.0]
    else:
        prices = np.random.default_rng(0).uniform(1.0, 10.0, n_rows)
    relation = Relation("items", {"price": prices})
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    out = Catalog()
    out.register(relation, model)
    return out


def _config(**overrides) -> SPQConfig:
    defaults = dict(
        n_validation_scenarios=500,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        epsilon=0.8,
        seed=11,
    )
    defaults.update(overrides)
    return SPQConfig(**defaults)


def _busy_worker(broker: QueryBroker, exclude=(), timeout: float = 60.0) -> dict:
    """Poll /status until a busy worker (not in ``exclude``) appears."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        for worker in broker.status()["farm"]["workers"]:
            if worker["state"] == "busy" and worker["pid"] not in exclude:
                return worker
        time.sleep(0.01)
    raise AssertionError("no busy worker observed before the deadline")


def test_process_backend_matches_thread_backend_bit_identically():
    catalog = _catalog()
    config = _config()
    with QueryBroker(catalog, config=config, pool_size=2, backend="thread") as b:
        reference = b.execute(QUERY)
    with QueryBroker(catalog, config=config, pool_size=2, backend="process") as b:
        result = b.execute(QUERY)
        status = b.status()
    assert status["backend"] == "process"
    assert status["farm"]["n_workers"] == 2
    assert result.feasible == reference.feasible
    assert result.objective == reference.objective
    assert np.array_equal(
        result.package.multiplicities, reference.package.multiplicities
    )


def test_farm_serves_concurrent_queries_and_reports_workers():
    catalog = _catalog()
    config = _config()
    with QueryBroker(catalog, config=config, pool_size=2, backend="process") as b:
        futures = [b.submit(QUERY, seed=s) for s in (1, 2, 3, 4)]
        results = [f.result(timeout=120) for f in futures]
        status = b.status()
    assert all(r is not None for r in results)
    assert status["completed"] == 4
    assert status["failed"] == 0
    farm = status["farm"]
    assert farm["crashed_total"] == 0
    assert {w["state"] for w in farm["workers"]} <= {"idle", "busy", "starting"}
    assert sum(w["tasks_completed"] for w in farm["workers"]) == 4


def test_handoff_descriptors_flow_between_workers():
    # Worker A realizes the matrices; the same query (different worker,
    # same content keys) must adopt them instead of regenerating.
    catalog = _catalog()
    config = _config()
    with QueryBroker(catalog, config=config, pool_size=2, backend="process") as b:
        first = b.execute(QUERY)
        assert b.status()["farm"]["handoff_entries"] > 0
        # Drive every worker through the same query; at least one run
        # lands on the worker that did not realize the matrices.
        results = [b.execute(QUERY, epsilon=0.79) for _ in range(3)]
        farm = b.status()["farm"]
    assert farm["handoff_entries"] > 0
    for result in results:
        assert result.feasible == first.feasible


def test_errors_cross_the_process_boundary():
    catalog = _catalog()
    with QueryBroker(
        catalog, config=_config(), pool_size=1, backend="process"
    ) as b:
        with pytest.raises(SPQError):
            b.execute("SELECT PACKAGE(*) FROM nowhere SUCH THAT COUNT(*) <= 1")
        # The worker survives a failed evaluation.
        assert b.execute(QUERY).feasible
        status = b.status()
    assert status["failed"] == 1
    assert status["completed"] == 1


def test_worker_recycling_replaces_workers_without_dropping_requests():
    catalog = _catalog()
    with QueryBroker(
        catalog,
        config=_config(),
        pool_size=1,
        backend="process",
        recycle_after=2,
    ) as b:
        results = [b.execute(QUERY, seed=s) for s in range(5)]
        deadline = time.time() + 30
        while time.time() < deadline:
            farm = b.status()["farm"]
            if farm["recycled_total"] >= 2 and farm["idle"] + farm["busy"] >= 1:
                break
            time.sleep(0.05)
        farm = b.status()["farm"]
    assert all(r.feasible for r in results)
    assert farm["recycled_total"] >= 2
    assert farm["crashed_total"] == 0


@pytest.mark.parametrize("kills", [1, 2])
def test_killed_worker_requeues_once_then_surfaces_crash(kills):
    # A solver-bound request large enough to give the kill a wide
    # window (hundreds of ms of realization + validation per solve).
    catalog = _catalog(n_rows=400)
    config = _config(
        n_validation_scenarios=300_000,
        n_initial_scenarios=50,
        scenario_increment=50,
        max_scenarios=100,
        epsilon=0.9,
    )
    slow_query = """
    SELECT PACKAGE(*) FROM items SUCH THAT
        COUNT(*) <= 5 AND
        SUM(Value) >= 20 WITH PROBABILITY >= 0.8
    MINIMIZE EXPECTED SUM(Value)
    """
    with QueryBroker(
        catalog, config=config, pool_size=2, backend="process"
    ) as broker:
        future = broker.submit(slow_query)
        killed = []
        for _ in range(kills):
            worker = _busy_worker(broker, exclude=killed)
            killed.append(worker["pid"])
            os.kill(worker["pid"], signal.SIGKILL)
        if kills == 1:
            # Retried once on another worker; the request still succeeds.
            result = future.result(timeout=180)
            assert result.feasible
        else:
            # Second death of the same request: exit-code-3 semantics.
            with pytest.raises(WorkerCrashError):
                future.result(timeout=180)
        farm = broker.status()["farm"]
        assert farm["crashed_total"] >= kills
        assert farm["retried_total"] >= 1
        # The farm replaced the dead workers and keeps serving.
        follow_up = broker.execute(QUERY)
        assert follow_up.feasible
        farm = broker.status()["farm"]
        assert farm["idle"] + farm["busy"] >= 1


def test_future_callbacks_run_outside_the_farm_lock():
    # Done-callbacks run synchronously on the thread resolving the
    # future.  The broker's callback takes the broker lock, which other
    # threads hold while calling farm.submit() — so the manager must
    # never resolve a future while holding the farm lock, or the two
    # locks deadlock (the callback here would then wedge taking the farm
    # lock a second time on the same thread).
    catalog = _catalog()
    farm = SolveFarm(catalog, _config(), n_workers=1)
    seen = []
    done = threading.Event()

    def callback(_future):
        seen.append(farm.status()["backend"])  # needs the farm lock
        done.set()

    future = farm.submit(QUERY, "summarysearch", {})
    future.add_done_callback(callback)
    assert future.result(timeout=120).feasible
    assert done.wait(timeout=30), "callback wedged on the farm lock"
    assert seen == ["process"]
    # close() on a daemon thread: on a regression the manager is wedged
    # holding the farm lock and close() would hang the suite forever.
    closer = threading.Thread(target=farm.close, daemon=True)
    closer.start()
    closer.join(timeout=60)
    assert not closer.is_alive()


def test_concurrent_submits_and_completions_do_not_deadlock():
    # Submitting threads (broker lock -> farm submit) race the manager
    # thread completing earlier requests (farm lock -> broker callback);
    # with pool_size 2 completions overlap fresh submissions constantly.
    catalog = _catalog()
    with QueryBroker(
        catalog, config=_config(), pool_size=2, max_pending=32, backend="process"
    ) as broker:
        futures = []
        futures_lock = threading.Lock()

        def client(seed: int) -> None:
            for i in range(2):
                future = broker.submit(QUERY, seed=100 * seed + i)
                with futures_lock:
                    futures.append(future)

        threads = [
            threading.Thread(target=client, args=(s,), daemon=True)
            for s in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        results = [future.result(timeout=180) for future in futures]
    assert len(results) == 8
    assert all(result.feasible for result in results)


def test_process_backend_rejects_a_caller_supplied_store():
    # Farm workers host private stores; silently ignoring a supplied
    # store would skip its budget/spill settings and report zero stats.
    from repro.service import ScenarioStore

    catalog = _catalog()
    store = ScenarioStore()
    try:
        with pytest.raises(SPQError, match="process backend"):
            QueryBroker(
                catalog, config=_config(), store=store, backend="process"
            )
    finally:
        store.close()


def test_process_backend_aggregates_worker_store_stats():
    # The broker has no store of its own on the process backend; the
    # stats it reports must come from the farm workers' private stores
    # rather than reading permanently zero.
    catalog = _catalog()
    with QueryBroker(
        catalog, config=_config(), pool_size=1, backend="process"
    ) as broker:
        assert broker.store is None
        broker.execute(QUERY)
        stats = broker.status()["store"]
        assert stats["generations"] > 0
        assert stats["entries"] > 0
        # Repeating the query hits the worker's warm store.
        broker.execute(QUERY)
        assert broker.status()["store"]["hits"] > stats["hits"]


def test_stale_done_after_requeue_still_frees_the_retry_worker():
    # Ordering race: worker W completes task T, flushes its result, then
    # dies; the reap (which can run before the queued result drains)
    # requeues T onto worker V.  W's stale result settles T first — when
    # V's own completion for T arrives, V must still return to the idle
    # pool, or it stays BUSY forever and a pool_size=1 farm stops
    # dispatching entirely.
    import pickle
    from collections import deque

    farm = SolveFarm.__new__(SolveFarm)  # no processes: message logic only
    farm._crash_streak = 0
    farm._descriptors = OrderedDict()
    farm._tasks = {}
    farm._pending = deque()
    farm._closed = False
    farm.recycle_after = None
    retry_worker = _Worker(2, process=None, inbox=None)
    retry_worker.state = farm_module.STATE_BUSY
    retry_worker.task = farm_module._Task(7, "q", "summarysearch", {})
    retry_worker.task.retries = 1
    farm._workers = {2: retry_worker}

    # T was already settled by the dead worker's flushed result, so it
    # is gone from _tasks when V's completion drains.
    settle: list = []
    blob = pickle.dumps((True, "result"))
    farm._handle_message_locked(("done", 7, 2, blob, {}, {}, {}, {}, {}, None), settle)
    assert settle == []  # nothing to settle twice
    assert retry_worker.task is None
    assert retry_worker.state == farm_module.STATE_IDLE
    assert retry_worker.tasks_done == 1


def test_stale_done_removes_requeued_task_from_pending():
    # Same race, other interleaving: the dead worker's flushed result
    # drains while the requeued task still waits in _pending — it must
    # be dropped there, not dispatched a second time after settling.
    import pickle
    from collections import deque

    farm = SolveFarm.__new__(SolveFarm)
    farm._crash_streak = 0
    farm._descriptors = OrderedDict()
    farm._workers = {}
    farm._closed = False
    farm.recycle_after = None
    task = farm_module._Task(7, "q", "summarysearch", {})
    task.retries = 1
    farm._tasks = {7: task}
    farm._pending = deque([task])

    settle: list = []
    blob = pickle.dumps((True, "result"))
    farm._handle_message_locked(("done", 7, 1, blob, {}, {}, {}, {}, {}, None), settle)
    assert [(f, ok) for f, ok, _ in settle] == [(task.future, True)]
    assert not farm._pending
    assert not farm._tasks


def test_descriptor_prune_drops_worker_known_entries(tmp_path, monkeypatch):
    # When the handoff registry evicts past its ceiling, every worker's
    # `known` map must drop the pruned keys too, or long-running farms
    # leak one entry per distinct content key per worker.
    monkeypatch.setattr(farm_module, "_MAX_HANDOFF_KEYS", 2)
    farm = SolveFarm.__new__(SolveFarm)  # no processes: merge logic only
    farm._descriptors = OrderedDict()
    farm._workers = {}
    worker = _Worker(1, process=None, inbox=None)
    farm._workers[worker.id] = worker
    paths = []
    for i in range(3):
        path = tmp_path / f"m{i}.f64"
        path.write_bytes(b"\0" * 8)
        paths.append(path)
        farm._merge_descriptors_locked(
            {("key", i): {"path": str(path), "shape": (1, 1)}}, worker
        )
    assert set(farm._descriptors) == {("key", 1), ("key", 2)}
    assert set(worker.known) == {("key", 1), ("key", 2)}
    assert not paths[0].exists()  # pruned descriptor's file unlinked
    assert paths[1].exists() and paths[2].exists()


def test_broker_returns_admission_slot_when_farm_submit_fails():
    # A farm that refuses work (here: closed out from under the broker)
    # must not leak _pending slots — otherwise the broker saturates
    # permanently and turns every real error into a 503.
    catalog = _catalog()
    broker = QueryBroker(
        catalog, config=_config(), pool_size=1, max_pending=2, backend="process"
    )
    try:
        broker._farm.close()
        for _ in range(5):  # more attempts than max_pending
            with pytest.raises(SPQError):
                broker.submit(QUERY)
        assert broker.status()["pending"] == 0
        assert broker.status()["rejected_total"] == 0  # errors, not 503s
    finally:
        broker.close()


def test_farm_close_is_idempotent_and_rejects_new_work():
    catalog = _catalog()
    broker = QueryBroker(
        catalog, config=_config(), pool_size=1, backend="process"
    )
    assert broker.execute(QUERY).feasible
    spill_dir = broker._farm._spill_dir
    assert os.path.isdir(spill_dir)
    broker.close()
    broker.close()  # idempotent
    with pytest.raises(SPQError):
        broker.submit(QUERY)
    # The shared spill directory (handoff memmaps) is removed.
    assert not os.path.exists(spill_dir)


def test_delta_broadcast_reaches_workers_and_matches_rebuild():
    from repro.db.delta import RelationDelta

    catalog = _catalog()
    with QueryBroker(
        catalog, config=_config(), pool_size=2, backend="process"
    ) as broker:
        first = broker.execute(QUERY)
        v0 = first.meta["catalog_version"]
        summary = broker.apply_update(
            "items", {"updates": [[0, {"price": 50.0}]]}
        )
        assert summary["catalog_version"] == v0 + 1
        # Both submissions land after the broadcast; whichever worker
        # picks them up must have adopted the delta first.
        second = broker.execute(QUERY)
        third = broker.execute(QUERY, seed=12)
        assert second.meta["catalog_version"] == v0 + 1
        assert third.meta["catalog_version"] == v0 + 1
        assert broker.status()["deltas_applied"] == 1

    # Ground truth: the same delta applied directly to a fresh catalog,
    # solved on the thread backend — the farm's post-delta answer must
    # be bit-identical (content-addressed scenario draws).
    truth_catalog = _catalog()
    truth_catalog.apply_delta(
        "items", RelationDelta(updates={0: {"price": 50.0}})
    )
    with QueryBroker(
        truth_catalog, config=_config(), pool_size=1, backend="thread"
    ) as broker:
        truth = broker.execute(QUERY)
    assert np.array_equal(
        second.package.multiplicities, truth.package.multiplicities
    )
    assert second.objective == truth.objective


def test_aggregation_invariants_survive_worker_recycling():
    # Lifetime-monotonic invariant: resource counters and stage
    # histograms merged across the farm never regress when workers are
    # recycled — each departing generation's last snapshot is absorbed
    # into farm totals rather than dropped with the process.
    catalog = _catalog()
    with QueryBroker(
        catalog,
        config=_config(),
        pool_size=1,
        backend="process",
        recycle_after=1,
    ) as broker:
        base_res = broker.resource_stats()
        base_hist = broker.stage_histograms()
        last_res, last_hist = base_res, base_hist
        for n in range(1, 4):
            assert broker.execute(QUERY, seed=n).feasible
            res = broker.resource_stats()
            hist = broker.stage_histograms()
            # Exactly one query accounted per execute, whichever worker
            # generation served it.
            assert (
                res["queries_accounted"]
                == base_res["queries_accounted"] + n
            )
            assert res["lp_solves"] > last_res["lp_solves"]
            assert res["query_cpu_seconds"] >= last_res["query_cpu_seconds"]
            # Every stage seen so far keeps its observations: merged
            # histograms are cumulative across worker generations.
            for stage, snap in last_hist.items():
                assert hist[stage]["count"] >= snap["count"], stage
                assert hist[stage]["sum"] >= snap["sum"] - 1e-9, stage
            base_queries = base_hist.get("query", {"count": 0})["count"]
            assert hist["query"]["count"] == base_queries + n
            last_res, last_hist = res, hist
        # The pool really did turn over while the counters accumulated.
        deadline = time.time() + 30
        while time.time() < deadline:
            if broker.status()["farm"]["recycled_total"] >= 2:
                break
            time.sleep(0.05)
        assert broker.status()["farm"]["recycled_total"] >= 2


def test_aggregation_invariants_survive_a_worker_crash():
    # Kill an idle worker that already served queries: the reaper
    # absorbs its last snapshots into farm totals, so lifetime counters
    # and histogram observations survive the process exactly.
    catalog = _catalog()
    with QueryBroker(
        catalog, config=_config(), pool_size=1, backend="process"
    ) as broker:
        for seed in range(2):
            assert broker.execute(QUERY, seed=seed).feasible
        before_res = broker.resource_stats()
        before_hist = broker.stage_histograms()
        # Let the worker's result-queue feeder thread go fully quiescent
        # before the kill: SIGKILL between its send() and the shared
        # write-lock release would wedge the queue for every later
        # writer (the documented mp.Queue abrupt-death hazard — the busy
        # kills above never write results, so they are outside it).
        time.sleep(0.5)
        victim = broker.status()["farm"]["workers"][0]
        os.kill(victim["pid"], signal.SIGKILL)
        deadline = time.time() + 30
        while time.time() < deadline:
            farm = broker.status()["farm"]
            if farm["crashed_total"] >= 1 and farm["idle"] + farm["busy"] >= 1:
                break
            time.sleep(0.05)
        assert broker.status()["farm"]["crashed_total"] >= 1
        after_res = broker.resource_stats()
        after_hist = broker.stage_histograms()
        # Nothing was in flight, so the totals are preserved bit-exactly:
        # the dead worker's contribution moved from its live snapshot
        # into the absorbed totals.
        assert after_res == before_res
        for stage, snap in before_hist.items():
            assert after_hist[stage]["count"] == snap["count"], stage
        # The replacement worker keeps counting from there.
        assert broker.execute(QUERY, seed=9).feasible
        final_res = broker.resource_stats()
        assert (
            final_res["queries_accounted"]
            == before_res["queries_accounted"] + 1
        )
