"""ScenarioStore: content keys, LRU budget enforcement, spill, concurrency."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import Catalog, Relation, SPQConfig, SPQEngine
from repro.config import STREAM_OPTIMIZATION
from repro.db.expressions import parse_expression
from repro.mcdb import GaussianNoiseVG, StochasticModel
from repro.mcdb.scenarios import ScenarioGenerator
from repro.service.store import (
    ScenarioStore,
    model_fingerprint,
    relation_fingerprint,
    store_key,
)

N_ROWS = 8


def fill_for(key_id: int, counter=None):
    """Deterministic fill: column j of key k holds k*1000 + j."""

    def fill(start, stop):
        if counter is not None:
            counter.append((start, stop))
        cols = np.arange(start, stop, dtype=float)[None, :] + 1000.0 * key_id
        return np.broadcast_to(cols, (N_ROWS, stop - start)).copy()

    return fill


def expected(key_id: int, n: int) -> np.ndarray:
    return np.broadcast_to(
        np.arange(n, dtype=float)[None, :] + 1000.0 * key_id, (N_ROWS, n)
    ).copy()


def entry_bytes(n_cols: int) -> int:
    return N_ROWS * n_cols * 8


# --- basic hit/miss/growth -------------------------------------------------


def test_miss_then_hit_then_growth():
    store = ScenarioStore()
    calls = []
    got = store.coefficient_matrix(("k",), 4, fill_for(1, calls))
    assert np.array_equal(got, expected(1, 4))
    assert calls == [(0, 4)]
    # Prefix request: pure hit, no generation.
    again = store.coefficient_matrix(("k",), 3, fill_for(1, calls))
    assert np.array_equal(again, expected(1, 3))
    assert calls == [(0, 4)]
    # Growth generates only the missing suffix.
    grown = store.coefficient_matrix(("k",), 7, fill_for(1, calls))
    assert np.array_equal(grown, expected(1, 7))
    assert calls == [(0, 4), (4, 7)]
    stats = store.stats()
    assert stats.hits == 1
    assert stats.misses == 2
    assert stats.generations == 2
    assert stats.generated_columns == 7
    store.close()


def test_lru_eviction_order_under_byte_pressure():
    # Budget fits exactly two 4-column entries; spilling disabled so the
    # least-recently-used entry is dropped outright.
    store = ScenarioStore(budget_bytes=2 * entry_bytes(4), spill=False)
    store.coefficient_matrix(("a",), 4, fill_for(1))
    store.coefficient_matrix(("b",), 4, fill_for(2))
    # Touch "a": it becomes most-recently-used, so "b" is the LRU victim.
    store.coefficient_matrix(("a",), 4, fill_for(1))
    store.coefficient_matrix(("c",), 4, fill_for(3))
    assert store.stats().evictions == 1
    assert store.keys() == [("a",), ("c",)]
    # The evicted entry regenerates on demand (results unchanged).
    calls = []
    got = store.coefficient_matrix(("b",), 4, fill_for(2, calls))
    assert calls == [(0, 4)]
    assert np.array_equal(got, expected(2, 4))
    store.close()


def test_spill_to_memmap_round_trip_bit_identical(tmp_path):
    store = ScenarioStore(
        budget_bytes=entry_bytes(4), spill=True, spill_dir=str(tmp_path)
    )
    first = store.coefficient_matrix(("a",), 4, fill_for(1))
    reference = np.array(first)
    # Inserting a second entry pushes "a" over budget and spills it.
    store.coefficient_matrix(("b",), 4, fill_for(2))
    stats = store.stats()
    assert stats.spills >= 1
    assert stats.bytes_spilled >= entry_bytes(4)
    spill_files = list(tmp_path.iterdir())
    assert spill_files, "expected a spill file on disk"
    # Reads from the spilled entry are bit-identical and count as hits.
    got = store.coefficient_matrix(("a",), 4, fill_for(1, counter := []))
    assert counter == [], "spilled entry must not regenerate"
    assert np.array_equal(np.asarray(got), reference)
    store.close()
    assert not list(tmp_path.iterdir()), "close() must remove spill files"


def test_clear_releases_spill_files_and_is_idempotent(tmp_path):
    store = ScenarioStore(
        budget_bytes=entry_bytes(2), spill=True, spill_dir=str(tmp_path)
    )
    store.coefficient_matrix(("a",), 4, fill_for(1))
    store.coefficient_matrix(("b",), 4, fill_for(2))
    assert list(tmp_path.iterdir())
    store.clear()
    assert not list(tmp_path.iterdir())
    assert store.stats().entries == 0
    store.clear()  # idempotent
    # The store stays usable after clear().
    got = store.coefficient_matrix(("a",), 2, fill_for(1))
    assert np.array_equal(got, expected(1, 2))
    store.close()
    store.close()  # idempotent
    assert store.closed


def test_closed_store_degrades_to_direct_generation():
    store = ScenarioStore()
    store.close()
    calls = []
    got = store.coefficient_matrix(("k",), 3, fill_for(4, calls))
    assert calls == [(0, 3)]
    assert np.array_equal(got, expected(4, 3))
    assert store.stats().entries == 0


def test_concurrent_same_key_generates_once():
    store = ScenarioStore()
    barrier = threading.Barrier(2)
    generations = []
    gate = threading.Event()

    def slow_fill(start, stop):
        generations.append((start, stop))
        gate.wait(10)
        return fill_for(7)(start, stop)

    results = [None, None]

    def worker(i):
        barrier.wait(10)
        results[i] = store.coefficient_matrix(("k",), 5, slow_fill)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    # Both threads are racing on the key; exactly one may generate.
    deadline = time.time() + 10
    while not generations and time.time() < deadline:
        time.sleep(0.001)
    gate.set()
    for t in threads:
        t.join(10)
    assert generations == [(0, 5)], "single generation for concurrent callers"
    assert np.array_equal(results[0], expected(7, 5))
    assert np.array_equal(results[1], expected(7, 5))
    stats = store.stats()
    assert stats.generations == 1
    assert stats.hits + stats.misses == 2
    store.close()


def test_clear_during_growth_retries_instead_of_corrupting():
    # A clear() racing a suffix generation must not let the suffix be
    # served (or cached) as the full [0, n) matrix.
    store = ScenarioStore()
    store.coefficient_matrix(("k",), 3, fill_for(1))
    in_fill = threading.Event()
    gate = threading.Event()
    calls = []

    def gated_fill(start, stop):
        calls.append((start, stop))
        if start > 0:  # only gate the growth pass
            in_fill.set()
            gate.wait(10)
        return fill_for(1)(start, stop)

    result = []
    grower = threading.Thread(
        target=lambda: result.append(
            store.coefficient_matrix(("k",), 6, gated_fill)
        )
    )
    grower.start()
    assert in_fill.wait(10)
    store.clear()  # drops the prefix while the suffix is in flight
    gate.set()
    grower.join(10)
    assert np.array_equal(result[0], expected(1, 6))
    # The retry regenerated from scratch rather than stitching a lost
    # prefix: the last fill covered [0, 6).
    assert calls[-1] == (0, 6)
    # And the cached entry is the full matrix.
    assert np.array_equal(
        store.coefficient_matrix(("k",), 6, fill_for(1)), expected(1, 6)
    )
    store.close()


def test_growing_keys_are_not_evicted_under_pressure():
    # Budget pressure while a key grows: the grower's prefix survives.
    store = ScenarioStore(budget_bytes=entry_bytes(4), spill=False)
    store.coefficient_matrix(("grow",), 4, fill_for(1))
    in_fill = threading.Event()
    gate = threading.Event()

    def gated_fill(start, stop):
        in_fill.set()
        gate.wait(10)
        return fill_for(1)(start, stop)

    result = []
    grower = threading.Thread(
        target=lambda: result.append(
            store.coefficient_matrix(("grow",), 8, gated_fill)
        )
    )
    grower.start()
    assert in_fill.wait(10)
    # Over-budget insert during the growth: "grow" must not be evicted.
    store.coefficient_matrix(("other",), 4, fill_for(2))
    assert ("grow",) in store.keys()
    gate.set()
    grower.join(10)
    assert np.array_equal(result[0], expected(1, 8))
    store.close()


def test_failed_generation_releases_the_key():
    store = ScenarioStore()

    def boom(start, stop):
        raise RuntimeError("fill failed")

    with pytest.raises(RuntimeError):
        store.coefficient_matrix(("k",), 2, boom)
    # The key is not wedged: a later request generates normally.
    got = store.coefficient_matrix(("k",), 2, fill_for(1))
    assert np.array_equal(got, expected(1, 2))
    store.close()


# --- cross-process handoff --------------------------------------------------


def test_handoff_exports_descriptors_and_adopt_round_trips(tmp_path):
    exporter = ScenarioStore(spill_dir=str(tmp_path / "exp"))
    reference = np.array(exporter.coefficient_matrix(("a",), 4, fill_for(1)))
    exporter.coefficient_matrix(("b",), 3, fill_for(2))
    descriptors = exporter.handoff()
    assert set(descriptors) == {("a",), ("b",)}
    for descriptor in descriptors.values():
        assert descriptor["path"]
        assert len(descriptor["sha256"]) == 64
    # Exported entries still serve (now memmap-backed, bit-identical).
    assert np.array_equal(
        exporter.coefficient_matrix(("a",), 4, fill_for(1)), reference
    )

    adopter = ScenarioStore()
    assert adopter.adopt(descriptors) == 2
    calls = []
    got = adopter.coefficient_matrix(("a",), 4, fill_for(1, calls))
    assert calls == [], "adopted entry must not regenerate"
    assert np.array_equal(np.asarray(got), reference)
    assert adopter.stats().adopted == 2

    # Neither store owns the files: closing both leaves them on disk
    # (the farm removes its shared spill directory as a whole).
    adopter.close()
    exporter.close()
    assert list((tmp_path / "exp").iterdir())


def test_adopt_rejects_corrupt_files(tmp_path):
    exporter = ScenarioStore(spill_dir=str(tmp_path))
    exporter.coefficient_matrix(("k",), 3, fill_for(5))
    descriptors = exporter.handoff()
    path = descriptors[("k",)]["path"]
    data = np.memmap(path, dtype=np.float64, mode="r+")
    data[0] = -999.0  # torn write / bit rot
    data.flush()
    del data

    adopter = ScenarioStore()
    assert adopter.adopt(descriptors) == 0  # hash mismatch: skipped
    # The key regenerates correctly on demand.
    got = adopter.coefficient_matrix(("k",), 3, fill_for(5))
    assert np.array_equal(got, expected(5, 3))
    adopter.close()
    exporter.close()


def test_adopt_skips_missing_files_and_existing_keys(tmp_path):
    exporter = ScenarioStore(spill_dir=str(tmp_path))
    exporter.coefficient_matrix(("k",), 3, fill_for(1))
    descriptors = exporter.handoff()

    adopter = ScenarioStore()
    adopter.coefficient_matrix(("k",), 5, fill_for(1))  # wider local entry
    assert adopter.adopt(descriptors) == 0  # key already present
    assert np.array_equal(
        adopter.coefficient_matrix(("k",), 5, fill_for(1)), expected(1, 5)
    )
    adopter.clear()
    bogus = {("k",): dict(descriptors[("k",)], path=str(tmp_path / "gone"))}
    assert adopter.adopt(bogus) == 0  # missing file: skipped
    adopter.close()
    exporter.close()


def test_adopted_entry_grows_without_touching_the_shared_file(tmp_path):
    exporter = ScenarioStore(spill_dir=str(tmp_path))
    exporter.coefficient_matrix(("k",), 3, fill_for(1))
    descriptors = exporter.handoff()
    path = descriptors[("k",)]["path"]

    adopter = ScenarioStore()
    adopter.adopt(descriptors)
    calls = []
    grown = adopter.coefficient_matrix(("k",), 6, fill_for(1, calls))
    assert calls == [(3, 6)], "growth must reuse the adopted prefix"
    assert np.array_equal(grown, expected(1, 6))
    adopter.close()
    # The shared file is intact for other adopters.
    assert np.array_equal(
        np.memmap(path, dtype=np.float64, mode="r", shape=(N_ROWS, 3)),
        expected(1, 3),
    )
    exporter.close()


def test_handoff_announces_each_entry_once(tmp_path):
    # Re-announcing an already-exported entry would let a path the farm
    # has since pruned (and unlinked) reinstall itself as a permanently
    # broken registry descriptor.
    exporter = ScenarioStore(spill_dir=str(tmp_path))
    exporter.coefficient_matrix(("a",), 3, fill_for(1))
    first = exporter.handoff()
    assert set(first) == {("a",)}
    assert exporter.handoff() == {}
    # New realizations and growth (a fresh entry) export; ("a",) stays
    # announced-once.
    exporter.coefficient_matrix(("b",), 3, fill_for(2))
    exporter.coefficient_matrix(("a",), 6, fill_for(1))
    second = exporter.handoff()
    assert set(second) == {("a",), ("b",)}
    assert second[("a",)]["path"] != first[("a",)]["path"]
    assert exporter.handoff() == {}
    exporter.close()


def test_handoff_never_reexports_adopted_entries(tmp_path):
    # Only the store that realized a matrix may announce it: a worker
    # re-exporting an adopted (possibly superseded) path would let the
    # farm registry regress to a stale file and unlink the newer one.
    exporter = ScenarioStore(spill_dir=str(tmp_path / "exp"))
    exporter.coefficient_matrix(("k",), 3, fill_for(1))
    descriptors = exporter.handoff()

    adopter = ScenarioStore(spill_dir=str(tmp_path / "adp"))
    assert adopter.adopt(descriptors) == 1
    assert adopter.handoff() == {}

    # Entries the adopter realized itself still export — and growing an
    # adopted entry makes it the realizer of the grown matrix.
    adopter.coefficient_matrix(("own",), 2, fill_for(2))
    adopter.coefficient_matrix(("k",), 6, fill_for(1))
    exported = adopter.handoff()
    assert set(exported) == {("own",), ("k",)}
    assert exported[("k",)]["path"] != descriptors[("k",)]["path"]
    adopter.close()
    exporter.close()


# --- content keys ----------------------------------------------------------


def _items(name="items"):
    relation = Relation(name, {"price": [5.0, 8.0, 3.0, 6.0, 4.0]})
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    return relation, model


def test_content_keys_share_across_names_and_parses():
    _, model_a = _items("items")
    _, model_b = _items("renamed")
    gen_a = ScenarioGenerator(model_a, 42, STREAM_OPTIMIZATION)
    gen_b = ScenarioGenerator(model_b, 42, STREAM_OPTIMIZATION)
    expr_a = parse_expression("Value * 2")
    expr_b = parse_expression("Value  *  2")  # distinct object, same text
    assert store_key(gen_a, expr_a) == store_key(gen_b, expr_b)


def test_content_keys_distinguish_data_seed_and_stream():
    relation, model = _items()
    other_relation = Relation("items", {"price": [5.0, 8.0, 3.0, 6.0, 4.1]})
    other_model = StochasticModel(
        other_relation, {"Value": GaussianNoiseVG("price", 1.0)}
    )
    expr = parse_expression("Value")
    base = store_key(ScenarioGenerator(model, 42, 0), expr)
    assert store_key(ScenarioGenerator(other_model, 42, 0), expr) != base
    assert store_key(ScenarioGenerator(model, 43, 0), expr) != base
    assert store_key(ScenarioGenerator(model, 42, 1), expr) != base
    assert relation_fingerprint(relation) != relation_fingerprint(other_relation)
    assert model_fingerprint(model) == model_fingerprint(model)  # cached


# --- end-to-end budget invariance ------------------------------------------

QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 6 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""


def _engine(store):
    relation, model = _items()
    catalog = Catalog()
    catalog.register(relation, model)
    config = SPQConfig(
        n_validation_scenarios=500,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        epsilon=0.8,
        seed=11,
    )
    return SPQEngine(catalog=catalog, config=config, store=store)


def test_tiny_budget_is_bit_identical_to_unlimited(tmp_path):
    with ScenarioStore() as unlimited:
        reference = _engine(unlimited).execute(QUERY)
    # A budget far below the working set forces spills on every insert.
    with ScenarioStore(budget_bytes=64, spill_dir=str(tmp_path)) as tiny:
        constrained = _engine(tiny).execute(QUERY)
        assert tiny.stats().spills > 0
    assert np.array_equal(
        reference.package.multiplicities, constrained.package.multiplicities
    )
    assert reference.objective == constrained.objective
    assert not list(tmp_path.iterdir())


def test_evicting_budget_is_bit_identical_to_unlimited():
    with ScenarioStore() as unlimited:
        reference = _engine(unlimited).execute(QUERY)
    with ScenarioStore(budget_bytes=64, spill=False) as tiny:
        constrained = _engine(tiny).execute(QUERY)
        assert tiny.stats().evictions > 0
    assert np.array_equal(
        reference.package.multiplicities, constrained.package.multiplicities
    )
    assert reference.objective == constrained.objective


# --- delta staleness (docs/live_data.md) ------------------------------------


def test_adopt_drops_descriptors_with_stale_fingerprints(tmp_path):
    exporter = ScenarioStore(spill_dir=str(tmp_path))
    exporter.coefficient_matrix(("old-fp", "expr"), 3, fill_for(1))
    exporter.coefficient_matrix(("new-fp", "expr"), 3, fill_for(2))
    descriptors = exporter.handoff()

    adopter = ScenarioStore()
    assert adopter.adopt(descriptors, stale_fingerprints={"old-fp"}) == 1
    calls = []
    adopter.coefficient_matrix(("new-fp", "expr"), 3, fill_for(2, calls))
    assert calls == []  # fresh entry adopted
    adopter.coefficient_matrix(("old-fp", "expr"), 3, fill_for(1, calls))
    assert calls == [(0, 3)]  # stale entry refused, regenerated
    assert adopter.stats().stale_dropped == 1
    adopter.close()
    exporter.close()


def test_adopt_consults_lineage_registry_by_default(tmp_path):
    from repro.db.delta import DeltaApplication, lineage

    exporter = ScenarioStore(spill_dir=str(tmp_path))
    exporter.coefficient_matrix(("pre-delta", "e"), 3, fill_for(1))
    descriptors = exporter.handoff()
    lineage.clear()
    try:
        lineage.record_delta(
            "pre-delta",
            "post-delta",
            DeltaApplication(
                digest="d", n_rows_before=8, n_rows_after=8,
                dirty=np.array([0]), shifted_from=None,
            ),
        )
        adopter = ScenarioStore()
        assert adopter.adopt(descriptors) == 0
        assert adopter.stats().stale_dropped == 1
        adopter.close()
    finally:
        lineage.clear()
    exporter.close()


def test_prune_fingerprints_drops_matching_entries():
    store = ScenarioStore()
    store.coefficient_matrix(("fp-a", "e1"), 3, fill_for(1))
    store.coefficient_matrix(("fp-a", "e2"), 3, fill_for(2))
    store.coefficient_matrix(("fp-b", "e1"), 3, fill_for(3))
    assert store.prune_fingerprints({"fp-a"}) == 2
    assert store.stats().entries == 1
    assert store.stats().stale_dropped == 2
    calls = []
    store.coefficient_matrix(("fp-b", "e1"), 3, fill_for(3, calls))
    assert calls == []  # untouched fingerprint survives
    store.coefficient_matrix(("fp-a", "e1"), 3, fill_for(1, calls))
    assert calls == [(0, 3)]  # pruned entry regenerates
    assert store.prune_fingerprints({"zzz"}) == 0
    assert store.prune_fingerprints(set()) == 0
    store.close()


def test_prune_fingerprints_releases_spill_files(tmp_path):
    store = ScenarioStore(budget_bytes=64, spill_dir=str(tmp_path))
    store.coefficient_matrix(("fp", "e"), 4, fill_for(1))
    store.coefficient_matrix(("fp2", "e"), 4, fill_for(2))  # spills fp
    assert store.prune_fingerprints({"fp", "fp2"}) == 2
    store.close()
    assert not list(tmp_path.iterdir())
