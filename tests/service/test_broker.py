"""QueryBroker: pooled dispatch, in-flight dedup, admission control."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Catalog, Relation, SPQConfig
from repro.db.delta import RelationDelta
from repro.errors import SPQError
from repro.mcdb import GaussianNoiseVG, StochasticModel
from repro.service import BrokerSaturatedError, QueryBroker, ScenarioStore

QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 6 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""

OTHER_QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 2 AND
    SUM(Value) >= 4 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""


@pytest.fixture
def catalog() -> Catalog:
    relation = Relation("items", {"price": [5.0, 8.0, 3.0, 6.0, 4.0]})
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    out = Catalog()
    out.register(relation, model)
    return out


@pytest.fixture
def config() -> SPQConfig:
    return SPQConfig(
        n_validation_scenarios=500,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        epsilon=0.8,
        seed=11,
    )


def _gate_broker(broker: QueryBroker) -> threading.Event:
    """Hold every dispatched evaluation at a gate until the event is set."""
    gate = threading.Event()
    original = broker._run

    def gated(query, method, overrides, *args):
        gate.wait(30)
        return original(query, method, overrides, *args)

    broker._run = gated
    return gate


def test_second_identical_query_shares_realizations(catalog, config):
    with QueryBroker(catalog, config=config, pool_size=2) as broker:
        first = broker.execute(QUERY)
        after_first = broker.store.stats()
        second = broker.execute(QUERY)
        after_second = broker.store.stats()
    assert after_first.generations > 0
    # Zero scenario regeneration on the repeat: hit counter moves, the
    # generation counter does not.
    assert after_second.generations == after_first.generations
    assert after_second.hits > after_first.hits
    assert np.array_equal(
        first.package.multiplicities, second.package.multiplicities
    )
    assert first.objective == second.objective


def test_inflight_dedup_returns_same_future(catalog, config):
    with QueryBroker(catalog, config=config, pool_size=1) as broker:
        gate = _gate_broker(broker)
        first = broker.submit(QUERY)
        duplicate = broker.submit(QUERY)
        distinct = broker.submit(OTHER_QUERY)
        assert duplicate is first
        assert distinct is not first
        # Different overrides are a different request.
        reseeded = broker.submit(QUERY, seed=99)
        assert reseeded is not first
        status = broker.status()
        assert status["deduplicated"] == 1
        assert status["pending"] == 3
        gate.set()
        assert first.result(timeout=120).feasible
        assert distinct.result(timeout=120) is not None
        assert reseeded.result(timeout=120) is not None
    assert broker.status()["pending"] == 0


def test_admission_control_rejects_beyond_max_pending(catalog, config):
    with QueryBroker(
        catalog, config=config, pool_size=1, max_pending=2
    ) as broker:
        gate = _gate_broker(broker)
        broker.submit(QUERY)
        broker.submit(OTHER_QUERY)
        with pytest.raises(BrokerSaturatedError):
            broker.submit(QUERY, seed=7)
        assert broker.status()["rejected"] == 1
        # A duplicate of an in-flight query is served without admission.
        assert broker.submit(QUERY) is not None
        gate.set()
    assert broker.status()["closed"]


def test_concurrent_identical_queries_generate_once(catalog, config):
    # Two engine sessions race on the same content keys; the store's
    # single-flight generation must serve both from one realization.
    with QueryBroker(catalog, config=config, pool_size=2) as broker:
        futures = [broker.submit(QUERY, seed=5) for _ in range(2)]
        results = [f.result(timeout=120) for f in futures]
        stats = broker.store.stats()
    assert np.array_equal(
        results[0].package.multiplicities, results[1].package.multiplicities
    )
    # Every content key was generated at most once per scenario range:
    # dedup means the two submissions shared one future, or (with
    # distinct futures) the store's single-flight path kicked in.
    assert stats.generations <= stats.hits + stats.misses


def test_pool_serves_distinct_queries_concurrently(catalog, config):
    with QueryBroker(catalog, config=config, pool_size=2) as broker:
        futures = [
            broker.submit(QUERY),
            broker.submit(OTHER_QUERY),
            broker.submit(QUERY, seed=3),
        ]
        results = [f.result(timeout=120) for f in futures]
        status = broker.status()
    assert all(r is not None for r in results)
    assert status["completed"] == 3
    assert status["failed"] == 0


def test_broker_failure_accounting_and_close(catalog, config):
    broker = QueryBroker(catalog, config=config, pool_size=1)
    with pytest.raises(SPQError):
        broker.execute("SELECT PACKAGE(*) FROM nowhere SUCH THAT COUNT(*) <= 1")
    assert broker.status()["failed"] == 1
    broker.close()
    broker.close()  # idempotent
    with pytest.raises(SPQError):
        broker.submit(QUERY)
    assert broker.store.closed  # broker-owned store closes with it


def test_injected_store_survives_broker_close(catalog, config):
    store = ScenarioStore()
    with QueryBroker(catalog, config=config, store=store, pool_size=1) as broker:
        broker.execute(QUERY)
    assert not store.closed
    store.close()

# --- live updates (docs/live_data.md) ----------------------------------------


def test_apply_update_changes_answers_and_stamps_versions(catalog, config):
    with QueryBroker(catalog, config=config, pool_size=2) as broker:
        first = broker.execute(QUERY)
        v0 = catalog.version
        summary = broker.apply_update(
            "items", {"updates": [[0, {"price": 50.0}]]}
        )
        assert summary["catalog_version"] == v0 + 1
        assert summary["dirty_rows"] == 1
        # Thread backend prunes pre-delta store entries synchronously.
        assert summary["store_entries_pruned"] >= 0
        second = broker.execute(QUERY)
        status = broker.status()
    # Every answer is labeled with the catalog version it solved against.
    assert first.meta["catalog_version"] == v0
    assert second.meta["catalog_version"] == v0 + 1
    assert status["deltas_applied"] == 1
    assert status["catalog_version"] == v0 + 1


def test_apply_update_equivalent_to_rebuilt_catalog(config):
    def fresh():
        relation = Relation("items", {"price": [5.0, 8.0, 3.0, 6.0, 4.0]})
        model = StochasticModel(
            relation, {"Value": GaussianNoiseVG("price", 1.0)}
        )
        out = Catalog()
        out.register(relation, model)
        return out

    mutated = fresh()
    with QueryBroker(mutated, config=config, pool_size=1) as broker:
        broker.apply_update("items", {"updates": [[2, {"price": 7.5}]]})
        via_delta = broker.execute(QUERY)

    rebuilt = fresh()
    rebuilt.apply_delta("items", RelationDelta(updates={2: {"price": 7.5}}))
    with QueryBroker(rebuilt, config=config, pool_size=1) as broker:
        via_rebuild = broker.execute(QUERY)

    assert np.array_equal(
        via_delta.package.multiplicities, via_rebuild.package.multiplicities
    )
    assert via_delta.objective == via_rebuild.objective


def test_apply_update_invalidates_inflight_dedup(catalog, config):
    with QueryBroker(catalog, config=config, pool_size=1) as broker:
        gate = _gate_broker(broker)
        before = broker.submit(QUERY)
        broker.apply_update("items", {"updates": [[1, {"price": 1.0}]]})
        # A post-delta submission must not attach to the pre-delta
        # in-flight future: it would return a stale answer.
        after = broker.submit(QUERY)
        assert after is not before
        gate.set()
        assert before.result(timeout=120) is not None
        assert after.result(timeout=120) is not None
    assert broker.status()["deduplicated"] == 0


def test_apply_update_rejects_unknown_table_and_closed_broker(
    catalog, config
):
    broker = QueryBroker(catalog, config=config, pool_size=1)
    with pytest.raises(SPQError, match="unknown table"):
        broker.apply_update("ghost", {"deletes": [0]})
    broker.close()
    with pytest.raises(SPQError, match="closed"):
        broker.apply_update("items", {"deletes": [0]})
