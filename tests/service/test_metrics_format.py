"""Strict Prometheus text-format validation of ``GET /metrics``.

Every series must belong to a family declared with ``# HELP`` and
``# TYPE``; counters must end in ``_total``; histogram families must be
internally consistent (cumulative buckets through ``+Inf`` equal to
``_count``); and no sample may repeat.  Validated on both backends so
the farm-only families are covered too.
"""

from __future__ import annotations

import json
import re
import urllib.request
from contextlib import contextmanager

import pytest

from repro import Catalog, Relation, SPQConfig
from repro.mcdb import GaussianNoiseVG, StochasticModel
from repro.service import QueryBroker, SPQService

QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 6 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
HELP_RE = re.compile(rf"^# HELP ({_NAME}) (.+)$")
TYPE_RE = re.compile(rf"^# TYPE ({_NAME}) (counter|gauge|histogram)$")
SAMPLE_RE = re.compile(
    rf"^({_NAME})(\{{[^}}]*\}})? (NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)$"
)
#: Histogram sample suffixes that roll up to the family name.
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


@contextmanager
def _metrics_text(backend: str):
    relation = Relation("items", {"price": [5.0, 8.0, 3.0, 6.0, 4.0]})
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    catalog = Catalog()
    catalog.register(relation, model)
    config = SPQConfig(
        n_validation_scenarios=500,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        epsilon=0.8,
        seed=11,
        service_backend=backend,
    )
    broker = QueryBroker(catalog, config=config, pool_size=2)
    svc = SPQService(broker, port=0, own_broker=True).start_background()
    try:
        host, port = svc.address
        request = urllib.request.Request(
            f"http://{host}:{port}/query",
            data=json.dumps({"query": QUERY}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            assert response.status == 200
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=60
        ) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            yield response.read().decode()
    finally:
        svc.shutdown()


def _family_of(sample_name: str, histogram_families: set) -> str:
    for suffix in HIST_SUFFIXES:
        base = sample_name[: -len(suffix)]
        if sample_name.endswith(suffix) and base in histogram_families:
            return base
    return sample_name


def _parse(text: str):
    """Parse exposition text into (helps, types, samples), validating
    line syntax and declaration-before-samples ordering."""
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    samples: list[tuple[str, str, str]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP"):
            match = HELP_RE.match(line)
            assert match, f"malformed HELP line: {line!r}"
            name = match.group(1)
            assert name not in helps, f"duplicate HELP for {name}"
            helps[name] = match.group(2)
        elif line.startswith("# TYPE"):
            match = TYPE_RE.match(line)
            assert match, f"malformed TYPE line: {line!r}"
            name = match.group(1)
            assert name not in types, f"duplicate TYPE for {name}"
            assert name in helps, f"TYPE before HELP for {name}"
            types[name] = match.group(2)
        elif line.startswith("#"):
            raise AssertionError(f"unexpected comment line: {line!r}")
        else:
            match = SAMPLE_RE.match(line)
            assert match, f"malformed sample line: {line!r}"
            samples.append((match.group(1), match.group(2) or "", match.group(3)))
    return helps, types, samples


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_metrics_exposition_is_strictly_valid(backend):
    with _metrics_text(backend) as text:
        helps, types, samples = _parse(text)

    assert helps.keys() == types.keys()
    histogram_families = {n for n, t in types.items() if t == "histogram"}

    seen = set()
    sampled_families = set()
    for name, labels, _ in samples:
        family = _family_of(name, histogram_families)
        assert family in types, f"sample {name} has no HELP/TYPE declaration"
        sampled_families.add(family)
        key = (name, labels)
        assert key not in seen, f"duplicate sample {name}{labels}"
        seen.add(key)
        kind = types[family]
        if kind == "counter":
            assert name == family and family.endswith("_total"), (
                f"counter {name} must end in _total"
            )
        elif kind == "histogram":
            assert name != family, (
                f"histogram family {family} sampled without a suffix"
            )
        else:
            assert name == family

    # Every declared family has at least one sample, and vice versa.
    assert sampled_families == set(types), (
        set(types) - sampled_families, sampled_families - set(types)
    )

    # The families this PR is about are present with the right types.
    assert types["repro_stage_seconds"] == "histogram"
    assert types["repro_broker_completed_total"] == "counter"
    assert types["repro_scale_partitions_total"] == "counter"
    assert types["repro_scale_sketch_seconds_total"] == "counter"
    assert types["repro_scale_refine_seconds_total"] == "counter"
    assert types["repro_store_bytes_resident"] == "gauge"
    # Resource accounting and scenario-byte families.
    assert types["repro_resource_queries_total"] == "counter"
    assert types["repro_resource_cpu_seconds_total"] == "counter"
    assert types["repro_resource_lp_solves_total"] == "counter"
    assert types["repro_store_bytes_realized_total"] == "counter"
    assert types["repro_store_bytes_reused_total"] == "counter"
    assert types["repro_scale_chunk_hits_total"] == "counter"
    assert types["repro_scale_chunk_misses_total"] == "counter"

    # The standard build-info gauge: constant 1 with identity labels.
    assert types["repro_build_info"] == "gauge"
    build_samples = [s for s in samples if s[0] == "repro_build_info"]
    assert len(build_samples) == 1
    _, labels, value = build_samples[0]
    assert float(value) == 1.0
    assert 'version="' in labels and 'python="' in labels, labels

    # A completed query must have been accounted: the resource counters
    # are live on both backends (farm-aggregated on "process").
    by_name = {s[0]: s[2] for s in samples}
    assert float(by_name["repro_resource_queries_total"]) >= 1
    assert float(by_name["repro_resource_cpu_seconds_total"]) > 0.0


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_histograms_are_cumulative_and_consistent(backend):
    with _metrics_text(backend) as text:
        _, types, samples = _parse(text)
    histogram_families = {n for n, t in types.items() if t == "histogram"}
    assert histogram_families

    buckets: dict[tuple, list] = {}
    sums: dict[tuple, float] = {}
    counts: dict[tuple, int] = {}
    for name, labels, value in samples:
        family = _family_of(name, histogram_families)
        if family not in histogram_families:
            continue
        series = re.sub(r'le="[^"]*",?', "", labels).strip("{,}")
        key = (family, series)
        if name.endswith("_bucket"):
            le = re.search(r'le="([^"]*)"', labels).group(1)
            buckets.setdefault(key, []).append((le, int(value)))
        elif name.endswith("_sum"):
            sums[key] = float(value)
        elif name.endswith("_count"):
            counts[key] = int(value)

    assert buckets and buckets.keys() == sums.keys() == counts.keys()
    for key, series_buckets in buckets.items():
        les = [le for le, _ in series_buckets]
        assert les[-1] == "+Inf", f"{key} buckets must end at +Inf"
        bounds = [float(le) for le in les[:-1]]
        assert bounds == sorted(bounds), f"{key} bounds not increasing"
        values = [count for _, count in series_buckets]
        assert values == sorted(values), f"{key} buckets not cumulative"
        assert values[-1] == counts[key], f"{key} +Inf bucket != _count"
        assert sums[key] >= 0.0
