"""The correlated-portfolio workload served end-to-end over HTTP.

Acceptance slice for the VG registry subsystem: a registry-built
correlated model (sector Gaussian copula) flows through catalog →
broker → ScenarioStore → HTTP untouched, repeated queries are store
hits, and the copula's parameters are part of the store identity (two
sessions over different rho never share realizations).
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import Catalog, SPQConfig
from repro.service import QueryBroker, SPQService
from repro.workloads import get_query

SCALE = 30


def _serve(queries=("Q2",), seed=5):
    catalog = Catalog()
    for query in queries:
        spec = get_query("portfolio_correlated", query)
        relation, model = spec.build_dataset(SCALE, seed=seed)
        catalog.register(relation, model)
    config = SPQConfig(
        n_validation_scenarios=600,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        n_expectation_scenarios=200,
        n_probe_scenarios=8,
        epsilon=0.8,
        seed=11,
    )
    broker = QueryBroker(catalog, config=config, pool_size=2)
    return SPQService(broker, port=0, own_broker=True).start_background()


def _post(service, payload: dict):
    host, port = service.address
    request = urllib.request.Request(
        f"http://{host}:{port}/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def test_correlated_workload_served_with_store_reuse():
    spec = get_query("portfolio_correlated", "Q2")
    service = _serve()
    try:
        status, first = _post(service, {"query": spec.spaql})
        assert status == 200
        assert first["feasible"] is True
        assert first["package"]["total_count"] >= 1
        generations_after_first = first["store"]["generations"]
        assert generations_after_first > 0

        status, second = _post(service, {"query": spec.spaql})
        assert status == 200
        assert second["package"] == first["package"]
        # The repeat is pure store reuse: no new realizations.
        assert second["store"]["generations"] == generations_after_first
        assert second["store"]["hits"] > first["store"]["hits"]
    finally:
        service.shutdown()


def test_copula_params_partition_the_store():
    """Q1 (rho=0) and Q3 (rho=0.9) share the relation name and query
    shape; their store entries must still be disjoint."""
    q1 = get_query("portfolio_correlated", "Q1")
    q3 = get_query("portfolio_correlated", "Q3")
    # Same relation content except the model: register under two names.
    catalog = Catalog()
    r1, m1 = q1.build_dataset(SCALE, seed=5)
    r3, m3 = q3.build_dataset(SCALE, seed=5)
    catalog.register(r1, m1, name="invest_independent")
    catalog.register(r3, m3, name="invest_correlated")
    config = SPQConfig(
        n_validation_scenarios=400,
        n_initial_scenarios=16,
        scenario_increment=16,
        max_scenarios=48,
        n_expectation_scenarios=200,
        n_probe_scenarios=8,
        epsilon=0.8,
        seed=11,
    )
    broker = QueryBroker(catalog, config=config, pool_size=2)
    try:
        template = (
            "SELECT PACKAGE(*) FROM {table} SUCH THAT"
            " SUM(price) <= 1000 AND"
            " SUM(Gain) >= -10 WITH PROBABILITY >= 0.9"
            " MAXIMIZE EXPECTED SUM(Gain)"
        )
        first = broker.execute(template.format(table="invest_independent"))
        generations = broker.store.stats().generations
        assert generations > 0
        second = broker.execute(template.format(table="invest_correlated"))
        # Different copula parameters -> different store keys -> the
        # second query had to realize its own scenarios.
        assert broker.store.stats().generations > generations
    finally:
        broker.close()
