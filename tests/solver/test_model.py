"""MILP builder: variables, constraints, indicator (big-M) encoding."""

import itertools

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver.model import MILPBuilder


def test_variable_bookkeeping():
    builder = MILPBuilder()
    i = builder.add_variable("x", 0, 5)
    assert i == 0
    idx = builder.add_variables("y", 3, lb=0.0, ub=[1, 2, 3])
    assert idx.tolist() == [1, 2, 3]
    assert builder.n_variables == 4
    assert builder.variable_bounds(3) == (0.0, 3.0)


def test_invalid_variable_bounds():
    with pytest.raises(SolverError):
        MILPBuilder().add_variable("x", 2, 1)


def test_constraint_validation():
    builder = MILPBuilder()
    builder.add_variable("x", 0, 1)
    with pytest.raises(SolverError):
        builder.add_constraint([0], [1.0, 2.0])
    with pytest.raises(SolverError):
        builder.add_constraint([5], [1.0])
    with pytest.raises(SolverError):
        builder.add_constraint([0], [1.0], lb=2.0, ub=1.0)


def test_row_value_bounds():
    builder = MILPBuilder()
    builder.add_variable("x", 0, 3)
    builder.add_variable("y", -1, 2)
    lo, hi = builder.row_value_bounds([0, 1], [2.0, -1.0])
    assert (lo, hi) == (-2.0, 7.0)


def test_objective_sense_and_value():
    builder = MILPBuilder()
    builder.add_variable("x", 0, 4)
    builder.set_objective([0], [3.0], "maximize")
    c, *_ = builder.to_arrays()
    assert c[0] == -3.0  # negated internally for minimization form
    assert builder.objective_value(np.array([2.0])) == 6.0


def test_unknown_sense_rejected():
    builder = MILPBuilder()
    builder.add_variable("x")
    with pytest.raises(SolverError):
        builder.set_objective([0], [1.0], "upwards")


@pytest.mark.parametrize("op", [">=", "<="])
def test_indicator_implication_brute_force(op):
    """Exhaustive check of the big-M encoding: over the whole variable
    box, y = 1 must imply the inner constraint, and any x satisfying the
    inner constraint must admit y = 1 (the encoding is not over-tight)."""
    rhs = 4.0
    coefficients = np.array([2.0, -1.0])
    builder = MILPBuilder()
    builder.add_variable("x0", 0, 3)
    builder.add_variable("x1", 0, 3)
    y = builder.add_variable("y", 0, 1)
    builder.add_indicator(y, [0, 1], coefficients, op, rhs)
    _, matrix, row_lb, row_ub, *_ = builder.to_arrays()
    dense = matrix.toarray()

    def rows_ok(point):
        values = dense @ point
        return np.all(values >= row_lb - 1e-9) and np.all(values <= row_ub + 1e-9)

    for x0, x1 in itertools.product(range(4), repeat=2):
        inner = 2.0 * x0 - x1
        holds = inner >= rhs if op == ">=" else inner <= rhs
        assert rows_ok(np.array([x0, x1, 1.0])) == holds
        # y = 0 never blocks any x.
        assert rows_ok(np.array([x0, x1, 0.0]))


def test_indicator_vacuous_case_emits_no_row():
    builder = MILPBuilder()
    builder.add_variable("x", 2, 3)
    y = builder.add_variable("y", 0, 1)
    builder.add_indicator(y, [0], [1.0], ">=", 1.0)  # always true on the box
    assert builder.n_constraints == 0


def test_indicator_unsatisfiable_pins_y_to_zero():
    builder = MILPBuilder()
    builder.add_variable("x", 0, 3)
    y = builder.add_variable("y", 0, 1)
    builder.add_indicator(y, [0], [1.0], ">=", 100.0)  # impossible
    assert builder.n_constraints == 1
    assert not builder.check_feasible(np.array([0.0, 1.0]))
    assert builder.check_feasible(np.array([0.0, 0.0]))


def test_indicator_requires_binary_variable():
    builder = MILPBuilder()
    builder.add_variable("x", 0, 3)
    z = builder.add_variable("z", 0, 2)
    with pytest.raises(SolverError, match="binary"):
        builder.add_indicator(z, [0], [1.0], ">=", 1.0)


def test_indicator_requires_finite_bounds():
    builder = MILPBuilder()
    builder.add_variable("x", 0, np.inf)
    y = builder.add_variable("y", 0, 1)
    with pytest.raises(SolverError, match="finite"):
        builder.add_indicator(y, [0], [1.0], "<=", 1.0)


def test_check_feasible_integrality():
    builder = MILPBuilder()
    builder.add_variable("x", 0, 5, integer=True)
    builder.add_variable("f", 0, 5, integer=False)
    assert builder.check_feasible(np.array([2.0, 2.5]))
    assert not builder.check_feasible(np.array([2.5, 2.5]))
