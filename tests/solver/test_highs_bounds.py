"""HiGHS backend: best-bound surfacing on limit/error outcomes.

Regression suite for the anytime-gap bug where a solve stopped by its
limit with *no* incumbent and *no* warm-start hint returned an empty
``meta`` — ``repro.core.anytime`` then had no ``best_bound`` to derive
an optimality gap from.  ``scipy.optimize.milp`` is stubbed so every
status path is reachable deterministically.
"""

import numpy as np
import pytest

import repro.solver.highs as highs_module
from repro.solver.highs import solve_with_highs
from repro.solver.result import STATUS_ERROR, STATUS_FEASIBLE, STATUS_TIME_LIMIT
from repro.solver.model import MILPBuilder


class FakeRes:
    def __init__(self, status, x=None, mip_dual_bound=None, mip_gap=None):
        self.status = status
        self.x = x
        self.mip_dual_bound = mip_dual_bound
        self.mip_gap = mip_gap
        self.message = "stubbed outcome"


def _builder(sense="minimize"):
    builder = MILPBuilder()
    idx = builder.add_variables("x", 2, lb=0.0, ub=3.0)
    builder.add_constraint(idx, [1.0, 1.0], ub=4.0)
    builder.set_objective(idx, [2.0, 5.0], sense)
    return builder


def _stub(monkeypatch, res):
    monkeypatch.setattr(highs_module, "milp", lambda *a, **k: res)


def test_limit_no_incumbent_no_hint_surfaces_dual_bound(monkeypatch):
    _stub(monkeypatch, FakeRes(highs_module._SCIPY_LIMIT, mip_dual_bound=7.5))
    result = solve_with_highs(_builder())
    assert result.status == STATUS_TIME_LIMIT
    assert result.x is None
    assert result.meta["best_bound"] == pytest.approx(7.5)
    assert result.meta["stopped"] == "limit"


def test_limit_bound_sign_flips_for_maximization(monkeypatch):
    # HiGHS minimizes the negated objective for maximize problems, so
    # its dual bound must be negated back into the caller's sense.
    _stub(monkeypatch, FakeRes(highs_module._SCIPY_LIMIT, mip_dual_bound=-22.0))
    result = solve_with_highs(_builder("maximize"))
    assert result.status == STATUS_TIME_LIMIT
    assert result.meta["best_bound"] == pytest.approx(22.0)


def test_error_status_without_hint_surfaces_dual_bound(monkeypatch):
    _stub(monkeypatch, FakeRes(99, mip_dual_bound=3.0))
    result = solve_with_highs(_builder())
    assert result.status == STATUS_ERROR
    assert result.meta["best_bound"] == pytest.approx(3.0)


def test_hint_fallback_carries_dual_bound(monkeypatch):
    _stub(monkeypatch, FakeRes(highs_module._SCIPY_LIMIT, mip_dual_bound=2.0))
    builder = _builder()
    builder.set_warm_start(np.array([1.0, 0.0]))
    result = solve_with_highs(builder)
    assert result.status == STATUS_FEASIBLE
    assert result.objective == pytest.approx(2.0)
    assert result.meta["best_bound"] == pytest.approx(2.0)
    assert result.meta["stopped"] == "limit"


def test_nonfinite_dual_bound_is_omitted(monkeypatch):
    _stub(
        monkeypatch,
        FakeRes(highs_module._SCIPY_LIMIT, mip_dual_bound=-np.inf),
    )
    result = solve_with_highs(_builder())
    assert result.status == STATUS_TIME_LIMIT
    assert "best_bound" not in result.meta
