"""Property suite for anytime branch and bound (docs/qos.md contract).

A deterministic fake clock ticks once per LP relaxation, so a budget of
``B`` fake seconds means "at most ~B LP solves" — the search trajectory
is identical across runs and budgets (best-first order is
deterministic), which makes the anytime properties exactly testable:

* **monotonicity** — a larger budget processes a superset of nodes, so
  the incumbent objective never gets worse as the budget grows;
* **gap validity** — a truncated incumbent is within the reported
  relative gap of the returned best bound, and the bound really bounds
  the incumbent from the optimization side;
* **ample-budget exactness** — with budget beyond the full search, the
  result is OPTIMAL with gap 0 and bit-identical to the unbudgeted solve.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.solver.branch_bound as bb
from repro.solver import (
    STATUS_FEASIBLE,
    STATUS_OPTIMAL,
    STATUS_TIME_LIMIT,
    solve_with_highs,
)
from repro.solver.model import MILPBuilder


def knapsack(values, weights, capacity, ub=3) -> MILPBuilder:
    builder = MILPBuilder()
    idx = builder.add_variables("x", len(values), lb=0.0, ub=ub)
    builder.add_constraint(idx, np.asarray(weights, dtype=float), ub=capacity)
    builder.set_objective(idx, np.asarray(values, dtype=float), "maximize")
    return builder


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def solve_with_ticks(builder, budget: float | None):
    """Branch and bound under a fake clock: one tick per LP relaxation."""
    clock = FakeClock()
    original = bb._solve_relaxation

    def ticking(c, a_ub, b_ub, var_lb, var_ub, time_limit=None):
        clock.now += 1.0
        return original(c, a_ub, b_ub, var_lb, var_ub)

    bb._solve_relaxation = ticking
    try:
        return bb.solve_with_branch_bound(
            builder, time_limit=budget, clock=clock
        )
    finally:
        bb._solve_relaxation = original


values_st = st.lists(
    st.integers(min_value=1, max_value=30), min_size=3, max_size=7
)


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_incumbent_monotone_in_budget(data):
    values = data.draw(values_st)
    n = len(values)
    weights = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=10), min_size=n, max_size=n
        )
    )
    capacity = data.draw(st.integers(min_value=1, max_value=40))

    incumbents: list[float] = []
    for budget in (2.0, 4.0, 8.0, 16.0, 10_000.0):
        result = solve_with_ticks(
            knapsack(values, weights, float(capacity)), budget
        )
        assert result.status in (
            STATUS_OPTIMAL, STATUS_FEASIBLE, STATUS_TIME_LIMIT
        )
        if result.status == STATUS_TIME_LIMIT:
            assert result.x is None
            incumbents.append(-np.inf)
        else:
            assert result.x is not None
            incumbents.append(result.objective)
    # Maximization: more budget never yields a worse incumbent.
    for earlier, later in zip(incumbents, incumbents[1:]):
        assert later >= earlier - 1e-9
    # The ample budget always completes the search exactly.
    final = solve_with_ticks(knapsack(values, weights, float(capacity)), 10_000.0)
    assert final.status == STATUS_OPTIMAL
    assert final.gap == 0.0


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_gap_bounds_truncated_incumbent(data):
    values = data.draw(values_st)
    n = len(values)
    weights = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=10), min_size=n, max_size=n
        )
    )
    capacity = data.draw(st.integers(min_value=1, max_value=40))
    budget = data.draw(st.sampled_from([2.0, 3.0, 5.0, 9.0, 17.0]))

    builder = knapsack(values, weights, float(capacity))
    result = solve_with_ticks(builder, budget)
    exact = solve_with_highs(knapsack(values, weights, float(capacity)))

    if result.status == STATUS_OPTIMAL:
        assert result.gap == 0.0
        assert result.objective == pytest.approx(exact.objective)
        return
    if result.x is None:
        return  # no incumbent: nothing to bound
    assert result.status == STATUS_FEASIBLE
    assert builder.check_feasible(result.x)
    assert result.gap is not None and result.gap >= 0.0
    bound = result.meta["best_bound"]
    # Maximization: the best open bound is an upper bound on the optimum,
    # hence on the incumbent and on the exact objective.
    assert bound >= result.objective - 1e-6
    assert bound >= exact.objective - 1e-6
    # The reported gap IS the relative incumbent-to-bound distance.
    expected = abs(result.objective - bound) / max(1.0, abs(result.objective))
    assert result.gap == pytest.approx(expected, abs=1e-9)
    # ... so the incumbent is certified within gap of the true optimum.
    assert (
        exact.objective - result.objective
        <= result.gap * max(1.0, abs(result.objective)) + 1e-6
    )


@settings(deadline=None, max_examples=15)
@given(data=st.data())
def test_ample_budget_bit_identical_to_unbudgeted(data):
    values = data.draw(values_st)
    n = len(values)
    weights = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=10), min_size=n, max_size=n
        )
    )
    capacity = data.draw(st.integers(min_value=1, max_value=40))

    unbudgeted = solve_with_ticks(
        knapsack(values, weights, float(capacity)), None
    )
    generous = solve_with_ticks(
        knapsack(values, weights, float(capacity)), 1_000_000.0
    )
    assert unbudgeted.status == STATUS_OPTIMAL
    assert generous.status == STATUS_OPTIMAL
    assert generous.objective == pytest.approx(unbudgeted.objective)
    assert np.array_equal(generous.x, unbudgeted.x)
    assert generous.gap == 0.0 and unbudgeted.gap == 0.0
