"""Incremental MILPBuilder API: checkpoint/rollback, CSR cache, clones,
warm starts.

The invariant under test throughout: a model assembled incrementally
(retain base → rollback/clone → append rows) materializes to exactly the
same arrays as the same model built from scratch.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver import (
    STATUS_FEASIBLE,
    STATUS_OPTIMAL,
    solve_with_branch_bound,
    solve_with_highs,
)
from repro.solver.model import MILPBuilder


def base_model():
    """Small knapsack base: 4 bounded integers, one capacity row."""
    builder = MILPBuilder()
    idx = builder.add_variables("x", 4, lb=0.0, ub=3.0)
    builder.add_constraint(idx, [2.0, 1.0, 3.0, 1.5], ub=8.0)
    builder.set_objective(idx, [3.0, 1.0, 4.0, 2.0], "maximize")
    return builder, idx


def append_indicators(builder, idx):
    """The per-iteration block: two indicator rows plus a cardinality."""
    y = builder.add_variables("y", 2, lb=0.0, ub=1.0)
    builder.add_indicator(int(y[0]), idx, [1.0, 1.0, 1.0, 1.0], ">=", 2.0)
    builder.add_indicator(int(y[1]), idx, [1.0, -1.0, 1.0, -1.0], "<=", 1.0)
    builder.add_constraint(y, [1.0, 1.0], lb=1.0)
    return y


def assert_same_arrays(a, b):
    for got, want in zip(a, b):
        if hasattr(got, "toarray"):
            np.testing.assert_array_equal(got.toarray(), want.toarray())
        else:
            np.testing.assert_array_equal(got, want)


def test_rollback_then_append_equals_scratch():
    builder, idx = base_model()
    cp = builder.checkpoint()
    builder.to_arrays()  # warm the CSR cache before mutating further
    append_indicators(builder, idx)
    builder.to_arrays()
    builder.rollback(cp)
    append_indicators(builder, idx)
    incremental = builder.to_arrays()

    scratch, scratch_idx = base_model()
    append_indicators(scratch, scratch_idx)
    assert_same_arrays(incremental, scratch.to_arrays())


def test_rollback_restores_objective_and_counts():
    builder, idx = base_model()
    cp = builder.checkpoint()
    y = builder.add_variables("y", 3, lb=0.0, ub=1.0)
    builder.add_constraint(y, np.ones(3), lb=1.0)
    builder.set_objective(y, np.ones(3), "minimize")
    builder.rollback(cp)
    assert builder.n_variables == 4
    assert builder.n_constraints == 1
    assert builder.sense == "maximize"
    x = np.zeros(4)
    assert builder.objective_value(x) == 0.0
    # Rolling back to a checkpoint from a larger model is refused.
    bigger_cp = cp
    builder.rollback(bigger_cp)  # same size: fine
    small = MILPBuilder()
    small.add_variable("x")
    with pytest.raises(SolverError):
        small.rollback(builder.checkpoint())


def test_repeated_rollback_append_cycles_stay_consistent():
    builder, idx = base_model()
    cp = builder.checkpoint()
    scratch, scratch_idx = base_model()
    append_indicators(scratch, scratch_idx)
    want = scratch.to_arrays()
    for _ in range(4):
        append_indicators(builder, idx)
        assert_same_arrays(builder.to_arrays(), want)
        builder.rollback(cp)


def test_clone_is_independent_and_equal():
    builder, idx = base_model()
    builder.to_arrays()
    clone = builder.clone()
    append_indicators(clone, idx)
    # The original is untouched by the clone's appends.
    assert builder.n_variables == 4
    assert builder.n_constraints == 1
    scratch, scratch_idx = base_model()
    append_indicators(scratch, scratch_idx)
    assert_same_arrays(clone.to_arrays(), scratch.to_arrays())
    # Two clones of one template do not interfere.
    a, b = builder.clone(), builder.clone()
    append_indicators(a, idx)
    assert b.n_constraints == 1
    assert_same_arrays(b.to_arrays(), builder.to_arrays())


def test_csr_cache_survives_variable_growth():
    builder, idx = base_model()
    first = builder.to_arrays()
    assert first[1].shape == (1, 4)
    builder.add_variables("y", 2, lb=0.0, ub=1.0)
    second = builder.to_arrays()
    # The cached row widened to the new variable count.
    assert second[1].shape == (1, 6)
    np.testing.assert_array_equal(second[1].toarray()[:, :4], first[1].toarray())


def test_rollback_invalidates_bounds_cache():
    """Regression: rollback-then-append can restore the old variable
    count, so the bounds-as-arrays cache must not be served by length."""
    builder = MILPBuilder()
    builder.add_variables("x", 3, lb=0.0, ub=1.0)
    cp = builder.checkpoint()
    first = builder.add_variables("y", 2, lb=0.0, ub=1.0)
    builder.row_value_bounds(first, [1.0, 1.0])  # populate the cache
    builder.rollback(cp)
    second = builder.add_variables("z", 2, lb=0.0, ub=10.0)
    assert builder.row_value_bounds(second, [1.0, 1.0]) == (0.0, 20.0)
    # Big-M rows derived after the rollback must see the fresh bounds.
    y = builder.add_variable("b", 0.0, 1.0)
    builder.add_indicator(y, second, [1.0, 1.0], ">=", 15.0)
    arrays = builder.to_arrays()
    assert arrays[1].shape[0] == 1  # emitted, not vacuous/pinned


def test_warm_start_validation():
    builder, idx = base_model()
    with pytest.raises(SolverError):
        builder.set_warm_start([1.0, 2.0])  # wrong length
    builder.set_warm_start([1.0, 1.0, 0.0, 0.0])
    assert builder.validated_warm_start() is not None
    builder.set_warm_start([3.0, 3.0, 3.0, 3.0])  # violates capacity
    assert builder.validated_warm_start() is None
    builder.set_warm_start(None)
    assert builder.validated_warm_start() is None


def test_warm_start_cleared_by_rollback_and_not_cloned():
    builder, idx = base_model()
    cp = builder.checkpoint()
    builder.set_warm_start([1.0, 1.0, 0.0, 0.0])
    clone = builder.clone()
    assert clone.validated_warm_start() is None
    builder.rollback(cp)
    assert builder.validated_warm_start() is None


@pytest.mark.parametrize("solve", [solve_with_highs, solve_with_branch_bound])
def test_warm_started_solve_matches_cold(solve):
    cold, idx = base_model()
    cold_result = solve(cold)
    assert cold_result.status == STATUS_OPTIMAL

    warm, idx = base_model()
    warm.set_warm_start(cold_result.x)
    warm_result = solve(warm)
    assert warm_result.status in (STATUS_OPTIMAL, STATUS_FEASIBLE)
    assert warm_result.objective == pytest.approx(cold_result.objective)


def test_branch_bound_warm_start_prunes_nodes():
    builder, idx = base_model()
    cold = solve_with_branch_bound(builder)
    warm_builder, _ = base_model()
    warm_builder.set_warm_start(cold.x)
    warm = solve_with_branch_bound(warm_builder)
    assert warm.objective == pytest.approx(cold.objective)
    assert warm.n_nodes <= cold.n_nodes


def test_highs_returns_warm_incumbent_on_hopeless_time_limit():
    """With an (effectively) zero time limit HiGHS finds nothing; the
    feasible warm-start hint must be returned as the incumbent."""
    builder = MILPBuilder()
    idx = builder.add_variables("x", 60, lb=0.0, ub=1.0)
    rng = np.random.default_rng(7)
    weights = rng.uniform(1.0, 5.0, size=60)
    values = rng.uniform(1.0, 5.0, size=60)
    builder.add_constraint(idx, weights, ub=float(weights.sum() / 3))
    builder.set_objective(idx, values, "maximize")
    hint = np.zeros(60)
    hint[int(np.argmin(weights))] = 1.0
    builder.set_warm_start(hint)
    result = solve_with_highs(builder, time_limit=1e-9)
    if result.status == STATUS_OPTIMAL:  # pragma: no cover - machine-speed dependent
        pytest.skip("solver finished within the epsilon time limit")
    assert result.status == STATUS_FEASIBLE
    assert result.x is not None
    assert result.objective >= builder.objective_value(hint) - 1e-9
