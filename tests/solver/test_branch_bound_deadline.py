"""Regression tests: the deadline must bind *inside* a node, not only
between nodes.

The historical bug: the solve loop checked the clock only when popping
the next node, so a single slow LP relaxation could blow arbitrarily far
past the budget. The fix clamps every per-node LP call to the remaining
budget (floored at ``_MIN_LP_BUDGET``) so scipy itself stops the node.
These tests patch ``_solve_relaxation`` to observe the limits that the
solver actually requests and to simulate a node slower than the budget.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.solver.branch_bound as bb
from repro.solver import (
    STATUS_FEASIBLE,
    STATUS_OPTIMAL,
    STATUS_TIME_LIMIT,
    solve_with_branch_bound,
)
from repro.solver.model import MILPBuilder


def knapsack(values, weights, capacity, ub=3) -> MILPBuilder:
    builder = MILPBuilder()
    idx = builder.add_variables("x", len(values), lb=0.0, ub=ub)
    builder.add_constraint(idx, np.asarray(weights, dtype=float), ub=capacity)
    builder.set_objective(idx, np.asarray(values, dtype=float), "maximize")
    return builder


VALUES = [9.0, 7.0, 5.0, 4.0, 3.0, 2.0, 8.0]
WEIGHTS = [3.0, 2.0, 4.0, 1.0, 5.0, 2.0, 3.0]


def test_every_lp_call_is_clamped_to_remaining_budget(monkeypatch):
    """With a finite budget, each LP call carries a finite, non-increasing
    time limit — never the unclamped default."""
    seen: list[float] = []
    original = bb._solve_relaxation

    def spying(c, a_ub, b_ub, var_lb, var_ub, time_limit=None):
        assert time_limit is not None, "per-node LP ran without a budget"
        seen.append(float(time_limit))
        return original(c, a_ub, b_ub, var_lb, var_ub, time_limit=time_limit)

    monkeypatch.setattr(bb, "_solve_relaxation", spying)
    result = solve_with_branch_bound(
        knapsack(VALUES, WEIGHTS, 10.0), time_limit=30.0
    )
    assert result.status == STATUS_OPTIMAL
    assert seen, "no LP relaxations observed"
    assert all(np.isfinite(t) for t in seen)
    assert all(t <= 30.0 + 1e-9 for t in seen)
    # Budgets shrink as wall time elapses (within a small scheduling
    # tolerance) — the clamp tracks the *remaining* budget, not the total.
    assert all(b <= a + 1e-6 for a, b in zip(seen, seen[1:]))
    # The floor keeps scipy from receiving a zero/negative limit.
    assert all(t >= bb._MIN_LP_BUDGET - 1e-12 for t in seen)


def test_unbudgeted_solve_passes_no_lp_limit(monkeypatch):
    seen: list[object] = []
    original = bb._solve_relaxation

    def spying(c, a_ub, b_ub, var_lb, var_ub, time_limit=None):
        seen.append(time_limit)
        return original(c, a_ub, b_ub, var_lb, var_ub, time_limit=time_limit)

    monkeypatch.setattr(bb, "_solve_relaxation", spying)
    result = solve_with_branch_bound(knapsack(VALUES, WEIGHTS, 10.0))
    assert result.status == STATUS_OPTIMAL
    assert seen and all(t is None for t in seen)


def _slow_node_clock_and_patch(monkeypatch, slow_after: int, overrun: float):
    """Patch _solve_relaxation so that the ``slow_after``-th LP call burns
    ``overrun`` fake seconds and reports scipy's time-limit status."""
    state = {"now": 0.0, "calls": 0}
    original = bb._solve_relaxation

    def slow(c, a_ub, b_ub, var_lb, var_ub, time_limit=None):
        state["calls"] += 1
        if state["calls"] == slow_after:
            # The node is slower than its clamp: scipy gives up at the
            # limit and the wall clock shows the full clamped budget.
            state["now"] += (time_limit or 0.0) + overrun
            return "limit", None, np.inf
        state["now"] += 0.001
        return original(c, a_ub, b_ub, var_lb, var_ub)

    monkeypatch.setattr(bb, "_solve_relaxation", slow)
    return lambda: state["now"]


def test_slow_node_mid_search_returns_incumbent(monkeypatch):
    """A node that exhausts the whole remaining budget must not hang the
    search: the solver stops right after it and returns the incumbent
    found so far with a finite gap."""
    clock = _slow_node_clock_and_patch(monkeypatch, slow_after=4, overrun=0.0)
    result = solve_with_branch_bound(
        knapsack(VALUES, WEIGHTS, 10.0), time_limit=1.0, clock=clock
    )
    # Three fast LPs (root + two children) ran before the slow node, so
    # an integral incumbent may or may not exist yet — but either way the
    # solve must have stopped at the deadline, not continued searching.
    assert result.status in (STATUS_FEASIBLE, STATUS_TIME_LIMIT)
    assert result.meta.get("stopped") == "deadline" or result.x is None
    if result.x is not None:
        assert knapsack(VALUES, WEIGHTS, 10.0).check_feasible(result.x)
        assert result.gap is not None and result.gap >= 0.0
        assert np.isfinite(result.meta["best_bound"])


def test_slow_root_with_warm_start_falls_back_to_hint(monkeypatch):
    """If the root LP itself times out but a validated warm start exists,
    the solver reports the hint as a feasible incumbent instead of
    failing with no solution."""
    builder = knapsack(VALUES, WEIGHTS, 10.0)
    hint = np.zeros(len(VALUES))
    hint[3] = 1.0  # weight 1 <= 10: feasible
    builder.set_warm_start(hint)

    clock = _slow_node_clock_and_patch(monkeypatch, slow_after=1, overrun=0.0)
    result = solve_with_branch_bound(builder, time_limit=0.5, clock=clock)
    assert result.status == STATUS_FEASIBLE
    assert result.x is not None
    assert np.array_equal(result.x, hint)


def test_slow_root_without_hint_reports_time_limit(monkeypatch):
    clock = _slow_node_clock_and_patch(monkeypatch, slow_after=1, overrun=0.0)
    result = solve_with_branch_bound(
        knapsack(VALUES, WEIGHTS, 10.0), time_limit=0.5, clock=clock
    )
    assert result.status == STATUS_TIME_LIMIT
    assert result.x is None


def test_expired_budget_overrun_does_not_loop(monkeypatch):
    """Even when the slow node overruns *past* the deadline (scipy's
    limit enforcement is approximate), the outer loop notices on the next
    pop and stops — bounded by one node, not by the queue size."""
    calls = {"n": 0}
    original = bb._solve_relaxation
    state = {"now": 0.0}

    def slow_everything(c, a_ub, b_ub, var_lb, var_ub, time_limit=None):
        calls["n"] += 1
        state["now"] += 10.0  # every LP blows far past the 1s budget
        return original(c, a_ub, b_ub, var_lb, var_ub)

    monkeypatch.setattr(bb, "_solve_relaxation", slow_everything)
    result = solve_with_branch_bound(
        knapsack(VALUES, WEIGHTS, 10.0),
        time_limit=1.0,
        clock=lambda: state["now"],
    )
    # Root LP (1 call) + at most one node expansion (2 child LPs).
    assert calls["n"] <= 3
    assert result.status in (STATUS_FEASIBLE, STATUS_TIME_LIMIT)
    if result.status == STATUS_FEASIBLE:
        assert result.meta.get("stopped") == "deadline"
        assert pytest.approx(result.gap, abs=1e-9) == max(
            0.0,
            (result.meta["best_bound"] - result.objective)
            / max(1.0, abs(result.objective)),
        )
