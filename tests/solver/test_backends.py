"""Solver backends: HiGHS and the home-grown branch & bound.

The branch-and-bound is differential-tested against HiGHS on randomized
knapsack-style instances — they must agree on optimal objective values.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import (
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    solve_with_branch_bound,
    solve_with_highs,
)
from repro.solver.model import MILPBuilder


def knapsack(values, weights, capacity, ub=3):
    builder = MILPBuilder()
    n = len(values)
    idx = builder.add_variables("x", n, lb=0.0, ub=ub)
    builder.add_constraint(idx, np.asarray(weights, dtype=float), ub=capacity)
    builder.set_objective(idx, np.asarray(values, dtype=float), "maximize")
    return builder


@pytest.mark.parametrize("solve", [solve_with_highs, solve_with_branch_bound])
def test_simple_knapsack_optimal(solve):
    builder = knapsack([6.0, 10.0, 12.0], [1.0, 2.0, 3.0], 5.0, ub=1)
    result = solve(builder)
    assert result.status == STATUS_OPTIMAL
    assert result.objective == pytest.approx(22.0)
    assert builder.check_feasible(result.x)


@pytest.mark.parametrize("solve", [solve_with_highs, solve_with_branch_bound])
def test_infeasible_detected(solve):
    builder = MILPBuilder()
    i = builder.add_variable("x", 0, 5)
    builder.add_constraint([i], [1.0], lb=10.0)
    assert solve(builder).status == STATUS_INFEASIBLE


@pytest.mark.parametrize("solve", [solve_with_highs, solve_with_branch_bound])
def test_equality_constraints(solve):
    builder = MILPBuilder()
    idx = builder.add_variables("x", 2, lb=0.0, ub=10.0)
    builder.add_constraint(idx, [1.0, 1.0], lb=4.0, ub=4.0)
    builder.set_objective(idx, [1.0, 2.0], "minimize")
    result = solve(builder)
    assert result.status == STATUS_OPTIMAL
    assert result.objective == pytest.approx(4.0)  # all weight on x0


@pytest.mark.parametrize("solve", [solve_with_highs, solve_with_branch_bound])
def test_minimization_with_negative_coefficients(solve):
    builder = MILPBuilder()
    idx = builder.add_variables("x", 2, lb=0.0, ub=2.0)
    builder.set_objective(idx, [-1.0, -2.0], "minimize")
    result = solve(builder)
    assert result.objective == pytest.approx(-6.0)


def test_integrality_enforced_where_lp_is_fractional():
    # LP optimum is x = 2.5; the MILP must round down to 2.
    builder = MILPBuilder()
    i = builder.add_variable("x", 0, 10, integer=True)
    builder.add_constraint([i], [2.0], ub=5.0)
    builder.set_objective([i], [1.0], "maximize")
    for solve in (solve_with_highs, solve_with_branch_bound):
        result = solve(builder)
        assert result.x[i] == pytest.approx(2.0)


def test_indicator_constraint_through_solver():
    """y is forced to 0 when the implied constraint cannot hold."""
    builder = MILPBuilder()
    x = builder.add_variable("x", 0, 3)
    y = builder.add_variable("y", 0, 1)
    builder.add_indicator(y, [x], [1.0], ">=", 2.0)
    builder.add_constraint([x], [1.0], ub=1.0)  # x <= 1 < 2
    builder.set_objective([y], [1.0], "maximize")
    result = solve_with_highs(builder)
    assert result.objective == pytest.approx(0.0)


def test_builder_solve_dispatch():
    builder = knapsack([1.0], [1.0], 1.0)
    assert builder.solve(backend="highs").status == STATUS_OPTIMAL
    assert builder.solve(backend="branch-bound").status == STATUS_OPTIMAL
    with pytest.raises(Exception, match="unknown solver backend"):
        builder.solve(backend="cplex")


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 6),
    data=st.data(),
)
def test_branch_bound_agrees_with_highs(n, data):
    """Differential test on random bounded knapsacks with a side
    constraint: both backends must find the same optimal value."""
    values = [data.draw(st.integers(-5, 10)) for _ in range(n)]
    weights = [data.draw(st.integers(1, 6)) for _ in range(n)]
    capacity = data.draw(st.integers(3, 15))
    builder_a = knapsack(values, weights, float(capacity), ub=2)
    builder_b = knapsack(values, weights, float(capacity), ub=2)
    result_highs = solve_with_highs(builder_a)
    result_bb = solve_with_branch_bound(builder_b)
    assert result_highs.status == STATUS_OPTIMAL
    assert result_bb.status == STATUS_OPTIMAL
    assert result_bb.objective == pytest.approx(result_highs.objective, abs=1e-6)
    assert builder_a.check_feasible(result_bb.x)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 6),
    data=st.data(),
)
def test_warm_started_backends_agree(n, data):
    """Warm-started differential test: seeding either backend with a
    feasible (possibly suboptimal) hint must not change the optimal
    objective value, and both backends must still agree."""
    values = [data.draw(st.integers(-5, 10)) for _ in range(n)]
    weights = [data.draw(st.integers(1, 6)) for _ in range(n)]
    capacity = data.draw(st.integers(3, 15))
    cold = knapsack(values, weights, float(capacity), ub=2)
    reference = solve_with_highs(cold)
    assert reference.status == STATUS_OPTIMAL

    # Hints of varying quality: empty package, one greedy item, optimum.
    hints = [np.zeros(n)]
    cheapest = int(np.argmin(weights))
    if weights[cheapest] <= capacity:
        one_item = np.zeros(n)
        one_item[cheapest] = 1.0
        hints.append(one_item)
    hints.append(reference.x)
    for hint in hints:
        for solve in (solve_with_highs, solve_with_branch_bound):
            builder = knapsack(values, weights, float(capacity), ub=2)
            builder.set_warm_start(hint)
            result = solve(builder)
            assert result.status == STATUS_OPTIMAL
            assert result.objective == pytest.approx(
                reference.objective, abs=1e-6
            )
            assert builder.check_feasible(result.x)
