"""Cross-module integration tests: the paper's headline claims, asserted.

These run both algorithms end to end on scaled-down workload queries and
check the *shapes* the paper reports (Section 6.2), not absolute times:

* SummarySearch reaches validation feasibility on hard queries where
  Naïve (with the same scenario budget) does not;
* SummarySearch needs a much smaller M to become feasible;
* the one infeasible query is declared infeasible by both methods;
* results are deterministic given the configuration.
"""

import numpy as np
import pytest

from repro import SPQConfig
from repro.core.engine import SPQEngine
from repro.core.validator import Validator
from repro.core.context import EvaluationContext
from repro.db.catalog import Catalog
from repro.workloads import get_query


def _engine(workload, query, scale, config):
    spec = get_query(workload, query)
    relation, model = spec.build_dataset(scale, seed=21)
    catalog = Catalog()
    catalog.register(relation, model)
    return spec, SPQEngine(catalog=catalog, config=config)


@pytest.fixture(scope="module")
def config():
    return SPQConfig(
        n_validation_scenarios=2_000,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        n_expectation_scenarios=400,
        epsilon=0.6,
        solver_time_limit=15.0,
        time_limit=120.0,
        seed=21,
    )


def test_galaxy_hard_pareto_query_headline(config):
    """Galaxy Q5 (Pareto, counteracted): SummarySearch is feasible and
    strictly dominates Naïve — either Naïve stays infeasible within the
    same scenario budget, or it needs (much) more time — the paper's
    headline result at reduced scale."""
    spec, engine = _engine("galaxy", "Q5", 600, config)
    summary = engine.execute(spec.spaql, method="summarysearch")
    assert summary.feasible
    naive = engine.execute(spec.spaql, method="naive", solver_time_limit=8.0)
    assert (not naive.feasible) or (
        summary.stats.total_time < naive.stats.total_time
    )


def test_summarysearch_feasible_at_smaller_m(config):
    """Portfolio Q2 (p = 0.95): SummarySearch's final M is no larger than
    Naïve's, and typically much smaller (Section 6.2.2)."""
    spec, engine = _engine("portfolio", "Q2", 80, config)
    summary = engine.execute(spec.spaql, method="summarysearch")
    naive = engine.execute(spec.spaql, method="naive")
    assert summary.feasible
    if naive.feasible:
        assert (
            summary.stats.final_n_scenarios <= naive.stats.final_n_scenarios
        )


def test_tpch_q8_declared_infeasible_by_both(config):
    spec, engine = _engine("tpch", "Q8", 500, config)
    for method in ("summarysearch", "naive"):
        result = engine.execute(spec.spaql, method=method)
        assert not result.feasible
        assert result.stats.final_n_scenarios == config.max_scenarios


def test_feasible_result_is_independently_verifiable(config):
    """A feasible SummarySearch package re-validates with an independent
    Validator instance (same stream, fresh state)."""
    spec, engine = _engine("galaxy", "Q1", 400, config)
    result = engine.execute(spec.spaql, method="summarysearch")
    assert result.feasible
    problem = engine.compile(spec.spaql)
    ctx = EvaluationContext(problem, config)
    report = Validator(ctx).validate(result.package.multiplicities)
    assert report.feasible
    assert report.items[0].satisfied_fraction == pytest.approx(
        result.validation.items[0].satisfied_fraction
    )


def test_count_constraints_hold_exactly(config):
    spec, engine = _engine("galaxy", "Q3", 400, config)
    result = engine.execute(spec.spaql, method="summarysearch")
    assert result.feasible
    assert 5 <= result.package.total_count <= 10


def test_budget_constraint_holds_exactly(config):
    spec, engine = _engine("portfolio", "Q1", 80, config)
    result = engine.execute(spec.spaql, method="summarysearch")
    assert result.feasible
    assert result.package.deterministic_total("price") <= 1000 + 1e-6


def test_full_pipeline_deterministic(config):
    spec, engine = _engine("tpch", "Q1", 400, config)
    a = engine.execute(spec.spaql, method="summarysearch")
    b = engine.execute(spec.spaql, method="summarysearch")
    assert np.array_equal(a.package.multiplicities, b.package.multiplicities)
    assert a.objective == b.objective


def test_probability_objective_claim_vs_validation(config):
    """TPC-H: the CSA's conservative claimed probability never exceeds
    the validated probability by more than Monte Carlo noise."""
    spec, engine = _engine("tpch", "Q3", 500, config)
    result = engine.execute(spec.spaql, method="summarysearch")
    assert result.feasible
    claimed = result.validation.claimed_objective
    if claimed is not None:
        assert claimed <= result.objective + 0.1


def test_summary_strategies_end_to_end(config):
    """All three §5.5 strategies solve the same query feasibly."""
    spec, engine = _engine("galaxy", "Q1", 300, config)
    objectives = {}
    for strategy in ("in-memory", "tuple-wise", "scenario-wise"):
        result = engine.execute(
            spec.spaql, method="summarysearch", summary_strategy=strategy
        )
        assert result.feasible, strategy
        objectives[strategy] = result.objective
    # Identical streams for in-memory and scenario-wise: same answer.
    assert objectives["in-memory"] == pytest.approx(objectives["scenario-wise"])
