"""Golden regression tests: pinned optimal packages per workload.

Each case fixes the dataset seed, evaluation seed, and budget, and pins
the exact answer — tuple ids with multiplicities, plus the objective —
so a refactor anywhere in the pipeline (parser, compiler, scenario
generation, store, solver) cannot *silently* change what a query
returns.  Evaluation is deterministic end to end (counter-based RNG
keys, deterministic solves), so these equalities are exact on any one
platform; the objective uses a tight relative tolerance only to absorb
float-summation differences across BLAS builds.

If a deliberate behavior change moves an answer, re-pin the values in
the same commit and say why in its message.
"""

from __future__ import annotations

import pytest

from repro import Catalog, SPQConfig, SPQEngine
from repro.workloads import get_query

CONFIG = dict(
    n_validation_scenarios=1_000,
    n_initial_scenarios=24,
    scenario_increment=24,
    max_scenarios=72,
    n_expectation_scenarios=800,
    epsilon=0.6,
    seed=1234,
)
DATA_SEED = 7

#: (workload, query, scale) -> (objective, {tuple_key: multiplicity}).
GOLDEN = {
    ("portfolio", "Q1", 60): (
        4.335948665450461,
        {5: 5, 65: 1},
    ),
    ("galaxy", "Q1", 300): (
        50.3305,
        {11: 1, 29: 1, 39: 1, 137: 1, 240: 1},
    ),
    ("portfolio_correlated", "Q2", 60): (
        2.607069116104891,
        {39: 10, 51: 7},
    ),
}


@pytest.mark.parametrize(
    "workload,query,scale", sorted(GOLDEN), ids=lambda v: str(v)
)
def test_golden_package(workload, query, scale):
    objective, multiplicities = GOLDEN[(workload, query, scale)]
    spec = get_query(workload, query)
    relation, model = spec.build_dataset(scale, seed=DATA_SEED)
    catalog = Catalog()
    catalog.register(relation, model)
    engine = SPQEngine(catalog=catalog, config=SPQConfig(**CONFIG))
    result = engine.execute(spec.spaql)
    assert result.feasible
    got = {int(k): int(v) for k, v in result.package.key_multiplicities().items()}
    assert got == multiplicities
    assert result.objective == pytest.approx(objective, rel=1e-9)


@pytest.mark.parametrize(
    "workload,query,scale",
    [("portfolio", "Q1", 60), ("galaxy", "Q1", 300)],
    ids=lambda v: str(v),
)
def test_golden_package_survives_ample_deadline(workload, query, scale):
    """The anytime path with a far-away deadline is the exact path.

    Pinning this alongside the deadline-free goldens guarantees the QoS
    plumbing (Deadline threading, anytime envelope, truncation checks)
    is a pure pass-through when the budget never binds: same tuple ids,
    same multiplicities, same objective, gap 0.
    """
    objective, multiplicities = GOLDEN[(workload, query, scale)]
    spec = get_query(workload, query)
    relation, model = spec.build_dataset(scale, seed=DATA_SEED)
    catalog = Catalog()
    catalog.register(relation, model)
    engine = SPQEngine(
        catalog=catalog,
        config=SPQConfig(**CONFIG, deadline_ms=3_600_000.0),
    )
    result = engine.execute(spec.spaql)
    assert result.feasible
    got = {int(k): int(v) for k, v in result.package.key_multiplicities().items()}
    assert got == multiplicities
    assert result.objective == pytest.approx(objective, rel=1e-9)
    assert result.anytime is not None
    assert result.anytime.deadline_met
    assert result.anytime.gap == 0.0
