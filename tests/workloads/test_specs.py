"""The 24-query workload catalog (Table 3)."""

import pytest

from repro.db.catalog import Catalog
from repro.errors import EvaluationError
from repro.silp.compile import compile_query
from repro.spaql.parser import parse_query
from repro.workloads import WORKLOADS, get_query, get_workload, workload_names


def test_workload_catalog_shape():
    assert workload_names() == [
        "galaxy", "portfolio", "portfolio_correlated", "tpch",
    ]
    for name, specs in WORKLOADS.items():
        expected = 6 if name == "portfolio_correlated" else 8
        assert len(specs) == expected
        assert [s.name for s in specs] == [
            f"Q{i}" for i in range(1, expected + 1)
        ]


def test_lookup_helpers():
    spec = get_query("portfolio", "q3")
    assert spec.qualified_name == "portfolio/Q3"
    assert get_workload("GALAXY")[0].workload == "galaxy"
    with pytest.raises(EvaluationError):
        get_workload("nyse")
    with pytest.raises(EvaluationError):
        get_query("galaxy", "Q9")


def test_all_queries_parse():
    for specs in WORKLOADS.values():
        for spec in specs:
            query = parse_query(spec.spaql)
            assert query.constraints


def test_table3_parameters_match_paper():
    galaxy = WORKLOADS["galaxy"]
    assert [s.bound for s in galaxy] == [40, 43, 50, 52, 65, 65, 109, 90]
    assert all(s.probability == 0.9 for s in galaxy)
    assert [s.interaction for s in galaxy] == [
        "counteracted", "counteracted", "supported", "supported",
        "counteracted", "counteracted", "supported", "supported",
    ]

    portfolio = WORKLOADS["portfolio"]
    assert [s.probability for s in portfolio] == [
        0.90, 0.95, 0.90, 0.95, 0.90, 0.95, 0.90, 0.90,
    ]
    assert [s.bound for s in portfolio] == [-10, -10, -10, -10, -1, -1, -10, -1]
    assert all(s.interaction == "supported" for s in portfolio)

    tpch = WORKLOADS["tpch"]
    assert [s.probability for s in tpch] == [
        0.90, 0.95, 0.90, 0.90, 0.90, 0.95, 0.90, 0.95,
    ]
    assert [s.bound for s in tpch] == [15, 7, 15, 10, 15, 7, 29, 7]
    assert all(s.interaction == "independent" for s in tpch)


def test_only_tpch_q8_infeasible():
    infeasible = [
        spec.qualified_name
        for specs in WORKLOADS.values()
        for spec in specs
        if not spec.feasible
    ]
    assert infeasible == ["tpch/Q8"]


def test_default_summaries_per_workload():
    assert all(s.default_summaries == 1 for s in WORKLOADS["galaxy"])
    assert all(s.default_summaries == 1 for s in WORKLOADS["portfolio"])
    assert all(s.default_summaries == 2 for s in WORKLOADS["tpch"])


@pytest.mark.parametrize(
    "workload", ["galaxy", "portfolio", "portfolio_correlated", "tpch"]
)
def test_queries_compile_against_their_datasets(workload):
    """Every spec's sPaQL text must compile against its own dataset."""
    scale = 60 if workload not in ("portfolio", "portfolio_correlated") else 30
    for spec in WORKLOADS[workload]:
        relation, model = spec.build_dataset(scale, seed=1)
        catalog = Catalog()
        catalog.register(relation, model)
        problem = compile_query(spec.spaql, catalog)
        assert problem.chance_constraints or problem.has_probability_objective


def test_dataset_scale_parameter():
    spec = get_query("galaxy", "Q1")
    relation, _ = spec.build_dataset(123, seed=1)
    assert relation.n_rows == 123
    spec = get_query("portfolio", "Q1")
    relation, _ = spec.build_dataset(40, seed=1)
    assert relation.n_rows == 80  # two horizons per stock


def test_volatile_queries_use_subsets():
    all_stocks, _ = get_query("portfolio", "Q1").build_dataset(100, seed=1)
    volatile, _ = get_query("portfolio", "Q3").build_dataset(100, seed=1)
    assert volatile.n_rows < all_stocks.n_rows


def test_week_queries_have_seven_horizons():
    relation, _ = get_query("portfolio", "Q7").build_dataset(10, seed=1)
    import numpy as np

    assert len(np.unique(relation.column("sell_in_days"))) == 7


def test_correlated_workload_vg_descriptors_and_models():
    """Each portfolio_correlated spec records its registry expression and
    materializes the intended VG family."""
    from repro.mcdb import EmpiricalBootstrapVG, GaussianCopulaVG, MixtureVG

    expected_types = {
        "Q1": GaussianCopulaVG,
        "Q2": GaussianCopulaVG,
        "Q3": GaussianCopulaVG,
        "Q4": GaussianCopulaVG,
        "Q5": MixtureVG,
        "Q6": EmpiricalBootstrapVG,
    }
    for spec in WORKLOADS["portfolio_correlated"]:
        assert spec.vg  # the registry expression is documented
        relation, model = spec.build_dataset(24, seed=2)
        assert relation.n_rows == 24
        assert isinstance(model.vg("Gain"), expected_types[spec.name])


def test_build_dataset_vg_overrides_swap_the_model():
    """Any workload can re-run under a registry-built uncertainty model."""
    from repro.mcdb import GaussianCopulaVG, GeometricBrownianMotionVG

    spec = get_query("portfolio_correlated", "Q1")
    relation, base = spec.build_dataset(16, seed=3)
    assert base.vg("Gain").rho == 0.0
    _, overridden = spec.build_dataset(
        16,
        seed=3,
        vg_overrides=(
            "Gain=gaussian_copula:base_column=exp_gain,scale=gain_sd,"
            "rho=0.9,group_column=sector",
        ),
    )
    assert isinstance(overridden.vg("Gain"), GaussianCopulaVG)
    assert overridden.vg("Gain").rho == 0.9
    # The paper's portfolio workload accepts overrides too.
    _, gbm_model = get_query("portfolio", "Q1").build_dataset(10, seed=3)
    assert isinstance(gbm_model.vg("Gain"), GeometricBrownianMotionVG)
    _, swapped = get_query("portfolio", "Q1").build_dataset(
        10,
        seed=3,
        vg_overrides=("Gain=gaussian:base_column=price,sigma=2.0",),
    )
    assert type(swapped.vg("Gain")).__name__ == "GaussianNoiseVG"
