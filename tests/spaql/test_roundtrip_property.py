"""Property-based sPaQL round-trip: parse(format(q)) == q, full surface.

Extends the basic round-trip suite (``test_pretty.py``) to the parts of
the grammar it leaves out: WHERE predicates (comparisons, AND/OR/NOT,
string literals), scalar function calls, division and exponentiation,
and unary minus — the full expression sub-language behind ``SUM(f)``.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.db.expressions import (
    Attr,
    BinOp,
    BoolOp,
    Compare,
    Const,
    FuncCall,
    Not,
    UnaryOp,
)
from repro.spaql.nodes import (
    CountConstraint,
    PackageQuery,
    ProbabilisticConstraint,
    SumConstraint,
    SumObjective,
)
from repro.spaql.parser import parse_query
from repro.spaql.pretty import format_query

KEYWORDS = {
    "SELECT", "PACKAGE", "AS", "FROM", "REPEAT", "WHERE", "SUCH", "THAT",
    "AND", "OR", "NOT", "BETWEEN", "SUM", "COUNT", "EXPECTED", "WITH",
    "PROBABILITY", "OF", "MAXIMIZE", "MINIMIZE",
    # Function names parse as FuncCall heads, not attributes.
    "ABS", "SQRT", "EXP", "LN", "LOG", "FLOOR", "CEIL",
}

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in KEYWORDS
)

# Nonnegative literals only: a leading "-" parses as UnaryOp, so a
# negative Const leaf cannot round-trip verbatim.
numbers = st.one_of(
    st.integers(0, 1000),
    st.floats(0, 1000, allow_nan=False, allow_infinity=False).map(
        lambda x: round(x, 6)
    ),
)

FUNCTIONS = ("abs", "sqrt", "exp", "ln", "log", "floor", "ceil")


def arith_exprs():
    """Arithmetic expressions over the full operator/function surface."""
    leaves = st.one_of(identifiers.map(Attr), numbers.map(Const))

    def extend(children):
        return st.one_of(
            st.builds(
                BinOp,
                st.sampled_from(["+", "-", "*", "/", "^"]),
                children,
                children,
            ),
            st.builds(UnaryOp, st.just("-"), children),
            st.builds(
                lambda name, arg: FuncCall(name, (arg,)),
                st.sampled_from(FUNCTIONS),
                children,
            ),
        )

    return st.recursive(leaves, extend, max_leaves=5)


def predicates():
    """Boolean WHERE predicates: comparisons composed with AND/OR/NOT."""
    operands = st.one_of(
        identifiers.map(Attr),
        numbers.map(Const),
        st.from_regex(r"[a-z0-9 ]{0,6}", fullmatch=True).map(Const),
    )
    comparisons = st.builds(
        Compare,
        st.sampled_from(["<=", "<", ">=", ">", "=", "<>"]),
        operands,
        operands,
    )

    def extend(children):
        return st.one_of(
            st.builds(BoolOp, st.sampled_from(["AND", "OR"]), children, children),
            st.builds(Not, children),
        )

    return st.recursive(comparisons, extend, max_leaves=4)


ops = st.sampled_from(["<=", ">="])
probabilities = st.floats(0.01, 0.99).map(lambda p: round(p, 3))


def constraints():
    count = st.one_of(
        st.builds(
            lambda lo, width: CountConstraint(low=lo, high=lo + width),
            st.integers(0, 5),
            st.integers(0, 5),
        ),
        st.builds(CountConstraint, st.none(), st.none(), ops, numbers),
    )
    linear = st.builds(SumConstraint, arith_exprs(), ops, numbers, st.booleans())
    chance = st.builds(
        ProbabilisticConstraint, arith_exprs(), ops, numbers, ops, probabilities
    )
    return st.one_of(count, linear, chance)


queries = st.builds(
    PackageQuery,
    table=identifiers,
    alias=st.one_of(st.none(), identifiers),
    repeat=st.one_of(st.none(), st.integers(0, 10)),
    where=st.one_of(st.none(), predicates()),
    constraints=st.lists(constraints(), min_size=1, max_size=4).map(tuple),
    objective=st.one_of(
        st.none(),
        st.builds(
            SumObjective,
            st.sampled_from(["minimize", "maximize"]),
            arith_exprs(),
            st.booleans(),
        ),
    ),
)


@settings(max_examples=300, deadline=None)
@given(query=queries)
def test_full_surface_round_trip(query):
    text = format_query(query)
    assert parse_query(text) == query


@settings(max_examples=300, deadline=None)
@given(query=queries)
def test_formatting_is_a_fixed_point(query):
    # format ∘ parse ∘ format == format: the canonical rendering is
    # stable, so store keys built from rendered text never oscillate.
    text = format_query(query)
    assert format_query(parse_query(text)) == text
