"""sPaQL parser: the grammar of Appendix A / Figure 8."""

import pytest

from repro.db.expressions import Attr, BinOp, Compare, Const
from repro.errors import ParseError
from repro.spaql.nodes import (
    CountConstraint,
    ProbabilisticConstraint,
    SumConstraint,
    SumObjective,
    ProbabilityObjective,
)
from repro.spaql.parser import parse_query, parse_standalone_expression

FULL_QUERY = """
SELECT PACKAGE(*) AS Portfolio
FROM Stock_Investments REPEAT 2
WHERE price <= 500 AND sell_in = '1 day'
SUCH THAT
    SUM(price) <= 1000 AND
    COUNT(*) BETWEEN 1 AND 10 AND
    EXPECTED SUM(Gain) >= 0 AND
    SUM(Gain) >= -10 WITH PROBABILITY >= 0.95
MAXIMIZE EXPECTED SUM(Gain)
"""


def test_full_query_structure():
    query = parse_query(FULL_QUERY)
    assert query.table == "Stock_Investments"
    assert query.alias == "Portfolio"
    assert query.repeat == 2
    assert query.where is not None
    # COUNT BETWEEN stays one node; SUM BETWEEN would expand.
    assert len(query.constraints) == 4
    kinds = [type(c) for c in query.constraints]
    assert kinds == [
        SumConstraint,
        CountConstraint,
        SumConstraint,
        ProbabilisticConstraint,
    ]
    assert isinstance(query.objective, SumObjective)
    assert query.objective.expected


def test_minimal_query():
    query = parse_query("SELECT PACKAGE(*) FROM t")
    assert query.constraints == ()
    assert query.objective is None
    assert query.where is None


def test_probabilistic_constraint_fields():
    query = parse_query(
        "SELECT PACKAGE(*) FROM t SUCH THAT SUM(X) >= -10 WITH PROBABILITY >= 0.95"
    )
    constraint = query.constraints[0]
    assert isinstance(constraint, ProbabilisticConstraint)
    assert constraint.op == ">="
    assert constraint.rhs == -10
    assert constraint.prob_op == ">="
    assert constraint.probability == 0.95


def test_probability_must_be_in_open_interval():
    for bad in ("1.5", "0", "1"):
        with pytest.raises(ParseError):
            parse_query(
                f"SELECT PACKAGE(*) FROM t SUCH THAT SUM(X) >= 0"
                f" WITH PROBABILITY >= {bad}"
            )


def test_expected_with_probability_rejected():
    with pytest.raises(ParseError):
        parse_query(
            "SELECT PACKAGE(*) FROM t SUCH THAT"
            " EXPECTED SUM(X) >= 0 WITH PROBABILITY >= 0.9"
        )


def test_sum_between_expands_to_two_constraints():
    query = parse_query(
        "SELECT PACKAGE(*) FROM t SUCH THAT SUM(a) BETWEEN 2 AND 5"
    )
    first, second = query.constraints
    assert (first.op, first.rhs) == (">=", 2)
    assert (second.op, second.rhs) == ("<=", 5)


def test_between_bounds_order_checked():
    with pytest.raises(ParseError):
        parse_query("SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) BETWEEN 5 AND 2")


def test_count_simple_comparison():
    query = parse_query("SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) = 3")
    constraint = query.constraints[0]
    assert constraint.op == "=" and constraint.value == 3


def test_probability_objective():
    query = parse_query(
        "SELECT PACKAGE(*) FROM t MAXIMIZE PROBABILITY OF SUM(Revenue) >= 1000"
    )
    objective = query.objective
    assert isinstance(objective, ProbabilityObjective)
    assert objective.sense == "maximize"
    assert objective.op == ">=" and objective.rhs == 1000


def test_count_objective_sugar():
    query = parse_query("SELECT PACKAGE(*) FROM t MINIMIZE COUNT(*)")
    assert isinstance(query.objective, SumObjective)
    assert query.objective.expr == Const(1)


def test_where_and_binds_inside_predicate():
    query = parse_query(
        "SELECT PACKAGE(*) FROM t WHERE a > 1 AND b < 2"
        " SUCH THAT COUNT(*) <= 3"
    )
    assert query.where is not None
    assert len(query.constraints) == 1


def test_signed_rhs_values():
    query = parse_query("SELECT PACKAGE(*) FROM t SUCH THAT SUM(a) >= -10.5")
    assert query.constraints[0].rhs == -10.5


def test_repeat_must_be_nonnegative():
    with pytest.raises(ParseError):
        parse_query("SELECT PACKAGE(*) FROM t REPEAT -1")


def test_trailing_input_rejected():
    with pytest.raises(ParseError, match="trailing"):
        parse_query("SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) <= 1 garbage")


def test_missing_pieces_rejected():
    for text in (
        "SELECT * FROM t",
        "SELECT PACKAGE(*) SUCH THAT COUNT(*) = 1",
        "SELECT PACKAGE(*) FROM t SUCH THAT",
        "SELECT PACKAGE(*) FROM t SUCH THAT SUM(a)",
    ):
        with pytest.raises(ParseError):
            parse_query(text)


def test_expression_precedence():
    expr = parse_standalone_expression("1 + 2 * x ^ 2")
    assert expr == BinOp(
        "+", Const(1), BinOp("*", Const(2), BinOp("^", Attr("x"), Const(2)))
    )


def test_expression_parentheses_override():
    expr = parse_standalone_expression("(1 + 2) * x")
    assert expr == BinOp("*", BinOp("+", Const(1), Const(2)), Attr("x"))


def test_unary_minus_chains():
    from repro.db.expressions import UnaryOp

    expr = parse_standalone_expression("- -3")
    assert expr == UnaryOp("-", UnaryOp("-", Const(3)))


def test_double_dash_is_a_comment():
    # SQL semantics: "--" starts a comment, so "--3" is empty input.
    with pytest.raises(ParseError):
        parse_standalone_expression("--3")


def test_standalone_expression_trailing_rejected():
    with pytest.raises(ParseError):
        parse_standalone_expression("a + b extra")


def test_int_vs_float_literals():
    assert parse_standalone_expression("3") == Const(3)
    assert parse_standalone_expression("3.0") == Const(3.0)
    assert parse_standalone_expression("1e2") == Const(100.0)
