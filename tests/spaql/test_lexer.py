"""sPaQL lexer."""

import pytest

from repro.errors import ParseError
from repro.spaql.lexer import tokenize
from repro.spaql.tokens import KIND_EOF, KIND_IDENT, KIND_KEYWORD, KIND_NUMBER, KIND_STRING


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_keywords_case_insensitive():
    tokens = tokenize("select Package FROM")
    assert all(t.kind == KIND_KEYWORD for t in tokens[:-1])
    assert values("select Package FROM") == ["SELECT", "PACKAGE", "FROM"]


def test_identifiers_keep_case():
    token = tokenize("Petromag_r")[0]
    assert token.kind == KIND_IDENT
    assert token.value == "Petromag_r"


def test_numbers_variants():
    assert values("42 3.14 1e5 2.5E-3 .5") == ["42", "3.14", "1e5", "2.5E-3", ".5"]
    assert all(k == KIND_NUMBER for k in kinds("42 3.14 1e5")[:-1])


def test_malformed_number_rejected():
    with pytest.raises(ParseError):
        tokenize("1.2.3")


def test_string_literals_with_escapes():
    tokens = tokenize("'hello' 'o''brien'")
    assert tokens[0].kind == KIND_STRING and tokens[0].value == "hello"
    assert tokens[1].value == "o'brien"


def test_unterminated_string():
    with pytest.raises(ParseError, match="unterminated"):
        tokenize("'oops")


def test_comments_skipped():
    tokens = tokenize("SELECT -- a comment\nPACKAGE")
    assert [t.value for t in tokens[:-1]] == ["SELECT", "PACKAGE"]


def test_operators_longest_match():
    assert values("<= >= <> < > =") == ["<=", ">=", "<>", "<", ">", "="]


def test_positions_tracked():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_unexpected_character():
    with pytest.raises(ParseError) as info:
        tokenize("a ? b")
    assert info.value.column == 3


def test_eof_token_terminates():
    assert tokenize("")[-1].kind == KIND_EOF
