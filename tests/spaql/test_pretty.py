"""Pretty-printer round-trip: parse(format(q)) == q (property-based)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.expressions import Attr, BinOp, Const
from repro.spaql.nodes import (
    CountConstraint,
    PackageQuery,
    ProbabilisticConstraint,
    SumConstraint,
    SumObjective,
    ProbabilityObjective,
)
from repro.spaql.parser import parse_query
from repro.spaql.pretty import format_query

# --- strategies for random query ASTs ----------------------------------------

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "PACKAGE", "AS", "FROM", "REPEAT", "WHERE", "SUCH", "THAT",
        "AND", "OR", "NOT", "BETWEEN", "SUM", "COUNT", "EXPECTED", "WITH",
        "PROBABILITY", "OF", "MAXIMIZE", "MINIMIZE",
    }
)

numbers = st.one_of(
    st.integers(-1000, 1000),
    st.floats(-1000, 1000, allow_nan=False, allow_infinity=False).map(
        lambda x: round(x, 4)
    ),
)


def simple_exprs():
    # Literals inside expressions are nonnegative: a leading "-" parses
    # as UnaryOp, so negative Const leaves cannot round-trip verbatim.
    nonnegative = numbers.map(lambda v: Const(abs(v) if v != 0 else 0))
    leaves = st.one_of(identifiers.map(Attr), nonnegative)
    return st.recursive(
        leaves,
        lambda children: st.builds(
            BinOp, st.sampled_from(["+", "-", "*"]), children, children
        ),
        max_leaves=4,
    )


ops = st.sampled_from(["<=", ">="])
probabilities = st.floats(0.01, 0.99).map(lambda p: round(p, 3))


def constraints():
    count = st.one_of(
        st.builds(
            lambda lo, width: CountConstraint(low=lo, high=lo + width),
            st.integers(0, 5),
            st.integers(0, 5),
        ),
        st.builds(CountConstraint, st.none(), st.none(), ops, numbers),
    )
    linear = st.builds(SumConstraint, simple_exprs(), ops, numbers, st.booleans())
    chance = st.builds(
        ProbabilisticConstraint, simple_exprs(), ops, numbers, ops, probabilities
    )
    return st.one_of(count, linear, chance)


def objectives():
    senses = st.sampled_from(["minimize", "maximize"])
    return st.one_of(
        st.none(),
        st.builds(SumObjective, senses, simple_exprs(), st.booleans()),
        st.builds(ProbabilityObjective, senses, simple_exprs(), ops, numbers),
    )


queries = st.builds(
    PackageQuery,
    table=identifiers,
    alias=st.one_of(st.none(), identifiers),
    repeat=st.one_of(st.none(), st.integers(0, 10)),
    where=st.none(),
    constraints=st.lists(constraints(), max_size=4).map(tuple),
    objective=objectives(),
)


@settings(max_examples=200, deadline=None)
@given(query=queries)
def test_round_trip(query):
    text = format_query(query)
    reparsed = parse_query(text)
    assert reparsed == query


def test_where_clause_round_trips():
    text = (
        "SELECT PACKAGE(*) FROM t REPEAT 1 WHERE price <= 100 AND kind = 'a'"
        " SUCH THAT COUNT(*) <= 2 MINIMIZE SUM(price)"
    )
    query = parse_query(text)
    assert parse_query(format_query(query)) == query


def test_format_example_is_readable():
    query = parse_query(
        "SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) BETWEEN 1 AND 3"
        " AND SUM(X) >= 0 WITH PROBABILITY >= 0.9 MINIMIZE EXPECTED SUM(X)"
    )
    text = format_query(query)
    assert "SUCH THAT" in text
    assert "WITH PROBABILITY >= 0.9" in text
    assert text.splitlines()[0] == "SELECT PACKAGE(*)"
