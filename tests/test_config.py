"""SPQConfig validation and derivation."""

import pytest

from repro import SPQConfig
from repro.config import paper_scale_config
from repro.errors import EvaluationError


def test_defaults_valid():
    SPQConfig().validate()  # must not raise


@pytest.mark.parametrize(
    "field,value",
    [
        ("n_validation_scenarios", 0),
        ("n_initial_scenarios", 0),
        ("scenario_increment", 0),
        ("initial_summaries", 0),
        ("summary_increment", 0),
        ("epsilon", -0.1),
        ("summary_strategy", "zip"),
        ("solver", "cplex"),
        ("time_limit", 0.0),
    ],
)
def test_invalid_values_rejected(field, value):
    with pytest.raises(EvaluationError):
        SPQConfig(**{field: value})


def test_max_scenarios_must_cover_initial():
    with pytest.raises(EvaluationError):
        SPQConfig(n_initial_scenarios=100, max_scenarios=50)


def test_replace_revalidates():
    config = SPQConfig()
    with pytest.raises(EvaluationError):
        config.replace(epsilon=-1.0)
    clone = config.replace(seed=7)
    assert clone.seed == 7
    assert config.seed != 7  # original untouched


def test_paper_scale_config():
    config = paper_scale_config()
    assert config.n_validation_scenarios == 1_000_000
    assert config.time_limit == 4 * 3600.0
    assert config.max_scenarios == 1_000


def test_vg_overrides_validated_at_construction():
    good = SPQConfig(
        vg_overrides=(
            "Gain=gaussian_copula:base_column=exp_gain,rho=0.5,"
            "group_column=sector",
        )
    )
    assert len(good.vg_overrides) == 1
    from repro.errors import VGFunctionError

    with pytest.raises(VGFunctionError):
        SPQConfig(vg_overrides=("Gain=mystery_family:x=1",))
    with pytest.raises(VGFunctionError):
        SPQConfig(vg_overrides=("not-a-spec",))
    with pytest.raises(EvaluationError):
        SPQConfig(vg_overrides="Gain=gaussian:base_column=a,sigma=1")
