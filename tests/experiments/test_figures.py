"""Experiment scripts produce the paper's rows/series (tiny scales)."""

import pytest

from repro import SPQConfig
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.table3 import build_table


@pytest.fixture(scope="module")
def tiny_config():
    return SPQConfig(
        n_validation_scenarios=400,
        n_initial_scenarios=10,
        scenario_increment=10,
        max_scenarios=20,
        n_expectation_scenarios=200,
        epsilon=1.0,
        solver_time_limit=5.0,
        time_limit=30.0,
        seed=3,
    )


def test_table3_has_24_rows():
    table = build_table()
    assert len(table.rows) == 24
    text = table.render()
    assert "counteracted" in text and "independent" in text


def test_figure4_rows(tiny_config):
    table = run_figure4(
        ["galaxy"], tiny_config, n_runs=1, scale=120, data_seed=1, queries=["q1"]
    )
    assert len(table.rows) == 2  # one query x two methods
    assert table.rows[0][1] == "summarysearch"
    assert table.rows[1][1] == "naive"


def test_figure5_sweep_rows(tiny_config):
    table = run_figure5(
        ["galaxy"], tiny_config, n_runs=1, scale=120, data_seed=1,
        sweep=(5, 10), queries=["q3"],
    )
    assert len(table.rows) == 4  # 2 methods x 2 M values
    m_values = {row[2] for row in table.rows}
    assert m_values == {"5", "10"}


def test_figure6_rows(tiny_config):
    table = run_figure6(
        tiny_config, n_runs=1, scale=40, data_seed=1,
        n_scenarios=10, percents=(10, 100), queries=["q1"],
    )
    # 2 summary settings + 1 naive row.
    assert len(table.rows) == 3
    assert table.rows[-1][1] == "naive"


def test_figure7_rows(tiny_config):
    table = run_figure7(
        tiny_config, n_runs=1, data_seed=1, sizes=(100, 200),
        queries=["q3"], n_scenarios=8, n_scenarios_q8=8,
    )
    assert len(table.rows) == 4  # 2 methods x 2 sizes
    sizes = {row[2] for row in table.rows}
    assert sizes == {"100", "200"}


def test_cli_mains_run(capsys, tiny_config):
    from repro.experiments import table3

    table3.main([])
    captured = capsys.readouterr()
    assert "Table 3" in captured.out
    table3.main(["--queries"])
    captured = capsys.readouterr()
    assert "SELECT PACKAGE(*)" in captured.out
