"""Experiment runner and metrics."""

import pytest

from repro import SPQConfig
from repro.experiments.runner import (
    RunOutcome,
    approximation_ratio,
    best_feasible_objective,
    confidence_95,
    feasibility_rate,
    mean_ratio,
    mean_time,
    run_query,
    run_seeds,
)
from repro.workloads import get_query


def _outcome(feasible=True, objective=1.0, time=1.0, method="x", seed=0):
    return RunOutcome(
        workload="w", query="Q1", method=method, seed=seed,
        feasible=feasible, objective=objective, total_time=time,
        n_iterations=1, final_n_scenarios=10, final_n_summaries=1,
        timed_out=False, declared_infeasible=False,
    )


def test_feasibility_rate():
    outcomes = [_outcome(True), _outcome(False), _outcome(True), _outcome(True)]
    assert feasibility_rate(outcomes) == 0.75
    assert feasibility_rate([]) == 0.0


def test_mean_time_and_confidence():
    outcomes = [_outcome(time=1.0), _outcome(time=3.0)]
    assert mean_time(outcomes) == 2.0
    assert confidence_95([1.0, 3.0]) > 0.0
    assert confidence_95([1.0]) == 0.0


def test_best_feasible_objective_directions():
    outcomes = [
        _outcome(True, 5.0),
        _outcome(True, 2.0),
        _outcome(False, 0.1),  # infeasible: ignored
    ]
    assert best_feasible_objective(outcomes, maximize=False) == 2.0
    assert best_feasible_objective(outcomes, maximize=True) == 5.0
    assert best_feasible_objective([_outcome(False)], maximize=True) is None


def test_approximation_ratio_semantics():
    # Minimization: ratio = omega / best.
    assert approximation_ratio(6.0, 4.0, maximize=False) == pytest.approx(1.5)
    # Maximization: ratio = best / omega.
    assert approximation_ratio(4.0, 6.0, maximize=True) == pytest.approx(1.5)
    # Never below 1 (the best may come from this very run).
    assert approximation_ratio(4.0, 6.0, maximize=False) == 1.0
    assert approximation_ratio(None, 6.0, maximize=False) is None
    assert approximation_ratio(-1.0, 6.0, maximize=True) is None


def test_mean_ratio_skips_infeasible():
    outcomes = [_outcome(True, 4.0), _outcome(False, 1.0), _outcome(True, 8.0)]
    ratio = mean_ratio(outcomes, best=4.0, maximize=False)
    assert ratio == pytest.approx((1.0 + 2.0) / 2)
    assert mean_ratio([_outcome(False)], best=4.0, maximize=False) is None


@pytest.fixture(scope="module")
def tiny_config():
    return SPQConfig(
        n_validation_scenarios=500,
        n_initial_scenarios=10,
        scenario_increment=10,
        max_scenarios=40,
        n_expectation_scenarios=200,
        epsilon=1.0,
        solver_time_limit=10.0,
        time_limit=60.0,
        seed=5,
    )


def test_run_query_end_to_end(tiny_config):
    spec = get_query("galaxy", "Q1")
    outcome = run_query(spec, "summarysearch", tiny_config, scale=150)
    assert outcome.workload == "galaxy"
    assert outcome.method == "summarysearch"
    assert outcome.total_time > 0
    assert outcome.final_n_scenarios >= 10


def test_run_seeds_varies_seed_not_data(tiny_config):
    spec = get_query("galaxy", "Q1")
    outcomes = run_seeds(spec, "summarysearch", tiny_config, n_runs=2, scale=150)
    assert len(outcomes) == 2
    assert outcomes[0].seed != outcomes[1].seed


def test_run_seeds_routes_through_shared_store(tiny_config):
    from repro.service import ScenarioStore

    spec = get_query("galaxy", "Q1")
    with ScenarioStore() as store:
        outcomes = run_seeds(
            spec, "summarysearch", tiny_config, n_runs=2, scale=150, store=store
        )
        # The same-method repeat at an equal seed shares realizations.
        repeat = run_seeds(
            spec, "summarysearch", tiny_config, n_runs=1, scale=150, store=store
        )
    assert outcomes[0].store_stats is not None
    assert outcomes[0].store_stats["generations"] > 0
    assert (
        repeat[0].store_stats["generations"]
        == outcomes[-1].store_stats["generations"]
    )
    assert repeat[0].store_stats["hits"] > outcomes[-1].store_stats["hits"]
    assert repeat[0].feasible == outcomes[0].feasible
    assert repeat[0].objective == outcomes[0].objective


def test_format_store_stats_line():
    from repro.experiments.report import format_store_stats

    assert format_store_stats(None) == "scenario store: (not used)"
    line = format_store_stats(
        {
            "hits": 3,
            "misses": 2,
            "generations": 2,
            "generated_columns": 40,
            "evictions": 1,
            "spills": 0,
            "bytes_resident": 800,
            "bytes_spilled": 0,
            "entries": 1,
        }
    )
    assert "3 hits" in line and "2 generations" in line and "1 evictions" in line
