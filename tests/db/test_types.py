"""Column typing helpers."""

import numpy as np
import pytest

from repro.db.types import DType, coerce_column, infer_dtype
from repro.errors import SchemaError


def test_coerce_int_list():
    out = coerce_column([1, 2, 3], "c")
    assert out.dtype == np.int64


def test_coerce_float_list():
    out = coerce_column([1.5, 2.0], "c")
    assert out.dtype == np.float64


def test_coerce_strings_to_object():
    out = coerce_column(["x", "y"], "c")
    assert out.dtype.kind == "O"


def test_coerce_bool_passthrough():
    out = coerce_column(np.array([True, False]), "c")
    assert out.dtype.kind == "b"


def test_coerce_rejects_2d():
    with pytest.raises(SchemaError):
        coerce_column(np.zeros((2, 2)), "c")


def test_infer_dtype_variants():
    assert infer_dtype(np.array([1.0])) == DType.FLOAT
    assert infer_dtype(np.array([1])) == DType.INT
    assert infer_dtype(np.array([True])) == DType.BOOL
    assert infer_dtype(np.array(["a"], dtype=object)) == DType.TEXT


def test_numeric_flag():
    assert DType.FLOAT.is_numeric and DType.INT.is_numeric
    assert not DType.TEXT.is_numeric and not DType.BOOL.is_numeric


def test_infer_rejects_unsupported():
    with pytest.raises(SchemaError):
        infer_dtype(np.array([1 + 2j]))
