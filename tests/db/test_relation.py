"""Columnar relation behaviour."""

import numpy as np
import pytest

from repro.db.expressions import Attr, BoolOp, Compare, Const
from repro.db.relation import Relation
from repro.errors import SchemaError


def test_auto_id_key_created(items_relation):
    assert items_relation.key == "id"
    assert np.array_equal(items_relation.key_values(), np.arange(5))


def test_explicit_key_must_exist():
    with pytest.raises(SchemaError):
        Relation("t", {"a": [1, 2]}, key="missing")


def test_key_must_be_unique():
    with pytest.raises(SchemaError):
        Relation("t", {"k": [1, 1], "a": [2.0, 3.0]}, key="k")


def test_unequal_column_lengths_rejected():
    with pytest.raises(SchemaError):
        Relation("t", {"a": [1, 2], "b": [1, 2, 3]})


def test_empty_columns_rejected():
    with pytest.raises(SchemaError):
        Relation("t", {})


def test_column_access_and_error(items_relation):
    assert items_relation.column("price")[0] == 5.0
    assert items_relation["weight"][1] == 1.0
    with pytest.raises(SchemaError):
        items_relation.column("nope")


def test_filter_with_predicate(items_relation):
    cheap = items_relation.filter(Compare("<=", Attr("price"), Const(5)))
    assert cheap.n_rows == 3
    assert set(cheap.column("price").tolist()) == {5.0, 3.0, 4.0}
    # Key values survive the filter (stable tuple identity).
    assert set(cheap.key_values().tolist()) == {0, 2, 4}


def test_filter_boolean_combination(items_relation):
    predicate = BoolOp(
        "AND",
        Compare(">", Attr("price"), Const(3)),
        Compare("=", Attr("category"), Const("a")),
    )
    out = items_relation.filter(predicate)
    assert out.n_rows == 2


def test_take_preserves_order(items_relation):
    out = items_relation.take(np.array([3, 0]))
    assert out.column("price").tolist() == [6.0, 5.0]


def test_project_keeps_key(items_relation):
    out = items_relation.project(["price"])
    assert set(out.column_names) == {"price", "id"}


def test_with_column_is_nondestructive(items_relation):
    out = items_relation.with_column("double_price", items_relation["price"] * 2)
    assert "double_price" not in items_relation.column_names
    assert out.column("double_price")[0] == 10.0


def test_with_column_wrong_length(items_relation):
    with pytest.raises(SchemaError):
        items_relation.with_column("bad", [1.0])


def test_positions_for_keys(items_relation):
    positions = items_relation.positions_for_keys([2, 0])
    assert positions.tolist() == [2, 0]
    with pytest.raises(SchemaError):
        items_relation.positions_for_keys([99])


def test_iter_rows_and_row(items_relation):
    rows = list(items_relation.iter_rows())
    assert len(rows) == 5
    assert rows[1]["price"] == 8.0
    assert items_relation.row(2)["category"] == "a"


def test_rename_and_head(items_relation):
    renamed = items_relation.rename("other")
    assert renamed.name == "other"
    assert items_relation.head(2).n_rows == 2


def test_to_text_truncates(items_relation):
    text = items_relation.to_text(limit=2)
    assert "..." in text


def test_text_columns_stored_as_objects(items_relation):
    # Object dtype avoids fixed-width truncation when values are replaced.
    assert items_relation.column("category").dtype.kind == "O"
