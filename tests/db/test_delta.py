"""Relation deltas: validation, dirty-row scoping, fingerprint lineage.

Unit tier for :mod:`repro.db.delta` — the mutation records underneath
``Catalog.apply_delta`` and every delta-scoped cache reuse decision
(docs/live_data.md).  The dirty-row rule is load-bearing: scenario draws
are positional and sequential, so which positions a delta dirties
decides which cached artifacts stay bit-identical.
"""

import numpy as np
import pytest

from repro import Catalog, Relation
from repro.db.delta import (
    DeltaApplication,
    FingerprintLineage,
    RelationDelta,
    dirty_positions,
    lineage,
)
from repro.errors import SchemaError
from repro.mcdb import GaussianNoiseVG, StochasticModel
from repro.service.store import model_fingerprint, relation_fingerprint


@pytest.fixture(autouse=True)
def _clean_lineage():
    lineage.clear()
    yield
    lineage.clear()


def make_relation(n=6):
    return Relation(
        "items",
        {
            "id": np.arange(n, dtype=np.int64),
            "price": np.arange(n, dtype=np.float64) + 1.0,
            "cost": np.full(n, 2.0),
        },
        key="id",
    )


# --- RelationDelta validation ----------------------------------------------


def test_empty_delta_rejected():
    with pytest.raises(SchemaError, match="empty delta"):
        RelationDelta()


def test_update_and_delete_same_key_rejected():
    with pytest.raises(SchemaError, match="both updated and deleted"):
        RelationDelta(updates={3: {"price": 1.0}}, deletes=[3])


def test_payload_roundtrip_preserves_digest():
    delta = RelationDelta(
        inserts=[{"id": 10, "price": 9.0, "cost": 1.0}],
        updates={2: {"price": 4.5}},
        deletes=[5],
    )
    clone = RelationDelta.from_payload(delta.to_payload())
    assert clone.digest() == delta.digest()
    assert clone.updates == {2: {"price": 4.5}}
    assert clone.deletes == [5]


def test_malformed_update_pairs_rejected():
    with pytest.raises(SchemaError, match="pairs"):
        RelationDelta.from_payload({"updates": [[1, {"price": 2.0}, "extra"]]})


def test_apply_update_unknown_column_rejected():
    relation = make_relation()
    with pytest.raises(SchemaError, match="no column"):
        relation.apply_delta(updates={0: {"nope": 1.0}})


def test_apply_update_key_column_rejected():
    relation = make_relation()
    with pytest.raises(SchemaError, match="key column"):
        relation.apply_delta(updates={0: {"id": 99}})


def test_insert_duplicate_key_rejected():
    relation = make_relation()
    with pytest.raises(SchemaError, match="already exists"):
        relation.apply_delta(
            inserts=[{"id": 0, "price": 1.0, "cost": 1.0}]
        )


def test_insert_missing_column_rejected():
    relation = make_relation()
    with pytest.raises(SchemaError, match="missing columns"):
        relation.apply_delta(inserts=[{"id": 50, "price": 1.0}])


def test_int_column_rejects_fractional_value():
    relation = Relation(
        "ints", {"id": [0, 1], "n": np.array([1, 2], dtype=np.int64)}
    )
    with pytest.raises(SchemaError, match="integer column"):
        relation.apply_delta(updates={0: {"n": 1.5}})


# --- dirty-row scoping ------------------------------------------------------


def test_update_dirties_only_its_position():
    relation = make_relation()
    new, application = relation.apply_delta(updates={3: {"price": 99.0}})
    assert new.n_rows == 6
    assert application.dirty.tolist() == [3]
    assert application.shifted_from is None
    assert new.column("price")[3] == 99.0
    # Untouched positions are bit-identical.
    np.testing.assert_array_equal(
        np.delete(new.column("price"), 3),
        np.delete(relation.column("price"), 3),
    )


def test_insert_dirties_only_appended_positions():
    relation = make_relation()
    new, application = relation.apply_delta(
        inserts=[{"id": 100, "price": 1.0, "cost": 1.0}]
    )
    assert new.n_rows == 7
    assert application.dirty.tolist() == [6]
    assert application.shifted_from is None


def test_delete_dirties_every_shifted_position():
    relation = make_relation()
    new, application = relation.apply_delta(deletes=[2])
    assert new.n_rows == 5
    assert application.shifted_from == 2
    assert application.dirty.tolist() == [2, 3, 4]
    # The prefix keeps position and content.
    np.testing.assert_array_equal(
        new.column("price")[:2], relation.column("price")[:2]
    )


def test_auto_assigned_insert_keys_skip_survivors():
    relation = make_relation()
    new, _ = relation.apply_delta(
        inserts=[{"price": 1.0, "cost": 1.0}, {"price": 2.0, "cost": 1.0}]
    )
    assert new.column("id")[-2:].tolist() == [6, 7]


def test_dirty_positions_update_below_delete_point():
    dirty, shifted, n_after = dirty_positions(
        10, np.array([1, 7]), np.array([5]), 2
    )
    # Position 7's update is absorbed by the shift; position 1 survives.
    assert shifted == 5
    assert n_after == 11
    assert dirty.tolist() == [1] + list(range(5, 11))


# --- fingerprint lineage ----------------------------------------------------


def _application(parent_rows, child_rows, dirty, shifted=None, digest="d"):
    return DeltaApplication(
        digest=digest,
        n_rows_before=parent_rows,
        n_rows_after=child_rows,
        dirty=np.asarray(dirty, dtype=np.int64),
        shifted_from=shifted,
    )


def test_lineage_chain_and_ancestors():
    reg = FingerprintLineage()
    reg.record_delta("a", "b", _application(10, 10, [3]))
    reg.record_delta("b", "c", _application(10, 11, [10]))
    assert reg.ancestor_fingerprints("c") == ["b", "a"]
    assert reg.ancestors("c") == [("b", 10), ("a", 10)]
    assert reg.ancestor_fingerprints("a") == []


def test_lineage_dirty_mask_unions_steps():
    reg = FingerprintLineage()
    reg.record_delta("a", "b", _application(10, 10, [3]))
    reg.record_delta("b", "c", _application(10, 10, [7]))
    mask = reg.dirty_mask("a", "c", 10)
    assert mask is not None
    assert np.flatnonzero(mask).tolist() == [3, 7]
    # One-step mask does not include the other step's rows.
    one = reg.dirty_mask("b", "c", 10)
    assert np.flatnonzero(one).tolist() == [7]
    assert reg.dirty_mask("zzz", "c", 10) is None


def test_lineage_dirty_mask_delete_floods_tail():
    reg = FingerprintLineage()
    reg.record_delta("a", "b", _application(10, 9, [4, 5, 6, 7, 8], shifted=4))
    mask = reg.dirty_mask("a", "b", 9)
    assert np.flatnonzero(mask).tolist() == [4, 5, 6, 7, 8]


def test_lineage_superseded_and_is_stale():
    reg = FingerprintLineage()
    reg.record_delta("a", "b", _application(5, 5, [0]))
    assert reg.superseded() == {"a"}
    assert reg.is_stale("a")
    assert not reg.is_stale("b")


# --- catalog integration ----------------------------------------------------


def test_catalog_apply_delta_records_lineage_and_bumps_version():
    catalog = Catalog()
    relation = make_relation()
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 0.5)})
    catalog.register(relation, model)
    parent_fp = model_fingerprint(model)
    v0 = catalog.version

    summary = catalog.apply_delta(
        "items", RelationDelta(updates={1: {"price": 50.0}})
    )
    assert summary["table"] == "items"
    assert summary["catalog_version"] == v0 + 1
    assert summary["parent_fingerprint"] == parent_fp
    assert summary["dirty_rows"] == 1
    assert summary["lineage_recorded"]
    assert catalog.relation("items").column("price")[1] == 50.0
    # The chain is queryable under the new fingerprint.
    assert lineage.ancestor_fingerprints(summary["fingerprint"]) == [parent_fp]
    # Content-addressing: rebuilding the same content from scratch gives
    # the same fingerprint — the delta-equivalence anchor.
    rebuilt = catalog.relation("items")
    rebuilt_model = StochasticModel(
        rebuilt, {"Value": GaussianNoiseVG("price", 0.5)}
    )
    assert model_fingerprint(rebuilt_model) == summary["fingerprint"]


def test_catalog_apply_delta_without_model_uses_relation_fingerprint():
    catalog = Catalog()
    relation = make_relation()
    catalog.register(relation)
    summary = catalog.apply_delta("items", RelationDelta(deletes=[0]))
    assert summary["parent_fingerprint"] == relation_fingerprint(relation)
    assert summary["n_rows"] == 5
    assert summary["shifted_from"] == 0


def test_catalog_apply_delta_unknown_table():
    with pytest.raises(SchemaError, match="unknown table"):
        Catalog().apply_delta("ghost", RelationDelta(deletes=[1]))
