"""CSV import/export."""

import numpy as np
import pytest

from repro.db.csvio import read_csv, write_csv
from repro.db.relation import Relation
from repro.errors import SchemaError

CSV_TEXT = "name,qty,price\nalpha,3,1.5\nbeta,7,2.25\n"


def test_read_from_text_infers_types():
    relation = read_csv(CSV_TEXT, name="stock")
    assert relation.name == "stock"
    assert relation.column("qty").dtype == np.int64
    assert relation.column("price").dtype == np.float64
    assert relation.column("name").dtype.kind == "O"
    assert relation.n_rows == 2


def test_round_trip_through_file(tmp_path):
    path = tmp_path / "data.csv"
    original = Relation("t", {"a": [1, 2, 3], "b": [0.5, 1.5, 2.5]})
    write_csv(original, path)
    loaded = read_csv(path)
    assert loaded.column("a").tolist() == [1, 2, 3]
    assert loaded.column("b").tolist() == [0.5, 1.5, 2.5]
    assert loaded.name == "data"


def test_write_selected_columns(tmp_path):
    path = tmp_path / "out.csv"
    relation = Relation("t", {"a": [1], "b": [2]})
    write_csv(relation, path, columns=["b"])
    assert read_csv(path).column_names == ["b", "id"]


def test_empty_csv_rejected():
    with pytest.raises(SchemaError):
        read_csv("")
    with pytest.raises(SchemaError):
        read_csv("only,a,header\n")


def test_mixed_column_falls_back_to_text():
    relation = read_csv("v\n1\nx\n")
    assert relation.column("v").dtype.kind == "O"
