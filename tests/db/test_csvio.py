"""CSV import/export."""

import numpy as np
import pytest

from repro.db.csvio import read_csv, write_csv
from repro.db.relation import Relation
from repro.errors import SchemaError

CSV_TEXT = "name,qty,price\nalpha,3,1.5\nbeta,7,2.25\n"


def test_read_from_text_infers_types():
    relation = read_csv(CSV_TEXT, name="stock")
    assert relation.name == "stock"
    assert relation.column("qty").dtype == np.int64
    assert relation.column("price").dtype == np.float64
    assert relation.column("name").dtype.kind == "O"
    assert relation.n_rows == 2


def test_round_trip_through_file(tmp_path):
    path = tmp_path / "data.csv"
    original = Relation("t", {"a": [1, 2, 3], "b": [0.5, 1.5, 2.5]})
    write_csv(original, path)
    loaded = read_csv(path)
    assert loaded.column("a").tolist() == [1, 2, 3]
    assert loaded.column("b").tolist() == [0.5, 1.5, 2.5]
    assert loaded.name == "data"


def test_write_selected_columns(tmp_path):
    path = tmp_path / "out.csv"
    relation = Relation("t", {"a": [1], "b": [2]})
    write_csv(relation, path, columns=["b"])
    assert read_csv(path).column_names == ["b", "id"]


def test_empty_csv_rejected():
    with pytest.raises(SchemaError):
        read_csv("")
    with pytest.raises(SchemaError):
        read_csv("only,a,header\n")


def test_mixed_column_falls_back_to_text():
    relation = read_csv("v\n1\nx\n")
    assert relation.column("v").dtype.kind == "O"


# --- chunked streaming (out-of-core import) ----------------------------------


def test_multi_chunk_file_parses_identically(tmp_path):
    """A file spanning many chunks equals a one-chunk parse exactly."""
    path = tmp_path / "big.csv"
    with open(path, "w") as handle:
        handle.write("x,qty,label\n")
        for i in range(1_000):
            handle.write(f"{i * 1.5},{i},L{i % 5}\n")
    chunked = read_csv(path, chunk_rows=64)
    whole = read_csv(path, chunk_rows=10_000)
    assert chunked.n_rows == 1_000
    for name in whole.column_names:
        assert np.array_equal(chunked.column(name), whole.column(name)), name
    assert chunked.column("x").dtype == np.float64
    assert chunked.column("qty").dtype == np.int64
    assert chunked.column("label").dtype.kind == "O"


def test_int_column_widens_to_float_across_chunks():
    relation = read_csv("a\n1\n2\n3\n4.5\n", chunk_rows=2)
    assert relation.column("a").dtype == np.float64
    assert relation.column("a").tolist() == [1.0, 2.0, 3.0, 4.5]


def test_late_text_value_preserves_raw_numeric_strings():
    """Promotion to text re-reads the source: '01' stays '01'."""
    relation = read_csv("v\n01\n02\nxy\n", chunk_rows=2)
    assert relation.column("v").tolist() == ["01", "02", "xy"]


def test_ragged_row_raises_schema_error():
    with pytest.raises(SchemaError):
        read_csv("a,b\n1,2\n3\n")


def test_read_csv_to_store_streams_multi_chunk_file(tmp_path):
    from repro.db.csvio import read_csv_to_store

    path = tmp_path / "big.csv"
    with open(path, "w") as handle:
        handle.write("x,label\n")
        for i in range(500):
            handle.write(f"{i * 0.5},L{i % 3}\n")
    store = read_csv_to_store(path, tmp_path / "big-store", chunk_rows=64)
    try:
        assert store.n_rows == 500
        assert store.n_chunks == 8
        reference = read_csv(path)
        for name in reference.column_names:
            assert np.array_equal(store.column(name), reference.column(name))
    finally:
        store.close()


def test_read_csv_to_store_missing_file_contract(tmp_path):
    from repro.db.csvio import read_csv_to_store

    with pytest.raises(FileNotFoundError):
        read_csv_to_store("no_such_file.csv", tmp_path / "s")
