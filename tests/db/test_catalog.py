"""Catalog registration and lookup."""

import pytest

from repro.db.catalog import Catalog
from repro.db.relation import Relation
from repro.errors import SchemaError
from repro.mcdb import GaussianNoiseVG, StochasticModel


def test_register_and_lookup_case_insensitive(items_relation):
    catalog = Catalog()
    catalog.register(items_relation)
    assert "ITEMS" in catalog
    assert catalog.relation("Items") is items_relation
    assert catalog.model("items") is None


def test_register_with_model(items_relation, items_model):
    catalog = Catalog()
    catalog.register(items_relation, items_model)
    assert catalog.model("items") is items_model


def test_register_mismatched_model_rejected(items_relation, items_model):
    other = Relation("other", {"price": [1.0, 2.0]})
    catalog = Catalog()
    with pytest.raises(SchemaError):
        catalog.register(other, items_model)


def test_reregistration_replaces(items_relation):
    catalog = Catalog()
    catalog.register(items_relation)
    replacement = Relation("items", {"price": [9.0]})
    catalog.register(replacement)
    assert catalog.relation("items") is replacement


def test_register_under_alias(items_relation):
    catalog = Catalog()
    catalog.register(items_relation, name="inventory")
    assert "inventory" in catalog
    assert "items" not in catalog


def test_unknown_table_message(items_relation):
    catalog = Catalog()
    catalog.register(items_relation)
    with pytest.raises(SchemaError, match="unknown table"):
        catalog.relation("missing")


def test_drop_and_iteration(items_relation):
    catalog = Catalog()
    catalog.register(items_relation)
    assert list(catalog) == ["items"]
    assert len(catalog) == 1
    catalog.drop("items")
    assert len(catalog) == 0
    with pytest.raises(SchemaError):
        catalog.drop("items")
