"""Expression evaluation, analysis, and rendering."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.db.expressions import (
    Attr,
    BinOp,
    BoolOp,
    Compare,
    Const,
    FuncCall,
    Not,
    UnaryOp,
    affine_in,
    attributes_of,
    evaluate,
    parse_expression,
    render,
)
from repro.errors import CompileError

COLUMNS = {
    "a": np.array([1.0, 2.0, 3.0]),
    "b": np.array([4.0, 5.0, 6.0]),
}


def test_arithmetic_operations():
    expr = BinOp("+", BinOp("*", Const(2), Attr("a")), Attr("b"))
    assert evaluate(expr, COLUMNS).tolist() == [6.0, 9.0, 12.0]


def test_subtraction_division_power():
    assert evaluate(BinOp("-", Attr("b"), Attr("a")), COLUMNS).tolist() == [3.0] * 3
    assert evaluate(BinOp("/", Attr("b"), Const(2)), COLUMNS).tolist() == [2.0, 2.5, 3.0]
    assert evaluate(BinOp("^", Attr("a"), Const(2)), COLUMNS).tolist() == [1.0, 4.0, 9.0]


def test_unary_minus_and_plus():
    assert evaluate(UnaryOp("-", Attr("a")), COLUMNS).tolist() == [-1.0, -2.0, -3.0]
    assert evaluate(UnaryOp("+", Attr("a")), COLUMNS).tolist() == [1.0, 2.0, 3.0]


def test_comparisons_produce_booleans():
    out = evaluate(Compare(">=", Attr("a"), Const(2)), COLUMNS)
    assert out.tolist() == [False, True, True]
    out = evaluate(Compare("<>", Attr("a"), Const(2)), COLUMNS)
    assert out.tolist() == [True, False, True]


def test_boolean_operators_and_not():
    left = Compare(">", Attr("a"), Const(1))
    right = Compare("<", Attr("b"), Const(6))
    assert evaluate(BoolOp("AND", left, right), COLUMNS).tolist() == [False, True, False]
    assert evaluate(BoolOp("OR", left, right), COLUMNS).tolist() == [True, True, True]
    assert evaluate(Not(left), COLUMNS).tolist() == [True, False, False]


def test_functions():
    assert evaluate(FuncCall("abs", (UnaryOp("-", Attr("a")),)), COLUMNS).tolist() == [
        1.0,
        2.0,
        3.0,
    ]
    out = evaluate(FuncCall("sqrt", (Attr("b"),)), COLUMNS)
    assert out[0] == pytest.approx(2.0)


def test_unknown_function_and_attr_rejected():
    with pytest.raises(CompileError):
        evaluate(FuncCall("bogus", (Attr("a"),)), COLUMNS)
    with pytest.raises(CompileError):
        evaluate(Attr("zzz"), COLUMNS)


def test_callable_resolver():
    out = evaluate(Attr("x"), lambda name: np.array([7.0]))
    assert out.tolist() == [7.0]


def test_attributes_of_collects_all():
    expr = BinOp("+", Attr("a"), FuncCall("abs", (BinOp("*", Attr("b"), Attr("c")),)))
    assert attributes_of(expr) == {"a", "b", "c"}


# --- affine analysis ----------------------------------------------------------


def test_affine_simple_cases():
    names = {"x"}
    assert affine_in(Attr("x"), names)
    assert affine_in(BinOp("+", Attr("x"), Const(3)), names)
    assert affine_in(BinOp("*", Attr("a"), Attr("x")), names)  # a is constant here
    assert affine_in(Const(5), names)
    assert affine_in(Attr("other"), names)


def test_affine_rejects_nonlinear():
    names = {"x"}
    assert not affine_in(BinOp("*", Attr("x"), Attr("x")), names)
    assert not affine_in(BinOp("^", Attr("x"), Const(2)), names)
    assert not affine_in(FuncCall("exp", (Attr("x"),)), names)
    assert not affine_in(BinOp("/", Const(1), Attr("x")), names)


def test_affine_division_by_constant_ok():
    assert affine_in(BinOp("/", Attr("x"), Const(2)), {"x"})


@given(
    coeff=st.floats(-5, 5, allow_nan=False),
    shift=st.floats(-5, 5, allow_nan=False),
)
def test_affine_expectation_substitution_is_exact(coeff, shift):
    """For affine expressions, f(E[X]) == E[f(X)] — the property the
    expectation estimator relies on when it substitutes means."""
    expr = BinOp("+", BinOp("*", Const(coeff), Attr("x")), Const(shift))
    assert affine_in(expr, {"x"})
    samples = np.array([1.0, 2.0, 7.0, -3.0])
    mean_of_f = evaluate(expr, {"x": samples}).mean()
    f_of_mean = evaluate(expr, {"x": np.array([samples.mean()])})[0]
    assert mean_of_f == pytest.approx(f_of_mean)


# --- rendering ----------------------------------------------------------------


def test_render_parse_round_trip():
    texts = [
        "a + b * 2",
        "(a + b) * 2",
        "-a",
        "abs(a - b)",
        "3 * a ^ 2 - 2 * sqrt(b) + 1",
        "price <= 100",
    ]
    for text in texts:
        expr = parse_expression(text)
        again = parse_expression(render(expr))
        assert again == expr


def test_render_string_constant_escaping():
    expr = Compare("=", Attr("name"), Const("o'brien"))
    assert parse_expression(render(expr)) == expr
