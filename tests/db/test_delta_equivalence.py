"""Property suite: delta application is representation- and path-independent.

The delta-equivalence guarantee behind every cache in the live-data
tier (docs/live_data.md): applying a delta must produce *the same
relation* — columns, dirty set, content fingerprint — whether it is
applied to an in-memory :class:`Relation`, to a disk-backed
ColumnStore, or "applied" by rebuilding the post-delta content from
scratch.  Because fingerprints are content-addressed, fingerprint
equality is what makes delta-then-solve hit the same caches (and hence
return bit-identical packages) as rebuild-then-solve; the solve-level
anchor is pinned by the golden tests at the bottom.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Catalog, Relation, SPQConfig, SPQEngine
from repro.datasets.portfolio import PortfolioParams, build_portfolio
from repro.db.delta import RelationDelta, lineage
from repro.workloads import get_query

_N = 24
_KEYS = list(range(_N))
_TAGS = ["alpha", "beta", "gamma"]
_dirs = itertools.count()


@pytest.fixture(autouse=True)
def _clean_lineage():
    lineage.clear()
    yield
    lineage.clear()


def make_relation() -> Relation:
    rng = np.random.default_rng(5)
    return Relation(
        "goods",
        {
            "id": np.arange(_N, dtype=np.int64),
            "price": np.round(rng.uniform(1, 40, _N), 2),
            "qty": rng.integers(0, 9, _N),
            "tag": np.array([_TAGS[i % 3] for i in range(_N)], dtype=object),
        },
        key="id",
    )


def _cell_changes(draw):
    changes = {}
    if draw(st.booleans()):
        changes["price"] = draw(
            st.floats(0.5, 99.0, allow_nan=False, allow_infinity=False)
        )
    if draw(st.booleans()):
        changes["qty"] = draw(st.integers(0, 20))
    if draw(st.booleans()):
        changes["tag"] = draw(st.sampled_from(_TAGS + ["delta-tag"]))
    return changes


@st.composite
def delta_mixes(draw) -> RelationDelta:
    """An arbitrary valid mix of inserts, updates, and deletes."""
    update_keys = draw(
        st.lists(st.sampled_from(_KEYS), unique=True, max_size=4)
    )
    updates = {}
    for key in update_keys:
        changes = _cell_changes(draw)
        if changes:
            updates[key] = changes
    deletes = draw(
        st.lists(
            st.sampled_from([k for k in _KEYS if k not in updates]),
            unique=True,
            max_size=3,
        )
    )
    inserts = [
        {
            "id": 1000 + i,
            "price": draw(
                st.floats(0.5, 99.0, allow_nan=False, allow_infinity=False)
            ),
            "qty": draw(st.integers(0, 20)),
            "tag": draw(st.sampled_from(_TAGS)),
        }
        for i in range(draw(st.integers(0, 2)))
    ]
    if not (inserts or updates or deletes):
        deletes = [draw(st.sampled_from(_KEYS))]
    return RelationDelta(inserts=inserts, updates=updates, deletes=deletes)


@given(delta=delta_mixes())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_delta_is_representation_independent(delta, tmp_path):
    from repro.service.store import relation_fingerprint

    relation = make_relation()
    mem_after, mem_app = relation.apply_delta(delta)

    store = relation.to_disk(tmp_path / f"s{next(_dirs)}", chunk_rows=8)
    try:
        _, disk_app = store.apply_delta(delta)
        assert store.n_rows == mem_after.n_rows
        for name in mem_after.column_names:
            np.testing.assert_array_equal(
                store.column(name), mem_after.column(name)
            )
        np.testing.assert_array_equal(disk_app.dirty, mem_app.dirty)
        assert disk_app.shifted_from == mem_app.shifted_from
        assert disk_app.digest == mem_app.digest
        assert relation_fingerprint(store) == relation_fingerprint(mem_after)
    finally:
        store.close()

    # Rebuild-from-scratch: a relation constructed directly from the
    # post-delta columns is content-identical, so it shares every
    # fingerprint-keyed cache entry with the delta'd one.
    rebuilt = Relation(
        "goods",
        {name: mem_after.column(name) for name in mem_after.column_names},
        key="id",
    )
    assert relation_fingerprint(rebuilt) == relation_fingerprint(mem_after)


@given(deltas=st.lists(delta_mixes(), min_size=1, max_size=3))
@settings(max_examples=20, deadline=None)
def test_delta_chains_are_path_independent(deltas):
    """A chain of deltas through the catalog equals direct application."""
    from repro.service.store import relation_fingerprint

    catalog = Catalog()
    catalog.register(make_relation())
    v0 = catalog.version
    direct = make_relation()
    applied = 0
    for delta in deltas:
        # Later deltas in a random chain may reference keys a previous
        # delta deleted; skip those — path equivalence only concerns
        # deltas that actually apply.
        try:
            catalog.apply_delta("goods", delta)
        except Exception:
            continue
        direct, _ = direct.apply_delta(delta)
        applied += 1
    assert catalog.version == v0 + applied
    chained = catalog.relation("goods")
    assert relation_fingerprint(chained) == relation_fingerprint(direct)
    for name in direct.column_names:
        np.testing.assert_array_equal(
            chained.column(name), direct.column(name)
        )


# --- solve-level golden pin (portfolio/Q1 after a fixed delta) ---------------

SPEC = get_query("portfolio", "Q1")
GOLDEN_OBJECTIVE = 3.5451605465634253
GOLDEN_PACKAGE = {5: 4, 41: 13}
_FIXED_DELTA = {
    "inserts": [
        {
            "stock": 60,
            "price": 4.5,
            "drift": 0.001,
            "volatility": 0.02,
            "sell_in_days": 1,
        }
    ],
    "updates": {3: {"price": 18.0}},
    "deletes": [117],
}


def _golden_config(n_workers: int) -> SPQConfig:
    return SPQConfig(
        seed=99,
        n_validation_scenarios=400,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=60,
        n_expectation_scenarios=200,
        epsilon=0.5,
        solver_time_limit=10.0,
        time_limit=60.0,
        n_workers=n_workers,
    )


@pytest.mark.parametrize("n_workers", [1, 2])
def test_golden_package_after_fixed_delta(n_workers):
    relation, model = build_portfolio(PortfolioParams(n_stocks=60, seed=7))
    catalog = Catalog()
    catalog.register(relation, model)
    catalog.apply_delta("stock_investments", RelationDelta(**_FIXED_DELTA))
    engine = SPQEngine(catalog, _golden_config(n_workers))
    result = engine.execute(SPEC.spaql)
    assert result.feasible
    assert result.package.key_multiplicities() == GOLDEN_PACKAGE
    assert result.objective == pytest.approx(GOLDEN_OBJECTIVE, rel=1e-12)


def test_golden_package_matches_rebuild_from_scratch():
    relation, model = build_portfolio(PortfolioParams(n_stocks=60, seed=7))
    post, _ = relation.apply_delta(RelationDelta(**_FIXED_DELTA))
    from repro.mcdb import StochasticModel

    rebuilt_model = StochasticModel(
        post,
        {
            attr: model.vg(attr).unbound_copy()
            for attr in model.attribute_names
        },
    )
    catalog = Catalog()
    catalog.register(post, rebuilt_model)
    engine = SPQEngine(catalog, _golden_config(1))
    result = engine.execute(SPEC.spaql)
    assert result.feasible
    assert result.package.key_multiplicities() == GOLDEN_PACKAGE
    assert result.objective == pytest.approx(GOLDEN_OBJECTIVE, rel=1e-12)
