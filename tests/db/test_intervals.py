"""Interval arithmetic: soundness against sampled realizations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.db.expressions import Attr, BinOp, Const, FuncCall, UnaryOp, parse_expression
from repro.db.intervals import IntervalError, evaluate_interval


def _support(bounds: dict):
    def resolver(name):
        lo, hi = bounds[name]
        return np.asarray(lo, dtype=float), np.asarray(hi, dtype=float)

    return resolver


def test_constant_and_attr():
    lo, hi = evaluate_interval(Const(3), _support({}))
    assert lo == hi == 3.0
    lo, hi = evaluate_interval(Attr("x"), _support({"x": ([1.0], [2.0])}))
    assert lo.tolist() == [1.0] and hi.tolist() == [2.0]


def test_negation_flips():
    lo, hi = evaluate_interval(
        UnaryOp("-", Attr("x")), _support({"x": ([1.0], [2.0])})
    )
    assert lo.tolist() == [-2.0] and hi.tolist() == [-1.0]


def test_division_by_zero_straddling_interval_rejected():
    with pytest.raises(IntervalError):
        evaluate_interval(
            BinOp("/", Const(1), Attr("x")), _support({"x": ([-1.0], [1.0])})
        )


def test_even_power_straddling_zero_has_zero_min():
    lo, hi = evaluate_interval(
        BinOp("^", Attr("x"), Const(2)), _support({"x": ([-3.0], [2.0])})
    )
    assert lo.tolist() == [0.0] and hi.tolist() == [9.0]


def test_abs_straddling_zero():
    lo, hi = evaluate_interval(
        FuncCall("abs", (Attr("x"),)), _support({"x": ([-3.0], [2.0])})
    )
    assert lo.tolist() == [0.0] and hi.tolist() == [3.0]


def test_unsupported_function_rejected():
    with pytest.raises(IntervalError):
        evaluate_interval(FuncCall("floor", (Attr("x"),)), _support({"x": ([0.0], [1.0])}))


def test_sqrt_of_negative_interval_rejected():
    with pytest.raises(IntervalError):
        evaluate_interval(FuncCall("sqrt", (Attr("x"),)), _support({"x": ([-1.0], [1.0])}))


def test_fractional_exponent_rejected():
    with pytest.raises(IntervalError):
        evaluate_interval(
            BinOp("^", Attr("x"), Const(0.5)), _support({"x": ([1.0], [2.0])})
        )


EXPRESSIONS = [
    "x + y",
    "x - y",
    "x * y",
    "2 * x - 3 * y + 1",
    "abs(x) + y",
    "x ^ 2",
    "x ^ 3",
    "-x * y",
    "exp(x / 10)",
]


@given(
    text=st.sampled_from(EXPRESSIONS),
    x_lo=st.floats(-5, 5, allow_nan=False),
    x_width=st.floats(0, 5, allow_nan=False),
    y_lo=st.floats(-5, 5, allow_nan=False),
    y_width=st.floats(0, 5, allow_nan=False),
    data=st.data(),
)
def test_interval_encloses_sampled_values(text, x_lo, x_width, y_lo, y_width, data):
    """Soundness: every realization within the supports evaluates inside
    the computed interval (this is the property Appendix B's (A1) bounds
    rely on)."""
    expr = parse_expression(text)
    support = _support(
        {"x": ([x_lo], [x_lo + x_width]), "y": ([y_lo], [y_lo + y_width])}
    )
    lo, hi = evaluate_interval(expr, support)
    x = data.draw(st.floats(x_lo, x_lo + x_width, allow_nan=False))
    y = data.draw(st.floats(y_lo, y_lo + y_width, allow_nan=False))
    from repro.db.expressions import evaluate

    value = float(evaluate(expr, {"x": np.array([x]), "y": np.array([y])})[0])
    tolerance = 1e-7 * max(1.0, abs(value))
    assert lo[0] - tolerance <= value <= hi[0] + tolerance
