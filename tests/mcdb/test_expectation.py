"""Expectation precomputation (Section 3.2)."""

import numpy as np
import pytest

from repro.config import SPQConfig
from repro.db.expressions import Attr, BinOp, Const, parse_expression
from repro.db.relation import Relation
from repro.mcdb import GaussianNoiseVG, ParetoNoiseVG, StochasticModel
from repro.mcdb.expectation import ExpectationEstimator


def _config(n=800, analytic=True):
    return SPQConfig(
        n_expectation_scenarios=n,
        analytic_expectations=analytic,
        seed=7,
    )


def test_analytic_mean_used_when_available(items_model):
    estimator = ExpectationEstimator(items_model, _config())
    mean = estimator.attribute_mean("Value")
    assert np.allclose(mean, items_model.relation.column("price"))


def test_monte_carlo_when_analytic_disabled(items_model):
    estimator = ExpectationEstimator(items_model, _config(analytic=False))
    mean = estimator.attribute_mean("Value")
    exact = items_model.relation.column("price")
    assert not np.allclose(mean, exact)  # sampled, not exact
    assert np.allclose(mean, exact, atol=0.2)


def test_pareto_shape_one_falls_back_to_monte_carlo():
    relation = Relation("t", {"base": [10.0, 12.0]})
    model = StochasticModel(relation, {"X": ParetoNoiseVG("base", 1.0, 1.0)})
    estimator = ExpectationEstimator(model, _config())
    mean = estimator.attribute_mean("X")
    # Pareto(1,1) noise has no finite mean: the estimate is the empirical
    # average, which must exceed base + scale.
    assert np.all(mean > relation.column("base") + 1.0)


def test_deterministic_expression_exact(items_model):
    estimator = ExpectationEstimator(items_model, _config())
    mean = estimator.expression_mean(parse_expression("price * 2 + weight"))
    relation = items_model.relation
    assert np.allclose(mean, relation.column("price") * 2 + relation.column("weight"))


def test_affine_expression_uses_linearity(items_model):
    estimator = ExpectationEstimator(items_model, _config())
    mean = estimator.expression_mean(parse_expression("3 * Value - price"))
    exact = 3 * items_model.relation.column("price") - items_model.relation.column(
        "price"
    )
    # Linearity + analytic attribute mean: exact, no Monte Carlo error.
    assert np.allclose(mean, exact)


def test_nonlinear_expression_uses_monte_carlo(items_model):
    estimator = ExpectationEstimator(items_model, _config(n=4000))
    mean = estimator.expression_mean(parse_expression("Value ^ 2"))
    # E[V^2] = price^2 + sigma^2 for V ~ N(price, 1).
    exact = items_model.relation.column("price") ** 2 + 1.0
    assert np.allclose(mean, exact, rtol=0.08)


def test_expression_means_cached(items_model):
    estimator = ExpectationEstimator(items_model, _config())
    expr = parse_expression("Value + 1")
    first = estimator.expression_mean(expr)
    second = estimator.expression_mean(expr)
    assert first is second


def test_constant_expression_broadcast(items_model):
    estimator = ExpectationEstimator(items_model, _config())
    mean = estimator.expression_mean(Const(1))
    assert mean.shape == (5,)
    assert np.all(mean == 1.0)
