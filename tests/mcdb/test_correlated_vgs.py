"""Behavior of the correlated VG families: copula, mixture, bootstrap."""

import numpy as np
import pytest

from repro.config import STREAM_OPTIMIZATION
from repro.db.relation import Relation
from repro.errors import VGFunctionError
from repro.mcdb import (
    EmpiricalBootstrapVG,
    GaussianCopulaVG,
    GaussianNoiseVG,
    MixtureVG,
    ScenarioGenerator,
    StochasticModel,
)
from repro.mcdb.copula import cholesky_correlation, equicorrelation_matrix
from repro.mcdb.scenarios import MODE_TUPLE_WISE


@pytest.fixture
def sectors() -> Relation:
    """Eight rows in two sectors with per-row scales and a history."""
    rng = np.random.default_rng(5)
    n, n_obs = 8, 40
    base = np.linspace(1.0, 8.0, n)
    sd = np.linspace(0.5, 1.2, n)
    sector = np.array(["a", "b"] * 4, dtype=object)
    # History with strong within-sector co-movement.
    shared = rng.normal(size=(2, n_obs))
    own = rng.normal(size=(n, n_obs))
    z = 0.9 * shared[(sector == "b").astype(int)] + np.sqrt(1 - 0.81) * own
    columns = {
        "sector": sector,
        "exp_gain": base,
        "gain_sd": sd,
    }
    for d in range(n_obs):
        columns[f"h{d}"] = base + sd * z[:, d]
    return Relation("t", columns)


def _matrix(relation, vg, n=4000, seed=3, mode="scenario"):
    model = StochasticModel(relation, {"X": vg})
    generator = ScenarioGenerator(model, seed, STREAM_OPTIMIZATION, mode=mode)
    return generator.matrix("X", n)


# --- GaussianCopulaVG --------------------------------------------------------


def test_copula_equicorrelation_structure(sectors):
    vg = GaussianCopulaVG(
        "exp_gain", scale="gain_sd", rho=0.8, group_column="sector"
    )
    matrix = _matrix(sectors, vg)
    same = np.corrcoef(matrix[0], matrix[2])[0, 1]  # both sector a
    cross = np.corrcoef(matrix[0], matrix[1])[0, 1]  # a vs b
    assert same == pytest.approx(0.8, abs=0.1)
    assert cross == pytest.approx(0.0, abs=0.1)
    # Marginals: mean ~ base, sd ~ scale.
    assert matrix.mean(axis=1) == pytest.approx(
        sectors.column("exp_gain"), abs=0.1
    )
    assert matrix.std(axis=1) == pytest.approx(
        np.asarray(sectors.column("gain_sd"), dtype=float), rel=0.15
    )


def test_copula_rho_zero_is_independent(sectors):
    vg = GaussianCopulaVG(
        "exp_gain", scale="gain_sd", rho=0.0, group_column="sector"
    )
    matrix = _matrix(sectors, vg)
    assert abs(np.corrcoef(matrix[0], matrix[2])[0, 1]) < 0.1


def test_copula_negative_rho_via_cholesky(sectors):
    vg = GaussianCopulaVG(
        "exp_gain", scale="gain_sd", rho=-0.2, group_column="sector"
    )
    matrix = _matrix(sectors, vg)
    assert np.corrcoef(matrix[0], matrix[2])[0, 1] == pytest.approx(-0.2, abs=0.1)


def test_copula_negative_rho_infeasible_for_block_size(sectors):
    # rho < -1/(k-1) with k=4 is not a valid correlation structure.
    vg = GaussianCopulaVG("exp_gain", rho=-0.9, group_column="sector")
    with pytest.raises(VGFunctionError, match="positive semi-definite"):
        StochasticModel(sectors, {"X": vg})


def test_copula_explicit_matrix_and_size_mismatch(sectors):
    matrix_corr = equicorrelation_matrix(4, 0.6)
    vg = GaussianCopulaVG(
        "exp_gain", scale=1.0, correlation=matrix_corr, group_column="sector"
    )
    realized = _matrix(sectors, vg)
    assert np.corrcoef(realized[0], realized[2])[0, 1] == pytest.approx(
        0.6, abs=0.1
    )
    wrong = GaussianCopulaVG(
        "exp_gain", correlation=equicorrelation_matrix(3, 0.6),
        group_column="sector",
    )
    with pytest.raises(VGFunctionError, match="3x3"):
        StochasticModel(sectors, {"Y": wrong})


def test_copula_history_estimated_correlation(sectors):
    history = [f"h{d}" for d in range(40)]
    vg = GaussianCopulaVG(
        "exp_gain", scale="gain_sd", history_columns=history,
        group_column="sector",
    )
    matrix = _matrix(sectors, vg)
    # The history was generated with within-sector corr ~0.81.
    assert np.corrcoef(matrix[0], matrix[2])[0, 1] > 0.5
    assert abs(np.corrcoef(matrix[0], matrix[1])[0, 1]) < 0.25


def test_copula_whole_relation_block_and_mean(sectors):
    vg = GaussianCopulaVG("exp_gain", scale=0.5, rho=0.9)
    model = StochasticModel(sectors, {"X": vg})
    assert model.vg("X").n_blocks == 1
    assert model.mean("X") == pytest.approx(sectors.column("exp_gain"))


def test_copula_parameter_validation(sectors):
    with pytest.raises(VGFunctionError, match="exactly one"):
        GaussianCopulaVG("exp_gain", rho=0.5, correlation=np.eye(2))
    with pytest.raises(VGFunctionError, match=r"\[-1, 1\]"):
        GaussianCopulaVG("exp_gain", rho=1.5)
    with pytest.raises(VGFunctionError, match="nonnegative"):
        StochasticModel(
            sectors, {"X": GaussianCopulaVG("exp_gain", scale=-1.0)}
        )


def test_cholesky_correlation_rejects_garbage():
    with pytest.raises(VGFunctionError, match="unit diagonal"):
        cholesky_correlation(2.0 * np.eye(3), "test matrix")
    with pytest.raises(VGFunctionError, match="square"):
        cholesky_correlation(np.ones((2, 3)), "test matrix")
    # A singular-but-valid PSD matrix factors via the jitter ladder.
    singular = np.ones((3, 3))
    factor = cholesky_correlation(singular, "test matrix")
    assert np.allclose(factor @ factor.T, singular, atol=1e-4)


# --- MixtureVG ---------------------------------------------------------------


def test_shared_mixture_is_one_block_with_composed_mean(sectors):
    components = [
        GaussianNoiseVG("exp_gain", 0.1),
        GaussianNoiseVG("gain_sd", 0.1),
    ]
    mix = MixtureVG(components, weights=[0.25, 0.75])
    model = StochasticModel(sectors, {"X": mix})
    assert model.vg("X").n_blocks == 1
    expected = 0.25 * np.asarray(sectors.column("exp_gain")) + 0.75 * np.asarray(
        sectors.column("gain_sd")
    )
    assert model.mean("X") == pytest.approx(expected)
    matrix = _matrix(sectors, mix, n=3000)
    assert matrix.mean(axis=1) == pytest.approx(expected, abs=0.15)


def test_shared_mixture_regime_correlates_rows(sectors):
    # Two constant-ish regimes far apart: all rows move together.
    mix = MixtureVG(
        [
            GaussianNoiseVG("exp_gain", 0.01),
            GaussianNoiseVG("gain_sd", 0.01),
        ],
        weights=[0.5, 0.5],
    )
    matrix = _matrix(sectors, mix, n=2000)
    assert np.corrcoef(matrix[0], matrix[5])[0, 1] > 0.9


def test_per_row_mixture_requires_independent_components(sectors):
    correlated = GaussianCopulaVG("exp_gain", rho=0.5, group_column="sector")
    mix = MixtureVG([GaussianNoiseVG("exp_gain", 1.0), correlated], shared=False)
    with pytest.raises(VGFunctionError, match="per-row independent"):
        StochasticModel(sectors, {"X": mix})


def test_per_row_mixture_blocks_and_distribution(sectors):
    mix = MixtureVG(
        [GaussianNoiseVG("exp_gain", 0.05), GaussianNoiseVG("exp_gain", 3.0)],
        weights=[0.9, 0.1],
        shared=False,
    )
    model = StochasticModel(sectors, {"X": mix})
    assert model.vg("X").n_blocks == sectors.n_rows
    matrix = _matrix(sectors, mix, n=4000, mode=MODE_TUPLE_WISE)
    # Rows are independent: regime draws do not co-move across rows.
    assert abs(np.corrcoef(matrix[0], matrix[1])[0, 1]) < 0.1
    assert matrix.mean(axis=1) == pytest.approx(
        sectors.column("exp_gain"), abs=0.2
    )


def test_mixture_support_envelope(sectors):
    mix = MixtureVG(
        [
            EmpiricalBootstrapVG("exp_gain", ["h0", "h1", "h2"]),
            EmpiricalBootstrapVG("exp_gain", ["h3", "h4"]),
        ]
    )
    model = StochasticModel(sectors, {"X": mix})
    lo, hi = model.support("X")
    los = [c.support()[0] for c in mix.components]
    his = [c.support()[1] for c in mix.components]
    assert lo == pytest.approx(np.minimum(*los))
    assert hi == pytest.approx(np.maximum(*his))


def test_mixture_validation():
    with pytest.raises(VGFunctionError, match="at least one"):
        MixtureVG([])
    with pytest.raises(VGFunctionError, match="VGFunction"):
        MixtureVG(["not a vg"])
    with pytest.raises(VGFunctionError, match="match"):
        MixtureVG([GaussianNoiseVG("a", 1.0)], weights=[0.5, 0.5])
    with pytest.raises(VGFunctionError, match="nonnegative"):
        MixtureVG(
            [GaussianNoiseVG("a", 1.0), GaussianNoiseVG("a", 2.0)],
            weights=[1.0, -1.0],
        )


# --- EmpiricalBootstrapVG ----------------------------------------------------


def test_empirical_bootstrap_resamples_recentred_residuals(sectors):
    history = [f"h{d}" for d in range(40)]
    vg = EmpiricalBootstrapVG("exp_gain", history, joint=True)
    model = StochasticModel(sectors, {"X": vg})
    # Residuals recenter on the base column exactly.
    assert model.mean("X") == pytest.approx(sectors.column("exp_gain"))
    bound = model.vg("X")
    assert bound.observations.shape == (sectors.n_rows, 40)
    # Every realized scenario is one of the historical residual columns.
    matrix = _matrix(sectors, vg, n=50)
    for j in range(matrix.shape[1]):
        assert any(
            np.allclose(matrix[:, j], bound.observations[:, d])
            for d in range(40)
        )


def test_empirical_bootstrap_joint_preserves_comovement(sectors):
    history = [f"h{d}" for d in range(40)]
    joint = _matrix(
        sectors, EmpiricalBootstrapVG("exp_gain", history, joint=True), n=3000
    )
    marginal = _matrix(
        sectors, EmpiricalBootstrapVG("exp_gain", history, joint=False), n=3000
    )
    # The history co-moves within sectors; joint resampling keeps that,
    # per-row resampling destroys it.
    assert np.corrcoef(joint[0], joint[2])[0, 1] > 0.5
    assert abs(np.corrcoef(marginal[0], marginal[2])[0, 1]) < 0.15


def test_empirical_bootstrap_needs_two_columns():
    with pytest.raises(VGFunctionError, match="at least two"):
        EmpiricalBootstrapVG("exp_gain", ["h0"])


def test_copula_bare_string_history_column_is_one_column(sectors):
    """A bare string is one column name, not an iterable of characters;
    one observation column is too few to estimate a correlation."""
    vg = GaussianCopulaVG("exp_gain", history_columns="h0")
    assert vg.history_columns == ("h0",)
    with pytest.raises(VGFunctionError, match="at least two"):
        StochasticModel(sectors, {"X": vg})


def test_new_vgs_unbound_mean_raises_vg_error(sectors):
    with pytest.raises(VGFunctionError, match="bound"):
        GaussianCopulaVG("exp_gain", rho=0.5).mean()
    with pytest.raises(VGFunctionError, match="bound"):
        EmpiricalBootstrapVG("exp_gain", ["h0", "h1"]).mean()
    with pytest.raises(VGFunctionError, match="bound"):
        EmpiricalBootstrapVG("exp_gain", ["h0", "h1"]).support()
