"""Correlated VG models through the full scenario/validation stack."""

import numpy as np
import pytest

from repro import Catalog, SPQConfig
from repro.config import STREAM_OPTIMIZATION
from repro.core.context import EvaluationContext
from repro.core.validator import Validator
from repro.mcdb.scenarios import MODE_TUPLE_WISE, ScenarioGenerator
from repro.silp.compile import compile_query


def test_gbm_blocks_survive_tuple_mode_restriction(portfolio_toy):
    """Restricting generation to one row of a correlated stock block
    still reproduces the full-matrix values for that row."""
    _, model = portfolio_toy
    generator = ScenarioGenerator(
        model, seed=3, stream=STREAM_OPTIMIZATION, mode=MODE_TUPLE_WISE
    )
    full = generator.matrix("Gain", 16)
    # Row 1 is AAPL's 1-week tuple; generating just that row must pull in
    # its whole block deterministically.
    restricted = generator.matrix("Gain", 16, rows=np.array([1]))
    assert np.array_equal(restricted[0], full[1])


def test_gbm_one_day_and_week_gains_comove(portfolio_toy):
    _, model = portfolio_toy
    generator = ScenarioGenerator(model, seed=3, stream=STREAM_OPTIMIZATION)
    matrix = generator.matrix("Gain", 3000)
    same_stock = np.corrcoef(matrix[4], matrix[5])[0, 1]  # TSLA 1d vs 1wk
    cross = np.corrcoef(matrix[0], matrix[4])[0, 1]  # AAPL vs TSLA
    assert same_stock > 0.25
    assert abs(cross) < 0.1


def test_portfolio_toy_end_to_end(portfolio_toy, fast_config):
    relation, model = portfolio_toy
    catalog = Catalog()
    catalog.register(relation, model)
    problem = compile_query(
        "SELECT PACKAGE(*) FROM stock_investments SUCH THAT"
        " SUM(price) <= 600 AND"
        " SUM(Gain) >= -15 WITH PROBABILITY >= 0.9"
        " MAXIMIZE EXPECTED SUM(Gain)",
        catalog,
    )
    from repro.core.summarysearch import summary_search_evaluate

    result = summary_search_evaluate(problem, fast_config)
    assert result.feasible
    assert result.package.deterministic_total("price") <= 600


def test_discrete_variants_through_validator(variants_model, fast_config):
    relation, model = variants_model
    catalog = Catalog()
    catalog.register(relation, model)
    problem = compile_query(
        "SELECT PACKAGE(*) FROM orders SUCH THAT COUNT(*) <= 2 AND"
        " SUM(Quantity) <= 7 WITH PROBABILITY >= 0.6",
        catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    validator = Validator(ctx)
    # Row 2's variants are {8, 9, 10}: alone it never satisfies <= 7.
    report = validator.validate(np.array([0, 0, 1, 0]))
    assert report.items[0].satisfied_fraction == 0.0
    # Row 0's variants are {1, 2, 3}: always satisfies <= 7.
    report = validator.validate(np.array([1, 0, 0, 0]))
    assert report.items[0].satisfied_fraction == 1.0
    # Rows 0+1: sum ranges over {5..9}; P(<= 7) = P(v0 + v1 <= 7) with
    # independent uniform picks = 6/9.
    report = validator.validate(np.array([1, 1, 0, 0]))
    assert report.items[0].satisfied_fraction == pytest.approx(6 / 9, abs=0.05)
