"""VG-function framework: binding, blocks, shape checking."""

import numpy as np
import pytest

from repro.db.relation import Relation
from repro.errors import VGFunctionError
from repro.mcdb.vg import VGFunction, grouped_blocks
from repro.utils.rngkeys import make_generator


class ConstantVG(VGFunction):
    """Trivial VG returning a fixed value; used to probe the base class."""

    def __init__(self, value: float = 1.0):
        super().__init__()
        self.value = value

    def _sample_block(self, block_index, rng, size):
        rows = self.blocks[block_index]
        return np.full((len(rows), size), self.value)


class BadShapeVG(ConstantVG):
    def _sample_block(self, block_index, rng, size):
        return np.zeros((1, 1))


class OverlappingBlocksVG(ConstantVG):
    def _build_blocks(self, relation):
        return [np.array([0, 1]), np.array([1, 2])]


class IncompleteBlocksVG(ConstantVG):
    def _build_blocks(self, relation):
        return [np.array([0])]


@pytest.fixture
def relation():
    return Relation("t", {"v": [1.0, 2.0, 3.0]})


def test_unbound_usage_rejected(relation):
    vg = ConstantVG()
    with pytest.raises(VGFunctionError):
        _ = vg.n_rows
    with pytest.raises(VGFunctionError):
        vg.sample_all(make_generator(0, 0))


def test_default_blocks_are_singletons(relation):
    vg = ConstantVG().bind(relation)
    assert vg.n_blocks == 3
    assert all(len(b) == 1 for b in vg.blocks)
    assert vg.block_of_rows(np.array([2, 0])).tolist() == [2, 0]


def test_sample_all_default_loops_blocks(relation):
    vg = ConstantVG(7.0).bind(relation)
    out = vg.sample_all(make_generator(0, 0))
    assert out.tolist() == [7.0, 7.0, 7.0]


def test_sample_block_shape_checked(relation):
    vg = BadShapeVG().bind(relation)
    with pytest.raises(VGFunctionError, match="shape"):
        vg.sample_block(0, make_generator(0, 0), 4)


def test_overlapping_blocks_rejected(relation):
    with pytest.raises(VGFunctionError, match="disjoint"):
        OverlappingBlocksVG().bind(relation)


def test_incomplete_blocks_rejected(relation):
    with pytest.raises(VGFunctionError, match="cover"):
        IncompleteBlocksVG().bind(relation)


def test_default_support_is_unbounded(relation):
    vg = ConstantVG().bind(relation)
    lo, hi = vg.support()
    assert np.all(np.isinf(lo)) and np.all(np.isinf(hi))
    assert vg.mean() is None


def test_grouped_blocks_by_value():
    blocks = grouped_blocks(np.array(["x", "y", "x", "z", "y"], dtype=object))
    assert [b.tolist() for b in blocks] == [[0, 2], [1, 4], [3]]


def test_grouped_blocks_preserve_first_occurrence_order():
    blocks = grouped_blocks(np.array([5, 3, 5]))
    assert blocks[0].tolist() == [0, 2]
    assert blocks[1].tolist() == [1]
