"""Geometric Brownian motion VG: correlation, means, fast path."""

import numpy as np
import pytest

from repro.db.relation import Relation
from repro.errors import VGFunctionError
from repro.mcdb.gbm import GeometricBrownianMotionVG
from repro.utils.rngkeys import make_generator


def _relation(horizons=(1.0, 7.0), n_stocks=3, vol=0.02, drift=0.001):
    n_h = len(horizons)
    return Relation(
        "trades",
        {
            "stock": np.repeat([f"S{i}" for i in range(n_stocks)], n_h),
            "price": np.repeat(np.array([100.0, 150.0, 80.0])[:n_stocks], n_h),
            "drift": np.full(n_stocks * n_h, drift),
            "volatility": np.full(n_stocks * n_h, vol),
            "sell_in_days": np.tile(np.asarray(horizons, dtype=float), n_stocks),
        },
    )


def _bound(relation):
    return GeometricBrownianMotionVG(group_column="stock").bind(relation)


def test_blocks_group_by_stock():
    vg = _bound(_relation())
    assert vg.n_blocks == 3
    assert vg.blocks[0].tolist() == [0, 1]


def test_closed_form_mean():
    relation = _relation()
    vg = _bound(relation)
    price = relation.column("price")
    drift = relation.column("drift")
    horizon = relation.column("sell_in_days")
    expected = price * (np.exp(drift * horizon) - 1.0)
    assert np.allclose(vg.mean(), expected)


def test_mean_matches_monte_carlo():
    vg = _bound(_relation(vol=0.03))
    rng = make_generator(0, 0)
    samples = np.stack([vg.sample_all(rng) for _ in range(20_000)])
    assert np.allclose(samples.mean(axis=0), vg.mean(), atol=0.25)


def test_gain_bounded_below_by_negative_price():
    relation = _relation(vol=0.5)  # extreme volatility stresses the bound
    vg = _bound(relation)
    lo, hi = vg.support()
    assert np.allclose(lo, -relation.column("price"))
    rng = make_generator(1, 0)
    samples = np.stack([vg.sample_all(rng) for _ in range(500)])
    assert np.all(samples > lo[None, :])


def test_same_stock_horizons_share_path():
    """1-day and 7-day gains of one stock use one Brownian path: their
    correlation must be strongly positive, and (same-sign) co-movement
    must hold far more often than for independent draws."""
    vg = _bound(_relation(vol=0.05, drift=0.0))
    rng = make_generator(2, 0)
    samples = np.stack([vg.sample_all(rng) for _ in range(4000)])
    same_stock = np.corrcoef(samples[:, 0], samples[:, 1])[0, 1]
    cross_stock = np.corrcoef(samples[:, 0], samples[:, 2])[0, 1]
    assert same_stock > 0.3  # W(1) is a component of W(7)
    assert abs(cross_stock) < 0.1


def test_uniform_grid_fast_path_detected_and_consistent():
    relation = _relation()
    vg = _bound(relation)
    assert vg._uniform is not None
    # Means from the vectorized path agree with the per-block path.
    rng_a = make_generator(3, 0)
    fast = np.stack([vg.sample_all(rng_a) for _ in range(6000)])
    block = np.concatenate(
        [vg.sample_block(b, make_generator(4, 0, b), 6000).mean(axis=1)
         for b in range(vg.n_blocks)]
    )
    assert np.allclose(fast.mean(axis=0), block, atol=0.3)


def test_non_uniform_grid_falls_back():
    relation = Relation(
        "trades",
        {
            "stock": ["A", "A", "B"],
            "price": [100.0, 100.0, 90.0],
            "drift": [0.001, 0.001, 0.001],
            "volatility": [0.02, 0.02, 0.02],
            "sell_in_days": [1.0, 3.0, 2.0],
        },
    )
    vg = _bound(relation)
    assert vg._uniform is None
    out = vg.sample_all(make_generator(0, 0))
    assert out.shape == (3,)


def test_validation_errors():
    bad_price = Relation(
        "t", {"stock": ["A"], "price": [-1.0], "drift": [0.0],
              "volatility": [0.1], "sell_in_days": [1.0]}
    )
    with pytest.raises(VGFunctionError):
        _bound(bad_price)
    bad_horizon = Relation(
        "t", {"stock": ["A"], "price": [10.0], "drift": [0.0],
              "volatility": [0.1], "sell_in_days": [0.0]}
    )
    with pytest.raises(VGFunctionError):
        _bound(bad_horizon)


def test_inconsistent_group_parameters_rejected():
    relation = Relation(
        "t",
        {
            "stock": ["A", "A"],
            "price": [10.0, 10.0],
            "drift": [0.0, 0.001],  # drift differs within the stock
            "volatility": [0.1, 0.1],
            "sell_in_days": [1.0, 2.0],
        },
    )
    with pytest.raises(VGFunctionError, match="constant within"):
        _bound(relation)
