"""VG registry: named construction, textual specs, parameter fingerprints."""

import numpy as np
import pytest

from repro.config import STREAM_OPTIMIZATION
from repro.db.relation import Relation
from repro.errors import VGFunctionError
from repro.mcdb import (
    GaussianCopulaVG,
    GaussianNoiseVG,
    MixtureVG,
    ScenarioGenerator,
    StochasticModel,
    apply_vg_overrides,
    make_vg,
    parse_vg_expr,
    register_vg,
    vg_names,
)
from repro.mcdb.vg import VGFunction, _parse_param_value
from repro.service.store import ScenarioStore, model_fingerprint, store_key
from repro.silp.compile import compile_query


@pytest.fixture
def relation():
    return Relation(
        "t",
        {
            "sector": ["a", "a", "b", "b"],
            "exp_gain": [1.0, 2.0, 3.0, 4.0],
            "gain_sd": [0.5, 0.5, 1.0, 1.0],
        },
    )


# --- registry mechanics ------------------------------------------------------


def test_builtin_families_are_registered():
    names = vg_names()
    assert {
        "gaussian", "pareto", "uniform", "exponential", "student_t", "gbm",
        "bootstrap", "discrete", "empirical_bootstrap", "gaussian_copula",
        "mixture",
    } <= set(names)
    assert names == sorted(names)


def test_make_vg_constructs_by_name(relation):
    vg = make_vg("gaussian", base_column="exp_gain", sigma=2.0)
    assert isinstance(vg, GaussianNoiseVG)
    model = StochasticModel(relation, {"V": vg})
    assert model.is_stochastic("V")


def test_make_vg_unknown_family():
    with pytest.raises(VGFunctionError, match="unknown VG family"):
        make_vg("not_a_family")


def test_make_vg_bad_parameters_name_the_family():
    with pytest.raises(VGFunctionError, match="gaussian"):
        make_vg("gaussian", bogus_param=1.0)


def test_duplicate_registration_rejected():
    with pytest.raises(VGFunctionError, match="already registered"):

        @register_vg("gaussian")
        class Impostor(VGFunction):  # pragma: no cover - never constructed
            def _sample_block(self, block_index, rng, size):
                raise NotImplementedError

    # Re-decorating the same class is a no-op (module reload safety).
    from repro.mcdb.distributions import GaussianNoiseVG as Original

    assert register_vg("gaussian")(Original) is Original


def test_reload_style_reregistration_replaces_entry():
    """A fresh same-named class from the same module — what
    ``importlib.reload`` produces — replaces the entry instead of
    raising."""
    from repro.mcdb import distributions
    from repro.mcdb.vg import _VG_REGISTRY

    original = distributions.GaussianNoiseVG

    class Reloaded(original):  # pragma: no cover - never sampled
        pass

    Reloaded.__module__ = original.__module__
    Reloaded.__qualname__ = original.__qualname__
    try:
        assert register_vg("gaussian")(Reloaded) is Reloaded
        assert _VG_REGISTRY["gaussian"] is Reloaded
    finally:
        register_vg("gaussian")(original)
        assert _VG_REGISTRY["gaussian"] is original


# --- textual specs -----------------------------------------------------------


def test_parse_vg_expr_types_and_lists(relation):
    vg = parse_vg_expr(
        "gaussian_copula:base_column=exp_gain,scale=gain_sd,rho=0.5,"
        "group_column=sector"
    )
    assert isinstance(vg, GaussianCopulaVG)
    assert vg.rho == 0.5 and vg.scale == "gain_sd"
    vg.bind(relation)
    assert vg.n_blocks == 2  # grouped by sector


@pytest.mark.parametrize(
    "raw,expected",
    [
        ("3", 3),
        ("0.25", 0.25),
        ("true", True),
        ("false", False),
        ("none", None),
        ("price", "price"),
        ("a+b+c", ["a", "b", "c"]),
        ("1e+3", 1000.0),  # scientific notation is a number, not a list
        ("+5", 5),
    ],
)
def test_param_value_parsing(raw, expected):
    assert _parse_param_value(raw) == expected


def test_make_vg_wraps_constructor_value_errors():
    with pytest.raises(VGFunctionError, match="gaussian_copula"):
        make_vg("gaussian_copula", base_column="exp_gain", rho="abc")


@pytest.mark.parametrize(
    "text", ["", ":", "gaussian:sigma", "gaussian:=2", "nope:x=1"]
)
def test_parse_vg_expr_rejects_malformed(text):
    with pytest.raises(VGFunctionError):
        parse_vg_expr(text)


def test_apply_vg_overrides_replaces_and_adds(relation):
    base = StochasticModel(
        relation, {"Gain": make_vg("gaussian", base_column="exp_gain", sigma=1.0)}
    )
    updated = apply_vg_overrides(
        relation,
        base,
        [
            "Gain=gaussian_copula:base_column=exp_gain,scale=gain_sd,"
            "rho=0.7,group_column=sector",
            "Extra=gaussian:base_column=gain_sd,sigma=0.1",
        ],
    )
    assert isinstance(updated.vg("Gain"), GaussianCopulaVG)
    assert updated.attribute_names == ["Extra", "Gain"]
    # Empty overrides hand back the original model object.
    assert apply_vg_overrides(relation, base, ()) is base


# --- parameter fingerprints --------------------------------------------------


def test_fingerprint_stable_across_binding(relation):
    vg = GaussianCopulaVG(
        "exp_gain", scale="gain_sd", rho=0.4, group_column="sector"
    )
    before = vg.params_fingerprint()
    vg.bind(relation)
    assert vg.params_fingerprint() == before
    # A fresh identically-parameterized instance fingerprints the same.
    twin = GaussianCopulaVG(
        "exp_gain", scale="gain_sd", rho=0.4, group_column="sector"
    )
    assert twin.params_fingerprint() == before


def test_fingerprint_distinguishes_params(relation):
    a = GaussianCopulaVG("exp_gain", rho=0.3, group_column="sector")
    b = GaussianCopulaVG("exp_gain", rho=0.5, group_column="sector")
    c = GaussianNoiseVG("exp_gain", 0.3)
    fingerprints = {v.params_fingerprint() for v in (a, b, c)}
    assert len(fingerprints) == 3


def test_fingerprint_covers_nested_components(relation):
    def mix(w):
        return MixtureVG(
            [
                GaussianCopulaVG("exp_gain", rho=0.1, group_column="sector"),
                GaussianCopulaVG("exp_gain", rho=0.9, group_column="sector"),
            ],
            weights=[w, 1 - w],
        )

    assert mix(0.8).params_fingerprint() == mix(0.8).params_fingerprint()
    assert mix(0.8).params_fingerprint() != mix(0.7).params_fingerprint()
    # A parameter change inside a component propagates to the mixture.
    deep = MixtureVG(
        [
            GaussianCopulaVG("exp_gain", rho=0.2, group_column="sector"),
            GaussianCopulaVG("exp_gain", rho=0.9, group_column="sector"),
        ],
        weights=[0.8, 0.2],
    )
    assert deep.params_fingerprint() != mix(0.8).params_fingerprint()


# --- store keys --------------------------------------------------------------


def _problem_expr(relation, model):
    from repro.db.catalog import Catalog

    catalog = Catalog()
    catalog.register(relation, model)
    problem = compile_query(
        "SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) <= 2 AND"
        " SUM(Gain) >= 1 WITH PROBABILITY >= 0.7",
        catalog,
    )
    return problem.chance_constraints[0].expr


def test_store_keys_distinct_for_param_changes(relation):
    """Two VGs differing only in a parameter never share store entries."""
    models = [
        StochasticModel(
            relation,
            {
                "Gain": GaussianCopulaVG(
                    "exp_gain", scale="gain_sd", rho=rho, group_column="sector"
                )
            },
        )
        for rho in (0.3, 0.5)
    ]
    assert model_fingerprint(models[0]) != model_fingerprint(models[1])
    keys = []
    with ScenarioStore() as store:
        for model in models:
            expr = _problem_expr(relation, model)
            generator = ScenarioGenerator(model, 11, STREAM_OPTIMIZATION)
            key = store_key(generator, expr)
            keys.append(key)
            store.coefficient_matrix(
                key, 4, lambda s, e, g=generator, x=expr: np.column_stack(
                    [g.coefficient_scenario(x, j) for j in range(s, e)]
                )
            )
        assert keys[0] != keys[1]
        stats = store.stats()
        # No false cache hit: both configurations generated their own entry.
        assert stats.entries == 2
        assert stats.misses == 2 and stats.hits == 0


def test_store_keys_shared_for_identical_params(relation):
    """Identical configurations (fresh instances) do share an entry."""

    def build():
        model = StochasticModel(
            relation,
            {
                "Gain": GaussianCopulaVG(
                    "exp_gain", scale="gain_sd", rho=0.4, group_column="sector"
                )
            },
        )
        return model, ScenarioGenerator(model, 11, STREAM_OPTIMIZATION)

    model_a, gen_a = build()
    model_b, gen_b = build()
    expr_a = _problem_expr(relation, model_a)
    expr_b = _problem_expr(relation, model_b)
    assert store_key(gen_a, expr_a) == store_key(gen_b, expr_b)
