"""Bootstrap (empirical resampling) VG function."""

import numpy as np
import pytest

from repro.db.relation import Relation
from repro.errors import VGFunctionError
from repro.mcdb.bootstrap import BootstrapVG
from repro.utils.rngkeys import make_generator

OBSERVATIONS = np.array(
    [
        [1.0, 2.0, 3.0, 4.0],
        [10.0, 20.0, 30.0, 40.0],
        [-1.0, -2.0, -3.0, -4.0],
    ]
)


@pytest.fixture
def relation():
    return Relation("t", {"name": ["a", "b", "c"]})


def test_joint_mode_is_one_block(relation):
    vg = BootstrapVG(OBSERVATIONS, joint=True).bind(relation)
    assert vg.n_blocks == 1


def test_independent_mode_singleton_blocks(relation):
    vg = BootstrapVG(OBSERVATIONS, joint=False).bind(relation)
    assert vg.n_blocks == 3


def test_joint_samples_are_historical_columns(relation):
    """Joint resampling preserves cross-tuple dependence: every scenario
    must be exactly one column of the history."""
    vg = BootstrapVG(OBSERVATIONS, joint=True).bind(relation)
    rng = make_generator(0, 0)
    columns = {tuple(c) for c in OBSERVATIONS.T}
    for _ in range(30):
        assert tuple(vg.sample_all(rng)) in columns


def test_independent_samples_break_columns(relation):
    vg = BootstrapVG(OBSERVATIONS, joint=False).bind(relation)
    rng = make_generator(1, 0)
    draws = {tuple(vg.sample_all(rng)) for _ in range(60)}
    columns = {tuple(c) for c in OBSERVATIONS.T}
    assert not draws.issubset(columns)  # mixes observations across rows
    for draw in draws:
        for i, value in enumerate(draw):
            assert value in OBSERVATIONS[i]


def test_exact_mean_and_support(relation):
    vg = BootstrapVG(OBSERVATIONS).bind(relation)
    assert np.allclose(vg.mean(), [2.5, 25.0, -2.5])
    lo, hi = vg.support()
    assert lo.tolist() == [1.0, 10.0, -4.0]
    assert hi.tolist() == [4.0, 40.0, -1.0]


def test_block_many_shapes(relation):
    vg = BootstrapVG(OBSERVATIONS, joint=True).bind(relation)
    values = vg.sample_block(0, make_generator(2, 0), 7)
    assert values.shape == (3, 7)


def test_validation_errors(relation):
    with pytest.raises(VGFunctionError):
        BootstrapVG(np.zeros(3))
    with pytest.raises(VGFunctionError):
        BootstrapVG(np.zeros((2, 4))).bind(relation)


def test_end_to_end_with_engine(relation, fast_config):
    from repro import Catalog, SPQEngine
    from repro.mcdb import StochasticModel

    rel = Relation("assets", {"cost": [3.0, 5.0, 2.0]})
    history = np.array(
        [
            [0.5, 1.5, 2.5, -0.5],
            [2.0, 4.0, -1.0, 3.0],
            [0.1, 0.2, 0.3, 0.4],
        ]
    )
    model = StochasticModel(rel, {"Return": BootstrapVG(history)})
    engine = SPQEngine(config=fast_config)
    engine.register(rel, model)
    result = engine.execute(
        "SELECT PACKAGE(*) FROM assets SUCH THAT COUNT(*) <= 2 AND"
        " SUM(Return) >= 0 WITH PROBABILITY >= 0.7"
        " MAXIMIZE EXPECTED SUM(Return)"
    )
    assert result.feasible
