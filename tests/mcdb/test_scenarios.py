"""Scenario generation: reproducibility, modes, caching, coefficients."""

import numpy as np
import pytest

from repro.config import STREAM_OPTIMIZATION, STREAM_VALIDATION
from repro.db.expressions import Attr, BinOp, Const, parse_expression
from repro.errors import EvaluationError
from repro.mcdb.scenarios import (
    MODE_SCENARIO_WISE,
    MODE_TUPLE_WISE,
    ScenarioCache,
    ScenarioGenerator,
    probe_value_bounds,
)


@pytest.fixture
def generator(items_model):
    return ScenarioGenerator(items_model, seed=1, stream=STREAM_OPTIMIZATION)


@pytest.fixture
def tuple_generator(items_model):
    return ScenarioGenerator(
        items_model, seed=1, stream=STREAM_OPTIMIZATION, mode=MODE_TUPLE_WISE
    )


def test_matrix_reproducible(generator):
    a = generator.matrix("Value", 10)
    b = generator.matrix("Value", 10)
    assert np.array_equal(a, b)


def test_scenario_wise_realize_matches_matrix_column(generator):
    matrix = generator.matrix("Value", 6)
    for j in (0, 3, 5):
        assert np.array_equal(generator.realize("Value", j), matrix[:, j])


def test_scenario_sets_prefix_stable_in_scenario_mode(generator):
    small = generator.matrix("Value", 4)
    large = generator.matrix("Value", 9)
    assert np.array_equal(large[:, :4], small)


def test_tuple_mode_requires_n_scenarios_for_realize(tuple_generator):
    with pytest.raises(EvaluationError):
        tuple_generator.realize("Value", 0)
    column = tuple_generator.realize("Value", 2, n_scenarios=5)
    matrix = tuple_generator.matrix("Value", 5)
    assert np.array_equal(column, matrix[:, 2])


def test_tuple_mode_row_restriction_consistent(tuple_generator):
    """Restricted generation must reproduce exactly the values of the
    full matrix for those rows (the property G_z selection relies on)."""
    full = tuple_generator.matrix("Value", 8)
    rows = np.array([3, 1])
    restricted = tuple_generator.matrix("Value", 8, rows=rows)
    assert np.array_equal(restricted, full[rows, :])


def test_modes_differ_but_agree_distributionally(generator, tuple_generator):
    a = generator.matrix("Value", 400)
    b = tuple_generator.matrix("Value", 400)
    assert not np.array_equal(a, b)  # different seeding schemes
    assert np.allclose(a.mean(axis=1), b.mean(axis=1), atol=0.25)


def test_streams_are_disjoint(items_model):
    opt = ScenarioGenerator(items_model, 1, STREAM_OPTIMIZATION)
    val = ScenarioGenerator(items_model, 1, STREAM_VALIDATION)
    assert not np.array_equal(opt.matrix("Value", 5), val.matrix("Value", 5))


def test_substreams_are_disjoint(items_model):
    a = ScenarioGenerator(items_model, 1, STREAM_VALIDATION, substream=0)
    b = ScenarioGenerator(items_model, 1, STREAM_VALIDATION, substream=1)
    assert not np.array_equal(a.matrix("Value", 5), b.matrix("Value", 5))


def test_seed_changes_stream(items_model):
    a = ScenarioGenerator(items_model, 1, STREAM_OPTIMIZATION)
    b = ScenarioGenerator(items_model, 2, STREAM_OPTIMIZATION)
    assert not np.array_equal(a.matrix("Value", 5), b.matrix("Value", 5))


def test_invalid_mode_and_sizes(items_model):
    with pytest.raises(EvaluationError):
        ScenarioGenerator(items_model, 1, 0, mode="bogus")
    generator = ScenarioGenerator(items_model, 1, 0)
    with pytest.raises(EvaluationError):
        generator.matrix("Value", 0)


# --- coefficient matrices -------------------------------------------------------


def test_coefficient_matrix_deterministic_expression(generator):
    matrix = generator.coefficient_matrix(Attr("price"), 4)
    assert matrix.shape == (5, 4)
    assert np.array_equal(matrix[:, 0], matrix[:, 3])
    assert matrix[:, 0].tolist() == [5.0, 8.0, 3.0, 6.0, 4.0]


def test_coefficient_matrix_stochastic_expression(generator):
    raw = generator.matrix("Value", 6)
    expr = parse_expression("2 * Value + price")
    matrix = generator.coefficient_matrix(expr, 6)
    price = np.array([5.0, 8.0, 3.0, 6.0, 4.0])[:, None]
    assert np.allclose(matrix, 2 * raw + price)


def test_coefficient_matrix_row_restriction(generator):
    expr = parse_expression("Value - price")
    full = generator.coefficient_matrix(expr, 5)
    rows = np.array([4, 0, 2])
    restricted = generator.coefficient_matrix(expr, 5, rows=rows)
    assert np.array_equal(restricted, full[rows, :])


def test_coefficient_scenario_matches_matrix(generator):
    expr = parse_expression("Value * 3")
    matrix = generator.coefficient_matrix(expr, 4)
    vector = generator.coefficient_scenario(expr, 2)
    assert np.allclose(vector, matrix[:, 2])


def test_constant_expression_broadcasts(generator):
    matrix = generator.coefficient_matrix(Const(1), 3)
    assert matrix.shape == (5, 3)
    assert np.all(matrix == 1.0)


# --- cache ------------------------------------------------------------------------


def test_cache_grows_incrementally(generator):
    cache = ScenarioCache(generator)
    expr = Attr("Value")
    small = cache.coefficient_matrix(expr, 3).copy()
    large = cache.coefficient_matrix(expr, 7)
    assert np.array_equal(large[:, :3], small)
    direct = generator.coefficient_matrix(expr, 7)
    assert np.allclose(large, direct)
    assert cache.cached_bytes > 0
    cache.clear()
    assert cache.cached_bytes == 0


def test_cache_serves_prefix_without_regeneration(generator):
    cache = ScenarioCache(generator)
    expr = Attr("Value")
    cache.coefficient_matrix(expr, 6)
    again = cache.coefficient_matrix(expr, 2)
    assert again.shape == (5, 2)


def test_cache_requires_scenario_mode(tuple_generator):
    with pytest.raises(EvaluationError):
        ScenarioCache(tuple_generator)


def test_probe_value_bounds_cover_samples(generator):
    expr = Attr("Value")
    lo, hi = probe_value_bounds(generator, expr, 32)
    matrix = generator.coefficient_matrix(expr, 32)
    assert lo == pytest.approx(matrix.min())
    assert hi == pytest.approx(matrix.max())
