"""Data-integration mixtures: variant construction and the discrete VG."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.relation import Relation
from repro.errors import VGFunctionError
from repro.mcdb.integration import (
    INTEGRATION_FAMILIES,
    DiscreteVariantsVG,
    build_integration_variants,
)
from repro.utils.rngkeys import make_generator


@pytest.mark.parametrize("family", INTEGRATION_FAMILIES)
def test_variants_anchored_on_original(family):
    """Row means equal the original values exactly (the paper's 'mean of
    these D values is anchored around the original value')."""
    base = np.array([10.0, 25.0, 3.0])
    rng = make_generator(0, 0)
    variants = build_integration_variants(base, 5, family, rng, spread=2.0)
    assert variants.shape == (3, 5)
    assert np.allclose(variants.mean(axis=1), base)


def test_variant_errors():
    rng = make_generator(0, 0)
    with pytest.raises(VGFunctionError):
        build_integration_variants(np.array([1.0]), 0, "uniform", rng)
    with pytest.raises(VGFunctionError):
        build_integration_variants(np.array([1.0]), 3, "cauchy", rng)
    with pytest.raises(VGFunctionError):
        build_integration_variants(np.array([1.0]), 3, "poisson", rng, family_param=-1)


def test_single_source_degenerates_to_original():
    base = np.array([4.0, 9.0])
    variants = build_integration_variants(base, 1, "uniform", make_generator(0, 0))
    assert np.allclose(variants[:, 0], base)


@pytest.fixture
def vg(variants_model):
    relation, model = variants_model
    return model.vg("Quantity")


def test_samples_are_always_one_of_the_variants(vg):
    rng = make_generator(1, 0)
    for _ in range(50):
        values = vg.sample_all(rng)
        for i, v in enumerate(values):
            assert v in vg.variants[i, :]


def test_discrete_mean_and_support_exact(vg):
    assert np.allclose(vg.mean(), vg.variants.mean(axis=1))
    lo, hi = vg.support()
    assert np.allclose(lo, vg.variants.min(axis=1))
    assert np.allclose(hi, vg.variants.max(axis=1))


def test_each_variant_selected_uniformly(vg):
    rng = make_generator(2, 0)
    samples = np.stack([vg.sample_all(rng) for _ in range(6000)])
    for column in range(vg.variants.shape[1]):
        frequency = (samples[:, 0] == vg.variants[0, column]).mean()
        assert frequency == pytest.approx(1.0 / 3.0, abs=0.04)


def test_block_sampling_matches_variants(vg):
    values = vg.sample_block(1, make_generator(3, 0), 200)
    assert values.shape == (1, 200)
    assert set(np.unique(values)).issubset(set(vg.variants[1, :]))


def test_shape_mismatch_rejected():
    relation = Relation("t", {"a": [1.0, 2.0]})
    with pytest.raises(VGFunctionError):
        DiscreteVariantsVG(np.zeros((3, 2))).bind(relation)
    with pytest.raises(VGFunctionError):
        DiscreteVariantsVG(np.zeros(3))


@settings(max_examples=25, deadline=None)
@given(spread=st.floats(0.1, 10.0), d=st.integers(2, 8))
def test_anchoring_property(spread, d):
    base = np.array([7.0, -2.0, 100.0])
    rng = make_generator(9, 0)
    variants = build_integration_variants(base, d, "student-t", rng, spread=spread,
                                          family_param=3.0)
    assert np.allclose(variants.mean(axis=1), base, atol=1e-9)
