"""Property-based round-trip of the VG registry expression grammar.

``parse_vg_expr`` is the textual surface shared by the CLI ``--vg``
flag, ``SPQConfig.vg_overrides``, and workload specs.  The property:
for any constructor-parameter dictionary expressible in the grammar,
rendering it to ``kind:param=value,...`` text and parsing it back
builds a VG with the *same parameters* — verified both structurally
(type-aware value comparison; ``1`` vs ``1.0`` vs ``"1x"`` must not
blur) and through ``params_fingerprint()``, the hash that partitions
the shared scenario store.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mcdb import make_vg, parse_vg_expr, register_vg
from repro.mcdb.vg import VGFunction, _parse_param_value

# --- a family that echoes arbitrary constructor parameters -------------------


@register_vg("test_echo")
class EchoVG(VGFunction):
    """Test-only family: stores whatever keyword parameters it is given."""

    def __init__(self, **params):
        super().__init__()
        for name, value in params.items():
            setattr(self, name, value)

    def _sample_block(self, block_index, rng, size):  # pragma: no cover
        return np.zeros((1, size))


def constructor_params(vg: VGFunction) -> dict:
    """Everything in ``__dict__`` except bound/cache state."""
    from repro.mcdb.vg import _BINDING_FIELDS

    return {
        name: value
        for name, value in vg.__dict__.items()
        if name not in _BINDING_FIELDS
    }


# --- rendering the grammar ---------------------------------------------------


def render_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, list):
        return "+".join(render_value(item) for item in value)
    return value  # column-name string


def render_spec(kind: str, params: dict) -> str:
    body = ",".join(f"{name}={render_value(v)}" for name, v in params.items())
    return f"{kind}:{body}" if body else kind


def equal_typed(a, b) -> bool:
    """Equality that distinguishes 1 / 1.0 / True / "1" and recurses lists."""
    if type(a) is not type(b):
        return False
    if isinstance(a, list):
        return len(a) == len(b) and all(map(equal_typed, a, b))
    return a == b


# --- strategies --------------------------------------------------------------

names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)

#: Strings that must stay strings: no reserved literals, nothing that
#: parses as a number, none of the grammar's separators (, = + :).
safe_strings = st.from_regex(r"[a-z][a-z0-9_.]{0,8}", fullmatch=True).filter(
    lambda s: s not in ("true", "false", "none", "inf", "nan", "infinity")
)

ints = st.integers(-10**6, 10**6)
#: Floats whose repr survives the grammar (no "+" — it is the list
#: separator — and no integral repr that would parse back as int).
floats = (
    st.floats(allow_nan=False, allow_infinity=False, width=32)
    .filter(lambda x: "+" not in repr(float(x)))
    .map(float)
)

#: List items: "+"-joined, so no floats in scientific notation and at
#: least two items (a one-item list renders as its bare scalar).
list_items = st.one_of(ints, safe_strings)
lists = st.lists(list_items, min_size=2, max_size=4)

values = st.one_of(
    st.booleans(), st.none(), ints, floats, safe_strings, lists
)

param_dicts = st.dictionaries(names, values, max_size=5)


# --- properties --------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(value=values)
def test_value_grammar_round_trips(value):
    assert equal_typed(_parse_param_value(render_value(value)), value)


@settings(max_examples=200, deadline=None)
@given(params=param_dicts)
def test_registry_spec_round_trips_params_and_fingerprint(params):
    expected = make_vg("test_echo", **params)
    parsed = parse_vg_expr(render_spec("test_echo", params))
    assert isinstance(parsed, EchoVG)
    got = constructor_params(parsed)
    want = constructor_params(expected)
    assert set(got) == set(want)
    for name in want:
        assert equal_typed(got[name], want[name]), name
    # The store-partitioning hash agrees with the directly-built VG.
    assert parsed.params_fingerprint() == expected.params_fingerprint()


@settings(max_examples=100, deadline=None)
@given(
    rho=st.floats(0.0, 0.95).map(lambda x: round(x, 6)),
    scale=st.floats(0.1, 10.0).map(lambda x: round(x, 6)),
    base=safe_strings,
)
def test_real_family_specs_round_trip(rho, scale, base):
    spec = f"gaussian_copula:base_column={base},scale={render_value(scale)},rho={render_value(rho)}"
    parsed = parse_vg_expr(spec)
    direct = make_vg("gaussian_copula", base_column=base, scale=scale, rho=rho)
    assert parsed.params_fingerprint() == direct.params_fingerprint()


def test_distinct_specs_fingerprint_differently():
    base = parse_vg_expr("test_echo:a=1,b=x")
    assert (
        parse_vg_expr("test_echo:a=1,b=x").params_fingerprint()
        == base.params_fingerprint()
    )
    for other in (
        "test_echo:a=1.0,b=x",  # float vs int
        "test_echo:a=1,b=y",
        "test_echo:a=1",
        "test_echo:a=1,b=x,c=none",
    ):
        assert (
            parse_vg_expr(other).params_fingerprint()
            != base.params_fingerprint()
        ), other
