"""Stochastic model bookkeeping."""

import numpy as np
import pytest

from repro.db.relation import Relation
from repro.errors import SchemaError, VGFunctionError
from repro.mcdb import GaussianNoiseVG, StochasticModel


def test_attribute_lookup(items_model):
    assert items_model.attribute_names == ["Value"]
    assert items_model.is_stochastic("Value")
    assert not items_model.is_stochastic("price")
    assert items_model.attr_id("Value") == 0


def test_unknown_attribute_rejected(items_model):
    with pytest.raises(SchemaError):
        items_model.vg("Nope")


def test_clash_with_deterministic_column(items_relation):
    with pytest.raises(SchemaError):
        StochasticModel(items_relation, {"price": GaussianNoiseVG("price", 1.0)})


def test_empty_model_rejected(items_relation):
    with pytest.raises(VGFunctionError):
        StochasticModel(items_relation, {})


def test_check_against_row_count(items_model):
    other = Relation("items", {"price": [1.0, 2.0]})
    with pytest.raises(SchemaError):
        items_model.check_against(other)


def test_check_against_key_values(items_model, items_relation):
    shuffled = items_relation.take(np.array([1, 0, 2, 3, 4]))
    with pytest.raises(SchemaError):
        items_model.check_against(shuffled)
    items_model.check_against(items_relation)  # identical: fine


def test_stochastic_subset_order(items_model):
    subset = items_model.stochastic_subset(["price", "Value", "weight"])
    assert subset == ["Value"]


def test_mean_and_support_delegate(items_model, items_relation):
    assert np.allclose(items_model.mean("Value"), items_relation.column("price"))
    lo, hi = items_model.support("Value")
    assert np.all(np.isinf(lo)) and np.all(np.isinf(hi))


def test_attr_ids_stable_across_sorted_names(items_relation):
    model = StochasticModel(
        items_relation,
        {
            "Zeta": GaussianNoiseVG("price", 1.0),
            "Alpha": GaussianNoiseVG("weight", 1.0),
        },
    )
    assert model.attr_id("Alpha") == 0
    assert model.attr_id("Zeta") == 1
