"""Noise-model VG functions: distributions, means, supports."""

import numpy as np
import pytest

from repro.db.relation import Relation
from repro.errors import VGFunctionError
from repro.mcdb.distributions import (
    ExponentialNoiseVG,
    GaussianNoiseVG,
    ParetoNoiseVG,
    StudentTNoiseVG,
    UniformNoiseVG,
)
from repro.utils.rngkeys import make_generator


@pytest.fixture
def relation():
    return Relation("t", {"base": np.linspace(10.0, 14.0, 5)})


def _samples(vg, n=4000, seed=0):
    rng = make_generator(seed, 0)
    return np.stack([vg.sample_all(rng) for _ in range(n)])


def test_gaussian_mean_and_spread(relation):
    vg = GaussianNoiseVG("base", 2.0).bind(relation)
    assert np.allclose(vg.mean(), relation.column("base"))
    samples = _samples(vg)
    assert np.allclose(samples.mean(axis=0), vg.mean(), atol=0.15)
    assert np.allclose(samples.std(axis=0), 2.0, atol=0.15)


def test_gaussian_per_row_sigma(relation):
    sigma = np.array([0.1, 0.5, 1.0, 2.0, 3.0])
    vg = GaussianNoiseVG("base", sigma).bind(relation)
    samples = _samples(vg)
    assert np.allclose(samples.std(axis=0), sigma, rtol=0.12)


def test_gaussian_rejects_negative_sigma(relation):
    with pytest.raises(VGFunctionError):
        GaussianNoiseVG("base", -1.0).bind(relation)


def test_gaussian_rejects_wrong_length_sigma(relation):
    with pytest.raises(VGFunctionError):
        GaussianNoiseVG("base", np.ones(3)).bind(relation)


def test_pareto_support_and_infinite_mean(relation):
    vg = ParetoNoiseVG("base", 1.0, 1.0).bind(relation)
    assert vg.mean() is None  # shape 1 has no finite mean
    lo, hi = vg.support()
    assert np.allclose(lo, relation.column("base") + 1.0)
    assert np.all(np.isinf(hi))
    samples = _samples(vg, n=500)
    assert np.all(samples >= lo[None, :] - 1e-12)


def test_pareto_finite_mean_when_shape_above_one(relation):
    vg = ParetoNoiseVG("base", 1.0, 3.0).bind(relation)
    expected = relation.column("base") + 3.0 / 2.0
    assert np.allclose(vg.mean(), expected)
    samples = _samples(vg, n=8000, seed=5)
    assert np.allclose(samples.mean(axis=0), expected, rtol=0.06)


def test_pareto_rejects_bad_params(relation):
    with pytest.raises(VGFunctionError):
        ParetoNoiseVG("base", 0.0, 1.0).bind(relation)
    with pytest.raises(VGFunctionError):
        ParetoNoiseVG("base", 1.0, -1.0).bind(relation)


def test_uniform_support_mean(relation):
    vg = UniformNoiseVG("base", -1.0, 3.0).bind(relation)
    lo, hi = vg.support()
    assert np.allclose(lo, relation.column("base") - 1.0)
    assert np.allclose(hi, relation.column("base") + 3.0)
    assert np.allclose(vg.mean(), relation.column("base") + 1.0)
    samples = _samples(vg, n=500)
    assert np.all(samples >= lo[None, :]) and np.all(samples <= hi[None, :])


def test_uniform_rejects_inverted_bounds(relation):
    with pytest.raises(VGFunctionError):
        UniformNoiseVG("base", 2.0, 1.0).bind(relation)


def test_exponential_centered_mean(relation):
    vg = ExponentialNoiseVG("base", rate=2.0).bind(relation)
    assert np.allclose(vg.mean(), relation.column("base"))
    lo, _ = vg.support()
    assert np.allclose(lo, relation.column("base") - 0.5)
    samples = _samples(vg, n=6000)
    assert np.allclose(samples.mean(axis=0), vg.mean(), atol=0.1)


def test_exponential_uncentered(relation):
    vg = ExponentialNoiseVG("base", rate=2.0, centered=False).bind(relation)
    assert np.allclose(vg.mean(), relation.column("base") + 0.5)
    lo, _ = vg.support()
    assert np.allclose(lo, relation.column("base"))


def test_student_t_mean_rules(relation):
    assert StudentTNoiseVG("base", 2.0).bind(relation).mean() is not None
    assert StudentTNoiseVG("base", 1.0).bind(relation).mean() is None
    with pytest.raises(VGFunctionError):
        StudentTNoiseVG("base", -1.0).bind(relation)


def test_block_sampling_matches_all_rows_distribution(relation):
    """sample_block over singleton blocks covers the same distribution
    family as sample_all (they use different draw orders)."""
    vg = GaussianNoiseVG("base", 1.0).bind(relation)
    rng = make_generator(1, 0)
    block_vals = vg.sample_block(2, rng, 2000)[0]
    assert abs(block_vals.mean() - relation.column("base")[2]) < 0.1
    assert abs(block_vals.std() - 1.0) < 0.1


def test_unknown_base_column_rejected(relation):
    with pytest.raises(Exception):
        GaussianNoiseVG("missing", 1.0).bind(relation)
