"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main, parse_vg_spec
from repro.db.relation import Relation
from repro.errors import SPQError
from repro.mcdb.distributions import GaussianNoiseVG, ParetoNoiseVG
from repro.mcdb.gbm import GeometricBrownianMotionVG


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "items.csv"
    path.write_text(
        "price,weight\n5.0,2\n8.0,1\n3.0,4\n6.0,3\n4.0,2\n"
    )
    return path


@pytest.fixture
def relation():
    return Relation("items", {"price": [5.0, 8.0], "sigma": [0.5, 1.0]})


def test_parse_gaussian_spec_scalar(relation):
    name, vg = parse_vg_spec("Value=gaussian(price, 2.0)", relation)
    assert name == "Value"
    assert isinstance(vg, GaussianNoiseVG)


def test_parse_gaussian_spec_column_arg(relation):
    _, vg = parse_vg_spec("Value=gaussian(price, sigma)", relation)
    vg.bind(relation)
    assert np.allclose(vg._sigma, [0.5, 1.0])


def test_parse_pareto_and_gbm(relation):
    _, vg = parse_vg_spec("V=pareto(price, 1.0, 1.5)", relation)
    assert isinstance(vg, ParetoNoiseVG)
    _, vg = parse_vg_spec("G=gbm(price,drift,vol,horizon,stock)", relation)
    assert isinstance(vg, GeometricBrownianMotionVG)


@pytest.mark.parametrize(
    "spec",
    [
        "no_equals(price)",
        "V=gaussian price",
        "V=mystery(price, 1)",
        "V=gaussian(price, 1, 2, 3)",
        "V=gaussian(3.0, 1.0)",  # base must be a column
        "V=gaussian(price, bogus_col)",
    ],
)
def test_bad_specs_rejected(relation, spec):
    with pytest.raises(SPQError):
        parse_vg_spec(spec, relation)


def test_cli_end_to_end(csv_path, tmp_path, capsys):
    out_path = tmp_path / "package.csv"
    code = main(
        [
            "--table", str(csv_path),
            "--stochastic", "Value=gaussian(price, 1.0)",
            "--query",
            "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
            " SUM(Value) >= 5 WITH PROBABILITY >= 0.8"
            " MINIMIZE EXPECTED SUM(Value)",
            "--validation-scenarios", "1000",
            "--initial-scenarios", "20",
            "--max-scenarios", "60",
            "--epsilon", "0.8",
            "--output", str(out_path),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "feasible=True" in captured.out
    assert out_path.exists()
    assert "price" in out_path.read_text()


def test_cli_deterministic_query(csv_path, capsys):
    code = main(
        [
            "--table", str(csv_path),
            "--query",
            "SELECT PACKAGE(*) FROM items SUCH THAT SUM(price) <= 9"
            " MAXIMIZE SUM(price)",
        ]
    )
    assert code == 0
    assert "deterministic" in capsys.readouterr().out


def test_cli_query_file(csv_path, tmp_path, capsys):
    query_file = tmp_path / "q.spaql"
    query_file.write_text(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 1 MAXIMIZE SUM(price)"
    )
    code = main(["--table", str(csv_path), "--query-file", str(query_file)])
    assert code == 0


def test_cli_table_alias(csv_path, capsys):
    code = main(
        [
            "--table", f"{csv_path}:inventory",
            "--query",
            "SELECT PACKAGE(*) FROM inventory SUCH THAT COUNT(*) <= 1"
            " MAXIMIZE SUM(price)",
        ]
    )
    assert code == 0


def test_cli_bad_spec_is_reported(csv_path, capsys):
    code = main(
        [
            "--table", str(csv_path),
            "--stochastic", "V=mystery(price)",
            "--query", "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 1",
        ]
    )
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_cli_infeasible_returns_one(csv_path, capsys):
    code = main(
        [
            "--table", str(csv_path),
            "--query",
            "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 1 AND"
            " SUM(price) >= 100 MINIMIZE SUM(price)",
        ]
    )
    assert code == 1


# --- subcommands, version, exit codes ---------------------------------------


def test_cli_explicit_run_subcommand(csv_path, capsys):
    code = main(
        [
            "run",
            "--table", str(csv_path),
            "--query",
            "SELECT PACKAGE(*) FROM items SUCH THAT SUM(price) <= 9"
            " MAXIMIZE SUM(price)",
        ]
    )
    assert code == 0
    assert "deterministic" in capsys.readouterr().out


def test_cli_version(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_cli_no_arguments_prints_help(capsys):
    assert main([]) == 2
    assert "usage:" in capsys.readouterr().out


def test_cli_parse_error_exit_code(csv_path, capsys):
    code = main(
        ["--table", str(csv_path), "--query", "SELEC PACKAGE nonsense"]
    )
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_cli_solve_error_exit_code(csv_path, capsys):
    # Invalid evaluation parameters surface as EvaluationError -> 3.
    code = main(
        [
            "--table", str(csv_path),
            "--query",
            "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 1"
            " MAXIMIZE SUM(price)",
            "--initial-scenarios", "0",
        ]
    )
    assert code == 3
    assert "error:" in capsys.readouterr().err


def test_cli_io_error_exit_code(csv_path, tmp_path, capsys):
    code = main(
        [
            "--table", str(csv_path),
            "--query-file", str(tmp_path / "does_not_exist.spaql"),
        ]
    )
    assert code == 4
    assert "error:" in capsys.readouterr().err


def test_cli_missing_table_file_is_io_error(capsys):
    code = main(
        [
            "--table", "no_such_table.csv",
            "--query", "SELECT PACKAGE(*) FROM x SUCH THAT COUNT(*) <= 1",
        ]
    )
    assert code == 4
    assert "error:" in capsys.readouterr().err


def test_parse_bytes():
    from repro.cli import parse_bytes

    assert parse_bytes("1048576") == 1 << 20
    assert parse_bytes("512k") == 512 * 1024
    assert parse_bytes("2M") == 2 << 20
    assert parse_bytes("1G") == 1 << 30
    with pytest.raises(SPQError):
        parse_bytes("lots")
    with pytest.raises(SPQError):
        parse_bytes("-1M")


def test_serve_parser_accepts_service_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        [
            "serve",
            "--workload", "portfolio:Q1",
            "--scale", "50",
            "--port", "0",
            "--pool-size", "2",
            "--store-budget", "4M",
            "--no-spill",
        ]
    )
    assert args.command == "serve"
    assert args.workload == ["portfolio:Q1"]
    assert args.pool_size == 2
    assert args.store_budget == "4M"


def test_serve_parser_accepts_backend_flags():
    from repro.cli import build_parser, cmd_serve  # noqa: F401 - import check

    args = build_parser().parse_args(
        [
            "serve",
            "--workload", "portfolio:Q1",
            "--backend", "process",
            "--recycle-after", "100",
        ]
    )
    assert args.backend == "process"
    assert args.recycle_after == 100
    # The flags land in the effective SPQConfig.
    from repro.cli import _build_config

    config = _build_config(
        args,
        service_backend=args.backend,
        worker_recycle_after=args.recycle_after,
    )
    assert config.service_backend == "process"
    assert config.worker_recycle_after == 100
    # Default: thread backend, no recycling.
    default_args = build_parser().parse_args(
        ["serve", "--workload", "portfolio:Q1"]
    )
    assert default_args.backend is None
    assert _build_config(default_args).service_backend == "thread"

    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["serve", "--workload", "portfolio:Q1", "--backend", "fibers"]
        )


def test_serve_catalog_from_workload():
    from repro.cli import _build_catalog, build_parser

    args = build_parser().parse_args(
        ["serve", "--workload", "portfolio:Q1", "--scale", "12"]
    )
    catalog = _build_catalog(args)
    assert "stock_investments" in catalog
    assert catalog.model("stock_investments") is not None


def test_serve_requires_a_data_source():
    from repro.cli import _build_catalog, build_parser

    args = build_parser().parse_args(["serve"])
    with pytest.raises(SPQError):
        _build_catalog(args)


# --- the --vg registry flag and correlated workloads -------------------------


@pytest.fixture
def sector_csv_path(tmp_path):
    path = tmp_path / "stocks.csv"
    path.write_text(
        "sector,price,exp_gain,gain_sd\n"
        "a,10.0,0.5,0.4\na,12.0,0.6,0.5\nb,9.0,0.4,0.3\n"
        "b,11.0,0.5,0.4\na,8.0,0.3,0.3\nb,10.0,0.4,0.4\n"
    )
    return path


VAR_QUERY = (
    "SELECT PACKAGE(*) FROM stocks SUCH THAT COUNT(*) <= 3 AND"
    " SUM(Gain) >= -1 WITH PROBABILITY >= 0.8"
    " MAXIMIZE EXPECTED SUM(Gain)"
)


def test_cli_vg_flag_builds_registry_model(sector_csv_path, capsys):
    code = main(
        [
            "run",
            "--table", str(sector_csv_path),
            "--vg", "Gain=gaussian_copula:base_column=exp_gain,"
                    "scale=gain_sd,rho=0.7,group_column=sector",
            "--query", VAR_QUERY,
            "--validation-scenarios", "800",
            "--initial-scenarios", "20",
            "--max-scenarios", "60",
            "--epsilon", "0.8",
        ]
    )
    assert code == 0
    assert "feasible=True" in capsys.readouterr().out


def test_cli_vg_flag_unknown_family_is_parse_error(sector_csv_path, capsys):
    code = main(
        [
            "run",
            "--table", str(sector_csv_path),
            "--vg", "Gain=mystery:base_column=exp_gain",
            "--query", VAR_QUERY,
        ]
    )
    assert code == 2
    assert "unknown VG family" in capsys.readouterr().err


def test_cli_run_workload_uses_builtin_query(capsys):
    code = main(
        [
            "run",
            "--workload", "portfolio_correlated:Q2",
            "--scale", "30",
            "--validation-scenarios", "800",
            "--initial-scenarios", "20",
            "--max-scenarios", "60",
            "--epsilon", "0.8",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "portfolio_correlated/Q2" in out
    assert "feasible=True" in out


def test_cli_run_workload_with_vg_override(capsys):
    code = main(
        [
            "run",
            "--workload", "portfolio_correlated:Q1",
            "--scale", "30",
            "--vg", "Gain=gaussian_copula:base_column=exp_gain,"
                    "scale=gain_sd,rho=0.9,group_column=sector",
            "--validation-scenarios", "800",
            "--initial-scenarios", "20",
            "--max-scenarios", "60",
            "--epsilon", "0.8",
        ]
    )
    assert code == 0
    assert "feasible=True" in capsys.readouterr().out


def test_cli_run_without_query_or_workload_is_parse_error(csv_path, capsys):
    # A valid table but no --query/--query-file and no single --workload
    # to borrow the query from: the missing-query branch, exit 2.
    code = main(["run", "--table", str(csv_path)])
    assert code == 2
    err = capsys.readouterr().err
    assert "--query" in err and "--workload" in err


def test_cli_unexpected_error_maps_to_solve_exit_code(csv_path, capsys):
    """Exceptions outside the SPQError taxonomy must not leak the
    interpreter's exit code 1 (which the contract reserves for
    'infeasible'); they map to the solve-stage code 3."""
    # A list where a scalar/column is expected crashes at bind time with
    # a raw ValueError deep inside numpy — representative of unexpected
    # failures.
    code = main(
        [
            "run",
            "--table", str(csv_path),
            "--vg", "V=gaussian_copula:base_column=price,scale=a+b",
            "--query", "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 1",
        ]
    )
    assert code == 3
    assert "Traceback" in capsys.readouterr().err


def test_cli_help_epilog_documents_vg_and_exit_codes(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--vg" in out
    assert "gaussian_copula" in out
    assert "exit codes:" in out
    for line in ("0  success", "1  query proven infeasible",
                 "2  parse/compile/spec error", "3  solve/evaluation error",
                 "4  I/O error"):
        assert line in out


# --- out-of-core tier (repro.scale) --------------------------------------------


def test_cli_scale_flags_wire_into_config():
    from repro.cli import _build_config, build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["run", "--table", "x.csv", "--query", "q",
         "--scale-out", "--scale-threshold", "5000",
         "--partitions", "12", "--scale-budget", "64M"]
    )
    config = _build_config(args)
    assert config.scale_threshold_rows == 5_000
    assert config.scale_n_partitions == 12
    assert config.scale_resident_budget == 64 * 1024 * 1024


def test_cli_scale_flags_default_off():
    from repro.cli import _build_config, build_parser

    parser = build_parser()
    args = parser.parse_args(["run", "--table", "x.csv", "--query", "q"])
    config = _build_config(args)
    assert config.scale_threshold_rows is None


def test_cli_method_accepts_sketchrefine(csv_path, capsys):
    code = main([
        "run",
        "--table", str(csv_path),
        "--query", "SELECT PACKAGE(*) FROM items SUCH THAT SUM(price) <= 12"
                   " MINIMIZE SUM(weight)",
        "--method", "sketchrefine",
    ])
    assert code == 0
    assert "sketchrefine" in capsys.readouterr().out


def test_cli_registers_column_store_directory(tmp_path, capsys):
    from repro.db.csvio import read_csv_to_store

    csv = tmp_path / "items.csv"
    csv.write_text("price,weight\n5.0,2\n8.0,1\n3.0,4\n6.0,3\n4.0,2\n")
    store = read_csv_to_store(csv, tmp_path / "items-store", chunk_rows=2)
    store.close()
    code = main([
        "run",
        "--table", str(tmp_path / "items-store") + ":items",
        "--query", "SELECT PACKAGE(*) FROM items WHERE price <= 6 SUCH THAT"
                   " SUM(price) <= 12 MINIMIZE SUM(weight)",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "package" in out


def test_cli_store_directory_without_manifest_is_io_error(tmp_path, capsys):
    (tmp_path / "not-a-store").mkdir()
    code = main([
        "run",
        "--table", str(tmp_path / "not-a-store"),
        "--query", "SELECT PACKAGE(*) FROM x SUCH THAT COUNT(*) <= 1"
                   " MINIMIZE SUM(a)",
    ])
    assert code == 4


# --- observability: repro trace, --trace-out, --profile-stages ---------------


STOCH_QUERY = (
    "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
    " SUM(Value) >= 5 WITH PROBABILITY >= 0.8"
    " MINIMIZE EXPECTED SUM(Value)"
)

FAST_FLAGS = [
    "--validation-scenarios", "500",
    "--initial-scenarios", "20",
    "--max-scenarios", "60",
    "--epsilon", "0.8",
]


def _run_traced(csv_path, tmp_path, *extra):
    return main([
        "run",
        "--table", str(csv_path),
        "--stochastic", "Value=gaussian(price, 1.0)",
        "--query", STOCH_QUERY,
        *FAST_FLAGS,
        *extra,
    ])


def test_cli_trace_out_writes_span_tree(csv_path, tmp_path, capsys):
    trace_path = tmp_path / "run.trace.json"
    code = _run_traced(csv_path, tmp_path, "--trace-out", str(trace_path))
    captured = capsys.readouterr()
    assert code == 0
    assert f"trace written to {trace_path}" in captured.out
    import json

    doc = json.loads(trace_path.read_text())
    assert doc["root"]["name"] == "execute"
    names = {doc["root"]["name"]}
    stack = list(doc["root"]["children"])
    while stack:
        node = stack.pop()
        names.add(node["name"])
        stack.extend(node["children"])
    assert {"compile", "parse", "solve", "validate"} <= names


def test_cli_profile_stages_prints_flat_profile(csv_path, tmp_path, capsys):
    code = _run_traced(csv_path, tmp_path, "--profile-stages")
    captured = capsys.readouterr()
    assert code == 0
    assert "per-stage self time:" in captured.out
    assert "solve" in captured.out


def test_cli_trace_renders_waterfall_and_table(csv_path, tmp_path, capsys):
    trace_path = tmp_path / "run.trace.json"
    assert _run_traced(csv_path, tmp_path, "--trace-out", str(trace_path)) == 0
    capsys.readouterr()

    code = main(["trace", str(trace_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "execute" in captured.out
    assert "ms" in captured.out          # the waterfall
    assert "self(s)" in captured.out     # the top table


def test_cli_trace_missing_file_is_io_error(capsys):
    code = main(["trace", "/no/such/trace.json"])
    assert code == 4
    assert "error:" in capsys.readouterr().err


def test_cli_trace_bad_json_is_parse_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    code = main(["trace", str(bad)])
    assert code == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_cli_trace_non_trace_document_is_parse_error(tmp_path, capsys):
    not_a_trace = tmp_path / "other.json"
    not_a_trace.write_text('{"unrelated": true}')
    code = main(["trace", str(not_a_trace)])
    assert code == 2
    assert "not a trace document" in capsys.readouterr().err


def test_serve_parser_accepts_observability_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args([
        "serve", "--workload", "portfolio:Q1",
        "--no-trace",
        "--slow-query-log", "slow.jsonl",
        "--slow-query-threshold", "2.5",
    ])
    assert args.no_trace is True
    assert args.slow_query_log == "slow.jsonl"
    assert args.slow_query_threshold == 2.5
