"""Variable and package-size bound derivation."""

import numpy as np
import pytest

from repro.db.expressions import Attr, Const
from repro.errors import UnboundedError
from repro.silp.compile import compile_query
from repro.silp.model import MeanConstraint, StochasticPackageProblem
from repro.silp.varbounds import derive_variable_bounds, package_size_bounds


def _problem(items_relation, constraints, repeat=None):
    return StochasticPackageProblem(
        relation=items_relation,
        model=None,
        active_rows=np.arange(items_relation.n_rows),
        objective=None,
        constraints=constraints,
        repeat=repeat,
    )


def _coeffs(relation):
    def fn(expr):
        from repro.db.expressions import evaluate

        values = evaluate(expr, relation.columns_mapping())
        return np.broadcast_to(np.asarray(values, dtype=float), (relation.n_rows,))

    return fn


def test_count_constraint_bounds_all_variables(items_relation):
    problem = _problem(items_relation, [MeanConstraint(Const(1), "<=", 4.0)])
    ub = derive_variable_bounds(problem, _coeffs(items_relation))
    assert ub.tolist() == [4] * 5


def test_budget_constraint_bounds_per_variable(items_relation):
    problem = _problem(items_relation, [MeanConstraint(Attr("price"), "<=", 12.0)])
    ub = derive_variable_bounds(problem, _coeffs(items_relation))
    # prices are [5, 8, 3, 6, 4] -> floor(12/price)
    assert ub.tolist() == [2, 1, 4, 2, 3]


def test_repeat_limit_applies(items_relation):
    problem = _problem(
        items_relation, [MeanConstraint(Attr("price"), "<=", 100.0)], repeat=1
    )
    ub = derive_variable_bounds(problem, _coeffs(items_relation))
    # REPEAT 1 means at most 2 copies (Section 2.1's translation).
    assert ub.tolist() == [2] * 5


def test_tightest_bound_wins(items_relation):
    problem = _problem(
        items_relation,
        [
            MeanConstraint(Attr("price"), "<=", 12.0),
            MeanConstraint(Const(1), "<=", 2.0),
        ],
    )
    ub = derive_variable_bounds(problem, _coeffs(items_relation))
    assert ub.tolist() == [2, 1, 2, 2, 2]


def test_ge_constraints_do_not_bound(items_relation):
    problem = _problem(items_relation, [MeanConstraint(Attr("price"), ">=", 1.0)])
    with pytest.raises(UnboundedError):
        derive_variable_bounds(problem, _coeffs(items_relation))


def test_default_bound_fallback(items_relation):
    problem = _problem(items_relation, [])
    ub = derive_variable_bounds(problem, _coeffs(items_relation), default_bound=9)
    assert ub.tolist() == [9] * 5


def test_mixed_sign_coefficients_skipped(items_relation):
    from repro.db.expressions import BinOp

    signed = BinOp("-", Attr("price"), Const(6))  # some negative coefficients
    problem = _problem(
        items_relation,
        [MeanConstraint(signed, "<=", 10.0), MeanConstraint(Const(1), "<=", 3.0)],
    )
    ub = derive_variable_bounds(problem, _coeffs(items_relation))
    assert ub.tolist() == [3] * 5  # only the count constraint applies


def test_negative_rhs_with_nonnegative_coeffs_gives_zero(items_relation):
    problem = _problem(items_relation, [MeanConstraint(Attr("price"), "<=", -5.0)])
    ub = derive_variable_bounds(problem, _coeffs(items_relation))
    assert ub.tolist() == [0] * 5


def test_package_size_bounds_from_count(items_relation):
    problem = _problem(
        items_relation,
        [
            MeanConstraint(Const(1), ">=", 2.0),
            MeanConstraint(Const(1), "<=", 7.0),
        ],
    )
    low, high = package_size_bounds(problem, _coeffs(items_relation))
    assert (low, high) == (2.0, 7.0)


def test_package_size_bounds_from_budget(items_relation):
    problem = _problem(items_relation, [MeanConstraint(Attr("price"), "<=", 12.0)])
    low, high = package_size_bounds(problem, _coeffs(items_relation))
    assert low == 0.0
    assert high == 4.0  # floor(12 / min price 3)


def test_package_size_lower_from_ge_budget(items_relation):
    problem = _problem(
        items_relation,
        [
            MeanConstraint(Attr("price"), ">=", 20.0),
            MeanConstraint(Const(1), "<=", 10.0),
        ],
    )
    low, high = package_size_bounds(problem, _coeffs(items_relation))
    assert low == 3.0  # ceil(20 / max price 8)
    assert high == 10.0


def test_package_size_falls_back_to_variable_bounds(items_relation):
    problem = _problem(items_relation, [MeanConstraint(Attr("price"), "<=", 12.0)])
    ub = derive_variable_bounds(problem, _coeffs(items_relation))
    low, high = package_size_bounds(
        _problem(items_relation, []), _coeffs(items_relation), ub
    )
    assert high == float(ub.sum())


def test_bounds_never_cut_off_feasible_solutions(items_catalog, fast_config):
    """Any feasible integer solution of the compiled constraints respects
    the derived per-variable bounds (exhaustive check on a small box)."""
    from repro.core.context import EvaluationContext
    import itertools

    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT SUM(price) <= 14 AND COUNT(*) <= 3",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    prices = items_catalog.relation("items").column("price")
    for x in itertools.product(range(5), repeat=5):
        feasible = (
            np.dot(prices, x) <= 14 and sum(x) <= 3
        )
        if feasible:
            assert np.all(np.asarray(x) <= ctx.variable_ub)
