"""sPaQL → SILP compilation."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.silp.compile import compile_query
from repro.silp.model import ChanceConstraint, MeanConstraint


def test_basic_compilation(chance_problem):
    assert chance_problem.n_vars == 5
    assert len(chance_problem.mean_constraints) == 1
    assert len(chance_problem.chance_constraints) == 1
    assert chance_problem.objective is not None


def test_where_restricts_active_rows(items_catalog):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items WHERE price <= 5"
        " SUCH THAT COUNT(*) <= 2",
        items_catalog,
    )
    assert problem.active_rows.tolist() == [0, 2, 4]
    assert problem.n_vars == 3


def test_where_filtering_everything_rejected(items_catalog):
    with pytest.raises(CompileError, match="filtered out"):
        compile_query(
            "SELECT PACKAGE(*) FROM items WHERE price > 1000"
            " SUCH THAT COUNT(*) <= 2",
            items_catalog,
        )


def test_where_on_stochastic_attribute_rejected(items_catalog):
    with pytest.raises(CompileError, match="WHERE"):
        compile_query(
            "SELECT PACKAGE(*) FROM items WHERE Value > 0"
            " SUCH THAT COUNT(*) <= 2",
            items_catalog,
        )


def test_unknown_table(items_catalog):
    with pytest.raises(Exception, match="unknown table"):
        compile_query("SELECT PACKAGE(*) FROM missing", items_catalog)


def test_unknown_attribute_in_constraint(items_catalog):
    with pytest.raises(CompileError, match="unknown attribute"):
        compile_query(
            "SELECT PACKAGE(*) FROM items SUCH THAT SUM(bogus) <= 1",
            items_catalog,
        )


def test_unknown_attribute_in_objective(items_catalog):
    with pytest.raises(CompileError, match="unknown attribute"):
        compile_query(
            "SELECT PACKAGE(*) FROM items MINIMIZE SUM(bogus)", items_catalog
        )


def test_repeat_carried_through(items_catalog):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items REPEAT 3 SUCH THAT COUNT(*) <= 10",
        items_catalog,
    )
    assert problem.repeat == 3


def test_without_chance_constraints(chance_problem):
    q0 = chance_problem.without_chance_constraints()
    assert q0.chance_constraints == []
    assert len(q0.mean_constraints) == len(chance_problem.mean_constraints)
    assert q0.objective is chance_problem.objective


def test_accepts_preparsed_ast(items_catalog):
    from repro.spaql.parser import parse_query

    ast = parse_query("SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 1")
    problem = compile_query(ast, items_catalog)
    assert problem.n_vars == 5


def test_is_stochastic_expr(chance_problem):
    from repro.db.expressions import Attr

    assert chance_problem.is_stochastic_expr(Attr("Value"))
    assert not chance_problem.is_stochastic_expr(Attr("price"))


def test_scenario_identity_independent_of_where(items_catalog, fast_config):
    """WHERE must not change scenario realizations for surviving tuples:
    active rows index into the unfiltered relation."""
    from repro.core.context import EvaluationContext

    unfiltered = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 2 AND"
        " SUM(Value) >= 1 WITH PROBABILITY >= 0.5",
        items_catalog,
    )
    filtered = compile_query(
        "SELECT PACKAGE(*) FROM items WHERE price >= 5 SUCH THAT COUNT(*) <= 2"
        " AND SUM(Value) >= 1 WITH PROBABILITY >= 0.5",
        items_catalog,
    )
    ctx_all = EvaluationContext(unfiltered, fast_config)
    ctx_filtered = EvaluationContext(filtered, fast_config)
    expr = unfiltered.chance_constraints[0].expr
    matrix_all = ctx_all.optimization_matrix(expr, 4)
    matrix_filtered = ctx_filtered.optimization_matrix(
        filtered.chance_constraints[0].expr, 4
    )
    assert np.allclose(matrix_filtered, matrix_all[filtered.active_rows, :])
