"""Canonicalization rewrites (Section 2.3)."""

import pytest

from repro.db.expressions import Attr, Const
from repro.errors import CompileError
from repro.silp.canonical import (
    flip_chance_constraint,
    normalize_constraint,
    normalize_objective,
)
from repro.silp.model import (
    ChanceConstraint,
    ExpectationObjectiveIR,
    MeanConstraint,
    ProbabilityObjectiveIR,
)
from repro.spaql.nodes import (
    CountConstraint,
    ProbabilisticConstraint,
    SumConstraint,
    SumObjective,
    ProbabilityObjective,
)


def test_flip_chance_constraint():
    assert flip_chance_constraint(">=", 0.9) == ("<=", pytest.approx(0.1))
    assert flip_chance_constraint("<=", 0.25) == (">=", pytest.approx(0.75))
    with pytest.raises(CompileError):
        flip_chance_constraint("=", 0.5)


def test_count_between_lowered_to_two_mean_constraints(items_model):
    node = CountConstraint(low=2, high=5)
    out = normalize_constraint(node, items_model)
    assert [(c.op, c.rhs) for c in out] == [(">=", 2.0), ("<=", 5.0)]
    assert all(c.expr == Const(1) for c in out)


def test_count_comparison(items_model):
    out = normalize_constraint(CountConstraint(op="=", value=3), items_model)
    assert out == [MeanConstraint(Const(1), "=", 3.0)]


def test_deterministic_sum_kept_as_mean_constraint(items_model):
    node = SumConstraint(Attr("price"), "<=", 100.0)
    out = normalize_constraint(node, items_model)
    assert isinstance(out[0], MeanConstraint)


def test_bare_stochastic_sum_rejected(items_model):
    node = SumConstraint(Attr("Value"), "<=", 100.0, expected=False)
    with pytest.raises(CompileError, match="EXPECTED"):
        normalize_constraint(node, items_model)


def test_expected_stochastic_sum_accepted(items_model):
    node = SumConstraint(Attr("Value"), ">=", 1.0, expected=True)
    out = normalize_constraint(node, items_model)
    assert isinstance(out[0], MeanConstraint)


def test_probabilistic_le_outer_flips_inner(items_model):
    node = ProbabilisticConstraint(Attr("Value"), ">=", 5.0, "<=", 0.2)
    out = normalize_constraint(node, items_model)
    constraint = out[0]
    assert isinstance(constraint, ChanceConstraint)
    assert constraint.inner_op == "<="
    assert constraint.probability == pytest.approx(0.8)


def test_probabilistic_over_deterministic_rejected(items_model):
    node = ProbabilisticConstraint(Attr("price"), ">=", 5.0, ">=", 0.9)
    with pytest.raises(CompileError, match="deterministic"):
        normalize_constraint(node, items_model)


def test_probabilistic_equality_inner_rejected(items_model):
    node = ProbabilisticConstraint(Attr("Value"), "=", 5.0, ">=", 0.9)
    with pytest.raises(CompileError):
        normalize_constraint(node, items_model)


def test_objective_expected_sum(items_model):
    out = normalize_objective(
        SumObjective("minimize", Attr("Value"), expected=True), items_model
    )
    assert isinstance(out, ExpectationObjectiveIR)
    assert out.sense == "minimize"


def test_objective_deterministic_sum_is_expectation_case(items_model):
    out = normalize_objective(
        SumObjective("maximize", Attr("price"), expected=False), items_model
    )
    assert isinstance(out, ExpectationObjectiveIR)


def test_objective_bare_stochastic_rejected(items_model):
    with pytest.raises(CompileError):
        normalize_objective(
            SumObjective("maximize", Attr("Value"), expected=False), items_model
        )


def test_probability_objective_lowered(items_model):
    out = normalize_objective(
        ProbabilityObjective("maximize", Attr("Value"), ">=", 0.0), items_model
    )
    assert isinstance(out, ProbabilityObjectiveIR)


def test_probability_objective_deterministic_rejected(items_model):
    with pytest.raises(CompileError):
        normalize_objective(
            ProbabilityObjective("maximize", Attr("price"), ">=", 0.0), items_model
        )


def test_missing_objective_none(items_model):
    assert normalize_objective(None, items_model) is None
