"""SAA formulation (Section 3.1): FormulateSAA and its invariants."""

import math

import numpy as np
import pytest

from repro.core.context import EvaluationContext
from repro.core.saa import formulate_saa
from repro.silp.compile import compile_query


def test_sizes_scale_with_scenarios(chance_context):
    small = formulate_saa(chance_context, 5)
    large = formulate_saa(chance_context, 15)
    # One binary per scenario per chance constraint.
    assert small.builder.n_variables == 5 + 5
    assert large.builder.n_variables == 5 + 15
    assert large.builder.n_constraints > small.builder.n_constraints


def test_solution_satisfies_ceil_pm_scenarios(chance_context):
    """Key SAA invariant: the solved package satisfies the inner
    constraint on at least ⌈pM⌉ of the optimization scenarios."""
    n_scenarios = 10
    formulation = formulate_saa(chance_context, n_scenarios)
    result = formulation.builder.solve()
    assert result.has_solution
    x = formulation.extract_package(result.x)
    constraint = chance_context.problem.chance_constraints[0]
    matrix = chance_context.optimization_matrix(constraint.expr, n_scenarios)
    scores = x @ matrix
    satisfied = int((scores >= constraint.rhs - 1e-9).sum())
    assert satisfied >= math.ceil(constraint.probability * n_scenarios)


def test_expectation_objective_claimed_value(chance_context):
    formulation = formulate_saa(chance_context, 6)
    result = formulation.builder.solve()
    x = formulation.extract_package(result.x)
    claimed = formulation.claimed_objective(result.x, chance_context)
    assert claimed == pytest.approx(chance_context.mean_objective_value(x))


def test_probability_objective_indicators(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) BETWEEN 1 AND 2"
        " MAXIMIZE PROBABILITY OF SUM(Value) >= 10",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    n_scenarios = 8
    formulation = formulate_saa(ctx, n_scenarios)
    assert formulation.objective_indicators is not None
    result = formulation.builder.solve()
    assert result.has_solution
    claimed = formulation.claimed_objective(result.x, ctx)
    # Claimed probability is the satisfied fraction of the sample.
    x = formulation.extract_package(result.x)
    matrix = ctx.optimization_matrix(problem.objective.expr, n_scenarios)
    actual_fraction = float(((x @ matrix) >= 10.0 - 1e-9).mean())
    assert 0.0 <= claimed <= 1.0
    assert claimed <= actual_fraction + 1e-9


def test_minimized_probability_objective_flips(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) BETWEEN 1 AND 2"
        " MINIMIZE PROBABILITY OF SUM(Value) >= 10",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    formulation = formulate_saa(ctx, 8)
    assert formulation.objective_flipped
    result = formulation.builder.solve()
    claimed = formulation.claimed_objective(result.x, ctx)
    # Minimizer should pick low-value items: claimed probability small.
    assert claimed <= 0.5


def test_no_chance_constraints_reduces_to_base(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 2"
        " MINIMIZE SUM(price)",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    formulation = formulate_saa(ctx, 10)
    assert formulation.builder.n_variables == 5  # no indicators at all


def test_saa_grows_monotonically_harder(chance_context):
    """More scenarios can only shrink the feasible region (the scenario
    sets are nested), so the optimal objective is nondecreasing for a
    minimization problem."""
    objectives = []
    for m in (5, 10, 20):
        formulation = formulate_saa(chance_context, m)
        result = formulation.builder.solve()
        assert result.has_solution
        objectives.append(
            formulation.claimed_objective(result.x, chance_context)
        )
    assert objectives[0] <= objectives[1] + 1e-9
    assert objectives[1] <= objectives[2] + 1e-9
