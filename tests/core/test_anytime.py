"""Anytime envelope: deadline verdicts, gap contract, engine attachment."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SPQConfig, SPQEngine
from repro.core.anytime import AnytimeResult, finalize_anytime, relative_gap
from repro.core.approx import ObjectiveBounds
from repro.core.package import PackageResult
from repro.core.stats import RunStats
from repro.utils.timing import Deadline

QUERY = (
    "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
    " SUM(Value) >= 6 WITH PROBABILITY >= 0.8 MINIMIZE EXPECTED SUM(Value)"
)


@pytest.fixture
def engine(items_catalog, fast_config):
    return SPQEngine(catalog=items_catalog, config=fast_config)


# --- relative_gap ----------------------------------------------------------


def test_relative_gap_symmetric_and_clamped():
    assert relative_gap(10.0, 10.0) == 0.0
    assert relative_gap(10.0, 12.0) == pytest.approx(0.2)
    assert relative_gap(-10.0, -12.0) == pytest.approx(0.2)
    # Denominator clamps at 1 around zero objectives.
    assert relative_gap(0.0, 0.5) == pytest.approx(0.5)
    assert relative_gap(0.1, 0.4) == pytest.approx(0.3)


# --- effective_time_limit / config validation ------------------------------


def test_effective_time_limit_takes_min():
    config = SPQConfig(time_limit=10.0, deadline_ms=2_000.0)
    assert config.effective_time_limit() == pytest.approx(2.0)
    assert SPQConfig(time_limit=10.0).effective_time_limit() == 10.0
    wide = SPQConfig(time_limit=1.0, deadline_ms=3_600_000.0)
    assert wide.effective_time_limit() == 1.0


def test_deadline_ms_validation():
    from repro.errors import EvaluationError

    with pytest.raises(EvaluationError, match="deadline_ms must be positive"):
        SPQConfig(deadline_ms=0)
    with pytest.raises(EvaluationError, match="deadline_ms must be positive"):
        SPQConfig(deadline_ms=-5.0)
    with pytest.raises(EvaluationError, match="deadline_ms must be a number"):
        SPQConfig(deadline_ms="soon")
    with pytest.raises(EvaluationError, match="deadline_ms must be a number"):
        SPQConfig(deadline_ms=True)


# --- Deadline fake clock ---------------------------------------------------


def test_deadline_injectable_clock():
    now = [0.0]
    deadline = Deadline(5.0, clock=lambda: now[0])
    assert not deadline.expired()
    assert deadline.remaining() == pytest.approx(5.0)
    now[0] = 4.0
    assert deadline.remaining() == pytest.approx(1.0)
    now[0] = 5.5
    assert deadline.expired()
    assert deadline.elapsed == pytest.approx(5.5)


# --- finalize_anytime ------------------------------------------------------


def _result(**kw) -> PackageResult:
    defaults = dict(
        package=None, feasible=False, objective=None, method="summarysearch"
    )
    defaults.update(kw)
    return PackageResult(**defaults)


def test_finalize_without_deadline_reports_met():
    result = _result()
    finalize_anytime(result, SPQConfig(), elapsed_s=0.5)
    assert result.anytime is not None
    assert result.anytime.deadline_met
    assert result.anytime.deadline_ms is None
    assert result.anytime.gap is None  # no package at all


def test_finalize_gap_zero_on_untruncated_package(chance_problem):
    from repro.core.package import Package

    stats = RunStats("summarysearch")
    result = _result(
        package=Package(chance_problem, np.zeros(5)),
        feasible=True,
        objective=1.0,
        stats=stats,
    )
    finalize_anytime(result, SPQConfig(deadline_ms=10_000.0), elapsed_s=0.01)
    assert result.anytime.deadline_met
    assert result.anytime.gap == 0.0


def test_finalize_truncated_prefers_epsilon_certificate(chance_problem):
    from repro.core.package import Package

    stats = RunStats("summarysearch")
    stats.timed_out = True
    result = _result(
        package=Package(chance_problem, np.zeros(5)),
        feasible=True,
        objective=10.0,
        stats=stats,
        epsilon_upper=0.25,
        meta={"truncated_stages": ("csa",)},
    )
    finalize_anytime(result, SPQConfig(deadline_ms=1.0), elapsed_s=5.0)
    assert not result.anytime.deadline_met
    assert result.anytime.gap == pytest.approx(0.25)
    assert result.anytime.stages_truncated == ("csa",)


def test_finalize_truncated_falls_back_to_bounds(chance_problem):
    from repro.core.package import Package
    from repro.silp.model import SENSE_MIN

    stats = RunStats("summarysearch")
    stats.timed_out = True
    bounds = ObjectiveBounds(lower=8.0, upper=20.0)
    result = _result(
        package=Package(chance_problem, np.zeros(5)),
        feasible=True,
        objective=10.0,
        stats=stats,
        meta={"bounds": bounds, "objective_sense": SENSE_MIN},
    )
    finalize_anytime(result, SPQConfig(deadline_ms=1.0), elapsed_s=5.0)
    # Minimization: distance from the incumbent (10) to the lower edge (8).
    assert result.anytime.gap == pytest.approx(relative_gap(10.0, 8.0))
    assert result.anytime.best_bound == pytest.approx(8.0)


def test_finalize_is_idempotent():
    result = _result()
    envelope = AnytimeResult(
        deadline_ms=1.0, deadline_met=False, elapsed_ms=2.0, gap=0.5
    )
    result.anytime = envelope
    finalize_anytime(result, SPQConfig(), elapsed_s=0.0)
    assert result.anytime is envelope


def test_as_dict_is_json_ready():
    envelope = AnytimeResult(
        deadline_ms=100.0,
        deadline_met=False,
        elapsed_ms=123.456789,
        gap=np.float64(0.25),
        incumbent_objective=np.float64(10.0),
        best_bound=8.0,
        stages_truncated=("csa",),
    )
    doc = envelope.as_dict()
    assert doc["deadline_met"] is False
    assert isinstance(doc["gap"], float)
    assert isinstance(doc["incumbent_objective"], float)
    assert doc["stages_truncated"] == ["csa"]
    import json

    json.dumps(doc)


# --- engine attachment -----------------------------------------------------


def test_engine_always_attaches_envelope(engine):
    result = engine.execute(QUERY)
    assert result.anytime is not None
    assert result.anytime.deadline_met
    assert result.anytime.gap == 0.0
    assert result.anytime.elapsed_ms > 0


def test_ample_deadline_is_bit_identical_to_no_deadline(engine):
    exact = engine.execute(QUERY, seed=7)
    generous = engine.execute(QUERY, seed=7, deadline_ms=3_600_000.0)
    assert generous.anytime.deadline_met
    assert generous.anytime.gap == 0.0
    assert np.array_equal(
        exact.package.multiplicities, generous.package.multiplicities
    )
    assert generous.objective == exact.objective


def test_tight_deadline_returns_incumbent_with_gap():
    # An unattainably small epsilon with unbounded quality rounds forces
    # SummarySearch to refine until the clock, not the success criterion,
    # stops it — the anytime path must then surface the best incumbent.
    from repro import Catalog
    from repro.workloads import get_query

    spec = get_query("portfolio", "Q1")
    relation, model = spec.build_dataset(40, seed=7)
    catalog = Catalog()
    catalog.register(relation, model)
    config = SPQConfig(
        n_validation_scenarios=1_000,
        n_initial_scenarios=24,
        scenario_increment=24,
        max_scenarios=1_000_000,
        n_expectation_scenarios=400,
        epsilon=1e-9,
        max_quality_rounds=None,
        seed=3,
        deadline_ms=1_200.0,
    )
    engine = SPQEngine(catalog=catalog, config=config)
    result = engine.execute(spec.spaql)
    assert result.anytime is not None
    assert not result.anytime.deadline_met
    assert result.package is not None
    assert result.feasible  # the incumbent validated out-of-sample
    assert result.anytime.gap is not None and np.isfinite(result.anytime.gap)
    assert result.anytime.stages_truncated == ("csa",)
    assert result.stats.timed_out
    # The deadline-missed line surfaces in the human summary too.
    assert "deadline missed" in result.summary()


def test_naive_tight_deadline_marks_truncation(items_catalog):
    config = SPQConfig(
        n_validation_scenarios=400,
        n_initial_scenarios=16,
        scenario_increment=16,
        max_scenarios=1_000_000,
        n_expectation_scenarios=200,
        epsilon=0.5,
        seed=3,
        deadline_ms=150.0,
    )
    engine = SPQEngine(catalog=items_catalog, config=config)
    # An infeasible-by-construction query loops adding scenarios until
    # the deadline; naive must stop and report truncation, not hang.
    impossible = (
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 1 AND"
        " SUM(Value) >= 50 WITH PROBABILITY >= 0.99"
        " MINIMIZE EXPECTED SUM(Value)"
    )
    result = engine.execute(impossible, method="naive")
    assert result.anytime is not None
    assert not result.anytime.deadline_met
    assert result.stats.timed_out
