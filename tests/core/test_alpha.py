"""α search: grid snapping, root finding, floors, plateau handling."""

import math

import numpy as np
import pytest

from repro.core.alpha import guess_alpha, snap_to_grid


def test_snap_to_grid_basics():
    assert snap_to_grid(0.0, 0.1) == pytest.approx(0.1)  # floor at one step
    assert snap_to_grid(0.26, 0.1) == pytest.approx(0.3)
    assert snap_to_grid(5.0, 0.1) == 1.0
    with pytest.raises(ValueError):
        snap_to_grid(0.5, 0.0)


def test_first_move_from_zero_is_least_conservative():
    # α = 0 infeasible: approach the crossing from below.
    assert guess_alpha([(0.0, -0.9)], 0.01) == pytest.approx(0.01)


def test_single_point_above_zero_steps_by_deficit():
    out = guess_alpha([(0.2, -0.1)], 0.01)
    assert out == pytest.approx(0.3)


def test_feasible_point_steps_down():
    out = guess_alpha([(0.5, 0.2)], 0.01)
    assert out < 0.5


def test_bracket_interpolation():
    history = [(0.1, -0.2), (0.5, 0.2)]
    out = guess_alpha(history, 0.01)
    # Linear interpolation puts the root at 0.3.
    assert out == pytest.approx(0.3, abs=0.02)


def test_target_floor_skips_wasted_steps():
    """With r < 0 the greedy G_z keeps the incumbent for any
    α ≤ achieved fraction, so the next α must exceed p + r."""
    history = [(0.0, -0.9), (0.01, -0.05)]
    out = guess_alpha(history, 0.01, target_p=0.9)
    assert out >= 0.85  # achieved = 0.9 - 0.05 = 0.85
    assert out <= 1.0


def test_floor_not_applied_when_feasible():
    history = [(0.9, 0.05)]
    out = guess_alpha(history, 0.01, target_p=0.9)
    assert out < 0.9


def test_already_tried_alpha_steps_in_corrective_direction():
    # Root estimate snaps to an already-tried point; must move one step
    # further in the direction indicated by the current surplus.
    history = [(0.1, -0.2), (0.2, -0.1)]
    out = guess_alpha(history, 0.1)
    assert out == pytest.approx(0.3)


def test_arctan_fit_recovers_root():
    root = 0.37
    alphas = np.array([0.05, 0.15, 0.25, 0.55, 0.75])
    surpluses = 0.2 * np.arctan(8.0 * (alphas - root))
    history = list(zip(alphas.tolist(), surpluses.tolist()))
    out = guess_alpha(history, 0.01)
    assert out == pytest.approx(root, abs=0.05)


def test_empty_history_rejected():
    with pytest.raises(ValueError):
        guess_alpha([], 0.1)


def test_result_always_on_grid():
    for history in ([(0.0, -0.5)], [(0.3, 0.2), (0.1, -0.4)], [(1.0, 0.9)]):
        out = guess_alpha(history, 0.05)
        assert out == pytest.approx(round(out / 0.05) * 0.05)
        assert 0.05 - 1e-12 <= out <= 1.0


def test_plateau_of_equal_surpluses_progresses():
    """Flat negative history must still move forward (not oscillate)."""
    history = [(0.0, -0.9)] + [(0.01 * k, -0.056) for k in range(1, 5)]
    out = guess_alpha(history, 0.01, target_p=0.9)
    assert out > 0.05
