"""Incremental evaluation layer: base-model reuse and warm starts must
be pure optimizations — formulations and results identical to cold mode.
"""

import numpy as np
import pytest

from repro.core.context import EvaluationContext
from repro.core.csa import formulate_csa
from repro.core.naive import naive_evaluate
from repro.core.saa import formulate_saa
from repro.core.summaries import SummaryBuilder
from repro.core.summarysearch import summary_search_evaluate
from repro.core.warmstart import apply_warm_start, indicator_values


def assert_same_arrays(a, b):
    for got, want in zip(a, b):
        if hasattr(got, "toarray"):
            np.testing.assert_array_equal(got.toarray(), want.toarray())
        else:
            np.testing.assert_array_equal(got, want)


def test_incremental_saa_formulation_equals_cold(chance_problem, fast_config):
    cold_ctx = EvaluationContext(
        chance_problem, fast_config.replace(incremental_solves=False)
    )
    inc_ctx = EvaluationContext(chance_problem, fast_config)
    for n_scenarios in (5, 9, 9):
        cold = formulate_saa(cold_ctx, n_scenarios)
        incremental = formulate_saa(inc_ctx, n_scenarios)
        assert_same_arrays(
            incremental.builder.to_arrays(), cold.builder.to_arrays()
        )


def test_incremental_csa_formulation_equals_cold(chance_problem, fast_config):
    cold_ctx = EvaluationContext(
        chance_problem, fast_config.replace(incremental_solves=False)
    )
    inc_ctx = EvaluationContext(chance_problem, fast_config)
    n_scenarios, n_summaries = 12, 3
    item = inc_ctx.chance_items()[0]
    x_prev = np.zeros(chance_problem.n_vars, dtype=np.int64)
    x_prev[:2] = 1
    for alpha in (0.25, 0.5, 1.0):
        summaries = {
            item["index"]: SummaryBuilder(inc_ctx, n_scenarios, n_summaries).build(
                item, alpha, x_prev
            )
        }
        cold = formulate_csa(cold_ctx, summaries, n_scenarios)
        incremental = formulate_csa(
            inc_ctx, summaries, n_scenarios, warm_x=x_prev
        )
        assert_same_arrays(
            incremental.builder.to_arrays(), cold.builder.to_arrays()
        )


def test_successive_formulations_are_independent(chance_context):
    """Two live formulations from one incremental context must not share
    mutable state (the second must not clobber the first)."""
    small = formulate_saa(chance_context, 5)
    large = formulate_saa(chance_context, 15)
    assert small.builder is not large.builder
    assert small.builder.n_variables == chance_context.problem.n_vars + 5
    assert large.builder.n_variables == chance_context.problem.n_vars + 15


def test_warm_start_indicator_derivation():
    columns = np.array([[1.0, -1.0], [2.0, 0.5]])  # 2 vars x 2 indicators
    x = np.array([1.0, 1.0])
    np.testing.assert_array_equal(
        indicator_values(x, columns, ">=", 1.0), [1.0, 0.0]
    )
    np.testing.assert_array_equal(
        indicator_values(x, columns, "<=", 1.0), [0.0, 1.0]
    )


def test_apply_warm_start_rejects_infeasible_carryover():
    from repro.solver.model import MILPBuilder

    builder = MILPBuilder()
    x_idx = builder.add_variables("x", 2, lb=0.0, ub=2.0)
    builder.add_constraint(x_idx, [1.0, 1.0], ub=1.0)
    assert not apply_warm_start(builder, x_idx, np.array([2.0, 2.0]), [])
    assert builder.validated_warm_start() is None
    assert apply_warm_start(builder, x_idx, np.array([1.0, 0.0]), [])
    assert builder.validated_warm_start() is not None
    assert not apply_warm_start(builder, x_idx, None, [])


def test_warm_started_csa_solve_installs_hint(chance_context):
    """The derived hint (x plus implied indicators) must be feasible for
    the CSA whose summaries were built around that same x."""
    ctx = chance_context
    item = ctx.chance_items()[0]
    x = np.zeros(ctx.problem.n_vars, dtype=np.int64)
    x[np.argsort(-ctx.mean_coefficients(item["expr"]))[:3]] = 1
    summaries = {
        item["index"]: SummaryBuilder(ctx, 12, 2).build(item, 1.0, x)
    }
    formulation = formulate_csa(ctx, summaries, 12, warm_x=x)
    hint = formulation.builder.validated_warm_start()
    assert hint is not None
    np.testing.assert_array_equal(
        np.round(hint[formulation.x_indices]).astype(np.int64), x
    )


@pytest.mark.parametrize("method", ["summarysearch", "naive"])
def test_methods_return_same_package_incremental_on_and_off(
    chance_problem, fast_config, method
):
    evaluate = summary_search_evaluate if method == "summarysearch" else naive_evaluate
    results = [
        evaluate(chance_problem, fast_config.replace(incremental_solves=flag))
        for flag in (True, False)
    ]
    on, off = results
    assert on.feasible == off.feasible
    if on.package is None:
        assert off.package is None
    else:
        np.testing.assert_array_equal(
            on.package.multiplicities, off.package.multiplicities
        )
    if on.objective is None:
        assert off.objective is None
    else:
        assert on.objective == pytest.approx(off.objective)
