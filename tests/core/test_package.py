"""Package result objects."""

import numpy as np
import pytest

from repro.core.package import Package, PackageResult


def test_package_structure(chance_problem):
    package = Package(chance_problem, np.array([2, 0, 1, 0, 0]))
    assert package.total_count == 3
    assert package.n_distinct == 2
    assert not package.is_empty
    assert package.nonzero_positions().tolist() == [0, 2]
    assert package.key_multiplicities() == {0: 2, 2: 1}


def test_package_rejects_bad_multiplicities(chance_problem):
    with pytest.raises(ValueError):
        Package(chance_problem, np.array([1, 2, 3]))  # wrong length
    with pytest.raises(ValueError):
        Package(chance_problem, np.array([1, -1, 0, 0, 0]))
    with pytest.raises(ValueError):
        Package(chance_problem, np.array([0.5, 0, 0, 0, 0]))


def test_package_accepts_near_integral_floats(chance_problem):
    package = Package(chance_problem, np.array([1.0 + 1e-9, 0, 0, 0, 0]))
    assert package.multiplicities.tolist() == [1, 0, 0, 0, 0]


def test_to_relation_repeats_rows(chance_problem):
    package = Package(chance_problem, np.array([2, 0, 1, 0, 0]))
    relation = package.to_relation()
    assert relation.n_rows == 3
    assert relation.column("price").tolist() == [5.0, 5.0, 3.0]
    # Fresh positional key (the original ids repeat).
    assert relation.key == "__package_row"
    assert relation.column("id").tolist() == [0, 0, 2]


def test_empty_package_to_relation(chance_problem):
    relation = Package(chance_problem, np.zeros(5)).to_relation()
    assert relation.n_rows == 0


def test_deterministic_total(chance_problem):
    package = Package(chance_problem, np.array([1, 1, 0, 0, 0]))
    assert package.deterministic_total("price") == pytest.approx(13.0)


def test_active_row_indirection(items_catalog, fast_config):
    """Multiplicities index active rows; key mapping must go through the
    WHERE-filtered positions."""
    from repro.silp.compile import compile_query

    problem = compile_query(
        "SELECT PACKAGE(*) FROM items WHERE price >= 5 SUCH THAT COUNT(*) <= 2",
        items_catalog,
    )
    # Active rows are positions [0, 1, 3].
    package = Package(problem, np.array([0, 1, 1]))
    assert package.key_multiplicities() == {1: 1, 3: 1}
    assert package.nonzero_base_rows().tolist() == [1, 3]


def test_result_summary_text(chance_problem):
    package = Package(chance_problem, np.array([1, 0, 0, 0, 0]))
    result = PackageResult(
        package=package, feasible=True, objective=5.0, method="naive",
        epsilon_upper=0.2,
    )
    text = result.summary()
    assert "naive" in text and "feasible=True" in text
    assert "1.2" in text  # 1 + eps
    assert result.succeeded


def test_result_failure_summary():
    result = PackageResult(
        package=None, feasible=False, objective=None, method="naive",
        message="boom",
    )
    assert "boom" in result.summary()
    assert not result.succeeded
