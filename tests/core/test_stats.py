"""Run statistics bookkeeping."""

from repro.core.stats import IterationRecord, RunStats


def _record(i, m, solve=1.0, validate=0.5, z=None):
    return IterationRecord(
        method="x", iteration=i, n_scenarios=m, n_summaries=z,
        solve_time=solve, validate_time=validate,
    )


def test_add_tracks_final_counts():
    stats = RunStats("naive")
    stats.add(_record(1, 10))
    stats.add(_record(2, 20))
    assert stats.n_iterations == 2
    assert stats.final_n_scenarios == 20
    assert stats.final_n_summaries is None


def test_summaries_tracked_when_present():
    stats = RunStats("summarysearch")
    stats.add(_record(1, 10, z=1))
    stats.add(_record(2, 10, z=3))
    assert stats.final_n_summaries == 3


def test_time_aggregates():
    stats = RunStats("naive")
    stats.add(_record(1, 10, solve=1.0, validate=0.25))
    stats.add(_record(2, 20, solve=2.0, validate=0.75))
    assert stats.total_solve_time == 3.0
    assert stats.total_validate_time == 1.0


def test_flags_default_false():
    stats = RunStats("naive")
    assert not stats.timed_out
    assert not stats.declared_infeasible
