"""Failure injection: time limits, solver failures, degenerate inputs.

Checks the graceful-degradation paths the paper's evaluation relies on
(Section 6.1's four-hour cap: "When the time limit expires, we interrupt
CPLEX and get the best solution found by the solver until then").
"""

import numpy as np
import pytest

from repro.core.naive import naive_evaluate
from repro.core.summarysearch import summary_search_evaluate
from repro.silp.compile import compile_query

QUERY = (
    "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
    " SUM(Value) >= 5 WITH PROBABILITY >= 0.8 MINIMIZE EXPECTED SUM(Value)"
)


@pytest.fixture
def problem(items_catalog):
    return compile_query(QUERY, items_catalog)


@pytest.mark.parametrize("evaluate", [naive_evaluate, summary_search_evaluate])
def test_tiny_time_limit_returns_gracefully(problem, fast_config, evaluate):
    """An expired deadline must yield a result object, not an exception,
    with the timeout recorded."""
    config = fast_config.replace(time_limit=1e-3)
    result = evaluate(problem, config)
    assert result is not None
    if not result.feasible:
        assert result.stats.timed_out or result.stats.n_iterations <= 1


@pytest.mark.parametrize("evaluate", [naive_evaluate, summary_search_evaluate])
def test_single_scenario_budget(problem, fast_config, evaluate):
    """M = max M = 1: the algorithms must still run one full round."""
    config = fast_config.replace(
        n_initial_scenarios=1, max_scenarios=1, scenario_increment=1
    )
    result = evaluate(problem, config)
    assert result.stats.final_n_scenarios == 1


def test_single_row_relation(fast_config):
    from repro import Catalog, Relation
    from repro.mcdb import GaussianNoiseVG, StochasticModel

    relation = Relation("solo", {"price": [10.0]})
    model = StochasticModel(relation, {"V": GaussianNoiseVG("price", 0.5)})
    catalog = Catalog()
    catalog.register(relation, model)
    problem = compile_query(
        "SELECT PACKAGE(*) FROM solo SUCH THAT COUNT(*) <= 2 AND"
        " SUM(V) >= 8 WITH PROBABILITY >= 0.9 MINIMIZE EXPECTED SUM(V)",
        catalog,
    )
    result = summary_search_evaluate(problem, fast_config)
    assert result.feasible
    assert result.package.total_count >= 1


def test_branch_bound_backend_end_to_end(problem, fast_config):
    """The home-grown solver handles the full pipeline (small instance)."""
    config = fast_config.replace(
        solver="branch-bound", n_initial_scenarios=10, max_scenarios=20
    )
    result = summary_search_evaluate(problem, config)
    assert result.feasible


def test_tight_solver_time_limit_still_terminates(problem, fast_config):
    config = fast_config.replace(solver_time_limit=0.05)
    result = summary_search_evaluate(problem, config)
    assert result is not None  # may or may not be feasible, must not hang


def test_probability_one_boundary_not_allowed():
    """p must lie in (0,1); the boundary belongs to deterministic SQL."""
    from repro.errors import ParseError
    from repro.spaql.parser import parse_query

    with pytest.raises(ParseError):
        parse_query(
            "SELECT PACKAGE(*) FROM t SUCH THAT SUM(X) >= 0"
            " WITH PROBABILITY >= 1.0"
        )


def test_empty_chance_feasible_set_with_empty_package_allowed(
    items_catalog, fast_config
):
    """COUNT >= 0 plus an impossible inner constraint: the empty package
    satisfies a <= chance constraint trivially, so the query is feasible
    with the empty package."""
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 2 AND"
        " SUM(Value) <= -100 WITH PROBABILITY >= 0.9"
        " MINIMIZE EXPECTED SUM(Value)",
        items_catalog,
    )
    result = summary_search_evaluate(problem, fast_config)
    # Empty package: sum identically 0 > -100 fails the <= constraint...
    # actually 0 <= -100 is false, so the empty package FAILS; nonempty
    # packages fail harder. The query must be declared infeasible.
    assert not result.feasible
