"""Out-of-sample validation (Section 3.2)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.context import EvaluationContext
from repro.core.validator import Validator
from repro.silp.compile import compile_query


@pytest.fixture
def validator(chance_context):
    return Validator(chance_context)


def test_validation_reproducible(validator):
    x = np.array([1, 0, 0, 1, 0])
    a = validator.validate(x)
    b = validator.validate(x)
    assert a.items[0].satisfied_fraction == b.items[0].satisfied_fraction


def test_known_gaussian_probability(items_catalog, fast_config):
    """One tuple with Value ~ N(8, 1): P(Value >= 6) = Φ(2) ≈ 0.977."""
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
        " SUM(Value) >= 6 WITH PROBABILITY >= 0.8"
        " MINIMIZE EXPECTED SUM(Value)",
        items_catalog,
    )
    config = fast_config.replace(n_validation_scenarios=20_000)
    ctx = EvaluationContext(problem, config)
    validator = Validator(ctx)
    x = np.array([0, 1, 0, 0, 0])  # the price-8 item
    report = validator.validate(x)
    expected = stats.norm.cdf(2.0)
    assert report.items[0].satisfied_fraction == pytest.approx(expected, abs=0.01)
    assert report.feasible


def test_multiplicities_scale_scores(items_catalog, fast_config):
    """Two copies of the price-3 item: total ~ N(6, sqrt(2)), and
    P(total >= 6) ≈ 0.5."""
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
        " SUM(Value) >= 6 WITH PROBABILITY >= 0.8"
        " MINIMIZE EXPECTED SUM(Value)",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config.replace(n_validation_scenarios=20_000))
    validator = Validator(ctx)
    report = validator.validate(np.array([0, 0, 2, 0, 0]))
    assert report.items[0].satisfied_fraction == pytest.approx(0.5, abs=0.02)
    assert not report.feasible


def test_surplus_definition(validator):
    report = validator.validate(np.array([0, 1, 0, 1, 0]))
    item = report.items[0]
    assert item.surplus == pytest.approx(item.satisfied_fraction - 0.8)


def test_empty_package_ge_constraint_infeasible(validator):
    report = validator.validate(np.zeros(5, dtype=int))
    # Score 0 >= 6 never holds.
    assert report.items[0].satisfied_fraction == 0.0
    assert not report.feasible


def test_empty_package_le_constraint_feasible(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
        " SUM(Value) <= 100 WITH PROBABILITY >= 0.9",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    report = Validator(ctx).validate(np.zeros(5, dtype=int))
    assert report.items[0].satisfied_fraction == 1.0
    assert report.feasible


def test_mean_objective_reported(validator, chance_context):
    x = np.array([1, 0, 1, 0, 0])
    report = validator.validate(x)
    assert report.objective == pytest.approx(
        chance_context.mean_objective_value(x)
    )


def test_probability_objective_validated(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) BETWEEN 1 AND 2"
        " MAXIMIZE PROBABILITY OF SUM(Value) >= 12",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config.replace(n_validation_scenarios=20_000))
    validator = Validator(ctx)
    # items 1 and 3: total ~ N(14, sqrt 2) => P(>= 12) = Φ(2/sqrt2) ≈ 0.921.
    report = validator.validate(np.array([0, 1, 0, 1, 0]))
    expected = stats.norm.cdf(2.0 / np.sqrt(2.0))
    assert report.objective == pytest.approx(expected, abs=0.01)
    assert report.items[-1].is_objective
    assert report.items[-1].surplus is None


def test_claimed_objective_passthrough(validator):
    report = validator.validate(np.array([1, 0, 0, 0, 0]), claimed_objective=0.5)
    assert report.claimed_objective == 0.5


def test_chunking_consistency(items_catalog, fast_config):
    """Fractions with M̂ spanning multiple chunks agree with the small-M̂
    prefix (chunk identity is stable)."""
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
        " SUM(Value) >= 6 WITH PROBABILITY >= 0.8",
        items_catalog,
    )
    x = np.array([0, 1, 0, 0, 0])
    big_ctx = EvaluationContext(
        problem, fast_config.replace(n_validation_scenarios=5000)
    )
    small_ctx = EvaluationContext(
        problem, fast_config.replace(n_validation_scenarios=4096)
    )
    big_count = Validator(big_ctx).satisfied_count(x, big_ctx.chance_items()[0])
    small_count = Validator(small_ctx).satisfied_count(x, small_ctx.chance_items()[0])
    # The first 4096 scenarios are shared: counts differ by at most the
    # 904 extra scenarios.
    assert 0 <= big_count - small_count <= 5000 - 4096
