"""SketchRefine extension (Section 8 future-work item ii)."""

import numpy as np
import pytest

from repro import Catalog, Relation
from repro.core.context import EvaluationContext
from repro.core.deterministic import deterministic_evaluate
from repro.core.sketchrefine import make_groups, sketch_refine_evaluate
from repro.errors import EvaluationError
from repro.silp.compile import compile_query
from repro.utils.rngkeys import make_generator


def _random_catalog(n_rows=60, seed=0):
    rng = make_generator(seed, 0)
    relation = Relation(
        "inventory",
        {
            "cost": np.round(rng.uniform(1.0, 20.0, n_rows), 2),
            "value": np.round(rng.uniform(0.5, 30.0, n_rows), 2),
        },
    )
    catalog = Catalog()
    catalog.register(relation)
    return catalog


QUERY = (
    "SELECT PACKAGE(*) FROM inventory SUCH THAT"
    " SUM(cost) <= 50 AND COUNT(*) <= 8 MAXIMIZE SUM(value)"
)


def test_groups_partition_active_rows(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 2 MINIMIZE SUM(price)",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    groups = make_groups(ctx, 2)
    merged = np.sort(np.concatenate(groups))
    assert merged.tolist() == list(range(5))
    # Quantile grouping by objective coefficient: first group holds the
    # cheaper half.
    prices = ctx.mean_coefficients(problem.objective.expr)
    assert prices[groups[0]].max() <= prices[groups[-1]].min()


def test_single_partition_equals_exact(fast_config):
    catalog = _random_catalog()
    problem = compile_query(QUERY, catalog)
    exact = deterministic_evaluate(problem, fast_config)
    approx = sketch_refine_evaluate(problem, fast_config, n_partitions=1)
    assert approx.feasible
    # One group refines over the whole relation: optimal.
    assert approx.objective == pytest.approx(exact.objective, rel=1e-6)


@pytest.mark.parametrize("n_partitions", [4, 8])
def test_solution_feasible_and_near_optimal(fast_config, n_partitions):
    catalog = _random_catalog(n_rows=80, seed=3)
    problem = compile_query(QUERY, catalog)
    exact = deterministic_evaluate(problem, fast_config)
    approx = sketch_refine_evaluate(problem, fast_config, n_partitions=n_partitions)
    assert approx.feasible
    package = approx.package
    assert package.deterministic_total("cost") <= 50 + 1e-6
    assert package.total_count <= 8
    # Quality: within 25% of the exact maximizer on these instances.
    assert approx.objective >= 0.75 * exact.objective


def test_minimization_with_lower_pressure(fast_config):
    catalog = _random_catalog(seed=5)
    problem = compile_query(
        "SELECT PACKAGE(*) FROM inventory SUCH THAT"
        " SUM(value) >= 40 AND COUNT(*) <= 10 MINIMIZE SUM(cost)",
        catalog,
    )
    exact = deterministic_evaluate(problem, fast_config)
    approx = sketch_refine_evaluate(problem, fast_config, n_partitions=6)
    assert approx.feasible
    assert approx.package.deterministic_total("value") >= 40 - 1e-6
    assert approx.objective <= exact.objective * 1.5


def test_probabilistic_query_rejected(chance_problem, fast_config):
    with pytest.raises(EvaluationError):
        sketch_refine_evaluate(chance_problem, fast_config)


def test_invalid_partition_count(fast_config):
    catalog = _random_catalog()
    problem = compile_query(QUERY, catalog)
    with pytest.raises(EvaluationError):
        sketch_refine_evaluate(problem, fast_config, n_partitions=0)


def test_infeasible_problem_reported(fast_config):
    catalog = _random_catalog()
    problem = compile_query(
        "SELECT PACKAGE(*) FROM inventory SUCH THAT"
        " SUM(cost) <= 1 AND SUM(value) >= 10000 MINIMIZE SUM(cost)",
        catalog,
    )
    result = sketch_refine_evaluate(problem, fast_config, n_partitions=4)
    assert not result.feasible
    assert result.package is None


def test_more_partitions_do_not_break_feasibility(fast_config):
    catalog = _random_catalog(n_rows=120, seed=9)
    problem = compile_query(QUERY, catalog)
    for n_partitions in (2, 16, 60):
        result = sketch_refine_evaluate(problem, fast_config, n_partitions)
        assert result.feasible


def test_more_partitions_than_active_tuples(fast_config):
    """k > n clamps to one tuple per group and still refines cleanly."""
    catalog = _random_catalog(n_rows=12, seed=2)
    problem = compile_query(QUERY, catalog)
    exact = deterministic_evaluate(problem, fast_config)
    approx = sketch_refine_evaluate(problem, fast_config, n_partitions=500)
    assert approx.feasible
    assert approx.package.deterministic_total("cost") <= 50 + 1e-6
    # Singleton groups: centroids are exact, so refine recovers the
    # exact optimum.
    assert approx.objective == pytest.approx(exact.objective, rel=1e-6)


def test_where_restricted_partition_count_clamps(fast_config):
    catalog = _random_catalog(n_rows=40, seed=7)
    problem = compile_query(
        "SELECT PACKAGE(*) FROM inventory WHERE cost <= 5 SUCH THAT"
        " SUM(cost) <= 20 AND COUNT(*) <= 4 MAXIMIZE SUM(value)",
        catalog,
    )
    assert problem.n_vars < 40
    result = sketch_refine_evaluate(
        problem, fast_config, n_partitions=problem.n_vars + 10
    )
    assert result.feasible
    assert result.package.total_count <= 4


def test_empty_after_where_raises_evaluation_error(fast_config):
    """A tuple-less problem hits the evaluation contract, not the solver.

    ``compile_query`` rejects an all-filtering WHERE clause itself, so
    this constructs the degenerate problem directly, as embedding
    callers can.
    """
    from repro.silp.model import StochasticPackageProblem

    catalog = _random_catalog()
    template = compile_query(QUERY, catalog)
    empty = StochasticPackageProblem(
        relation=template.relation,
        model=None,
        active_rows=np.empty(0, dtype=np.int64),
        objective=template.objective,
        constraints=template.constraints,
    )
    with pytest.raises(EvaluationError, match="no active tuples"):
        sketch_refine_evaluate(empty, fast_config, n_partitions=4)
