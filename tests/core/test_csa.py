"""CSA formulation and CSA-Solve (Algorithm 3)."""

import math

import numpy as np
import pytest

from repro.core.approx import compute_objective_bounds
from repro.core.context import EvaluationContext
from repro.core.csa import CSASolveResult, csa_solve, formulate_csa
from repro.core.summaries import SummaryBuilder
from repro.core.validator import Validator
from repro.silp.compile import compile_query


def _summaries(ctx, n_scenarios, n_summaries, alpha, x=None):
    builder = SummaryBuilder(ctx, n_scenarios, n_summaries)
    out = {}
    for item in ctx.chance_items():
        out[item["index"]] = builder.build(item, alpha, x)
    return out


def test_csa_size_independent_of_m(chance_context):
    """Θ(N·Z·K) coefficients: scenario count must not affect CSA size."""
    small = formulate_csa(
        chance_context, _summaries(chance_context, 10, 2, 0.5), 10
    )
    large = formulate_csa(
        chance_context, _summaries(chance_context, 50, 2, 0.5), 50
    )
    assert small.builder.n_variables == large.builder.n_variables
    assert small.builder.n_variables == 5 + 2  # x's + Z indicators


def test_csa_cardinality_requirement(chance_context):
    n_summaries = 4
    formulation = formulate_csa(
        chance_context, _summaries(chance_context, 12, n_summaries, 0.5), 12
    )
    result = formulation.builder.solve()
    assert result.has_solution
    # ceil(0.8 * 4) = 4: all summaries must be satisfied.
    x = formulation.extract_package(result.x)
    constraint = chance_context.problem.chance_constraints[0]
    summary_set = _summaries(chance_context, 12, n_summaries, 0.5, x)[0]


def test_alpha_zero_items_skipped(chance_context):
    formulation = formulate_csa(chance_context, {0: None}, 10)
    assert formulation.builder.n_variables == 5  # no indicators


def test_csa_solution_more_conservative_than_saa(chance_context):
    """At equal M, a CSA(α=1, Z=1) solution satisfies every optimization
    scenario, so its satisfied count is at least SAA's ⌈pM⌉."""
    n_scenarios = 10
    formulation = formulate_csa(
        chance_context, _summaries(chance_context, n_scenarios, 1, 1.0), n_scenarios
    )
    result = formulation.builder.solve()
    assert result.has_solution
    x = formulation.extract_package(result.x)
    constraint = chance_context.problem.chance_constraints[0]
    matrix = chance_context.optimization_matrix(constraint.expr, n_scenarios)
    satisfied = int(((x @ matrix) >= constraint.rhs - 1e-9).sum())
    assert satisfied == n_scenarios


def test_csa_solve_no_chance_items_short_circuits(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 2 MINIMIZE SUM(price)",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    validator = Validator(ctx)
    x0 = np.zeros(5, dtype=np.int64)
    result = csa_solve(ctx, validator, None, x0, 10, 1, 0.5)
    assert result.feasible and result.eps_ok
    assert np.array_equal(result.x, x0)


def test_csa_solve_finds_feasible_solution(chance_context):
    validator = Validator(chance_context)
    bounds = compute_objective_bounds(chance_context)
    x0 = np.zeros(5, dtype=np.int64)
    result = csa_solve(chance_context, validator, bounds, x0, 20, 1, 10.0)
    assert result.feasible
    assert result.report.items[0].satisfied_fraction >= 0.8
    # The α search starts least-conservative and the iterations recorded
    # must begin at α = 0.
    assert result.iterations[0].alphas == (0.0,)


def test_csa_solve_terminates_within_budget(chance_context):
    validator = Validator(chance_context)
    result = csa_solve(chance_context, validator, None, np.zeros(5, dtype=np.int64),
                       20, 1, 0.0)
    assert len(result.iterations) <= chance_context.config.max_csa_iterations + 1


def test_probability_objective_claim_is_conservative(items_catalog, fast_config):
    """The CSA claimed probability never exceeds what the optimization
    sample actually achieves (guaranteed-fraction weights)."""
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) BETWEEN 1 AND 2"
        " MAXIMIZE PROBABILITY OF SUM(Value) >= 10",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    n_scenarios = 12
    summaries = _summaries(ctx, n_scenarios, 3, 0.5)
    formulation = formulate_csa(ctx, summaries, n_scenarios)
    result = formulation.builder.solve()
    assert result.has_solution
    x = formulation.extract_package(result.x)
    claimed = formulation.claimed_objective(result.x, ctx)
    matrix = ctx.optimization_matrix(problem.objective.expr, n_scenarios)
    actual = float(((x @ matrix) >= 10.0 - 1e-9).mean())
    assert claimed <= actual + 1e-9
