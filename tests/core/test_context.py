"""Shared evaluation context."""

import numpy as np
import pytest

from repro.core.context import EvaluationContext
from repro.db.expressions import Attr, Const
from repro.silp.compile import compile_query


def test_mean_coefficients_deterministic_exact(chance_context):
    coeffs = chance_context.mean_coefficients(Attr("price"))
    assert coeffs.tolist() == [5.0, 8.0, 3.0, 6.0, 4.0]


def test_mean_coefficients_stochastic_uses_estimator(chance_context):
    coeffs = chance_context.mean_coefficients(Attr("Value"))
    # Gaussian noise: analytic mean equals the base prices.
    assert np.allclose(coeffs, [5.0, 8.0, 3.0, 6.0, 4.0])


def test_mean_coefficients_cached(chance_context):
    expr = Attr("price")
    assert chance_context.mean_coefficients(expr) is chance_context.mean_coefficients(expr)


def test_variable_bounds_from_count(chance_context):
    # COUNT(*) <= 3 bounds every variable by 3.
    assert chance_context.variable_ub.tolist() == [3] * 5


def test_size_bounds(chance_context):
    assert chance_context.size_bounds == (0.0, 3.0)


def test_base_milp_structure(chance_context):
    builder, x_idx = chance_context.build_base_milp()
    assert builder.n_variables == 5
    assert builder.n_constraints == 1  # the COUNT constraint
    result = builder.solve()
    assert result.has_solution
    # Minimizing expected value with no lower pressure: empty package.
    assert result.objective == pytest.approx(0.0)


def test_chance_items_constraint_only(chance_context):
    items = chance_context.chance_items()
    assert len(items) == 1
    assert not items[0]["is_objective"]
    assert items[0]["p"] == 0.8


def test_chance_items_with_probability_objective(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 2 AND"
        " SUM(Value) >= 1 WITH PROBABILITY >= 0.7"
        " MAXIMIZE PROBABILITY OF SUM(Value) >= 9",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    items = ctx.chance_items()
    assert len(items) == 2
    assert items[1]["is_objective"]
    assert items[1]["p"] is None
    assert items[1]["sense"] == "maximize"


def test_objective_sense_helpers(chance_context):
    assert chance_context.objective_sense == "minimize"
    assert chance_context.minimize
    assert chance_context.better(1.0, 2.0)
    assert not chance_context.better(None, 2.0)
    assert chance_context.better(1.0, None)


def test_better_for_maximization(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 2"
        " MAXIMIZE SUM(price)",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    assert ctx.better(3.0, 2.0)
    assert not ctx.better(1.0, 2.0)


def test_no_stochastic_model_context(fast_config):
    from repro import Catalog, Relation

    relation = Relation("plain", {"cost": [1.0, 2.0]})
    catalog = Catalog()
    catalog.register(relation)
    problem = compile_query(
        "SELECT PACKAGE(*) FROM plain SUCH THAT COUNT(*) <= 1", catalog
    )
    ctx = EvaluationContext(problem, fast_config)
    assert ctx.estimator is None
    with pytest.raises(Exception):
        ctx.optimization_matrix(Attr("cost"), 3)


def test_mean_objective_value(chance_context):
    x = np.array([1, 1, 0, 0, 0])
    assert chance_context.mean_objective_value(x) == pytest.approx(13.0)
