"""SPQEngine façade."""

import pytest

from repro import Catalog, Relation, SPQEngine
from repro.errors import EvaluationError


@pytest.fixture
def engine(items_catalog, fast_config):
    return SPQEngine(catalog=items_catalog, config=fast_config)


QUERY = (
    "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
    " SUM(Value) >= 5 WITH PROBABILITY >= 0.8 MINIMIZE EXPECTED SUM(Value)"
)


def test_execute_default_method(engine):
    result = engine.execute(QUERY)
    assert result.method == "summarysearch"
    assert result.feasible


def test_execute_naive(engine):
    result = engine.execute(QUERY, method="naive")
    assert result.method == "naive"
    assert result.feasible


def test_unknown_method_rejected(engine):
    with pytest.raises(EvaluationError, match="unknown method"):
        engine.execute(QUERY, method="magic")


def test_overrides_apply(engine):
    result = engine.execute(QUERY, seed=77, n_validation_scenarios=500)
    assert result.feasible


def test_deterministic_routing(engine):
    query = "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 2 MAXIMIZE SUM(price)"
    # Non-probabilistic queries route to the deterministic solver even
    # when a stochastic method was requested.
    for method in ("summarysearch", "naive", "deterministic"):
        result = engine.execute(query, method=method)
        assert result.method == "deterministic"
        assert result.objective == pytest.approx(16.0)  # two copies of the price-8 item


def test_parse_and_compile_helpers(engine):
    ast = engine.parse(QUERY)
    assert ast.table == "items"
    problem = engine.compile(ast)
    assert problem.n_vars == 5
    # Problems can be executed directly (skipping recompilation).
    result = engine.execute(problem)
    assert result.feasible


def test_register_through_engine(fast_config):
    engine = SPQEngine(config=fast_config)
    engine.register(Relation("t", {"cost": [1.0, 2.0, 3.0]}))
    result = engine.execute(
        "SELECT PACKAGE(*) FROM t SUCH THAT SUM(cost) <= 3 MAXIMIZE SUM(cost)"
    )
    assert result.objective == pytest.approx(3.0)


def test_default_config_engine():
    engine = SPQEngine()
    assert engine.catalog is not None
    assert len(engine.catalog) == 0


def test_compile_cache_hits_on_repeated_text(engine):
    first = engine.compile(QUERY)
    assert engine.compile(QUERY) is first  # warm session: one compile
    assert engine.compile("  " + QUERY + "\n") is first  # whitespace-insensitive


def test_compile_cache_invalidated_by_any_sessions_registration(fast_config):
    # Two sessions over one shared catalog (the serving layer's shape):
    # a registration through EITHER session — or the catalog directly —
    # must invalidate BOTH sessions' compiled-problem caches.
    catalog = Catalog()
    catalog.register(Relation("t", {"cost": [1.0, 2.0, 3.0]}))
    a = SPQEngine(catalog=catalog, config=fast_config)
    b = SPQEngine(catalog=catalog, config=fast_config)
    query = "SELECT PACKAGE(*) FROM t SUCH THAT SUM(cost) <= 3 MAXIMIZE SUM(cost)"
    assert a.execute(query).objective == pytest.approx(3.0)
    assert b.execute(query).objective == pytest.approx(3.0)
    # Replace the data through session a; session b must not serve the
    # stale compiled problem.
    a.register(Relation("t", {"cost": [10.0, 20.0, 30.0]}))
    assert b.execute(query).objective == pytest.approx(0.0)
    assert a.execute(query).objective == pytest.approx(0.0)
    # And a direct catalog mutation invalidates as well.
    catalog.register(Relation("t", {"cost": [1.0, 1.5, 2.0]}))
    assert b.execute(query).objective == pytest.approx(3.0)


def test_concurrent_registrations_never_lose_a_version_bump():
    # The compile cache's "a hit is always current" guarantee rests on
    # the version counter changing for every mutation; two racing
    # registrations losing an increment to each other would leave the
    # counter unchanged after the second landed.
    import threading

    catalog = Catalog()
    n_threads, per_thread = 8, 50
    barrier = threading.Barrier(n_threads)

    def register_many(thread_id: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            catalog.register(Relation(f"t{thread_id}", {"cost": [float(i)]}))

    threads = [
        threading.Thread(target=register_many, args=(t,))
        for t in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert catalog.version == n_threads * per_thread


def test_compile_cache_evicts_lru_not_newest(fast_config, monkeypatch):
    # A long-lived serving session must keep caching its *hot* queries
    # after seeing many distinct texts — a full cache that stops
    # admitting new entries pins whatever arrived first, forever.
    from repro.core import engine as engine_module

    monkeypatch.setattr(engine_module, "_COMPILE_CACHE_LIMIT", 2)
    catalog = Catalog()
    catalog.register(Relation("t", {"cost": [1.0, 2.0, 3.0]}))
    session = SPQEngine(catalog=catalog, config=fast_config)

    def q(bound: int) -> str:
        return (
            f"SELECT PACKAGE(*) FROM t SUCH THAT SUM(cost) <= {bound}"
            f" MAXIMIZE SUM(cost)"
        )

    first = session.compile(q(1))
    second = session.compile(q(2))
    assert session.compile(q(1)) is first  # refreshes q(1)'s recency
    session.compile(q(3))  # at capacity: evicts q(2), the LRU entry
    assert session.compile(q(1)) is first  # hot entry survived
    assert session.compile(q(2)) is not second  # evicted: recompiled
    assert len(session._compiled) == 2
