"""End-to-end algorithm tests: Naïve (Alg. 1), SummarySearch (Alg. 2),
and the deterministic baseline, cross-checked against brute force."""

import itertools

import numpy as np
import pytest

from repro.core.context import EvaluationContext
from repro.core.deterministic import deterministic_evaluate
from repro.core.naive import naive_evaluate
from repro.core.summarysearch import summary_search_evaluate
from repro.core.validator import Validator
from repro.errors import EvaluationError
from repro.silp.compile import compile_query

CHANCE_QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 5 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""

INFEASIBLE_DETERMINISTIC = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 1 AND
    SUM(price) >= 100 AND
    SUM(Value) >= 0 WITH PROBABILITY >= 0.5
MINIMIZE EXPECTED SUM(Value)
"""

INFEASIBLE_CHANCE = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) BETWEEN 1 AND 2 AND
    SUM(Value) >= 100 WITH PROBABILITY >= 0.9
MINIMIZE EXPECTED SUM(Value)
"""


@pytest.fixture
def problem(items_catalog):
    return compile_query(CHANCE_QUERY, items_catalog)


@pytest.mark.parametrize("evaluate", [naive_evaluate, summary_search_evaluate])
def test_feasible_query_solved(problem, fast_config, evaluate):
    result = evaluate(problem, fast_config)
    assert result.feasible
    assert result.package is not None and not result.package.is_empty
    assert result.validation.items[0].satisfied_fraction >= 0.8
    assert result.stats.n_iterations >= 1


@pytest.mark.parametrize("evaluate", [naive_evaluate, summary_search_evaluate])
def test_solution_near_brute_force_optimum(problem, fast_config, evaluate):
    """Both algorithms should land within a reasonable factor of the
    validation-optimal package (enumerated exhaustively)."""
    ctx = EvaluationContext(problem, fast_config)
    validator = Validator(ctx)
    best = None
    for x in itertools.product(range(4), repeat=5):
        x = np.array(x)
        if x.sum() > 3:
            continue
        report = validator.validate(x)
        if report.feasible and (best is None or report.objective < best):
            best = report.objective
    result = evaluate(problem, fast_config)
    assert result.objective <= best * 1.5 + 1e-9


def test_summarysearch_declares_deterministic_infeasibility(
    items_catalog, fast_config
):
    problem = compile_query(INFEASIBLE_DETERMINISTIC, items_catalog)
    result = summary_search_evaluate(problem, fast_config)
    assert not result.feasible
    assert result.package is None
    assert "no solution" in result.message


@pytest.mark.parametrize("evaluate", [naive_evaluate, summary_search_evaluate])
def test_chance_infeasible_query_fails_gracefully(
    items_catalog, fast_config, evaluate
):
    problem = compile_query(INFEASIBLE_CHANCE, items_catalog)
    config = fast_config.replace(
        n_initial_scenarios=10, scenario_increment=10, max_scenarios=30
    )
    result = evaluate(problem, config)
    assert not result.feasible
    # M must have been grown to the cap before giving up (Section 6.2.1).
    assert result.stats.final_n_scenarios == 30


def test_naive_accumulates_scenarios_on_failure(items_catalog, fast_config):
    problem = compile_query(INFEASIBLE_CHANCE, items_catalog)
    config = fast_config.replace(
        n_initial_scenarios=5, scenario_increment=5, max_scenarios=20
    )
    result = naive_evaluate(problem, config)
    counts = [r.n_scenarios for r in result.stats.iterations]
    assert counts == [5, 10, 15, 20]


def test_summarysearch_reports_alphas_and_bounds(problem, fast_config):
    result = summary_search_evaluate(problem, fast_config)
    assert result.meta["final_Z"] >= 1
    assert "bounds" in result.meta
    record = result.stats.iterations[-1]
    assert record.n_summaries >= 1
    assert record.csa_iterations >= 1


def test_deterministic_baseline_matches_brute_force(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT SUM(price) <= 12"
        " MAXIMIZE SUM(price)",
        items_catalog,
    )
    result = deterministic_evaluate(problem, fast_config)
    assert result.feasible
    prices = items_catalog.relation("items").column("price")
    best = 0.0
    ub = EvaluationContext(problem, fast_config).variable_ub
    for x in itertools.product(*(range(int(u) + 1) for u in ub)):
        total = float(np.dot(prices, x))
        if total <= 12.0:
            best = max(best, total)
    assert result.objective == pytest.approx(best)


def test_deterministic_rejects_probabilistic_query(problem, fast_config):
    with pytest.raises(EvaluationError):
        deterministic_evaluate(problem, fast_config)


def test_repeat_limit_respected(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items REPEAT 0 SUCH THAT"
        " COUNT(*) <= 3 AND SUM(Value) >= 6 WITH PROBABILITY >= 0.5"
        " MINIMIZE EXPECTED SUM(Value)",
        items_catalog,
    )
    result = summary_search_evaluate(problem, fast_config)
    assert result.feasible
    assert np.all(result.package.multiplicities <= 1)


def test_seed_reproducibility(problem, fast_config):
    a = summary_search_evaluate(problem, fast_config)
    b = summary_search_evaluate(problem, fast_config)
    assert np.array_equal(a.package.multiplicities, b.package.multiplicities)
    assert a.objective == b.objective


def test_different_seeds_allowed(problem, fast_config):
    a = summary_search_evaluate(problem, fast_config)
    b = summary_search_evaluate(problem, fast_config.replace(seed=999))
    # Both feasible; packages may differ, but objectives stay comparable.
    assert a.feasible and b.feasible


def test_probability_objective_end_to_end(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) BETWEEN 1 AND 2 AND"
        " SUM(Value) <= 20 WITH PROBABILITY >= 0.7"
        " MAXIMIZE PROBABILITY OF SUM(Value) >= 9",
        items_catalog,
    )
    for evaluate in (naive_evaluate, summary_search_evaluate):
        result = evaluate(problem, fast_config)
        assert result.feasible
        assert 0.0 <= result.objective <= 1.0
        # items 1+3 reach E=14: probability of >= 9 should be high.
        assert result.objective >= 0.5
