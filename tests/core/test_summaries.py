"""α-summaries: Proposition 1, the Figure 3 example, greedy G_z,
convergence acceleration, and strategy equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SUMMARY_SCENARIO_WISE, SUMMARY_TUPLE_WISE
from repro.core.context import EvaluationContext
from repro.core.summaries import SummaryBuilder, make_partitions, _fold_matrix
from repro.errors import EvaluationError
from repro.silp.model import OP_GE, OP_LE


# --- partitioning -------------------------------------------------------------


def test_partitions_disjoint_and_cover():
    partitions = make_partitions(17, 4, seed=3)
    concatenated = np.concatenate(partitions)
    assert sorted(concatenated.tolist()) == list(range(17))
    sizes = [len(p) for p in partitions]
    assert max(sizes) - min(sizes) <= 1  # near-equal split


def test_partitions_deterministic():
    a = make_partitions(20, 3, seed=5)
    b = make_partitions(20, 3, seed=5)
    assert all(np.array_equal(x, y) for x, y in zip(a, b))


def test_partitions_validate_inputs():
    with pytest.raises(EvaluationError):
        make_partitions(5, 6, seed=0)
    with pytest.raises(EvaluationError):
        make_partitions(5, 0, seed=0)


# --- Proposition 1 ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    n_rows=st.integers(1, 6),
    n_scenarios=st.integers(1, 12),
    data=st.data(),
)
def test_proposition_1_min_summary(n_rows, n_scenarios, data):
    """Any x satisfying a min-summary of G(α) satisfies every scenario in
    G(α) w.r.t. an inner ≥ constraint (Proposition 1)."""
    matrix = np.array(
        [
            [data.draw(st.floats(-5, 5, allow_nan=False)) for _ in range(n_scenarios)]
            for _ in range(n_rows)
        ]
    )
    size = data.draw(st.integers(1, n_scenarios))
    chosen = np.sort(
        data.draw(
            st.permutations(list(range(n_scenarios))).map(lambda p: p[:size])
        )
    )
    x = np.array([data.draw(st.integers(0, 3)) for _ in range(n_rows)])
    rhs = data.draw(st.floats(-10, 10, allow_nan=False))
    summary = _fold_matrix(matrix, [np.asarray(chosen)], OP_GE, None)[:, 0]
    if summary @ x >= rhs:
        for j in chosen:
            assert matrix[:, j] @ x >= rhs - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    n_rows=st.integers(1, 5),
    n_scenarios=st.integers(1, 8),
    data=st.data(),
)
def test_proposition_1_max_summary(n_rows, n_scenarios, data):
    """Dual form: max-summaries are conservative for inner ≤ constraints."""
    matrix = np.array(
        [
            [data.draw(st.floats(-5, 5, allow_nan=False)) for _ in range(n_scenarios)]
            for _ in range(n_rows)
        ]
    )
    chosen = np.arange(n_scenarios)
    x = np.array([data.draw(st.integers(0, 3)) for _ in range(n_rows)])
    rhs = data.draw(st.floats(-10, 10, allow_nan=False))
    summary = _fold_matrix(matrix, [chosen], OP_LE, None)[:, 0]
    if summary @ x <= rhs:
        for j in chosen:
            assert matrix[:, j] @ x <= rhs + 1e-9


def test_figure3_example():
    """The 0.66-summary of Figure 3: tuple-wise minimum of scenarios 1
    and 3 from Figure 2."""
    scenario_1 = np.array([0.1, 0.05, -0.2, 0.2, 0.1, -0.7])
    scenario_3 = np.array([0.01, 0.02, -0.1, -0.3, 0.2, 0.3])
    matrix = np.column_stack([scenario_1, scenario_3])
    summary = _fold_matrix(matrix, [np.array([0, 1])], OP_GE, None)[:, 0]
    expected = np.array([0.01, 0.02, -0.2, -0.3, 0.1, -0.7])
    assert np.allclose(summary, expected)


# --- builder over a real context -----------------------------------------------


def _item(ctx):
    return ctx.chance_items()[0]


def test_summary_shapes_and_counts(chance_context):
    builder = SummaryBuilder(chance_context, n_scenarios=12, n_summaries=3)
    summary_set = builder.build(_item(chance_context), alpha=0.5, prev_x=None)
    assert summary_set.values.shape == (5, 3)
    assert summary_set.partition_sizes.tolist() == [4, 4, 4]
    assert summary_set.selected_counts.tolist() == [2, 2, 2]
    weights = summary_set.guaranteed_fraction_weights(12)
    assert np.allclose(weights, [2 / 12] * 3)


def test_alpha_validation(chance_context):
    builder = SummaryBuilder(chance_context, 10, 1)
    with pytest.raises(EvaluationError):
        builder.build(_item(chance_context), alpha=0.0, prev_x=None)
    with pytest.raises(EvaluationError):
        builder.build(_item(chance_context), alpha=1.5, prev_x=None)


def test_alpha_one_summary_is_scenario_minimum(chance_context):
    """α = 1 with Z = 1 reduces to the tuple-wise min of ALL scenarios."""
    builder = SummaryBuilder(chance_context, 8, 1)
    item = _item(chance_context)
    summary_set = builder.build(item, alpha=1.0, prev_x=None)
    matrix = chance_context.optimization_matrix(item["expr"], 8)
    assert np.allclose(summary_set.values[:, 0], matrix.min(axis=1))


def test_summary_more_conservative_with_larger_alpha(chance_context):
    """For ≥ constraints summaries are tuple-wise nonincreasing in α
    (min over supersets)."""
    builder = SummaryBuilder(chance_context, 12, 1)
    item = _item(chance_context)
    x = np.array([1, 0, 0, 1, 0])
    small = builder.build(item, alpha=0.25, prev_x=x).values[:, 0]
    large = builder.build(item, alpha=1.0, prev_x=x).values[:, 0]
    assert np.all(large <= small + 1e-12)


def test_greedy_selection_prefers_high_scores(chance_context):
    builder = SummaryBuilder(chance_context, 10, 1)
    item = _item(chance_context)
    x = np.array([1, 1, 0, 0, 0])
    scores = builder.scenario_scores(item, x)
    chosen = builder.choose_selected(item, alpha=0.3, scores=scores)[0]
    threshold = np.sort(scores)[::-1][len(chosen) - 1]
    assert np.all(scores[chosen] >= threshold - 1e-12)


def test_zero_previous_solution_gives_zero_scores(chance_context):
    builder = SummaryBuilder(chance_context, 6, 1)
    scores = builder.scenario_scores(_item(chance_context), np.zeros(5, dtype=int))
    assert np.all(scores == 0.0)


def test_acceleration_keeps_incumbent_feasible(chance_context):
    """With acceleration, rows of the incumbent use the max-reduction, so
    the incumbent's summary score only improves (Section 5.5)."""
    builder = SummaryBuilder(chance_context, 12, 1)
    item = _item(chance_context)
    x = np.array([2, 0, 1, 0, 0])
    plain = builder.build(item, alpha=0.5, prev_x=x, accelerate=False)
    accelerated = builder.build(item, alpha=0.5, prev_x=x, accelerate=True)
    assert accelerated.values[:, 0] @ x >= plain.values[:, 0] @ x - 1e-12
    untouched = x == 0
    assert np.allclose(
        accelerated.values[untouched, 0], plain.values[untouched, 0]
    )


def test_in_memory_and_scenario_wise_strategies_identical(
    chance_problem, fast_config
):
    """Both use scenario-keyed streams, so they must produce bitwise
    identical summaries; tuple-wise uses different keys."""
    item_x = np.array([1, 0, 0, 1, 0])
    results = {}
    for strategy in ("in-memory", SUMMARY_SCENARIO_WISE, SUMMARY_TUPLE_WISE):
        ctx = EvaluationContext(
            chance_problem, fast_config.replace(summary_strategy=strategy)
        )
        builder = SummaryBuilder(ctx, 10, 2)
        summary_set = builder.build(ctx.chance_items()[0], 0.4, item_x)
        results[strategy] = summary_set.values
    assert np.array_equal(results["in-memory"], results[SUMMARY_SCENARIO_WISE])
    assert not np.array_equal(results["in-memory"], results[SUMMARY_TUPLE_WISE])
    # Distributionally comparable nonetheless.
    assert results[SUMMARY_TUPLE_WISE].shape == results["in-memory"].shape
