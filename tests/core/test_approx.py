"""Approximation guarantees: Propositions 2–5 and the Appendix B bounds.

The bound assembly is verified against brute force: on tiny problems we
enumerate every package, find the validation-optimal objective ω̂, and
check ω̲ ≤ ω̂ ≤ ω̄.
"""

import itertools

import numpy as np
import pytest

from repro.core.approx import (
    INTERACTION_COUNTERACTING,
    INTERACTION_INDEPENDENT,
    INTERACTION_SUPPORTING,
    ObjectiveBounds,
    compute_objective_bounds,
    epsilon_certificate,
    epsilon_min,
    interaction,
    scenario_total_bounds,
)
from repro.core.context import EvaluationContext
from repro.core.validator import Validator
from repro.db.expressions import Attr
from repro.silp.compile import compile_query
from repro.silp.model import (
    ChanceConstraint,
    ExpectationObjectiveIR,
    SENSE_MAX,
    SENSE_MIN,
)


# --- Table 1: scenario-total bounds --------------------------------------------


@pytest.mark.parametrize(
    "s_lo,s_hi,l_lo,l_hi,expected_lo,expected_hi",
    [
        (1.0, 2.0, 1.0, 3.0, 1.0, 6.0),  # s >= 0: (s̲l̲, s̄l̄)
        (-2.0, -1.0, 1.0, 3.0, -6.0, -1.0),  # s < 0: (s̲l̄, s̄l̲)
        (-2.0, 3.0, 0.0, 4.0, -8.0, 12.0),  # mixed signs
        (0.0, 0.0, 0.0, 5.0, 0.0, 0.0),
    ],
)
def test_scenario_total_bounds_cases(s_lo, s_hi, l_lo, l_hi, expected_lo, expected_hi):
    assert scenario_total_bounds(s_lo, s_hi, l_lo, l_hi) == (
        expected_lo,
        expected_hi,
    )


def test_scenario_total_bounds_enclose_brute_force():
    s_lo, s_hi, l_lo, l_hi = -1.5, 2.0, 1, 3
    lo, hi = scenario_total_bounds(s_lo, s_hi, l_lo, l_hi)
    rng = np.random.default_rng(0)
    for _ in range(200):
        size = rng.integers(l_lo, l_hi + 1)
        values = rng.uniform(s_lo, s_hi, size)
        assert lo - 1e-9 <= values.sum() <= hi + 1e-9


# --- Definition 2 ------------------------------------------------------------------


def test_interaction_classification():
    objective_min = ExpectationObjectiveIR(SENSE_MIN, Attr("X"))
    objective_max = ExpectationObjectiveIR(SENSE_MAX, Attr("X"))
    ge = ChanceConstraint(Attr("X"), ">=", 1.0, 0.9)
    le = ChanceConstraint(Attr("X"), "<=", 1.0, 0.9)
    other = ChanceConstraint(Attr("Y"), ">=", 1.0, 0.9)
    assert interaction(objective_min, ge) == INTERACTION_COUNTERACTING
    assert interaction(objective_min, le) == INTERACTION_SUPPORTING
    assert interaction(objective_max, ge) == INTERACTION_SUPPORTING
    assert interaction(objective_max, le) == INTERACTION_COUNTERACTING
    assert interaction(objective_min, other) == INTERACTION_INDEPENDENT


# --- Propositions 2–5 -----------------------------------------------------------------


def test_prop2_min_positive_lower():
    bounds = ObjectiveBounds(lower=4.0, upper=100.0)
    eps = epsilon_certificate(SENSE_MIN, 5.0, bounds)
    assert eps == pytest.approx(0.25)
    # Guarantee: omega_q <= (1+eps) * omega_hat for any omega_hat >= lower.
    assert 5.0 <= (1 + eps) * 4.0 + 1e-12


def test_prop3_min_negative_lower():
    bounds = ObjectiveBounds(lower=-10.0, upper=0.0)
    eps = epsilon_certificate(SENSE_MIN, -8.0, bounds)
    assert eps == pytest.approx(0.25)
    assert epsilon_certificate(SENSE_MIN, 5.0, bounds) is None  # wrong sign


def test_prop4_max_positive_upper():
    bounds = ObjectiveBounds(lower=0.0, upper=12.0)
    eps = epsilon_certificate(SENSE_MAX, 10.0, bounds)
    assert eps == pytest.approx(0.2)
    assert epsilon_certificate(SENSE_MAX, 0.0, bounds) is None


def test_prop5_max_negative_upper():
    bounds = ObjectiveBounds(lower=-100.0, upper=-5.0)
    eps = epsilon_certificate(SENSE_MAX, -6.0, bounds)
    assert eps == pytest.approx(0.2)
    assert epsilon_certificate(SENSE_MAX, 1.0, bounds) is None


def test_certificate_handles_missing_inputs():
    assert epsilon_certificate(SENSE_MIN, None, ObjectiveBounds(1, 2)) is None
    assert epsilon_certificate(SENSE_MIN, 1.0, None) is None
    infinite = ObjectiveBounds(-np.inf, np.inf)
    assert epsilon_certificate(SENSE_MIN, 1.0, infinite) is None


def test_certificate_never_negative():
    bounds = ObjectiveBounds(lower=4.0, upper=10.0)
    # omega below the lower bound (can't happen for truly feasible
    # solutions, but the certificate must stay sane).
    assert epsilon_certificate(SENSE_MIN, 3.0, bounds) == 0.0


def test_epsilon_min_uses_far_edge():
    bounds = ObjectiveBounds(lower=4.0, upper=8.0)
    assert epsilon_min(SENSE_MIN, bounds) == pytest.approx(1.0)
    assert epsilon_min(SENSE_MAX, bounds) == pytest.approx(1.0)
    assert epsilon_min(SENSE_MIN, None) is None


def test_tightened_keeps_best():
    bounds = ObjectiveBounds(lower=1.0, upper=10.0)
    tightened = bounds.tightened(lower=2.0, upper=12.0, source="relax")
    assert tightened.lower == 2.0
    assert tightened.upper == 10.0
    assert "relax" in tightened.sources


# --- bound assembly vs brute force ------------------------------------------------------


def _brute_force_optimum(ctx, maximize=False):
    """Enumerate all packages, validate each, return the optimal feasible
    validated objective (the ω̂ proxy)."""
    validator = Validator(ctx)
    best = None
    ubs = ctx.variable_ub
    for x in itertools.product(*(range(int(u) + 1) for u in ubs)):
        x = np.array(x)
        # Mean constraints first.
        ok = True
        for constraint in ctx.problem.mean_constraints:
            value = ctx.mean_coefficients(constraint.expr) @ x
            if constraint.op == "<=" and value > constraint.rhs + 1e-9:
                ok = False
            if constraint.op == ">=" and value < constraint.rhs - 1e-9:
                ok = False
        if not ok:
            continue
        report = validator.validate(x)
        if not report.feasible:
            continue
        objective = report.objective
        if best is None or (objective > best if maximize else objective < best):
            best = objective
    return best


QUERY_COUNTERACTED = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 2 AND
    SUM(Value) >= 4 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""

QUERY_SUPPORTED = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) BETWEEN 1 AND 2 AND
    SUM(Value) <= 12 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""


@pytest.mark.parametrize("query", [QUERY_COUNTERACTED, QUERY_SUPPORTED])
def test_bounds_enclose_brute_force_optimum(items_catalog, fast_config, query):
    problem = compile_query(query, items_catalog)
    config = fast_config.replace(n_validation_scenarios=400)
    ctx = EvaluationContext(problem, config)
    bounds = compute_objective_bounds(ctx)
    omega_hat = _brute_force_optimum(ctx)
    assert omega_hat is not None
    assert bounds.lower - 1e-9 <= omega_hat <= bounds.upper + 1e-9


def test_counteracted_bound_is_pv(items_catalog, fast_config):
    """Section 5.4: a counteracting constraint with v >= 0 yields
    ω̂ >= p·v, and the assembled lower bound must be at least that."""
    problem = compile_query(QUERY_COUNTERACTED, items_catalog)
    ctx = EvaluationContext(problem, fast_config)
    bounds = compute_objective_bounds(ctx)
    assert bounds.lower >= 0.8 * 4.0 - 1e-9


def test_probability_objective_bounds_are_unit_interval(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) BETWEEN 1 AND 2"
        " MAXIMIZE PROBABILITY OF SUM(Value) >= 10",
        items_catalog,
    )
    ctx = EvaluationContext(problem, fast_config)
    bounds = compute_objective_bounds(ctx)
    assert (bounds.lower, bounds.upper) == (0.0, 1.0)


def test_no_objective_no_bounds(items_catalog, fast_config):
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 2", items_catalog
    )
    ctx = EvaluationContext(problem, fast_config)
    assert compute_objective_bounds(ctx) is None
