"""Galaxy dataset builder."""

import numpy as np
import pytest

from repro.datasets.galaxy import (
    GalaxyParams,
    NOISE_GAUSSIAN,
    NOISE_PARETO,
    build_galaxy,
)
from repro.errors import EvaluationError
from repro.mcdb.distributions import GaussianNoiseVG, ParetoNoiseVG


def test_basic_shape_and_columns():
    relation, model = build_galaxy(GalaxyParams(n_rows=500))
    assert relation.n_rows == 500
    assert {"petromag_r", "ra", "dec"}.issubset(relation.column_names)
    assert model.attribute_names == ["Petromag_r"]


def test_magnitude_range_realistic():
    relation, _ = build_galaxy(GalaxyParams(n_rows=2000))
    mags = relation.column("petromag_r")
    assert mags.min() >= 7.5 and mags.max() <= 22.0
    # Right-skewed: faint (large-magnitude) sources dominate.
    assert np.median(mags) > 14.0


def test_brightest_five_sum_stable_across_scales():
    """The bright-end atom keeps the Table 3 thresholds meaningful at
    every Figure 7 dataset size."""
    sums = []
    for n_rows in (500, 2000, 8000):
        relation, _ = build_galaxy(GalaxyParams(n_rows=n_rows))
        mags = np.sort(relation.column("petromag_r"))
        sums.append(mags[:5].sum())
    assert max(sums) - min(sums) < 5.0
    assert all(36.0 <= s <= 42.0 for s in sums)


def test_coordinates_valid():
    relation, _ = build_galaxy(GalaxyParams(n_rows=1000))
    assert relation.column("ra").min() >= 0 and relation.column("ra").max() <= 360
    decs = relation.column("dec")
    assert decs.min() >= -90 and decs.max() <= 90


def test_deterministic_per_seed():
    a, _ = build_galaxy(GalaxyParams(n_rows=100, seed=7))
    b, _ = build_galaxy(GalaxyParams(n_rows=100, seed=7))
    c, _ = build_galaxy(GalaxyParams(n_rows=100, seed=8))
    assert np.array_equal(a.column("petromag_r"), b.column("petromag_r"))
    assert not np.array_equal(a.column("petromag_r"), c.column("petromag_r"))


def test_noise_model_selection():
    _, gaussian = build_galaxy(GalaxyParams(n_rows=50, noise=NOISE_GAUSSIAN))
    assert isinstance(gaussian.vg("Petromag_r"), GaussianNoiseVG)
    _, pareto = build_galaxy(GalaxyParams(n_rows=50, noise=NOISE_PARETO))
    assert isinstance(pareto.vg("Petromag_r"), ParetoNoiseVG)


def test_randomized_scales_differ_per_tuple():
    _, model = build_galaxy(
        GalaxyParams(n_rows=100, noise=NOISE_GAUSSIAN, scale=3.0,
                     randomized_scale=True)
    )
    sigma = model.vg("Petromag_r")._sigma
    assert len(np.unique(sigma)) > 10  # per-tuple, not shared
    assert np.all(sigma > 0)


def test_invalid_params_rejected():
    with pytest.raises(EvaluationError):
        build_galaxy(GalaxyParams(n_rows=0))
    with pytest.raises(EvaluationError):
        build_galaxy(GalaxyParams(n_rows=10, noise="cauchy"))
