"""TPC-H integrated dataset builder."""

import numpy as np
import pytest

from repro.datasets.tpch import TpchParams, build_tpch
from repro.errors import EvaluationError


def test_shape_and_stochastic_attributes():
    relation, model = build_tpch(TpchParams(n_rows=300))
    assert relation.n_rows == 300
    assert set(model.attribute_names) == {"Quantity", "Revenue"}
    assert {"quantity", "revenue", "unit_price", "discount"}.issubset(
        relation.column_names
    )


def test_quantity_range_tpch_like():
    relation, _ = build_tpch(TpchParams(n_rows=1000))
    quantity = relation.column("quantity")
    assert quantity.min() >= 1 and quantity.max() <= 50


def test_revenue_consistent_with_pricing():
    relation, _ = build_tpch(TpchParams(n_rows=200))
    expected = (
        relation.column("quantity")
        * relation.column("unit_price")
        * (1 - relation.column("discount"))
    )
    assert np.allclose(relation.column("revenue"), expected, atol=0.01)


def test_variant_count_matches_sources():
    _, model = build_tpch(TpchParams(n_rows=100, n_sources=7))
    assert model.vg("Quantity").n_sources == 7
    assert model.vg("Revenue").n_sources == 7


def test_variants_nonnegative():
    _, model = build_tpch(TpchParams(n_rows=500, family="student-t",
                                     family_param=2.0, n_sources=10))
    assert model.vg("Quantity").variants.min() >= 0.0
    assert model.vg("Revenue").variants.min() >= 0.0


def test_min_quantity_for_infeasible_query():
    relation, model = build_tpch(TpchParams(n_rows=400, min_quantity=8))
    assert relation.column("quantity").min() >= 8
    # Bulk-order extract: mean quantities sit at >= 8 too, so any chance
    # constraint with v < 8 and high p is unsatisfiable.
    assert model.vg("Quantity").mean().min() >= 7.0


def test_all_families_build():
    for family, param in (
        ("exponential", 1.0),
        ("poisson", 2.0),
        ("uniform", None),
        ("student-t", 2.0),
    ):
        relation, model = build_tpch(
            TpchParams(n_rows=50, family=family, family_param=param)
        )
        assert relation.n_rows == 50


def test_deterministic_per_seed():
    a, model_a = build_tpch(TpchParams(n_rows=60, seed=4))
    b, model_b = build_tpch(TpchParams(n_rows=60, seed=4))
    assert np.array_equal(a.column("revenue"), b.column("revenue"))
    assert np.array_equal(
        model_a.vg("Quantity").variants, model_b.vg("Quantity").variants
    )


def test_invalid_params():
    with pytest.raises(EvaluationError):
        build_tpch(TpchParams(n_rows=0))
    with pytest.raises(EvaluationError):
        build_tpch(TpchParams(n_rows=10, family="gamma"))
    with pytest.raises(EvaluationError):
        build_tpch(TpchParams(n_rows=10, n_sources=0))
    with pytest.raises(EvaluationError):
        build_tpch(TpchParams(n_rows=10, min_quantity=99))
