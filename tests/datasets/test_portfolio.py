"""Portfolio dataset builder."""

import numpy as np
import pytest

from repro.datasets.portfolio import (
    HORIZONS_ONE_WEEK,
    HORIZONS_TWO_DAY,
    PortfolioParams,
    build_portfolio,
)
from repro.errors import EvaluationError


def test_tuple_count_is_stocks_times_horizons():
    relation, _ = build_portfolio(PortfolioParams(n_stocks=100))
    assert relation.n_rows == 200  # 2-day horizons
    relation, _ = build_portfolio(
        PortfolioParams(n_stocks=100, horizons=HORIZONS_ONE_WEEK)
    )
    assert relation.n_rows == 700


def test_per_stock_rows_share_parameters():
    relation, _ = build_portfolio(PortfolioParams(n_stocks=50))
    stocks = relation.column("stock")
    prices = relation.column("price")
    vols = relation.column("volatility")
    for stock in np.unique(stocks):
        rows = stocks == stock
        assert len(np.unique(prices[rows])) == 1
        assert len(np.unique(vols[rows])) == 1


def test_horizons_tile_correctly():
    relation, _ = build_portfolio(PortfolioParams(n_stocks=3))
    assert relation.column("sell_in_days").tolist() == [1.0, 2.0] * 3


def test_price_and_volatility_ranges():
    relation, _ = build_portfolio(PortfolioParams(n_stocks=500))
    prices = relation.column("price")
    assert prices.min() >= 5.0 and prices.max() <= 500.0
    daily_vol = relation.column("volatility")
    assert daily_vol.min() > 0.0
    assert daily_vol.max() < 0.10  # 150% annualized is ~0.094/sqrt(day)


def test_volatile_subset_selects_top_fraction():
    full_relation, _ = build_portfolio(PortfolioParams(n_stocks=400, seed=3))
    subset_relation, _ = build_portfolio(
        PortfolioParams(n_stocks=400, volatile_only=True, seed=3)
    )
    assert subset_relation.n_rows == pytest.approx(0.3 * full_relation.n_rows, rel=0.05)
    # Every volatility in the subset is at least the full universe's 70th
    # percentile.
    cutoff = np.quantile(np.unique(full_relation.column("volatility")), 0.7)
    assert subset_relation.column("volatility").min() >= cutoff * 0.999


def test_gbm_model_blocks_by_stock():
    relation, model = build_portfolio(PortfolioParams(n_stocks=10))
    vg = model.vg("Gain")
    assert vg.n_blocks == 10
    assert all(len(block) == 2 for block in vg.blocks)


def test_deterministic_per_seed():
    a, _ = build_portfolio(PortfolioParams(n_stocks=20, seed=1))
    b, _ = build_portfolio(PortfolioParams(n_stocks=20, seed=1))
    assert np.array_equal(a.column("price"), b.column("price"))


def test_invalid_params():
    with pytest.raises(EvaluationError):
        build_portfolio(PortfolioParams(n_stocks=0))
    with pytest.raises(EvaluationError):
        build_portfolio(PortfolioParams(n_stocks=5, horizons=(0.0,)))


def test_chunked_store_builder_bit_identical(tmp_path):
    """build_portfolio_store == build_portfolio + to_disk, bit for bit."""
    from repro.datasets.portfolio import build_portfolio_store
    from repro.service.store import model_fingerprint, relation_fingerprint

    for volatile in (False, True):
        params = PortfolioParams(
            n_stocks=120, seed=11, volatile_only=volatile
        )
        relation, model = build_portfolio(params)
        store, store_model = build_portfolio_store(
            params, tmp_path / f"p{volatile}", chunk_rows=32
        )
        assert store.n_rows == relation.n_rows
        assert store.column_names == relation.column_names
        for name in relation.column_names:
            assert np.array_equal(store.column(name), relation.column(name))
        assert relation_fingerprint(store) == relation_fingerprint(relation)
        assert model_fingerprint(store_model) == model_fingerprint(model)
        store.close()


def test_chunked_store_builder_respects_budget(tmp_path):
    from repro.datasets.portfolio import build_portfolio_store

    store, model = build_portfolio_store(
        PortfolioParams(n_stocks=200, seed=3),
        tmp_path / "p",
        chunk_rows=64,
        resident_budget=8_192,
    )
    for chunk in range(store.n_chunks):
        store.column_chunk("price", chunk)
        assert store.resident_bytes <= 8_192
    assert store.peak_resident_bytes <= 8_192
    store.close()
