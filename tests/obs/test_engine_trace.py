"""Engine-level tracing: self-rooted traces and the config gates."""

from __future__ import annotations

from repro.core.engine import SPQEngine
from repro.obs import TraceSession, activate, new_trace_id
from repro.obs.profile import iter_tree

QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 6 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""


def test_engine_roots_its_own_trace(items_catalog, fast_config):
    engine = SPQEngine(catalog=items_catalog, config=fast_config)
    assert engine.last_trace is None
    result = engine.execute(QUERY)
    assert result.succeeded
    doc = engine.last_trace
    assert doc is not None and doc["root"]["name"] == "execute"
    names = {node["name"] for node in iter_tree(doc["root"])}
    assert {"execute", "compile", "parse", "solve.q0", "csa", "solve",
            "validate"} <= names, names
    # A warm repeat hits the compile cache — visible in the span attrs.
    engine.execute(QUERY)
    compile_span = next(
        node for node in iter_tree(engine.last_trace["root"])
        if node["name"] == "compile"
    )
    assert compile_span["attrs"]["cache_hit"] is True


def test_engine_trace_disabled_records_nothing(items_catalog, fast_config):
    engine = SPQEngine(catalog=items_catalog, config=fast_config)
    engine.execute(QUERY, trace_enabled=False, profile_stages=False)
    assert engine.last_trace is None


def test_engine_defers_to_an_active_session(items_catalog, fast_config):
    """Inside a broker/farm session the engine must not self-root."""
    engine = SPQEngine(catalog=items_catalog, config=fast_config)
    session = TraceSession(new_trace_id())
    with activate(session):
        engine.execute(QUERY)
    assert engine.last_trace is None
    assert {s["name"] for s in session.spans} >= {"execute", "validate"}
    assert all(s["trace_id"] == session.trace_id for s in session.spans)
