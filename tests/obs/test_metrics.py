"""Unit and concurrency tests for counters and stage histograms."""

from __future__ import annotations

import threading

from repro.obs import (
    LockedCounters,
    StageHistograms,
    histogram_exposition,
    merge_histogram_snapshots,
)
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.scale.metrics import ScaleMetrics


def test_locked_counters_basics():
    counters = LockedCounters(("a", "b"))
    counters.add("a")
    counters.add("a", 2.5)
    counters.add_many({"b": 3, "c": 1})
    assert counters.get("a") == 3.5
    assert counters.snapshot() == {"a": 3.5, "b": 3.0, "c": 1.0}
    counters.reset()
    assert counters.snapshot() == {"a": 0.0, "b": 0.0, "c": 0.0}
    assert counters.get("missing") == 0.0


def _hammer(n_threads, n_iters, target):
    threads = [
        threading.Thread(target=target, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return n_threads * n_iters


def test_locked_counters_concurrent_increments_are_exact():
    """Regression: plain ``+=`` on a shared attribute loses updates
    under threads (LOAD/ADD/STORE interleave); the locked counter must
    account for every single increment."""
    counters = LockedCounters(("n",))
    n_iters = 5_000

    def worker(_):
        for _ in range(n_iters):
            counters.add("n")
            counters.add_many({"m": 2})

    total = _hammer(8, n_iters, worker)
    assert counters.get("n") == total
    assert counters.get("m") == 2 * total


def test_scale_metrics_concurrent_record_run_is_exact():
    """The shared ``repro.scale.metrics`` registry is hit from broker
    threads and farm aggregation concurrently; totals must be exact."""
    metrics = ScaleMetrics()
    n_iters = 2_000

    def worker(i):
        for _ in range(n_iters):
            metrics.record_run(
                n_partitions=4,
                n_refines=2,
                sketch_seconds=0.001,
                refine_seconds=0.002,
            )
            metrics.record_index_lookup(hit=i % 2 == 0)
            metrics.add_resident(64)
            metrics.add_resident(-64)

    total = _hammer(8, n_iters, worker)
    snap = metrics.snapshot()
    assert snap["runs"] == total
    assert snap["partitions"] == 4 * total
    assert snap["refines"] == 2 * total
    assert snap["index_hits"] + snap["index_misses"] == total
    assert abs(snap["sketch_seconds"] - 0.001 * total) < 1e-6
    assert snap["resident_bytes"] == 0
    assert snap["resident_peak_bytes"] >= 64


def test_stage_histograms_bucket_placement():
    hist = StageHistograms(buckets=(0.1, 1.0))
    hist.observe("solve", 0.05)   # -> le=0.1
    hist.observe("solve", 0.1)    # exactly on a bound counts toward it
    hist.observe("solve", 0.5)    # -> le=1.0
    hist.observe("solve", 10.0)   # -> +Inf
    snap = hist.snapshot()["solve"]
    assert snap["counts"] == [2, 1, 1]
    assert snap["count"] == 4
    assert abs(snap["sum"] - 10.65) < 1e-9


def test_stage_histograms_snapshot_is_deep_copy():
    hist = StageHistograms(buckets=(1.0,))
    hist.observe("s", 0.5)
    snap = hist.snapshot()
    snap["s"]["counts"][0] = 99
    assert hist.snapshot()["s"]["counts"][0] == 1


def test_merge_histogram_snapshots_sums_elementwise():
    hist = StageHistograms(buckets=(1.0,))
    hist.observe("a", 0.5)
    hist.observe("b", 2.0)
    one = hist.snapshot()
    hist.observe("a", 3.0)
    two = hist.snapshot()
    merged = merge_histogram_snapshots([one, two, None, {}])
    assert merged["a"]["count"] == 3
    assert merged["a"]["counts"] == [2, 1]
    assert merged["b"]["count"] == 2
    assert abs(merged["a"]["sum"] - 4.0) < 1e-9


def test_histogram_exposition_prometheus_lines():
    hist = StageHistograms()
    hist.observe("solve", 0.3)
    hist.observe("solve", 120.0)
    lines = histogram_exposition(
        "repro_stage_seconds", "Wall seconds.", hist.snapshot()
    )
    assert lines[0] == "# HELP repro_stage_seconds Wall seconds."
    assert lines[1] == "# TYPE repro_stage_seconds histogram"
    assert 'repro_stage_seconds_bucket{stage="solve",le="+Inf"} 2' in lines
    assert 'repro_stage_seconds_count{stage="solve"} 2' in lines
    # One bucket line per bound, plus +Inf, sum, count.
    assert len(lines) == 2 + len(DEFAULT_BUCKETS) + 3
    # Cumulative counts are monotone non-decreasing across bounds.
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in lines
        if line.startswith("repro_stage_seconds_bucket")
    ]
    assert counts == sorted(counts)
