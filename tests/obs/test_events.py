"""Convergence event streams: emit gating, caps, filters, rendering."""

from __future__ import annotations

from repro.obs import (
    KIND_CSA_ROUND,
    KIND_REFINE_OUTCOME,
    KIND_SOLVER_NODE,
    TraceSession,
    activate,
    emit,
    epsilon_events,
    events_enabled,
    format_convergence,
    new_trace_id,
    refine_events,
    solver_events,
)


def test_emit_is_a_refusal_without_a_session():
    assert events_enabled() is False
    assert emit(KIND_SOLVER_NODE, t=0.1, gap=0.5) is False


def test_emit_records_on_the_active_session():
    session = TraceSession(new_trace_id())
    with activate(session):
        assert events_enabled() is True
        assert emit(KIND_SOLVER_NODE, t=0.25, gap=0.5, nodes=3) is True
        assert emit(KIND_CSA_ROUND, iteration=1, epsilon_upper=0.4) is True
    assert len(session.events) == 2
    node = session.events[0]
    assert node["kind"] == KIND_SOLVER_NODE
    assert node["t"] == 0.25
    assert node["gap"] == 0.5
    assert node["nodes"] == 3
    assert "ts" in node
    # t is optional: the CSA record carries none.
    assert "t" not in session.events[1]


def test_event_cap_counts_overflow_instead_of_growing():
    session = TraceSession(new_trace_id(), max_events=3)
    with activate(session):
        for n in range(10):
            emit(KIND_SOLVER_NODE, t=float(n), gap=1.0 / (n + 1))
    assert len(session.events) == 3
    assert session.events_dropped == 7
    # The cap keeps the oldest events (the head of the trajectory).
    assert [e["t"] for e in session.events] == [0.0, 1.0, 2.0]


def test_filters_partition_by_kind():
    events = [
        {"kind": KIND_SOLVER_NODE, "gap": 0.5},
        {"kind": KIND_CSA_ROUND, "iteration": 1},
        {"kind": KIND_SOLVER_NODE, "gap": 0.1},
        {"kind": KIND_REFINE_OUTCOME, "partition": 4, "status": "ok"},
        {"kind": "someone.else", "x": 1},
    ]
    assert [e["gap"] for e in solver_events(events)] == [0.5, 0.1]
    assert [e["iteration"] for e in epsilon_events(events)] == [1]
    assert [e["partition"] for e in refine_events(events)] == [4]
    # Filters accept None/empty without blowing up.
    assert solver_events(None) == []
    assert epsilon_events([]) == []


def test_format_convergence_renders_all_three_sections():
    document = {
        "events": [
            {
                "kind": KIND_SOLVER_NODE, "t": 0.01, "gap": 0.8,
                "incumbent": 12.0, "best_bound": 2.4, "nodes": 1,
                "lp_iters": 4,
            },
            {
                "kind": KIND_SOLVER_NODE, "t": 0.05, "gap": 0.2,
                "incumbent": 10.0, "best_bound": 8.0, "nodes": 7,
                "lp_iters": 30, "final": True,
            },
            {
                "kind": KIND_CSA_ROUND, "iteration": 1, "q": 16,
                "epsilon_upper": 0.4, "feasible": True, "objective": 10.0,
            },
            {
                "kind": KIND_REFINE_OUTCOME, "partition": 0,
                "status": "validated", "final_m": 24,
                "solve_time": 0.2, "validate_time": 0.05,
            },
        ],
        "events_dropped": 2,
    }
    rendered = format_convergence(document)
    assert "solver convergence (gap over time):" in rendered
    assert "CSA epsilon trajectory:" in rendered
    assert "refine outcomes (1 partitions): validated=1" in rendered
    assert "(2 events dropped at the session cap)" in rendered
    # The final solver record carries the terminal marker, and the
    # larger gap draws the longer bar.
    solver_lines = [l for l in rendered.splitlines() if "inc=" in l]
    assert solver_lines[0].count("#") > solver_lines[1].count("#")
    assert solver_lines[1].rstrip().endswith("*")


def test_format_convergence_empty_document():
    assert format_convergence({}) == "no convergence events recorded"
    assert (
        format_convergence({"events": [], "events_dropped": 0})
        == "no convergence events recorded"
    )
