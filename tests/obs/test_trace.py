"""Unit tests for ``repro.obs.trace``: spans, sessions, the ring."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.obs import (
    TraceRing,
    TraceSession,
    activate,
    new_span_id,
    new_trace_id,
    span_tree,
    stage,
)
from repro.obs.trace import _NULL_STAGE, current_session


def test_stage_is_shared_noop_without_session():
    assert current_session() is None
    handle = stage("anything", attr=1)
    assert handle is _NULL_STAGE
    assert stage("other") is handle
    # The null stage is a chainable, side-effect-free context manager.
    with handle as inner:
        assert inner.set("k", "v") is inner


def test_activate_scopes_session_to_context():
    session = TraceSession(new_trace_id())
    assert current_session() is None
    with activate(session):
        assert current_session() is session
        with activate(TraceSession(new_trace_id())) as nested:
            assert current_session() is nested
        assert current_session() is session
    assert current_session() is None


def test_spans_record_fields_and_nest():
    session = TraceSession(new_trace_id())
    with activate(session):
        with stage("outer", n=3) as outer:
            with stage("inner") as inner:
                inner.set("hit", True)
            outer.set("status", "optimal")
    assert [s["name"] for s in session.spans] == ["inner", "outer"]
    inner_span, outer_span = session.spans
    assert inner_span["trace_id"] == session.trace_id
    assert inner_span["parent_id"] == outer_span["span_id"]
    assert outer_span["parent_id"] is None
    assert outer_span["attrs"] == {"n": 3, "status": "optimal"}
    assert inner_span["attrs"] == {"hit": True}
    for span in session.spans:
        assert span["wall_s"] >= 0.0
        assert span["cpu_s"] >= 0.0
        assert span["start"] > 0.0


def test_activate_parent_id_reparents_spans():
    """Broker/farm hand their root span id across the pool boundary."""
    root_id = new_span_id()
    session = TraceSession(new_trace_id())
    with activate(session, parent_id=root_id):
        with stage("worker"):
            pass
    assert session.spans[0]["parent_id"] == root_id


def test_exception_records_error_attr_and_propagates():
    session = TraceSession(new_trace_id())
    with activate(session):
        with pytest.raises(ValueError):
            with stage("solve"):
                raise ValueError("infeasible")
    (span,) = session.spans
    assert span["attrs"]["error"] == "ValueError"


def test_session_cap_counts_dropped_spans():
    session = TraceSession(new_trace_id(), max_spans=2)
    with activate(session):
        for _ in range(5):
            with stage("s"):
                pass
    assert len(session.spans) == 2
    assert session.dropped == 3


def test_new_span_id_carries_pid_prefix():
    assert new_span_id().startswith(f"{os.getpid():x}-")
    assert new_span_id() != new_span_id()


# --- span_tree ---------------------------------------------------------------


def _span(span_id, parent_id, name, start):
    return {
        "trace_id": "t", "span_id": span_id, "parent_id": parent_id,
        "name": name, "start": start, "wall_s": 0.1, "cpu_s": 0.1,
        "attrs": {},
    }


def test_span_tree_roots_and_nests():
    spans = [
        _span("b", "a", "child", 2.0),
        _span("a", None, "root", 1.0),
        _span("c", "b", "grandchild", 3.0),
    ]
    doc = span_tree(spans, "t", dropped=1)
    assert doc["trace_id"] == "t"
    assert doc["n_spans"] == 3
    assert doc["dropped"] == 1
    root = doc["root"]
    assert root["name"] == "root"
    assert [c["name"] for c in root["children"]] == ["child"]
    assert root["children"][0]["children"][0]["name"] == "grandchild"


def test_span_tree_orphans_attach_under_root():
    """A span whose parent was dropped must not vanish from the tree."""
    spans = [
        _span("a", None, "root", 1.0),
        _span("z", "missing", "orphan", 2.0),
    ]
    root = span_tree(spans, "t")["root"]
    assert [c["name"] for c in root["children"]] == ["orphan"]


def test_span_tree_without_parentless_span_promotes_earliest():
    spans = [
        _span("b", "gone", "late", 5.0),
        _span("a", "gone", "early", 1.0),
    ]
    root = span_tree(spans, "t")["root"]
    assert root["name"] == "early"
    assert [c["name"] for c in root["children"]] == ["late"]


def test_span_tree_empty():
    assert span_tree([], "t")["root"] is None


# --- TraceRing ---------------------------------------------------------------


def test_ring_rejects_zero_capacity():
    with pytest.raises(ValueError):
        TraceRing(0)


def test_ring_open_add_finish_get():
    ring = TraceRing(4)
    ring.open("t1", method="summarysearch")
    ring.add("t1", [_span("a", "r", "execute", 1.0)], dropped=2)
    assert ring.get("t1")["complete"] is False
    ring.finish("t1", _span("r", None, "query", 0.5))
    entry = ring.get("t1")
    assert entry["complete"] is True
    assert entry["dropped"] == 2
    assert {s["name"] for s in entry["spans"]} == {"execute", "query"}
    tree = ring.tree("t1")
    assert tree["root"]["name"] == "query"
    assert tree["meta"] == {"method": "summarysearch"}


def test_ring_evicts_oldest_first():
    ring = TraceRing(2)
    for tid in ("t1", "t2", "t3"):
        ring.open(tid)
    assert ring.get("t1") is None  # evicted
    assert ring.get("t2") is not None
    assert ring.get("t3") is not None
    assert len(ring) == 2


def test_ring_add_after_eviction_is_noop():
    ring = TraceRing(1)
    ring.open("t1")
    ring.open("t2")
    ring.add("t1", [_span("a", None, "late", 1.0)])
    assert ring.get("t1") is None
    assert len(ring) == 1


def test_ring_discard_and_unknown():
    ring = TraceRing(2)
    ring.open("t1")
    ring.discard("t1")
    assert ring.get("t1") is None
    assert ring.tree("nope") is None


def test_ring_get_waits_for_finish():
    ring = TraceRing(2)
    ring.open("t1")

    def finisher():
        time.sleep(0.05)
        ring.finish("t1", _span("r", None, "query", 1.0))

    thread = threading.Thread(target=finisher)
    thread.start()
    try:
        entry = ring.get("t1", wait_s=5.0)
    finally:
        thread.join()
    assert entry["complete"] is True


def test_ring_get_returns_partial_after_timeout():
    ring = TraceRing(2)
    ring.open("t1")
    ring.add("t1", [_span("a", None, "execute", 1.0)])
    started = time.perf_counter()
    entry = ring.get("t1", wait_s=0.05)
    assert time.perf_counter() - started < 2.0
    assert entry["complete"] is False
    assert entry["spans"]
