"""Tests for the flat profile, trace-document parsing, and renderers."""

from __future__ import annotations

import pytest

from repro.obs import (
    StageProfile,
    TraceSession,
    activate,
    aggregate_self_times,
    format_top_table,
    format_waterfall,
    new_trace_id,
    span_tree,
    stage,
    trace_document,
)
from repro.obs.profile import iter_tree


def _node(name, start, wall, children=()):
    return {
        "name": name, "start": start, "wall_s": wall, "cpu_s": wall,
        "attrs": {}, "children": list(children),
    }


@pytest.fixture
def tree():
    return _node("execute", 0.0, 10.0, [
        _node("compile", 0.0, 1.0),
        _node("csa", 1.0, 8.0, [
            _node("solve", 1.5, 5.0),
            _node("validate", 7.0, 1.0),
        ]),
    ])


def test_iter_tree_depth_first(tree):
    assert [n["name"] for n in iter_tree(tree)] == [
        "execute", "compile", "csa", "solve", "validate",
    ]
    assert list(iter_tree(None)) == []


def test_aggregate_self_times(tree):
    agg = aggregate_self_times(tree)
    assert agg["execute"] == {"self_s": 1.0, "wall_s": 10.0, "count": 1}
    assert agg["csa"]["self_s"] == pytest.approx(2.0)
    assert agg["solve"]["self_s"] == pytest.approx(5.0)
    # Self time never goes negative even if children over-report.
    weird = _node("a", 0.0, 1.0, [_node("b", 0.0, 5.0)])
    assert aggregate_self_times(weird)["a"]["self_s"] == 0.0


def test_stage_profile_accumulates_self_time():
    profile = StageProfile()
    profile.add("solve", 2.0, 3.0)
    profile.add("solve", 1.0, 1.5)
    profile.add("parse", 0.1, 0.1)
    snap = profile.snapshot()
    assert snap["solve"] == {"self_s": 3.0, "wall_s": 4.5, "count": 2}
    table = profile.table(top=1)
    assert "solve" in table and "parse" not in table
    profile.reset()
    assert profile.snapshot() == {}
    assert profile.table() == "(no spans)"


def test_profile_flag_feeds_stage_profile_singleton():
    from repro.obs import stage_profile

    before = stage_profile.snapshot().get("profiled.stage", {}).get("count", 0)
    session = TraceSession(new_trace_id(), profile=True)
    with activate(session):
        with stage("profiled.stage"):
            pass
    after = stage_profile.snapshot()["profiled.stage"]["count"]
    assert after == before + 1


# --- trace_document shapes ---------------------------------------------------


def test_trace_document_accepts_tree_doc(tree):
    doc = {"trace_id": "t", "root": tree}
    assert trace_document(doc) == ("t", tree)


def test_trace_document_accepts_inlined_query_response(tree):
    response = {"feasible": True, "trace": {"trace_id": "t", "root": tree}}
    assert trace_document(response) == ("t", tree)


def test_trace_document_accepts_raw_spans():
    spans = [{
        "trace_id": "t", "span_id": "a", "parent_id": None,
        "name": "execute", "start": 1.0, "wall_s": 0.5, "cpu_s": 0.5,
        "attrs": {},
    }]
    trace_id, root = trace_document({"trace_id": "t", "spans": spans})
    assert trace_id == "t"
    assert root["name"] == "execute"


def test_trace_document_accepts_bare_span(tree):
    trace_id, root = trace_document(tree)
    assert trace_id is None and root is tree


def test_trace_document_rejects_garbage():
    with pytest.raises(ValueError):
        trace_document([1, 2, 3])
    with pytest.raises(ValueError):
        trace_document({"nothing": "here"})


def test_trace_document_round_trips_session_spans():
    session = TraceSession(new_trace_id())
    with activate(session):
        with stage("execute"):
            with stage("solve"):
                pass
    doc = span_tree(session.spans, session.trace_id, dropped=session.dropped)
    trace_id, root = trace_document(doc)
    assert trace_id == session.trace_id
    assert root["name"] == "execute"
    assert root["children"][0]["name"] == "solve"


# --- renderers ---------------------------------------------------------------


def test_format_waterfall_shows_offsets_and_durations(tree):
    text = format_waterfall(tree)
    lines = text.splitlines()
    assert len(lines) == 5
    assert lines[0].startswith("execute")
    assert "  compile" in lines[1]
    assert "    solve" in lines[3]
    assert "ms" in lines[0]
    # A late child's bar starts further right than the root's.
    assert lines[4].index("#") > lines[0].index("#")


def test_format_waterfall_truncates_at_max_spans(tree):
    text = format_waterfall(tree, max_spans=2)
    assert "3 more span(s) omitted" in text
    assert format_waterfall(None) == "(empty trace)"


def test_format_top_table_ranks_by_self_time(tree):
    table = format_top_table(aggregate_self_times(tree))
    lines = table.splitlines()
    assert lines[0].split()[:2] == ["stage", "count"]
    # solve has the largest self time, so it ranks first.
    assert lines[1].startswith("solve")
    top1 = format_top_table(aggregate_self_times(tree), top=1)
    assert len(top1.splitlines()) == 2
