"""Slow-query JSONL log: threshold gating and record shape."""

from __future__ import annotations

import json

from repro.obs import SlowQueryLog
from repro.obs.slowlog import DEFAULT_THRESHOLD_S


def test_default_threshold():
    log = SlowQueryLog("unused.jsonl")
    assert log.threshold_s == DEFAULT_THRESHOLD_S


def test_threshold_gates_appends(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowQueryLog(str(path), threshold_s=0.5)
    assert log.record(0.4, {"trace_id": "fast"}) is False
    assert not path.exists()
    assert log.record(0.5, {"trace_id": "slow", "stages": {"solve": 0.3}})
    assert log.record(2.0, {"trace_id": "slower"})
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["wall_s"] == 0.5
    assert first["trace_id"] == "slow"
    assert first["stages"] == {"solve": 0.3}


def test_non_serializable_values_fall_back_to_str(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowQueryLog(str(path), threshold_s=0.0)
    assert log.record(1.0, {"error": ValueError("boom")})
    entry = json.loads(path.read_text())
    assert "boom" in entry["error"]
