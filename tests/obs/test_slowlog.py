"""Slow-query JSONL log: threshold gating and record shape."""

from __future__ import annotations

import json

from repro.obs import SlowQueryLog
from repro.obs.slowlog import DEFAULT_THRESHOLD_S


def test_default_threshold():
    log = SlowQueryLog("unused.jsonl")
    assert log.threshold_s == DEFAULT_THRESHOLD_S


def test_threshold_gates_appends(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowQueryLog(str(path), threshold_s=0.5)
    assert log.record(0.4, {"trace_id": "fast"}) is False
    assert not path.exists()
    assert log.record(0.5, {"trace_id": "slow", "stages": {"solve": 0.3}})
    assert log.record(2.0, {"trace_id": "slower"})
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["wall_s"] == 0.5
    assert first["trace_id"] == "slow"
    assert first["stages"] == {"solve": 0.3}


def test_non_serializable_values_fall_back_to_str(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowQueryLog(str(path), threshold_s=0.0)
    assert log.record(1.0, {"error": ValueError("boom")})
    entry = json.loads(path.read_text())
    assert "boom" in entry["error"]


def test_rotation_caps_disk_use_to_two_generations(tmp_path):
    path = tmp_path / "slow.jsonl"
    rotated = tmp_path / "slow.jsonl.1"
    one_line = len(
        json.dumps({"wall_s": 1.0, "trace_id": "t000"}).encode()
    ) + 1
    # Cap fits exactly two records: the third append must rotate.
    log = SlowQueryLog(str(path), threshold_s=0.0, max_bytes=2 * one_line)
    for n in range(3):
        assert log.record(1.0, {"trace_id": f"t{n:03d}"})

    live = path.read_text().splitlines()
    old = rotated.read_text().splitlines()
    assert [json.loads(line)["trace_id"] for line in old] == ["t000", "t001"]
    assert [json.loads(line)["trace_id"] for line in live] == ["t002"]
    # Neither generation exceeds the cap.
    assert path.stat().st_size <= 2 * one_line
    assert rotated.stat().st_size <= 2 * one_line

    # The next rotation replaces the previous .1 — never a .2.
    for n in range(3, 5):
        assert log.record(1.0, {"trace_id": f"t{n:03d}"})
    old = rotated.read_text().splitlines()
    assert [json.loads(line)["trace_id"] for line in old] == ["t002", "t003"]
    assert not (tmp_path / "slow.jsonl.2").exists()


def test_no_rotation_without_max_bytes(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowQueryLog(str(path), threshold_s=0.0)
    for n in range(50):
        assert log.record(1.0, {"trace_id": f"t{n:03d}"})
    assert len(path.read_text().splitlines()) == 50
    assert not (tmp_path / "slow.jsonl.1").exists()


def test_oversized_single_record_still_lands(tmp_path):
    """A record bigger than the cap rotates whatever exists, then writes."""
    path = tmp_path / "slow.jsonl"
    log = SlowQueryLog(str(path), threshold_s=0.0, max_bytes=64)
    assert log.record(1.0, {"trace_id": "small"})
    assert log.record(1.0, {"trace_id": "x" * 200})
    assert json.loads(path.read_text())["trace_id"] == "x" * 200
    assert json.loads((tmp_path / "slow.jsonl.1").read_text())[
        "trace_id"
    ] == "small"
