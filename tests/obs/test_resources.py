"""Per-query resource accounting: probe deltas, charges, merging."""

from __future__ import annotations

import time

from repro.obs import (
    RESOURCE_COUNTER_FIELDS,
    QueryResourceProbe,
    TraceSession,
    activate,
    charge,
    merge_resource_snapshots,
    new_trace_id,
    resource_counters,
)

#: Every key the probe promises consumers (shape is part of the API).
USAGE_KEYS = {
    "cpu_s", "max_rss_delta_kb",
    "scenario_bytes_realized", "scenario_bytes_reused",
    "lp_solves",
    "chunk_cache_hits", "chunk_cache_misses", "chunk_cache_hit_ratio",
}


def test_probe_reports_the_full_shape_without_a_store():
    probe = QueryResourceProbe(store=None)
    # Burn a sliver of CPU so the delta is visibly positive.
    deadline = time.thread_time() + 0.01
    while time.thread_time() < deadline:
        sum(range(500))
    usage = probe.finish()
    assert set(usage) == USAGE_KEYS
    assert usage["cpu_s"] > 0.0
    assert usage["scenario_bytes_realized"] == 0
    assert usage["scenario_bytes_reused"] == 0
    assert usage["lp_solves"] == 0
    assert usage["chunk_cache_hit_ratio"] is None  # no lookups in window


def test_probe_finish_feeds_the_process_totals():
    before = resource_counters.snapshot()
    usage = QueryResourceProbe().finish()
    after = resource_counters.snapshot()
    assert after["queries_accounted"] == before["queries_accounted"] + 1
    assert (
        after["query_cpu_seconds"]
        >= before["query_cpu_seconds"] + usage["cpu_s"] - 1e-9
    )


def test_charge_lands_on_process_and_session():
    before = resource_counters.get("lp_solves")
    session = TraceSession(new_trace_id())
    with activate(session):
        charge("lp_solves")
        charge("lp_solves", 2.0)
    assert session.resources["lp_solves"] == 3.0
    assert resource_counters.get("lp_solves") == before + 3.0
    # Without a session only the process total moves.
    charge("lp_solves")
    assert session.resources["lp_solves"] == 3.0
    assert resource_counters.get("lp_solves") == before + 4.0


def test_probe_reads_session_charges_into_the_usage_doc():
    session = TraceSession(new_trace_id())
    probe = QueryResourceProbe()
    with activate(session):
        charge("lp_solves", 5)
    usage = probe.finish(session=session)
    assert usage["lp_solves"] == 5


def test_merge_resource_snapshots_sums_keywise():
    merged = merge_resource_snapshots([
        {"queries_accounted": 2, "query_cpu_seconds": 0.5, "lp_solves": 3},
        None,
        {},
        {"queries_accounted": 1, "lp_solves": 4, "extra": 7.0},
    ])
    assert merged["queries_accounted"] == 3
    assert merged["query_cpu_seconds"] == 0.5
    assert merged["lp_solves"] == 7
    assert merged["extra"] == 7.0
    # Empty input still yields the declared field set at zero.
    assert merge_resource_snapshots([]) == {
        name: 0.0 for name in RESOURCE_COUNTER_FIELDS
    }
