"""Determinism regression tests for the parallel scenario executor.

The contract is bit-identical equality (``np.array_equal``, not
``allclose``): chunking is keyed by scenario/block RNG identity, so any
worker count must reproduce the sequential stream exactly, in both
generation modes.
"""

import numpy as np
import pytest

from repro import Catalog, Relation, SPQConfig, SPQEngine
from repro.config import STREAM_OPTIMIZATION
from repro.mcdb import GaussianNoiseVG, GeometricBrownianMotionVG, StochasticModel
from repro.mcdb.scenarios import (
    MODE_SCENARIO_WISE,
    MODE_TUPLE_WISE,
    ScenarioCache,
    ScenarioGenerator,
)
from repro.parallel import ParallelScenarioExecutor, scenario_chunks
from repro.silp.compile import compile_query

N_WORKERS = 4
M = 24


@pytest.fixture
def gaussian_setup():
    relation = Relation(
        "items", {"price": [float(v) for v in range(3, 40)]}
    )
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 2.0)})
    return relation, model


@pytest.fixture
def gbm_setup(portfolio_toy):
    return portfolio_toy


def test_scenario_chunks_cover_in_order():
    chunks = scenario_chunks(range(10), 4)
    flat = np.concatenate(chunks)
    np.testing.assert_array_equal(flat, np.arange(10))
    assert len(chunks) <= 4
    assert scenario_chunks(range(2), 8) and len(scenario_chunks(range(2), 8)) == 2


@pytest.mark.parametrize("mode", (MODE_SCENARIO_WISE, MODE_TUPLE_WISE))
def test_attribute_matrix_bit_identical(gaussian_setup, mode):
    _, model = gaussian_setup
    sequential = ScenarioGenerator(model, 11, STREAM_OPTIMIZATION, mode=mode)
    executor = ParallelScenarioExecutor(
        ScenarioGenerator(model, 11, STREAM_OPTIMIZATION, mode=mode), N_WORKERS
    )
    try:
        expected = sequential.matrix("Value", M)
        got = executor.matrix("Value", M)
        assert np.array_equal(got, expected)
        # Row-restricted generation must agree too.
        rows = np.array([0, 5, 7, 20])
        assert np.array_equal(
            executor.matrix("Value", M, rows=rows),
            sequential.matrix("Value", M, rows=rows),
        )
    finally:
        executor.close()


@pytest.mark.parametrize("mode", (MODE_SCENARIO_WISE, MODE_TUPLE_WISE))
def test_gbm_block_structure_bit_identical(gbm_setup, mode):
    """Correlated (block-structured) VGs: per-block draws must land on
    the same rows regardless of which worker realized the block."""
    _, model = gbm_setup
    sequential = ScenarioGenerator(model, 5, STREAM_OPTIMIZATION, mode=mode)
    executor = ParallelScenarioExecutor(
        ScenarioGenerator(model, 5, STREAM_OPTIMIZATION, mode=mode), N_WORKERS
    )
    try:
        assert np.array_equal(
            executor.matrix("Gain", M), sequential.matrix("Gain", M)
        )
    finally:
        executor.close()


def test_coefficient_matrix_bit_identical(gaussian_setup):
    relation, model = gaussian_setup
    catalog = Catalog()
    catalog.register(relation, model)
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
        " SUM(Value * 2 + 1) >= 6 WITH PROBABILITY >= 0.8"
        " MINIMIZE EXPECTED SUM(Value)",
        catalog,
    )
    expr = problem.chance_constraints[0].expr
    sequential = ScenarioGenerator(model, 11, STREAM_OPTIMIZATION)
    executor = ParallelScenarioExecutor(
        ScenarioGenerator(model, 11, STREAM_OPTIMIZATION), N_WORKERS
    )
    try:
        assert np.array_equal(
            executor.coefficient_matrix(expr, M),
            sequential.coefficient_matrix(expr, M),
        )
        assert np.array_equal(
            executor.coefficient_columns(expr, range(4, 17)),
            np.column_stack(
                [sequential.coefficient_scenario(expr, j) for j in range(4, 17)]
            ),
        )
    finally:
        executor.close()


def test_scenario_cache_contents_bit_identical(gaussian_setup):
    """Cache fill with n_workers=4 equals n_workers=1, including the
    incremental top-up when M grows (Algorithm 1, line 9)."""
    relation, model = gaussian_setup
    catalog = Catalog()
    catalog.register(relation, model)
    problem = compile_query(
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
        " SUM(Value) >= 6 WITH PROBABILITY >= 0.8",
        catalog,
    )
    expr = problem.chance_constraints[0].expr
    cache_seq = ScenarioCache(ScenarioGenerator(model, 11, STREAM_OPTIMIZATION))
    cache_par = ScenarioCache(
        ScenarioGenerator(model, 11, STREAM_OPTIMIZATION), n_workers=N_WORKERS
    )
    try:
        for m in (6, M):  # second call exercises the grow-only top-up
            assert np.array_equal(
                cache_par.coefficient_matrix(expr, m),
                cache_seq.coefficient_matrix(expr, m),
            )
    finally:
        cache_par.close()


def _correlated_relation() -> Relation:
    rng = np.random.default_rng(12)
    n, n_obs = 12, 10
    columns = {
        "sector": np.array(["a", "b", "c"] * 4, dtype=object),
        "exp_gain": np.linspace(1.0, 12.0, n),
        "gain_sd": np.linspace(0.4, 1.5, n),
    }
    for d in range(n_obs):
        columns[f"h{d}"] = columns["exp_gain"] + rng.normal(size=n)
    return Relation("corr", columns)


def _correlated_models():
    """One (label, factory) per new VG family, incl. both copula paths."""
    from repro.mcdb import (
        EmpiricalBootstrapVG,
        GaussianCopulaVG,
        GaussianNoiseVG,
        MixtureVG,
    )

    history = [f"h{d}" for d in range(10)]
    return [
        (
            "copula-one-factor",
            lambda: GaussianCopulaVG(
                "exp_gain", scale="gain_sd", rho=0.7, group_column="sector"
            ),
        ),
        (
            "copula-cholesky",
            lambda: GaussianCopulaVG(
                "exp_gain", scale="gain_sd", history_columns=history,
                group_column="sector",
            ),
        ),
        (
            "mixture",
            lambda: MixtureVG(
                [
                    GaussianCopulaVG(
                        "exp_gain", scale="gain_sd", rho=0.2,
                        group_column="sector",
                    ),
                    GaussianNoiseVG("exp_gain", 2.0),
                ],
                weights=[0.6, 0.4],
            ),
        ),
        (
            "empirical-bootstrap",
            lambda: EmpiricalBootstrapVG("exp_gain", history, joint=True),
        ),
    ]


@pytest.mark.parametrize(
    "label,factory",
    _correlated_models(),
    ids=[label for label, _ in _correlated_models()],
)
@pytest.mark.parametrize("mode", (MODE_SCENARIO_WISE, MODE_TUPLE_WISE))
def test_correlated_vgs_bit_identical_across_workers(label, factory, mode):
    """Each new VG family: n_workers=4 realization equals sequential,
    bit for bit, in both generation modes (the block-aware RNG
    substreams make correlated groups chunk-safe)."""
    relation = _correlated_relation()
    model = StochasticModel(relation, {"X": factory()})
    sequential = ScenarioGenerator(model, 23, STREAM_OPTIMIZATION, mode=mode)
    executor = ParallelScenarioExecutor(
        ScenarioGenerator(model, 23, STREAM_OPTIMIZATION, mode=mode), N_WORKERS
    )
    try:
        assert np.array_equal(
            executor.matrix("X", M), sequential.matrix("X", M)
        )
        rows = np.array([1, 4, 9])
        assert np.array_equal(
            executor.matrix("X", M, rows=rows),
            sequential.matrix("X", M, rows=rows),
        )
    finally:
        executor.close()


@pytest.mark.parametrize("summary_strategy", ("in-memory", "tuple-wise"))
def test_end_to_end_package_identical_across_worker_counts(
    gaussian_setup, summary_strategy
):
    """Engine-level determinism for both generation modes: the in-memory
    strategy exercises the parallel ScenarioCache fill (scenario-wise
    keys), the tuple-wise strategy the parallel block-keyed generator."""
    relation, model = gaussian_setup
    query = (
        "SELECT PACKAGE(*) FROM items SUCH THAT COUNT(*) <= 3 AND"
        " SUM(Value) >= 9 WITH PROBABILITY >= 0.8"
        " MINIMIZE EXPECTED SUM(Value)"
    )
    packages = []
    for n_workers in (1, N_WORKERS):
        config = SPQConfig(
            n_validation_scenarios=500,
            n_initial_scenarios=16,
            scenario_increment=16,
            max_scenarios=48,
            n_expectation_scenarios=200,
            n_probe_scenarios=8,
            epsilon=0.5,
            solver_time_limit=10.0,
            time_limit=60.0,
            seed=3,
            n_workers=n_workers,
            summary_strategy=summary_strategy,
        )
        engine = SPQEngine(config=config)
        engine.register(relation, model)
        result = engine.execute(query, method="summarysearch")
        packages.append(
            None if result.package is None else result.package.multiplicities
        )
    first, second = packages
    if first is None:
        assert second is None
    else:
        np.testing.assert_array_equal(first, second)
