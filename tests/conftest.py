"""Shared fixtures: small relations, stochastic models, fast configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Catalog, Relation, SPQConfig
from repro.core.context import EvaluationContext
from repro.mcdb import (
    DiscreteVariantsVG,
    GaussianNoiseVG,
    GeometricBrownianMotionVG,
    StochasticModel,
)
from repro.silp.compile import compile_query


@pytest.fixture
def items_relation() -> Relation:
    """Five items with deterministic prices and weights."""
    return Relation(
        "items",
        {
            "price": [5.0, 8.0, 3.0, 6.0, 4.0],
            "weight": [2.0, 1.0, 4.0, 3.0, 2.5],
            "category": ["a", "b", "a", "b", "a"],
        },
    )


@pytest.fixture
def items_model(items_relation) -> StochasticModel:
    """Gaussian 'Value' attribute centred on price with sigma 1."""
    return StochasticModel(
        items_relation, {"Value": GaussianNoiseVG("price", 1.0)}
    )


@pytest.fixture
def items_catalog(items_relation, items_model) -> Catalog:
    catalog = Catalog()
    catalog.register(items_relation, items_model)
    return catalog


@pytest.fixture
def fast_config() -> SPQConfig:
    """Small Monte Carlo sizes keeping the suite quick but meaningful."""
    return SPQConfig(
        n_validation_scenarios=1_000,
        n_initial_scenarios=20,
        scenario_increment=20,
        max_scenarios=80,
        n_expectation_scenarios=400,
        n_probe_scenarios=16,
        epsilon=0.5,
        solver_time_limit=10.0,
        time_limit=60.0,
        seed=123,
    )


CHANCE_QUERY = """
SELECT PACKAGE(*) FROM items SUCH THAT
    COUNT(*) <= 3 AND
    SUM(Value) >= 6 WITH PROBABILITY >= 0.8
MINIMIZE EXPECTED SUM(Value)
"""


@pytest.fixture
def chance_problem(items_catalog):
    return compile_query(CHANCE_QUERY, items_catalog)


@pytest.fixture
def chance_context(chance_problem, fast_config) -> EvaluationContext:
    return EvaluationContext(chance_problem, fast_config)


@pytest.fixture
def portfolio_toy() -> tuple[Relation, StochasticModel]:
    """Six trades over three stocks with shared GBM paths (Figure 1)."""
    relation = Relation(
        "stock_investments",
        {
            "stock": ["AAPL", "AAPL", "MSFT", "MSFT", "TSLA", "TSLA"],
            "price": [234.0, 234.0, 140.0, 140.0, 258.0, 258.0],
            "sell_in_days": [1.0, 7.0, 1.0, 7.0, 1.0, 7.0],
            "drift": [0.0008, 0.0008, 0.0006, 0.0006, 0.0015, 0.0015],
            "volatility": [0.018, 0.018, 0.012, 0.012, 0.045, 0.045],
        },
    )
    model = StochasticModel(
        relation, {"Gain": GeometricBrownianMotionVG(group_column="stock")}
    )
    return relation, model


@pytest.fixture
def variants_model() -> tuple[Relation, StochasticModel]:
    """Four rows with three discrete variants each (integration-style)."""
    relation = Relation("orders", {"quantity": [2.0, 5.0, 9.0, 1.0]})
    variants = np.array(
        [
            [1.0, 2.0, 3.0],
            [4.0, 5.0, 6.0],
            [8.0, 9.0, 10.0],
            [0.5, 1.0, 1.5],
        ]
    )
    model = StochasticModel(relation, {"Quantity": DiscreteVariantsVG(variants)})
    return relation, model
