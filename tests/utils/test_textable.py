"""ASCII table rendering."""

import pytest

from repro.utils.textable import TextTable


def test_basic_rendering_alignment():
    table = TextTable(["name", "value"])
    table.add_row(["x", 1])
    table.add_row(["longer", 2.5])
    text = table.render()
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "-+-" in lines[1]
    assert lines[2].startswith("x")
    # All separator positions align.
    assert lines[0].index("|") == lines[2].index("|")


def test_float_formatting():
    table = TextTable(["v"], float_fmt=".2f")
    table.add_row([3.14159])
    assert "3.14" in table.render()
    assert "3.142" not in table.render()


def test_none_and_bool_formatting():
    table = TextTable(["a", "b"])
    table.add_row([None, True])
    rendered = table.render()
    assert "-" in rendered
    assert "yes" in rendered


def test_row_width_mismatch_rejected():
    table = TextTable(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_empty_table_renders_header_only():
    table = TextTable(["just", "headers"])
    assert len(table.render().splitlines()) == 2
