"""Stopwatch and Deadline behaviour."""

import time

import pytest

from repro.errors import TimeLimitExceeded
from repro.utils.timing import Deadline, Stopwatch


def test_stopwatch_accumulates():
    watch = Stopwatch()
    with watch:
        time.sleep(0.01)
    first = watch.elapsed
    with watch:
        time.sleep(0.01)
    assert watch.elapsed > first >= 0.01


def test_stopwatch_double_start_rejected():
    watch = Stopwatch().start()
    with pytest.raises(RuntimeError):
        watch.start()
    watch.stop()


def test_stopwatch_stop_without_start_rejected():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def test_stopwatch_stop_returns_delta():
    watch = Stopwatch().start()
    time.sleep(0.01)
    delta = watch.stop()
    assert delta == pytest.approx(watch.elapsed)


def test_deadline_remaining_counts_down():
    deadline = Deadline(10.0)
    assert 0 < deadline.remaining() <= 10.0
    assert not deadline.expired()


def test_deadline_expiry():
    deadline = Deadline(0.01)
    time.sleep(0.02)
    assert deadline.expired()
    assert deadline.remaining() == 0.0
    with pytest.raises(TimeLimitExceeded):
        deadline.check()


def test_deadline_check_passes_before_expiry():
    Deadline(10.0).check()  # should not raise


def test_deadline_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        Deadline(0.0)
