"""RNG key derivation: determinism, independence, stream separation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rngkeys import derive_key, make_generator, spawn_dataset_rng

parts = st.integers(min_value=0, max_value=2**31 - 1)


def test_same_components_same_key():
    assert np.array_equal(derive_key(1, 2, 3, 4), derive_key(1, 2, 3, 4))


def test_key_shape_and_dtype():
    key = derive_key(7, 0)
    assert key.shape == (2,)
    assert key.dtype == np.uint64


@given(a=parts, b=parts)
def test_distinct_parts_distinct_keys(a, b):
    if a == b:
        return
    assert not np.array_equal(derive_key(0, 0, a), derive_key(0, 0, b))


def test_part_position_matters():
    # (1, 2) vs (2, 1) must not collide: the payload is positional.
    assert not np.array_equal(derive_key(0, 0, 1, 2), derive_key(0, 0, 2, 1))


def test_seed_and_stream_both_matter():
    base = derive_key(5, 0, 9)
    assert not np.array_equal(base, derive_key(6, 0, 9))
    assert not np.array_equal(base, derive_key(5, 1, 9))


def test_generator_reproducible():
    a = make_generator(3, 1, 42).normal(size=8)
    b = make_generator(3, 1, 42).normal(size=8)
    assert np.array_equal(a, b)


def test_generators_independent_streams():
    a = make_generator(3, 1, 42).normal(size=1000)
    b = make_generator(3, 1, 43).normal(size=1000)
    # Streams from distinct keys should be essentially uncorrelated.
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.15


def test_dataset_rng_label_separation():
    a = spawn_dataset_rng(42, "galaxy").normal(size=4)
    b = spawn_dataset_rng(42, "portfolio").normal(size=4)
    assert not np.array_equal(a, b)


def test_dataset_rng_reproducible():
    a = spawn_dataset_rng(42, "galaxy").normal(size=4)
    b = spawn_dataset_rng(42, "galaxy").normal(size=4)
    assert np.array_equal(a, b)


def test_negative_like_parts_normalized():
    # Components pass through int(); floats equal to ints are accepted.
    assert np.array_equal(derive_key(1, 2, 3.0), derive_key(1, 2, 3))
