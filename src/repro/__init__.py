"""repro — stochastic package queries in probabilistic databases.

A production-quality reproduction of Brucato, Yadav, Abouzied, Haas,
Meliou: "Stochastic Package Queries in Probabilistic Databases" (SIGMOD
2020).  See README.md for a tour and DESIGN.md for the system inventory.

Quick start::

    from repro import Catalog, Relation, SPQEngine, SPQConfig
    from repro.mcdb import StochasticModel, GaussianNoiseVG

    relation = Relation("items", {"price": [5.0, 8.0, 3.0]})
    model = StochasticModel(relation, {"Value": GaussianNoiseVG("price", 1.0)})
    engine = SPQEngine()
    engine.register(relation, model)
    result = engine.execute(
        '''SELECT PACKAGE(*) FROM items SUCH THAT
           COUNT(*) <= 2 AND
           SUM(Value) >= 4 WITH PROBABILITY >= 0.9
           MINIMIZE EXPECTED SUM(Value)'''
    )
    print(result.summary())
"""

from .config import SPQConfig, DEFAULT_CONFIG, paper_scale_config
from .db.catalog import Catalog
from .db.relation import Relation
from .core.engine import SPQEngine
from .core.package import Package, PackageResult
from .errors import (
    SPQError,
    ParseError,
    CompileError,
    SchemaError,
    VGFunctionError,
    SolverError,
    InfeasibleError,
    UnboundedError,
    EvaluationError,
)

__version__ = "1.2.0"

__all__ = [
    "SPQConfig",
    "DEFAULT_CONFIG",
    "paper_scale_config",
    "Catalog",
    "Relation",
    "SPQEngine",
    "Package",
    "PackageResult",
    "SPQError",
    "ParseError",
    "CompileError",
    "SchemaError",
    "VGFunctionError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "EvaluationError",
    "__version__",
]
