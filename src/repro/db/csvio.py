"""CSV import/export for relations.

Keeps the library usable without pandas: a small reader that infers
int/float/text column types, and a symmetric writer.  Intended for
loading user data and for persisting experiment inputs/outputs.
"""

from __future__ import annotations

import csv
import errno
import io
import os
from pathlib import Path
from typing import Sequence

import numpy as np

from ..errors import SchemaError
from .relation import Relation


def _parse_column(raw: list[str], name: str) -> np.ndarray:
    """Infer the tightest type (int -> float -> text) for a raw column."""
    try:
        return np.array([int(v) for v in raw], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(v) for v in raw], dtype=np.float64)
    except ValueError:
        pass
    return np.array(raw, dtype=object)


def read_csv(path_or_text, name: str | None = None, key: str = "id") -> Relation:
    """Read a relation from a CSV file path or raw CSV text.

    The first row must be a header.  A missing ``id`` key column is
    created automatically (positional), as in :class:`Relation`.

    A newline-free string that looks like a file path (has a suffix or a
    path separator) but names no existing file raises
    :class:`FileNotFoundError` instead of being parsed as header-only
    CSV text — a typo'd ``--table trades.csv`` should exit with the I/O
    code, not an obscure schema error.
    """
    is_pathlike = isinstance(path_or_text, Path) or (
        isinstance(path_or_text, str)
        and "\n" not in path_or_text
        and Path(path_or_text).is_file()
    )
    if (
        not is_pathlike
        and isinstance(path_or_text, str)
        and "\n" not in path_or_text
        and "," not in path_or_text  # header-only CSV text, not a path
        and (Path(path_or_text).suffix or os.sep in path_or_text)
    ):
        raise FileNotFoundError(
            errno.ENOENT, "no such CSV file", str(path_or_text)
        )
    if is_pathlike:
        path = Path(path_or_text)
        text = path.read_text()
        default_name = path.stem
    else:
        text = str(path_or_text)
        default_name = "relation"
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        raise SchemaError("CSV input is empty")
    header, *data = rows
    if not data:
        raise SchemaError("CSV input has a header but no data rows")
    columns = {}
    for j, col_name in enumerate(header):
        raw = [row[j] for row in data]
        columns[col_name] = _parse_column(raw, col_name)
    return Relation(name or default_name, columns, key=key)


def write_csv(relation: Relation, path, columns: Sequence[str] | None = None) -> None:
    """Write ``relation`` to ``path`` as CSV (header + rows)."""
    names = list(columns) if columns is not None else relation.column_names
    arrays = [relation.column(n) for n in names]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(relation.n_rows):
            writer.writerow([arr[i] for arr in arrays])
