"""CSV import/export for relations.

Keeps the library usable without pandas: a chunked, streaming reader
that infers int -> float -> text column types, and a symmetric writer.
Intended for loading user data and for persisting experiment
inputs/outputs.

The reader never materializes the file as Python row lists: rows stream
through fixed-size chunks that are parsed straight into typed numpy
arrays.  :func:`read_csv` concatenates the chunks into an in-memory
:class:`~repro.db.relation.Relation`; :func:`read_csv_to_store` appends
them to an on-disk :class:`~repro.scale.ColumnStore` instead, so
multi-gigabyte CSVs import under chunk-sized memory.

Type inference is chunk-local with whole-column reconciliation: an
``int`` column widens to ``float`` losslessly when a later chunk needs
it, and a column that turns out to be text is re-read from the source in
a second streaming pass (sources — paths and raw text — are re-readable
by construction), so the raw strings are preserved exactly as the
row-at-a-time reader did.
"""

from __future__ import annotations

import csv
import errno
import io
import os
from pathlib import Path
from typing import Callable, Iterator, Sequence

import numpy as np

from ..errors import SchemaError
from .relation import Relation

#: Rows parsed per streaming chunk.
CSV_CHUNK_ROWS = 8_192


def _resolve_source(path_or_text) -> tuple[Callable[[], io.TextIOBase], str]:
    """Classify the input; returns (re-readable opener, default name).

    A newline-free string that looks like a file path (has a suffix or a
    path separator) but names no existing file raises
    :class:`FileNotFoundError` instead of being parsed as header-only
    CSV text — a typo'd ``--table trades.csv`` should exit with the I/O
    code, not an obscure schema error.
    """
    is_pathlike = isinstance(path_or_text, Path) or (
        isinstance(path_or_text, str)
        and "\n" not in path_or_text
        and Path(path_or_text).is_file()
    )
    if (
        not is_pathlike
        and isinstance(path_or_text, str)
        and "\n" not in path_or_text
        and "," not in path_or_text  # header-only CSV text, not a path
        and (Path(path_or_text).suffix or os.sep in path_or_text)
    ):
        raise FileNotFoundError(
            errno.ENOENT, "no such CSV file", str(path_or_text)
        )
    if is_pathlike:
        path = Path(path_or_text)
        return (lambda: open(path, newline="")), path.stem
    text = str(path_or_text)
    return (lambda: io.StringIO(text)), "relation"


def _iter_chunks(
    handle, chunk_rows: int
) -> Iterator[tuple[int, list[list[str]]]]:
    """Yield (start_row, rows) chunks of non-empty CSV rows after the header.

    The header is consumed by the caller via :func:`_read_header`.
    """
    reader = csv.reader(handle)
    header_len: int | None = None
    buffer: list[list[str]] = []
    start = 0
    row_number = 0
    for row in reader:
        if not row:
            continue
        if header_len is None:  # the header row
            header_len = len(row)
            continue
        if len(row) != header_len:
            raise SchemaError(
                f"CSV row {row_number + 1} has {len(row)} fields,"
                f" expected {header_len}"
            )
        buffer.append(row)
        row_number += 1
        if len(buffer) >= chunk_rows:
            yield start, buffer
            start = row_number
            buffer = []
    if buffer:
        yield start, buffer


def _read_header(opener) -> list[str]:
    with opener() as handle:
        for row in csv.reader(handle):
            if row:
                return row
    raise SchemaError("CSV input is empty")


#: Chunk parser per settled column kind — the single definition of how
#: raw CSV strings become arrays (both readers route through it).
_PARSE_BY_KIND = {
    "int": lambda raw: np.array([int(v) for v in raw], dtype=np.int64),
    "float": lambda raw: np.array([float(v) for v in raw], dtype=np.float64),
    "text": lambda raw: np.array(raw, dtype=object),
}


class _ColumnState:
    """Per-column accumulation across streaming chunks.

    ``kind`` walks the promotion lattice int -> float -> text.  Numeric
    widening casts the already-parsed chunks in place (lossless); a
    promotion to text records the column for the second pass and drops
    the numeric chunks (their raw strings are gone).  With
    ``retain=False`` parsed chunks are discarded immediately — type
    settlement only, which is what :func:`read_csv_to_store`'s first
    pass needs.
    """

    __slots__ = ("name", "kind", "chunks", "retain")

    def __init__(self, name: str, retain: bool = True):
        self.name = name
        self.kind = "int"
        self.retain = retain
        self.chunks: list[np.ndarray] | None = []

    def absorb(self, raw: list[str]) -> None:
        while True:
            try:
                parsed = _PARSE_BY_KIND[self.kind](raw)
                break
            except ValueError:
                if self.kind == "int":
                    self.kind = "float"
                    if self.chunks:
                        self.chunks = [
                            chunk.astype(np.float64) for chunk in self.chunks
                        ]
                else:
                    self.kind = "text"
                    self.chunks = None  # raw strings lost: second pass
        if self.chunks is not None:
            if self.retain:
                self.chunks.append(parsed)

    @property
    def needs_second_pass(self) -> bool:
        return self.kind == "text" and self.chunks is None

    def concatenate(self) -> np.ndarray:
        assert self.chunks is not None
        if len(self.chunks) == 1:
            return self.chunks[0]
        return np.concatenate(self.chunks)


def _stream_columns(
    opener, header: list[str], chunk_rows: int
) -> list[_ColumnState]:
    """First streaming pass: typed chunks per column, plus a text
    backfill pass for columns whose numeric prefix proved wrong."""
    states = [_ColumnState(name) for name in header]
    n_rows = 0
    with opener() as handle:
        for _, rows in _iter_chunks(handle, chunk_rows):
            n_rows += len(rows)
            for j, state in enumerate(states):
                state.absorb([row[j] for row in rows])
    if n_rows == 0:
        raise SchemaError("CSV input has a header but no data rows")
    backfill = [j for j, state in enumerate(states) if state.needs_second_pass]
    if backfill:
        for state in (states[j] for j in backfill):
            state.chunks = []
        with opener() as handle:
            for _, rows in _iter_chunks(handle, chunk_rows):
                for j in backfill:
                    states[j].chunks.append(
                        np.array([row[j] for row in rows], dtype=object)
                    )
    return states


def read_csv(
    path_or_text,
    name: str | None = None,
    key: str = "id",
    chunk_rows: int = CSV_CHUNK_ROWS,
) -> Relation:
    """Read a relation from a CSV file path or raw CSV text.

    The first row must be a header.  A missing ``id`` key column is
    created automatically (positional), as in :class:`Relation`.  Rows
    stream through ``chunk_rows``-sized typed chunks — the file is never
    held as Python row lists.
    """
    opener, default_name = _resolve_source(path_or_text)
    header = _read_header(opener)
    states = _stream_columns(opener, header, chunk_rows)
    columns = {state.name: state.concatenate() for state in states}
    return Relation(name or default_name, columns, key=key)


def read_csv_to_store(
    path_or_text,
    store_path,
    name: str | None = None,
    key: str = "id",
    chunk_rows: int | None = None,
    resident_budget: int | None = None,
):
    """Stream a CSV straight into an on-disk column store.

    Two streaming passes — one to settle each column's type, one to
    write — so peak memory is one chunk regardless of file size.
    Returns the opened :class:`~repro.scale.ColumnStore` (chunk cache
    bounded by ``resident_budget``).  The missing-file contract matches
    :func:`read_csv` (``FileNotFoundError`` -> the CLI's I/O exit code).
    """
    from ..scale.columnar import (
        DEFAULT_CHUNK_ROWS,
        ColumnStore,
        ColumnStoreWriter,
    )

    chunk_rows = chunk_rows or DEFAULT_CHUNK_ROWS
    opener, default_name = _resolve_source(path_or_text)
    header = _read_header(opener)
    # Pass 1: settle each column's final kind (no data retained).
    probe = [_ColumnState(col, retain=False) for col in header]
    n_rows = 0
    with opener() as handle:
        for _, rows in _iter_chunks(handle, chunk_rows):
            n_rows += len(rows)
            for j, state in enumerate(probe):
                state.absorb([row[j] for row in rows])
    if n_rows == 0:
        raise SchemaError("CSV input has a header but no data rows")
    kinds = {state.name: state.kind for state in probe}
    # Pass 2: parse with the settled kinds and append to the writer.
    writer = ColumnStoreWriter(
        store_path, name=name or default_name, key=key, chunk_rows=chunk_rows
    )
    with opener() as handle:
        for _, rows in _iter_chunks(handle, chunk_rows):
            writer.append(
                {
                    col: _PARSE_BY_KIND[kinds[col]]([row[j] for row in rows])
                    for j, col in enumerate(header)
                }
            )
    writer.close()
    return ColumnStore(str(store_path), resident_budget=resident_budget)


def write_csv(relation, path, columns: Sequence[str] | None = None) -> None:
    """Write ``relation`` to ``path`` as CSV (header + rows).

    Accepts anything implementing the relation column protocol —
    in-memory relations and on-disk column stores alike.
    """
    names = list(columns) if columns is not None else relation.column_names
    arrays = [relation.column(n) for n in names]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(relation.n_rows):
            writer.writerow([arr[i] for arr in arrays])
