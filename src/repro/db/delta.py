"""Live-relation deltas: mutation records, dirty-row scoping, lineage.

Relations are immutable-by-convention; a :class:`RelationDelta` is the
one sanctioned way to change one.  Applying a delta produces a *new*
relation (in-memory) or rewrites the column files in place (ColumnStore)
together with a :class:`DeltaApplication` record describing exactly which
row positions of the post-delta relation can differ from the pre-delta
relation — the *dirty rows*.

The dirty-row rule follows from how scenario realization consumes
randomness: scenario-wise draws are positional and sequential over the
whole relation (``vg.sample_all`` draws one value per row, in row
order), so

* an **update** dirties only the updated row's position,
* an **insert** (always an append) dirties only the appended positions —
  the existing prefix keeps its draws,
* a **delete** shifts every later row down one position, dirtying every
  position at or beyond the first deleted row (``shifted_from``).

The :class:`FingerprintLineage` registry turns the content fingerprint
into an incrementally-maintained *chain*: each applied delta records
``parent fingerprint → child fingerprint`` plus the dirty positions, so
a cache keyed on a pre-delta fingerprint is reusable via an explicit
ancestor lookup (``ancestor_fingerprints``/``dirty_mask``) instead of a
cold miss.  See ``docs/live_data.md``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import SchemaError

#: Lineage records kept per process; chains older than this fall off and
#: their caches degrade to cold misses (correct, just slower).
_LINEAGE_LIMIT = 256

#: Longest ancestor chain walked on a cache lookup.
_MAX_CHAIN = 16


def _canonical(value):
    """JSON-safe canonical form of a delta payload value."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [_canonical(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    return value


class RelationDelta:
    """One batch of mutations against a relation.

    * ``inserts`` — a sequence of row dicts appended at the end, in
      order.  Every non-key column must be present; a numeric key column
      may be omitted (fresh keys are assigned past the current maximum).
    * ``updates`` — ``{key_value: {column: new_value}}``.  The key
      column itself cannot be updated (delete + insert instead).
    * ``deletes`` — a sequence of key values to remove.

    A key may appear in at most one of ``updates``/``deletes``, and
    inserted keys must not collide with surviving rows — violations
    raise :class:`SchemaError` before anything is touched.
    """

    __slots__ = ("inserts", "updates", "deletes")

    def __init__(self, inserts=None, updates=None, deletes=None):
        self.inserts = [dict(row) for row in (inserts or [])]
        self.updates = {k: dict(v) for k, v in (updates or {}).items()}
        self.deletes = list(deletes or [])
        if not (self.inserts or self.updates or self.deletes):
            raise SchemaError("empty delta: nothing to insert/update/delete")
        overlap = set(self.updates) & set(self.deletes)
        if overlap:
            raise SchemaError(
                f"keys both updated and deleted: {sorted(overlap)!r}"
            )

    @property
    def is_empty(self) -> bool:
        return not (self.inserts or self.updates or self.deletes)

    def to_payload(self) -> dict:
        """JSON-ready document (HTTP body, ``--apply-delta`` file)."""
        return {
            "inserts": [_canonical(row) for row in self.inserts],
            "updates": [
                [_canonical(k), _canonical(v)]
                for k, v in self.updates.items()
            ],
            "deletes": [_canonical(k) for k in self.deletes],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RelationDelta":
        """Inverse of :meth:`to_payload`; validates shapes."""
        if not isinstance(payload, dict):
            raise SchemaError("delta payload must be a JSON object")
        updates_raw = payload.get("updates") or []
        if isinstance(updates_raw, dict):
            updates = dict(updates_raw)
        else:
            updates = {}
            for pair in updates_raw:
                if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                    raise SchemaError(
                        "delta updates must be [key, {column: value}] pairs"
                    )
                updates[pair[0]] = pair[1]
        return cls(
            inserts=payload.get("inserts") or [],
            updates=updates,
            deletes=payload.get("deletes") or [],
        )

    def digest(self) -> str:
        """Stable SHA-256 over the delta's canonical JSON form."""
        text = json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RelationDelta(inserts={len(self.inserts)},"
            f" updates={len(self.updates)}, deletes={len(self.deletes)})"
        )


@dataclass
class DeltaApplication:
    """What one applied delta touched, in *post-delta* row coordinates.

    ``dirty`` is the sorted array of positions whose content or
    realized scenario draws can differ from the pre-delta relation;
    ``shifted_from`` is the first position at which row coordinates
    shifted (the minimum deleted position), or ``None`` when the delta
    contained no deletes (positions are then stable across the delta).
    """

    digest: str
    n_rows_before: int
    n_rows_after: int
    dirty: np.ndarray
    shifted_from: int | None

    def as_dict(self) -> dict:
        return {
            "digest": self.digest,
            "n_rows_before": int(self.n_rows_before),
            "n_rows_after": int(self.n_rows_after),
            "dirty_rows": int(len(self.dirty)),
            "shifted_from": (
                None if self.shifted_from is None else int(self.shifted_from)
            ),
        }


def dirty_positions(
    n_rows_before: int,
    update_positions: np.ndarray,
    delete_positions: np.ndarray,
    n_inserts: int,
) -> tuple[np.ndarray, int | None, int]:
    """(dirty child positions, shifted_from, n_rows_after) for one delta."""
    n_after = n_rows_before - len(delete_positions) + n_inserts
    if len(delete_positions):
        shifted_from = int(np.min(delete_positions))
        below = np.asarray(update_positions, dtype=np.int64)
        below = below[below < shifted_from]
        dirty = np.union1d(below, np.arange(shifted_from, n_after))
        return dirty.astype(np.int64), shifted_from, n_after
    dirty = np.union1d(
        np.asarray(update_positions, dtype=np.int64),
        np.arange(n_rows_before, n_after, dtype=np.int64),
    )
    return dirty.astype(np.int64), None, n_after


# --- fingerprint lineage ----------------------------------------------------


@dataclass
class LineageRecord:
    """One link in a fingerprint chain: parent → child via one delta."""

    parent: str
    child: str
    digest: str
    n_rows: int  # rows of the *child* relation
    dirty: np.ndarray  # child-coordinate positions, sorted
    shifted_from: int | None
    catalog_version: int | None = None
    table: str | None = None
    n_rows_parent: int | None = None  # rows of the *parent* relation


class FingerprintLineage:
    """Process-wide, bounded registry of fingerprint chains.

    Keyed by child fingerprint; answers ancestor walks and merged
    dirty-row masks so fingerprint-keyed caches (partition index,
    refine cache, scenario matrices) can be *reused* across deltas
    instead of cold-missing.  Thread-safe; bounded at
    ``_LINEAGE_LIMIT`` records (oldest evicted).
    """

    def __init__(self):
        self._records: OrderedDict[str, LineageRecord] = OrderedDict()
        self._lock = threading.Lock()

    def record(self, rec: LineageRecord) -> None:
        with self._lock:
            self._records[rec.child] = rec
            self._records.move_to_end(rec.child)
            while len(self._records) > _LINEAGE_LIMIT:
                self._records.popitem(last=False)

    def record_delta(
        self,
        parent_fp: str,
        child_fp: str,
        application: DeltaApplication,
        catalog_version: int | None = None,
        table: str | None = None,
    ) -> LineageRecord:
        """Convenience wrapper: build and store the record for one delta."""
        rec = LineageRecord(
            parent=parent_fp,
            child=child_fp,
            digest=application.digest,
            n_rows=application.n_rows_after,
            dirty=np.asarray(application.dirty, dtype=np.int64),
            shifted_from=application.shifted_from,
            catalog_version=catalog_version,
            table=table,
            n_rows_parent=application.n_rows_before,
        )
        self.record(rec)
        return rec

    def parent_record(self, fingerprint: str) -> LineageRecord | None:
        with self._lock:
            return self._records.get(fingerprint)

    def chain(self, fingerprint: str) -> list[LineageRecord]:
        """Records from ``fingerprint`` back towards its oldest ancestor."""
        out: list[LineageRecord] = []
        seen = {fingerprint}
        current = fingerprint
        while len(out) < _MAX_CHAIN:
            rec = self.parent_record(current)
            if rec is None or rec.parent in seen:
                break
            out.append(rec)
            seen.add(rec.parent)
            current = rec.parent
        return out

    def ancestor_fingerprints(self, fingerprint: str) -> list[str]:
        """Ancestor fingerprints, nearest first."""
        return [rec.parent for rec in self.chain(fingerprint)]

    def ancestors(self, fingerprint: str) -> list[tuple[str, int | None]]:
        """``(ancestor fingerprint, ancestor row count)`` pairs, nearest first."""
        return [
            (rec.parent, rec.n_rows_parent) for rec in self.chain(fingerprint)
        ]

    def dirty_mask(
        self, ancestor_fp: str, fingerprint: str, n_rows: int
    ) -> np.ndarray | None:
        """Boolean mask over the *current* relation's rows that may differ
        from ``ancestor_fp``'s content/draws; ``None`` if the chain from
        ``fingerprint`` back to ``ancestor_fp`` is unknown.

        Positions are stable across delta steps without deletes, so the
        per-step dirty sets union directly; a step with deletes already
        marks everything at or beyond its shift point dirty, which
        absorbs any coordinate drift conservatively.
        """
        mask = np.zeros(n_rows, dtype=bool)
        found = False
        for rec in self.chain(fingerprint):
            dirty = rec.dirty[rec.dirty < n_rows]
            mask[dirty] = True
            if rec.shifted_from is not None:
                mask[min(rec.shifted_from, n_rows):] = True
            if rec.parent == ancestor_fp:
                found = True
                break
        return mask if found else None

    def superseded(self) -> set:
        """Every fingerprint known to have been mutated past (stale)."""
        with self._lock:
            return {rec.parent for rec in self._records.values()}

    def is_stale(self, fingerprint: str) -> bool:
        """Whether a delta has been applied on top of ``fingerprint``."""
        with self._lock:
            return any(
                rec.parent == fingerprint for rec in self._records.values()
            )

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


#: Process-wide registry.  Farm workers rebuild their own as they adopt
#: delta broadcasts; tests reset it via ``lineage.clear()``.
lineage = FingerprintLineage()


# --- application to in-memory relations ------------------------------------


def apply_delta_to_relation(relation, delta: RelationDelta):
    """Apply ``delta`` to an in-memory Relation.

    Returns ``(new_relation, DeltaApplication)``.  The source relation
    is untouched (columns are copied, not aliased).
    """
    from .relation import Relation

    key = relation.key
    n_before = relation.n_rows
    upd_pos = relation.positions_for_keys(delta.updates.keys())
    del_pos = relation.positions_for_keys(delta.deletes)
    for changes in delta.updates.values():
        if key in changes:
            raise SchemaError(
                f"cannot update key column {key!r}; delete and re-insert"
            )
        for col in changes:
            if not relation.has_column(col):
                raise SchemaError(
                    f"relation {relation.name!r} has no column {col!r}"
                )

    columns: dict[str, np.ndarray] = {
        name: np.array(relation.column(name), copy=True)
        for name in relation.column_names
    }

    # Updates in place (pre-delete coordinates).
    for (key_value, changes), pos in zip(delta.updates.items(), upd_pos):
        for col, value in changes.items():
            _check_assignable(columns[col], value, col)
            columns[col][pos] = value

    keep = np.ones(n_before, dtype=bool)
    keep[del_pos] = False

    inserts = normalize_inserts(
        delta,
        key=key,
        column_names=relation.column_names,
        key_values=columns[key],
        keep=keep,
        relation_name=relation.name,
    )
    for row in inserts:
        for col, value in row.items():
            _check_assignable(columns[col], value, col)

    new_columns: dict[str, np.ndarray] = {}
    for name, arr in columns.items():
        kept = arr[keep]
        if inserts:
            appended = np.asarray([row[name] for row in inserts])
            kept = np.concatenate([kept, appended.astype(kept.dtype, copy=False)])
        new_columns[name] = kept

    new_relation = Relation(relation.name, new_columns, key=key)
    dirty, shifted_from, n_after = dirty_positions(
        n_before, upd_pos, del_pos, len(inserts)
    )
    application = DeltaApplication(
        digest=delta.digest(),
        n_rows_before=n_before,
        n_rows_after=n_after,
        dirty=dirty,
        shifted_from=shifted_from,
    )
    return new_relation, application


def _check_assignable(arr: np.ndarray, value, col: str) -> None:
    """Reject lossy assignments (e.g. a float into an int column)."""
    if np.issubdtype(arr.dtype, np.integer):
        coerced = np.asarray(value)
        if not (
            np.issubdtype(coerced.dtype, np.integer)
            or (np.issubdtype(coerced.dtype, np.floating)
                and float(coerced) == int(coerced))
        ):
            raise SchemaError(
                f"cannot assign {value!r} to integer column {col!r}"
                " (type widening is not supported by deltas)"
            )


def normalize_inserts(
    delta: RelationDelta,
    key: str,
    column_names,
    key_values: np.ndarray,
    keep: np.ndarray,
    relation_name: str,
) -> list[dict]:
    """Insert rows with every column present (fresh numeric keys filled).

    ``keep`` masks out deletes so key collisions are checked against
    surviving rows only.  Shared by the in-memory and ColumnStore
    delta-application paths so both assign identical auto keys — the
    delta-equivalence property depends on that.
    """
    if not delta.inserts:
        return []
    key_arr = np.asarray(key_values)
    surviving = set(key_arr[keep].tolist())
    numeric_key = np.issubdtype(key_arr.dtype, np.number)
    next_key = (int(np.max(key_arr)) + 1) if numeric_key and len(key_arr) else 0
    out = []
    for row in delta.inserts:
        row = dict(row)
        if key not in row:
            if not numeric_key:
                raise SchemaError(
                    f"insert must provide key column {key!r}"
                    f" (non-numeric keys cannot be auto-assigned)"
                )
            while next_key in surviving:
                next_key += 1
            row[key] = next_key
            next_key += 1
        if row[key] in surviving:
            raise SchemaError(
                f"insert key {row[key]!r} already exists in {relation_name!r}"
            )
        surviving.add(row[key])
        missing = [n for n in column_names if n not in row]
        if missing:
            raise SchemaError(
                f"insert row missing columns {missing!r}"
                f" for relation {relation_name!r}"
            )
        unknown = [n for n in row if n not in set(column_names)]
        if unknown:
            raise SchemaError(
                f"insert row has unknown columns {unknown!r}"
                f" for relation {relation_name!r}"
            )
        out.append(row)
    return out
