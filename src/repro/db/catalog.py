"""Catalog: named relations plus their stochastic models.

The engine resolves ``FROM`` clauses against a catalog.  A relation may
be registered together with a :class:`repro.mcdb.StochasticModel`
describing its uncertain attributes and their VG functions; relations
without a model are fully deterministic (plain PaQL behaviour).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator

from ..errors import SchemaError
from .relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mcdb.stochastic import StochasticModel


class Catalog:
    """A case-insensitive mapping of table names to (relation, model)."""

    def __init__(self) -> None:
        self._tables: dict[str, tuple[Relation, "StochasticModel | None"]] = {}
        #: Bumped on every mutation.  Engine sessions sharing this
        #: catalog key their compiled-problem caches on it, so a
        #: registration through *any* session (or directly on the
        #: catalog) invalidates every session's cache.  Mutations are
        #: serialized under a lock: concurrent registrations losing an
        #: increment to each other would leave the counter unchanged
        #: after the second one landed, letting stale compiled problems
        #: read as current.
        self.version = 0
        self._mutate_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Catalogs cross process boundaries (solve-farm workers receive
        # one pickled at spawn); locks don't pickle and each process
        # needs its own anyway.
        state = dict(self.__dict__)
        del state["_mutate_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._mutate_lock = threading.Lock()

    @staticmethod
    def _norm(name: str) -> str:
        return name.lower()

    def register(
        self,
        relation: Relation,
        model: "StochasticModel | None" = None,
        name: str | None = None,
    ) -> None:
        """Register ``relation`` (optionally with its stochastic model).

        Re-registering a name replaces the previous entry, mirroring
        ``CREATE OR REPLACE``.
        """
        table_name = self._norm(name or relation.name)
        if model is not None:
            model.check_against(relation)
        with self._mutate_lock:
            self._tables[table_name] = (relation, model)
            self.version += 1

    def relation(self, name: str) -> Relation:
        """The relation registered under ``name``."""
        return self._entry(name)[0]

    def model(self, name: str) -> "StochasticModel | None":
        """The stochastic model registered under ``name`` (or None)."""
        return self._entry(name)[1]

    def _entry(self, name: str) -> tuple[Relation, "StochasticModel | None"]:
        key = self._norm(name)
        if key not in self._tables:
            raise SchemaError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            )
        return self._tables[key]

    def __contains__(self, name: str) -> bool:
        return self._norm(name) in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    def apply_delta(self, name: str, delta) -> dict:
        """Apply a :class:`~repro.db.delta.RelationDelta` to a table.

        The relation is mutated (ColumnStore) or replaced (in-memory),
        the stochastic model — if any — is rebound against the new rows
        via each VG's ``unbound_copy``, the version counter bumps (which
        invalidates every sharing session's compile cache), and the
        fingerprint chain is extended in the process-wide
        :data:`repro.db.delta.lineage` registry so fingerprint-keyed
        caches can be reused delta-scoped instead of cold-missing.

        Returns a JSON-ready summary (old/new fingerprint, dirty rows,
        catalog version) — the ``POST /update`` response body.
        """
        from ..service.store import model_fingerprint, relation_fingerprint
        from .delta import lineage

        relation, model = self._entry(name)
        parent_fp = (
            model_fingerprint(model)
            if model is not None
            else relation_fingerprint(relation)
        )
        new_relation, application = relation.apply_delta(delta)
        new_model = None
        if model is not None:
            from ..mcdb.stochastic import StochasticModel

            new_model = StochasticModel(
                new_relation,
                {
                    attr: model.vg(attr).unbound_copy()
                    for attr in model.attribute_names
                },
            )
        child_fp = (
            model_fingerprint(new_model)
            if new_model is not None
            else relation_fingerprint(new_relation)
        )
        self.register(new_relation, new_model, name=name)
        record = lineage.record_delta(
            parent_fp,
            child_fp,
            application,
            catalog_version=self.version,
            table=self._norm(name),
        )
        return {
            "table": self._norm(name),
            "catalog_version": self.version,
            "fingerprint": child_fp,
            "parent_fingerprint": parent_fp,
            "n_rows": new_relation.n_rows,
            **application.as_dict(),
            "lineage_recorded": record is not None,
        }

    def drop(self, name: str) -> None:
        """Remove a registered table."""
        key = self._norm(name)
        if key not in self._tables:
            raise SchemaError(f"unknown table {name!r}")
        del self._tables[key]
        self.version += 1
