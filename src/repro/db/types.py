"""Column types supported by the columnar store."""

from __future__ import annotations

import enum

import numpy as np

from ..errors import SchemaError


class DType(enum.Enum):
    """Logical column types.

    ``FLOAT`` and ``INT`` columns participate in arithmetic; ``TEXT``
    columns only in equality predicates; ``BOOL`` is produced by
    predicate evaluation.
    """

    FLOAT = "float"
    INT = "int"
    TEXT = "text"
    BOOL = "bool"

    @property
    def is_numeric(self) -> bool:
        return self in (DType.FLOAT, DType.INT)


def infer_dtype(values: np.ndarray) -> DType:
    """Map a numpy array's dtype to a logical :class:`DType`."""
    kind = values.dtype.kind
    if kind == "f":
        return DType.FLOAT
    if kind in ("i", "u"):
        return DType.INT
    if kind == "b":
        return DType.BOOL
    if kind in ("U", "S", "O"):
        return DType.TEXT
    raise SchemaError(f"unsupported column dtype {values.dtype!r}")


def coerce_column(values, name: str) -> np.ndarray:
    """Normalize raw input into a 1-D numpy column array.

    Numeric data becomes ``float64``/``int64``; strings become object
    arrays (to avoid fixed-width truncation on updates).
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise SchemaError(f"column {name!r} must be one-dimensional")
    kind = arr.dtype.kind
    if kind == "f":
        return arr.astype(np.float64, copy=False)
    if kind in ("i", "u"):
        return arr.astype(np.int64, copy=False)
    if kind == "b":
        return arr
    if kind in ("U", "S"):
        return arr.astype(object)
    if kind == "O":
        return arr
    raise SchemaError(f"column {name!r} has unsupported dtype {arr.dtype!r}")
