"""Interval arithmetic over expression trees.

Appendix B's assumption (A1) needs per-tuple bounds ``s̲ ≤ ŝ_ij ≤ s̄`` on
the realized values of the objective's inner function.  When VG functions
expose finite support intervals, propagating them through the constraint
expression with interval arithmetic yields *sound* bounds; when a bound
comes out infinite the caller falls back to empirical probing.

Only the operations needed by sPaQL expressions are supported; anything
unsupported raises :class:`IntervalError`, which callers treat the same
as an unbounded result.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import SPQError
from .expressions import Attr, BinOp, Const, Expr, FuncCall, UnaryOp


class IntervalError(SPQError):
    """Raised when an expression cannot be bounded by interval arithmetic."""


#: Resolver mapping an attribute name to its per-row (lo, hi) support.
SupportResolver = Callable[[str], tuple[np.ndarray, np.ndarray]]


def evaluate_interval(
    expr: Expr, support: SupportResolver
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row interval ``[lo, hi]`` enclosing all realizations of ``expr``."""
    if isinstance(expr, Const):
        if not isinstance(expr.value, (int, float)):
            raise IntervalError("non-numeric constant in interval evaluation")
        value = np.asarray(float(expr.value))
        return value, value
    if isinstance(expr, Attr):
        lo, hi = support(expr.name)
        return np.asarray(lo, dtype=float), np.asarray(hi, dtype=float)
    if isinstance(expr, UnaryOp):
        lo, hi = evaluate_interval(expr.operand, support)
        if expr.op == "-":
            return -hi, -lo
        if expr.op == "+":
            return lo, hi
        raise IntervalError(f"unsupported unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        a_lo, a_hi = evaluate_interval(expr.left, support)
        b_lo, b_hi = evaluate_interval(expr.right, support)
        if expr.op == "+":
            return a_lo + b_lo, a_hi + b_hi
        if expr.op == "-":
            return a_lo - b_hi, a_hi - b_lo
        if expr.op == "*":
            candidates = np.stack(
                [a_lo * b_lo, a_lo * b_hi, a_hi * b_lo, a_hi * b_hi]
            )
            with np.errstate(invalid="ignore"):
                lo = np.nanmin(np.where(np.isnan(candidates), np.inf, candidates), axis=0)
                hi = np.nanmax(np.where(np.isnan(candidates), -np.inf, candidates), axis=0)
            return lo, hi
        if expr.op == "/":
            # Only safe when the denominator interval excludes zero.
            if np.any((b_lo <= 0) & (b_hi >= 0)):
                raise IntervalError("division by an interval containing zero")
            candidates = np.stack(
                [a_lo / b_lo, a_lo / b_hi, a_hi / b_lo, a_hi / b_hi]
            )
            return candidates.min(axis=0), candidates.max(axis=0)
        if expr.op == "^":
            return _power_interval(a_lo, a_hi, expr.right)
        raise IntervalError(f"unsupported operator {expr.op!r}")
    if isinstance(expr, FuncCall):
        return _function_interval(expr, support)
    raise IntervalError(
        f"unsupported node {type(expr).__name__} in interval evaluation"
    )


def _power_interval(lo: np.ndarray, hi: np.ndarray, exponent_expr: Expr):
    if not isinstance(exponent_expr, Const) or not isinstance(
        exponent_expr.value, (int, float)
    ):
        raise IntervalError("exponent must be a numeric constant")
    exponent = float(exponent_expr.value)
    if exponent != round(exponent) or exponent < 0:
        raise IntervalError("only nonnegative integer exponents are supported")
    k = int(exponent)
    if k == 0:
        one = np.ones_like(np.asarray(lo, dtype=float))
        return one, one
    if k % 2 == 1:
        return lo**k, hi**k
    # Even power: minimum is 0 if the interval straddles zero.
    lo_k = np.where((lo <= 0) & (hi >= 0), 0.0, np.minimum(lo**k, hi**k))
    hi_k = np.maximum(lo**k, hi**k)
    return lo_k, hi_k


_MONOTONE_INCREASING = {"exp": np.exp, "sqrt": np.sqrt, "ln": np.log, "log": np.log10}


def _function_interval(expr: FuncCall, support: SupportResolver):
    name = expr.name.lower()
    if len(expr.args) != 1:
        raise IntervalError(f"function {name!r} must have one argument")
    lo, hi = evaluate_interval(expr.args[0], support)
    if name == "abs":
        abs_lo = np.where((lo <= 0) & (hi >= 0), 0.0, np.minimum(np.abs(lo), np.abs(hi)))
        abs_hi = np.maximum(np.abs(lo), np.abs(hi))
        return abs_lo, abs_hi
    func = _MONOTONE_INCREASING.get(name)
    if func is None:
        raise IntervalError(f"unsupported function {name!r}")
    if name in ("sqrt", "ln", "log") and np.any(lo < 0 if name == "sqrt" else lo <= 0):
        raise IntervalError(f"{name} applied to a nonpositive interval")
    with np.errstate(divide="ignore"):
        return func(lo), func(hi)
