"""Vectorized scalar/boolean expression trees.

sPaQL constraints have the general form ``SUM(f(R)) ⊙ v`` where ``f`` is
an arbitrary per-tuple function of the relation's attributes (Appendix A;
Section 2.3 notes that constraints may use ``g(t_i)`` for arbitrary real
valued ``g``).  ``WHERE`` clauses are boolean expressions over the same
attribute space.  This module defines the shared expression AST and a
vectorized evaluator: expressions evaluate to one numpy value per tuple,
given a *column resolver* — which is how stochastic attributes get
substituted with per-scenario realizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Union

import numpy as np

from ..errors import CompileError

#: A column resolver: attribute name -> per-tuple value vector.
ColumnResolver = Union[Mapping[str, np.ndarray], Callable[[str], np.ndarray]]


class Expr:
    """Base class for expression nodes.  Nodes are immutable."""

    __slots__ = ()

    def __str__(self) -> str:
        return render(self)

    # Frozen dataclasses with manual __slots__ don't pickle out of the
    # box (the default slot-state restore goes through the blocked
    # __setattr__); parallel scenario generation ships expression trees
    # to worker processes, so spell the state protocol out.
    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if hasattr(self, slot):
                    state[slot] = getattr(self, slot)
        return state

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)


@dataclass(frozen=True)
class Attr(Expr):
    """Reference to a relation attribute by name."""

    name: str

    __slots__ = ("name",)


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (number or string)."""

    value: object

    __slots__ = ("value",)


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic binary operation: ``+ - * / ^``."""

    op: str
    left: Expr
    right: Expr

    __slots__ = ("op", "left", "right")


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary minus (and plus, normalized away by the parser)."""

    op: str
    operand: Expr

    __slots__ = ("op", "operand")


@dataclass(frozen=True)
class Compare(Expr):
    """Comparison producing a boolean vector: ``<= < >= > = <>``."""

    op: str
    left: Expr
    right: Expr

    __slots__ = ("op", "left", "right")


@dataclass(frozen=True)
class BoolOp(Expr):
    """Logical ``AND`` / ``OR`` over boolean subexpressions."""

    op: str
    left: Expr
    right: Expr

    __slots__ = ("op", "left", "right")


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr

    __slots__ = ("operand",)


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar function application (``abs``, ``sqrt``, ``exp``, ``ln``, ``log``)."""

    name: str
    args: tuple

    __slots__ = ("name", "args")


_FUNCTIONS: dict[str, Callable[..., np.ndarray]] = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "ln": np.log,
    "log": np.log10,
    "floor": np.floor,
    "ceil": np.ceil,
}

_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "^": np.power,
}

_COMPARE = {
    "<=": np.less_equal,
    "<": np.less,
    ">=": np.greater_equal,
    ">": np.greater,
    "=": np.equal,
    "<>": np.not_equal,
}


def _resolve(columns: ColumnResolver, name: str) -> np.ndarray:
    if callable(columns):
        return columns(name)
    try:
        return columns[name]
    except KeyError:
        raise CompileError(f"unknown attribute {name!r}") from None


def evaluate(expr: Expr, columns: ColumnResolver) -> np.ndarray:
    """Evaluate ``expr`` to a per-tuple vector.

    ``columns`` maps attribute names to equal-length numpy arrays; passing
    a callable lets callers lazily materialize columns (e.g. scenario
    realizations of stochastic attributes).
    """
    if isinstance(expr, Const):
        return np.asarray(expr.value)
    if isinstance(expr, Attr):
        return np.asarray(_resolve(columns, expr.name))
    if isinstance(expr, UnaryOp):
        val = evaluate(expr.operand, columns)
        if expr.op == "-":
            return np.negative(val)
        if expr.op == "+":
            return val
        raise CompileError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        func = _ARITH.get(expr.op)
        if func is None:
            raise CompileError(f"unknown arithmetic operator {expr.op!r}")
        return func(evaluate(expr.left, columns), evaluate(expr.right, columns))
    if isinstance(expr, Compare):
        func = _COMPARE.get(expr.op)
        if func is None:
            raise CompileError(f"unknown comparison operator {expr.op!r}")
        return func(evaluate(expr.left, columns), evaluate(expr.right, columns))
    if isinstance(expr, BoolOp):
        left = evaluate(expr.left, columns).astype(bool)
        right = evaluate(expr.right, columns).astype(bool)
        if expr.op == "AND":
            return np.logical_and(left, right)
        if expr.op == "OR":
            return np.logical_or(left, right)
        raise CompileError(f"unknown boolean operator {expr.op!r}")
    if isinstance(expr, Not):
        return np.logical_not(evaluate(expr.operand, columns).astype(bool))
    if isinstance(expr, FuncCall):
        func = _FUNCTIONS.get(expr.name.lower())
        if func is None:
            raise CompileError(f"unknown function {expr.name!r}")
        args = [evaluate(a, columns) for a in expr.args]
        return func(*args)
    raise CompileError(f"cannot evaluate expression node {type(expr).__name__}")


def attributes_of(expr: Expr) -> set[str]:
    """Collect the attribute names referenced by ``expr``."""
    out: set[str] = set()
    _collect(expr, out)
    return out


def _collect(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, Attr):
        out.add(expr.name)
    elif isinstance(expr, (BinOp, Compare, BoolOp)):
        _collect(expr.left, out)
        _collect(expr.right, out)
    elif isinstance(expr, (UnaryOp, Not)):
        _collect(expr.operand, out)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            _collect(arg, out)
    elif isinstance(expr, Const):
        pass
    else:
        raise CompileError(f"unknown expression node {type(expr).__name__}")


def affine_in(expr: Expr, names: set[str]) -> bool:
    """Structurally check that ``expr`` is affine in the attributes ``names``.

    Affinity lets expectation estimation use linearity (``E[aX+b] =
    aE[X]+b``) instead of Monte Carlo.  The test is conservative: it
    requires that attributes in ``names`` never appear inside nonlinear
    functions, denominators, exponents, or products with other members of
    ``names``.  Returns ``True`` for expressions not referencing ``names``
    at all (degree-zero affine).
    """
    return _affine_degree(expr, names) <= 1


def _affine_degree(expr: Expr, names: set[str]) -> int:
    """Degree in ``names``: 0 (constant), 1 (affine), or 2 (nonlinear)."""
    if isinstance(expr, Const):
        return 0
    if isinstance(expr, Attr):
        return 1 if expr.name in names else 0
    if isinstance(expr, UnaryOp):
        return _affine_degree(expr.operand, names)
    if isinstance(expr, BinOp):
        left = _affine_degree(expr.left, names)
        right = _affine_degree(expr.right, names)
        if expr.op in ("+", "-"):
            return max(left, right)
        if expr.op == "*":
            return 2 if (left and right) else max(left, right)
        if expr.op == "/":
            return 2 if right else left
        if expr.op == "^":
            return 2 if (left or right) else 0
        return 2
    if isinstance(expr, FuncCall):
        degrees = [_affine_degree(a, names) for a in expr.args]
        if expr.name.lower() == "abs" and max(degrees, default=0) == 0:
            return 0
        return 2 if any(degrees) else 0
    if isinstance(expr, (Compare, BoolOp, Not)):
        inner: set[str] = set()
        _collect(expr, inner)
        return 2 if inner & names else 0
    raise CompileError(f"unknown expression node {type(expr).__name__}")


def render(expr: Expr) -> str:
    """Render an expression back to sPaQL-compatible text."""
    if isinstance(expr, Const):
        if isinstance(expr.value, str):
            return "'" + expr.value.replace("'", "''") + "'"
        return repr(expr.value) if isinstance(expr.value, float) else str(expr.value)
    if isinstance(expr, Attr):
        return expr.name
    if isinstance(expr, UnaryOp):
        return f"{expr.op}{_paren(expr.operand)}"
    if isinstance(expr, BinOp):
        return f"{_paren(expr.left)} {expr.op} {_paren(expr.right)}"
    if isinstance(expr, Compare):
        return f"{render(expr.left)} {expr.op} {render(expr.right)}"
    if isinstance(expr, BoolOp):
        return f"({render(expr.left)}) {expr.op} ({render(expr.right)})"
    if isinstance(expr, Not):
        return f"NOT ({render(expr.operand)})"
    if isinstance(expr, FuncCall):
        args = ", ".join(render(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise CompileError(f"cannot render expression node {type(expr).__name__}")


def _paren(expr: Expr) -> str:
    text = render(expr)
    # UnaryOp must parenthesize too: "-x ^ 2" parses as "-(x ^ 2)" (the
    # exponent binds tighter than unary minus) and "--x" does not parse
    # at all, so "(-x) ^ 2" / "-(-x)" are the round-trippable forms.
    if isinstance(expr, (BinOp, BoolOp, Compare, UnaryOp)):
        return f"({text})"
    return text


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression from text.

    Delegates to the sPaQL parser (the grammar's ``LinearFunction`` /
    predicate sub-language); imported lazily to avoid a circular import.
    """
    from ..spaql.parser import parse_standalone_expression

    return parse_standalone_expression(text)
