"""In-memory columnar database substrate.

The paper's prototype stores base tuples in PostgreSQL; the algorithms
themselves operate on per-attribute vectors.  This package provides the
equivalent substrate: columnar :class:`Relation` objects with a
deterministic key column (Section 2.2), a vectorized expression language
used by sPaQL ``WHERE`` predicates and ``SUM(f(R))`` constraints, a
catalog for registering relations and their stochastic models, and CSV
import/export.
"""

from .types import DType
from .relation import Relation
from .catalog import Catalog
from .expressions import (
    Expr,
    Attr,
    Const,
    BinOp,
    UnaryOp,
    Compare,
    BoolOp,
    Not,
    FuncCall,
    evaluate,
    attributes_of,
    parse_expression,
)
from .csvio import read_csv, write_csv

__all__ = [
    "DType",
    "Relation",
    "Catalog",
    "Expr",
    "Attr",
    "Const",
    "BinOp",
    "UnaryOp",
    "Compare",
    "BoolOp",
    "Not",
    "FuncCall",
    "evaluate",
    "attributes_of",
    "parse_expression",
    "read_csv",
    "write_csv",
]
