"""Columnar relations with a deterministic key column.

Section 2.2 of the paper requires a deterministic key column that is the
same in every scenario, so that "the i-th tuple" is well defined across
scenarios.  :class:`Relation` stores data column-wise (numpy arrays) and
keeps the key column's positional order as the canonical tuple order used
by scenario matrices and decision variables.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import SchemaError
from .expressions import Expr, evaluate
from .types import DType, coerce_column, infer_dtype


class Relation:
    """An immutable-by-convention, in-memory columnar relation.

    Columns are 1-D numpy arrays of equal length.  The ``key`` column must
    contain unique values; by default a fresh ``id`` column is created.
    Mutating methods return new relations (filter, project, etc.); adding
    a derived column in place is allowed via :meth:`with_column` which
    also returns a new relation, keeping shared columns zero-copy.
    """

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Iterable],
        key: str = "id",
    ) -> None:
        if not columns:
            raise SchemaError(f"relation {name!r} must have at least one column")
        self.name = name
        self._columns: dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for col_name, values in columns.items():
            arr = coerce_column(values, col_name)
            if n_rows is None:
                n_rows = len(arr)
            elif len(arr) != n_rows:
                raise SchemaError(
                    f"column {col_name!r} has {len(arr)} rows,"
                    f" expected {n_rows} in relation {name!r}"
                )
            self._columns[col_name] = arr
        assert n_rows is not None
        self._n_rows = n_rows
        if key not in self._columns:
            if key != "id":
                raise SchemaError(f"key column {key!r} not found in relation {name!r}")
            self._columns["id"] = np.arange(n_rows, dtype=np.int64)
        self.key = key
        key_values = self._columns[key]
        if len(np.unique(key_values)) != n_rows:
            raise SchemaError(f"key column {key!r} must be unique in {name!r}")

    # --- basic accessors ----------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def has_column(self, name: str) -> bool:
        """Whether a column named ``name`` exists."""
        return name in self._columns

    def column(self, name: str) -> np.ndarray:
        """The column array for ``name`` (raises SchemaError if unknown)."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no column {name!r};"
                f" available: {sorted(self._columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def dtype(self, name: str) -> DType:
        """Logical type of column ``name``."""
        return infer_dtype(self.column(name))

    def columns_mapping(self) -> Mapping[str, np.ndarray]:
        """A read-only view usable as an expression column resolver."""
        return dict(self._columns)

    def iter_rows(self) -> Iterator[dict]:
        """Iterate rows as dicts (for display and small-data tests only)."""
        names = self.column_names
        for i in range(self._n_rows):
            yield {n: self._columns[n][i] for n in names}

    def row(self, index: int) -> dict:
        """One row as a dict (small-data convenience)."""
        return {n: self._columns[n][index] for n in self.column_names}

    # --- derivation ----------------------------------------------------------

    def with_column(self, name: str, values: Iterable) -> "Relation":
        """Return a new relation with column ``name`` added or replaced."""
        cols = dict(self._columns)
        cols[name] = coerce_column(values, name)
        if len(cols[name]) != self._n_rows:
            raise SchemaError(
                f"column {name!r} has {len(cols[name])} rows, expected {self._n_rows}"
            )
        return Relation(self.name, cols, key=self.key)

    def rename(self, name: str) -> "Relation":
        """A copy of this relation under a new name (columns shared)."""
        return Relation(name, self._columns, key=self.key)

    def project(self, names: Sequence[str]) -> "Relation":
        """Keep only ``names`` (the key column is always retained)."""
        keep = list(dict.fromkeys([*names, self.key]))
        cols = {n: self.column(n) for n in keep}
        return Relation(self.name, cols, key=self.key)

    def take(self, indices: np.ndarray) -> "Relation":
        """Positional selection of rows (preserves given order)."""
        idx = np.asarray(indices)
        cols = {n: arr[idx] for n, arr in self._columns.items()}
        return Relation(self.name, cols, key=self.key)

    def filter(self, predicate: Expr) -> "Relation":
        """Rows satisfying a boolean expression over this relation."""
        mask = evaluate(predicate, self._columns)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n_rows,):
            raise SchemaError("predicate did not evaluate to one boolean per row")
        return self.take(np.nonzero(mask)[0])

    def head(self, n: int = 5) -> "Relation":
        """The first ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    # --- live data ------------------------------------------------------------

    def apply_delta(self, inserts=None, updates=None, deletes=None):
        """Apply one mutation batch; returns ``(relation, application)``.

        ``inserts`` is a sequence of row dicts appended at the end,
        ``updates`` maps key values to ``{column: new_value}``, and
        ``deletes`` is a sequence of key values.  This relation is
        untouched; the returned :class:`~repro.db.delta.DeltaApplication`
        records the dirty row positions used for delta-scoped cache
        invalidation (see ``docs/live_data.md``).
        """
        from .delta import RelationDelta, apply_delta_to_relation

        delta = (
            inserts
            if isinstance(inserts, RelationDelta)
            else RelationDelta(inserts, updates, deletes)
        )
        return apply_delta_to_relation(self, delta)

    # --- out-of-core bridge ---------------------------------------------------

    def to_disk(self, path, chunk_rows: int | None = None):
        """Write this relation as an on-disk column store and open it.

        The returned :class:`repro.scale.ColumnStore` implements this
        class's column protocol with lazy, budget-bounded chunk loads —
        the bridge into the out-of-core tier (``repro.scale``).  Rows
        are streamed in chunks, so peak memory beyond the source
        relation is one chunk.
        """
        from ..scale.columnar import DEFAULT_CHUNK_ROWS, write_store

        return write_store(
            self, path, chunk_rows=chunk_rows or DEFAULT_CHUNK_ROWS
        )

    @staticmethod
    def from_disk(path, resident_budget: int | None = None):
        """Open an on-disk column store written by :meth:`to_disk`.

        ``resident_budget`` bounds the store's chunk cache in bytes.
        """
        from ..scale.columnar import ColumnStore

        return ColumnStore(path, resident_budget=resident_budget)

    # --- convenience ----------------------------------------------------------

    def key_values(self) -> np.ndarray:
        """The key column's values in canonical tuple order."""
        return self._columns[self.key]

    def positions_for_keys(self, keys: Iterable) -> np.ndarray:
        """Map key values to row positions (raises on unknown keys)."""
        lookup = {k: i for i, k in enumerate(self._columns[self.key].tolist())}
        out = []
        for k in keys:
            if k not in lookup:
                raise SchemaError(f"unknown key value {k!r} in relation {self.name!r}")
            out.append(lookup[k])
        return np.asarray(out, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Relation({self.name!r}, rows={self._n_rows},"
            f" columns={self.column_names})"
        )

    def to_text(self, limit: int = 10) -> str:
        """Small fixed-width rendering for examples and docs."""
        from ..utils.textable import TextTable

        table = TextTable(self.column_names)
        for i, row in enumerate(self.iter_rows()):
            if i >= limit:
                table.add_row(["..."] * len(self.column_names))
                break
            table.add_row([row[n] for n in self.column_names])
        return table.render()
