"""Portfolio workload: queries Q1–Q8 of Table 3.

Template (Appendix C, Figure 9)::

    SELECT PACKAGE(*) FROM Stock_Investments SUCH THAT
    SUM(price) <= 1000 AND
    SUM(Gain) >= {v} WITH PROBABILITY >= {p}
    MAXIMIZE EXPECTED SUM(Gain)

The supporting risk constraint is a Value-at-Risk bound: lose no more
than ``−v`` dollars with probability at least ``p``.  Variants cover
high/low risk (p ∈ {0.9, 0.95}), high/low VaR (v ∈ {−10, −1}), 2-day vs
1-week horizons, and the most-volatile-30% subsets (Section 6.1).
"""

from __future__ import annotations

from ..datasets.portfolio import (
    HORIZONS_ONE_WEEK,
    HORIZONS_TWO_DAY,
    PortfolioParams,
    build_portfolio,
)
from .spec import SUPPORTED, QuerySpec

#: Paper-scale default universe size.
DEFAULT_SCALE = 7_000


def _template(v: float, p: float) -> str:
    return (
        "SELECT PACKAGE(*) FROM stock_investments SUCH THAT\n"
        "    SUM(price) <= 1000 AND\n"
        f"    SUM(Gain) >= {v} WITH PROBABILITY >= {p}\n"
        "MAXIMIZE EXPECTED SUM(Gain)"
    )


def _factory(horizons, volatile_only: bool):
    def build(n_stocks: int | None, seed: int):
        params = PortfolioParams(
            n_stocks=n_stocks if n_stocks is not None else DEFAULT_SCALE,
            horizons=horizons,
            volatile_only=volatile_only,
            seed=seed,
        )
        return build_portfolio(params)

    return build


def _spec(name, p, v, horizons, volatile, uncertainty):
    return QuerySpec(
        workload="portfolio",
        name=name,
        spaql=_template(v, p),
        dataset_factory=_factory(horizons, volatile),
        probability=p,
        bound=v,
        interaction=SUPPORTED,
        feasible=True,
        default_summaries=1,
        uncertainty=uncertainty,
    )


#: Table 3, Portfolio rows ("2-day" = horizons {1,2}, "1-week" =
#: horizons {1..7}; "volatile" = most volatile 30% of stocks).
PORTFOLIO_QUERIES = [
    _spec("Q1", 0.90, -10.0, HORIZONS_TWO_DAY, False, "GBM, 2-day, all stocks"),
    _spec("Q2", 0.95, -10.0, HORIZONS_TWO_DAY, False, "GBM, 2-day, all stocks"),
    _spec("Q3", 0.90, -10.0, HORIZONS_TWO_DAY, True, "GBM, 2-day, most volatile"),
    _spec("Q4", 0.95, -10.0, HORIZONS_TWO_DAY, True, "GBM, 2-day, most volatile"),
    _spec("Q5", 0.90, -1.0, HORIZONS_TWO_DAY, True, "GBM, 2-day, most volatile"),
    _spec("Q6", 0.95, -1.0, HORIZONS_TWO_DAY, True, "GBM, 2-day, most volatile"),
    _spec("Q7", 0.90, -10.0, HORIZONS_ONE_WEEK, True, "GBM, 1-week, most volatile"),
    _spec("Q8", 0.90, -1.0, HORIZONS_ONE_WEEK, True, "GBM, 1-week, most volatile"),
]
