"""The experimental workloads: the paper's 24 queries plus extensions.

Each query of Table 3 (Appendix C) is encoded as a :class:`QuerySpec`
bundling the sPaQL text, the dataset recipe (noise family, parameters,
subsets), the probability threshold ``p`` and bound ``v``, the
objective/constraint interaction class, and whether the query is
feasible.  ``WORKLOADS`` maps workload name → list of specs.

Beyond the paper's three workloads, ``portfolio_correlated`` exercises
the registry-built correlated VG families (Gaussian copulas, regime
mixtures, joint bootstrap) on a sector-structured stock universe.
"""

from .spec import QuerySpec, workload_names, get_workload, get_query
from .galaxy import GALAXY_QUERIES
from .portfolio import PORTFOLIO_QUERIES
from .portfolio_correlated import PORTFOLIO_CORRELATED_QUERIES
from .tpch import TPCH_QUERIES

WORKLOADS = {
    "galaxy": GALAXY_QUERIES,
    "portfolio": PORTFOLIO_QUERIES,
    "portfolio_correlated": PORTFOLIO_CORRELATED_QUERIES,
    "tpch": TPCH_QUERIES,
}

__all__ = [
    "QuerySpec",
    "WORKLOADS",
    "GALAXY_QUERIES",
    "PORTFOLIO_QUERIES",
    "PORTFOLIO_CORRELATED_QUERIES",
    "TPCH_QUERIES",
    "workload_names",
    "get_workload",
    "get_query",
]
