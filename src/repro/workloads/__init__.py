"""The paper's experimental workloads: 24 sPaQL queries over 3 datasets.

Each query of Table 3 (Appendix C) is encoded as a :class:`QuerySpec`
bundling the sPaQL text, the dataset recipe (noise family, parameters,
subsets), the probability threshold ``p`` and bound ``v``, the
objective/constraint interaction class, and whether the query is
feasible.  ``WORKLOADS`` maps workload name → list of eight specs.
"""

from .spec import QuerySpec, workload_names, get_workload, get_query
from .galaxy import GALAXY_QUERIES
from .portfolio import PORTFOLIO_QUERIES
from .tpch import TPCH_QUERIES

WORKLOADS = {
    "galaxy": GALAXY_QUERIES,
    "portfolio": PORTFOLIO_QUERIES,
    "tpch": TPCH_QUERIES,
}

__all__ = [
    "QuerySpec",
    "WORKLOADS",
    "GALAXY_QUERIES",
    "PORTFOLIO_QUERIES",
    "TPCH_QUERIES",
    "workload_names",
    "get_workload",
    "get_query",
]
