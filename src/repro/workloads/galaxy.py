"""Galaxy workload: queries Q1–Q8 of Table 3.

Template (Appendix C, Figure 9)::

    SELECT PACKAGE(*) FROM Galaxy SUCH THAT
    COUNT(*) BETWEEN 5 AND 10 AND
    SUM(Petromag_r) {⊙} {v} WITH PROBABILITY >= {p}
    MINIMIZE EXPECTED SUM(Petromag_r)

``⊙ = ≥`` gives a counteracted objective, ``⊙ = ≤`` a supported one.
Noise models: Gaussian with shared σ=2 or randomized σ*=3, and Pareto
with scale=shape=1 (σ rows) or randomized scale σ* (σ*-rows).  The v
values follow Table 3; the synthetic magnitude scale was chosen so they
remain meaningfully selective (see EXPERIMENTS.md).
"""

from __future__ import annotations

from ..datasets.galaxy import GalaxyParams, NOISE_GAUSSIAN, NOISE_PARETO, build_galaxy
from .spec import COUNTERACTED, SUPPORTED, QuerySpec

#: Paper-scale default table size (smallest Galaxy extract).
DEFAULT_SCALE = 55_000


def _template(op: str, v: float, p: float) -> str:
    # REPEAT 0: Section 6.1 asks for "a set of five to ten sky regions" —
    # each region may be chosen at most once (choosing one region twice
    # would duplicate a perfectly correlated reading, not add coverage).
    return (
        "SELECT PACKAGE(*) FROM galaxy REPEAT 0 SUCH THAT\n"
        "    COUNT(*) BETWEEN 5 AND 10 AND\n"
        f"    SUM(Petromag_r) {op} {v} WITH PROBABILITY >= {p}\n"
        "MINIMIZE EXPECTED SUM(Petromag_r)"
    )


def _factory(noise: str, scale: float, randomized: bool):
    def build(n_rows: int | None, seed: int):
        params = GalaxyParams(
            n_rows=n_rows if n_rows is not None else DEFAULT_SCALE,
            noise=noise,
            scale=scale,
            pareto_shape=1.0,
            randomized_scale=randomized,
            seed=seed,
        )
        return build_galaxy(params)

    return build


def _spec(name, noise, scale, randomized, interaction, v, uncertainty):
    op = ">=" if interaction == COUNTERACTED else "<="
    return QuerySpec(
        workload="galaxy",
        name=name,
        spaql=_template(op, v, 0.9),
        dataset_factory=_factory(noise, scale, randomized),
        probability=0.9,
        bound=v,
        interaction=interaction,
        feasible=True,
        default_summaries=1,
        uncertainty=uncertainty,
    )


#: Table 3, Galaxy rows.  All queries use p = 0.9 and
#: MINIMIZE EXPECTED SUM(Petromag_r).
GALAXY_QUERIES = [
    _spec("Q1", NOISE_GAUSSIAN, 2.0, False, COUNTERACTED, 40.0, "Normal(sigma=2)"),
    _spec("Q2", NOISE_GAUSSIAN, 3.0, True, COUNTERACTED, 43.0, "Normal(sigma*=3)"),
    _spec("Q3", NOISE_GAUSSIAN, 2.0, False, SUPPORTED, 50.0, "Normal(sigma=2)"),
    _spec("Q4", NOISE_GAUSSIAN, 3.0, True, SUPPORTED, 52.0, "Normal(sigma*=3)"),
    _spec("Q5", NOISE_PARETO, 1.0, False, COUNTERACTED, 65.0, "Pareto(scale=shape=1)"),
    _spec("Q6", NOISE_PARETO, 1.0, True, COUNTERACTED, 65.0, "Pareto(scale*=1, shape=1)"),
    _spec("Q7", NOISE_PARETO, 1.0, False, SUPPORTED, 109.0, "Pareto(scale=shape=1)"),
    _spec("Q8", NOISE_PARETO, 3.0, True, SUPPORTED, 90.0, "Pareto(scale*=3, shape=1)"),
]
