"""TPC-H workload: queries Q1–Q8 of Table 3.

Template (Appendix C, Figure 9)::

    SELECT PACKAGE(*) FROM Tpch_{D} SUCH THAT
    COUNT(*) BETWEEN 1 AND 10 AND
    SUM(Quantity) <= {v} WITH PROBABILITY >= {p}
    MAXIMIZE PROBABILITY OF SUM(Revenue) >= 1000

The objective is *independent* of the constraint (Definition 2): the
constraint bounds quantity while the objective is a probability over
revenue.  The eight variants sweep four integration-noise families over
D ∈ {3, 10} sources; Q8 is the workload's one infeasible query (its
bulk-order extract has minimum quantity 8 > v = 7, so no nonempty
package can reach probability 0.95 — see ``datasets.tpch``).
"""

from __future__ import annotations

from ..datasets.tpch import TpchParams, build_tpch
from .spec import INDEPENDENT, QuerySpec

#: Paper-scale default table size.
DEFAULT_SCALE = 117_600


def _template(v: float, p: float) -> str:
    # REPEAT 0: Section 6.1 asks for "a set of between one and ten
    # transactions" — each transaction appears at most once.
    return (
        "SELECT PACKAGE(*) FROM tpch REPEAT 0 SUCH THAT\n"
        "    COUNT(*) BETWEEN 1 AND 10 AND\n"
        f"    SUM(Quantity) <= {v} WITH PROBABILITY >= {p}\n"
        "MAXIMIZE PROBABILITY OF SUM(Revenue) >= 1000"
    )


def _factory(family: str, family_param, n_sources: int, min_quantity: int = 1):
    def build(n_rows: int | None, seed: int):
        params = TpchParams(
            n_rows=n_rows if n_rows is not None else DEFAULT_SCALE,
            n_sources=n_sources,
            family=family,
            family_param=family_param,
            min_quantity=min_quantity,
            seed=seed,
        )
        return build_tpch(params)

    return build


def _spec(name, family, family_param, n_sources, p, v, feasible=True,
          min_quantity=1, uncertainty=""):
    return QuerySpec(
        workload="tpch",
        name=name,
        spaql=_template(v, p),
        dataset_factory=_factory(family, family_param, n_sources, min_quantity),
        probability=p,
        bound=v,
        interaction=INDEPENDENT,
        feasible=feasible,
        default_summaries=2,
        uncertainty=uncertainty or f"{family}, D={n_sources}",
    )


#: Table 3, TPC-H rows.
TPCH_QUERIES = [
    _spec("Q1", "exponential", 1.0, 3, 0.90, 15.0, uncertainty="Exponential(lambda=1), D=3"),
    _spec("Q2", "exponential", 1.0, 10, 0.95, 7.0, uncertainty="Exponential(lambda=1), D=10"),
    _spec("Q3", "poisson", 2.0, 3, 0.90, 15.0, uncertainty="Poisson(lambda=2), D=3"),
    _spec("Q4", "poisson", 1.0, 10, 0.90, 10.0, uncertainty="Poisson(lambda=1), D=10"),
    _spec("Q5", "uniform", None, 3, 0.90, 15.0, uncertainty="Uniform(0,1), D=3"),
    _spec("Q6", "uniform", None, 10, 0.95, 7.0, uncertainty="Uniform(0,1), D=10"),
    _spec("Q7", "student-t", 2.0, 3, 0.90, 29.0, uncertainty="Student's t(nu=2), D=3"),
    _spec(
        "Q8",
        "student-t",
        2.0,
        10,
        0.95,
        7.0,
        feasible=False,
        min_quantity=8,
        uncertainty="Student's t(nu=2), D=10",
    ),
]
