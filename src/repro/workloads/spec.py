"""Query specifications for the experimental workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import EvaluationError

#: Objective/constraint interaction labels (Definition 2, Table 3).
SUPPORTED = "supported"
COUNTERACTED = "counteracted"
INDEPENDENT = "independent"


@dataclass(frozen=True)
class QuerySpec:
    """One workload query: sPaQL text plus its dataset recipe.

    ``dataset_factory(scale, seed)`` builds the (relation, model) pair;
    ``scale`` is workload-specific (rows for Galaxy/TPC-H, stocks for
    Portfolio) and ``None`` selects the paper's full size.
    ``default_summaries`` is the per-workload ``Z`` used in Figure 4
    (1 for Galaxy and Portfolio, 2 for TPC-H).  ``vg`` documents the
    VG-registry expression behind the spec's stochastic model (empty
    for the paper's original workloads, whose models predate the
    registry); see :meth:`build_dataset` for overriding it.
    """

    workload: str
    name: str
    spaql: str
    dataset_factory: Callable
    probability: float
    bound: float
    interaction: str
    feasible: bool = True
    default_summaries: int = 1
    uncertainty: str = ""
    notes: str = ""
    #: Registry expression (``"kind:param=value,..."``) describing the
    #: spec's headline stochastic attribute, when registry-built.
    vg: str = ""

    @property
    def qualified_name(self) -> str:
        """``workload/query`` identifier, e.g. ``portfolio/Q3``."""
        return f"{self.workload}/{self.name}"

    def build_dataset(
        self, scale: int | None = None, seed: int = 42, vg_overrides=()
    ):
        """Materialize the dataset for this query.

        ``vg_overrides`` — ``"Attr=kind:param=value,..."`` registry
        specs (see :func:`repro.mcdb.apply_vg_overrides`) — replace or
        add stochastic attributes on top of the factory's model, so any
        workload can be re-run under a different uncertainty model
        (e.g. swapping the portfolio's GBM for a Gaussian copula)
        without a new dataset recipe.
        """
        relation, model = self.dataset_factory(scale, seed)
        if vg_overrides:
            from ..mcdb import apply_vg_overrides

            model = apply_vg_overrides(relation, model, vg_overrides)
        return relation, model


def workload_names() -> list[str]:
    """Sorted names of the available workloads."""
    from . import WORKLOADS

    return sorted(WORKLOADS)


def get_workload(name: str) -> list[QuerySpec]:
    """The query specs of one workload (eight for the paper's three)."""
    from . import WORKLOADS

    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        raise EvaluationError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}"
        ) from None


def get_query(workload: str, query: str) -> QuerySpec:
    """Look up one query spec by workload and name."""
    for spec in get_workload(workload):
        if spec.name.lower() == query.lower():
            return spec
    raise EvaluationError(f"unknown query {query!r} in workload {workload!r}")
