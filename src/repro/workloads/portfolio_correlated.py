"""Correlated-portfolio workload: sector co-movement under one VaR query.

The paper's Portfolio workload correlates the horizons of one stock but
keeps *stocks* independent, so diversification is free and the optimal
package concentrates in whatever trades look best individually.  This
workload holds the query template fixed —

    SELECT PACKAGE(*) FROM stock_investments SUCH THAT
        SUM(price) <= 1000 AND
        SUM(Gain) >= {v} WITH PROBABILITY >= {p}
    MAXIMIZE EXPECTED SUM(Gain)

— and varies only the *uncertainty model* through the VG registry, from
independent gains to sector copulas, an estimated-correlation copula, a
calm/crisis regime mixture, and a joint residual bootstrap.  Because
every model shares the same per-stock means, any change in the optimal
package is attributable to correlation alone: under sector co-movement
the loss tail of a concentrated package fattens, the VaR constraint
tightens, and the optimizer is forced to diversify across sectors or
hold less (see ``examples/correlated_portfolio.py``).

Scale is the number of stocks (one 1-day trade per stock); ``None``
selects the default 500-stock universe.
"""

from __future__ import annotations

from ..datasets.portfolio import (
    CorrelatedPortfolioParams,
    build_correlated_portfolio,
)
from .spec import SUPPORTED, QuerySpec

#: Default universe size (stocks = rows, one horizon each).
DEFAULT_SCALE = 500

#: Default within-sector equicorrelation for the correlated variants.
DEFAULT_RHO = 0.6


def _template(v: float, p: float) -> str:
    """The fixed VaR query with bound ``v`` and probability ``p``."""
    return (
        "SELECT PACKAGE(*) FROM stock_investments SUCH THAT\n"
        "    SUM(price) <= 1000 AND\n"
        f"    SUM(Gain) >= {v} WITH PROBABILITY >= {p}\n"
        "MAXIMIZE EXPECTED SUM(Gain)"
    )


def _factory(model: str, rho: float):
    """Dataset recipe: ``scale`` stocks under one uncertainty model."""

    def build(n_stocks: int | None, seed: int):
        params = CorrelatedPortfolioParams(
            n_stocks=n_stocks if n_stocks is not None else DEFAULT_SCALE,
            rho=rho,
            model=model,
            seed=seed,
        )
        return build_correlated_portfolio(params)

    return build


def _spec(name: str, model: str, rho: float, p: float, v: float, vg: str):
    return QuerySpec(
        workload="portfolio_correlated",
        name=name,
        spaql=_template(v, p),
        dataset_factory=_factory(model, rho),
        probability=p,
        bound=v,
        interaction=SUPPORTED,
        feasible=True,
        default_summaries=1,
        uncertainty=f"{model}, sector rho={rho}",
        vg=vg,
    )


#: Same query, five uncertainty models (plus a high-correlation variant):
#: the package's sector concentration is the dependent variable.
PORTFOLIO_CORRELATED_QUERIES = [
    _spec(
        "Q1", "independent", 0.0, 0.90, -10.0,
        "gaussian_copula:base_column=exp_gain,scale=gain_sd,rho=0.0,"
        "group_column=sector",
    ),
    _spec(
        "Q2", "copula", DEFAULT_RHO, 0.90, -10.0,
        "gaussian_copula:base_column=exp_gain,scale=gain_sd,rho=0.6,"
        "group_column=sector",
    ),
    _spec(
        "Q3", "copula", 0.9, 0.90, -10.0,
        "gaussian_copula:base_column=exp_gain,scale=gain_sd,rho=0.9,"
        "group_column=sector",
    ),
    _spec(
        "Q4", "copula-historical", DEFAULT_RHO, 0.90, -10.0,
        "gaussian_copula:base_column=exp_gain,scale=gain_sd,"
        "history_columns=h0+h1+...,group_column=sector",
    ),
    _spec(
        "Q5", "regime", DEFAULT_RHO, 0.90, -10.0,
        "mixture of calm/crisis gaussian_copula components (API-level)",
    ),
    _spec(
        "Q6", "bootstrap", DEFAULT_RHO, 0.90, -10.0,
        "empirical_bootstrap:base_column=exp_gain,"
        "observation_columns=h0+h1+...,joint=true",
    ),
]
