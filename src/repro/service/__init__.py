"""repro.service — concurrent package-query serving layer.

Three tiers (see each module's docstring):

* :class:`ScenarioStore` — shared, content-keyed, budget-bounded cache
  of realized scenario matrices with LRU spill-to-memmap and
  cross-process ``handoff()``/``adopt()`` descriptors;
* :class:`QueryBroker` — engine-session pool with admission control and
  in-flight query deduplication, dispatching onto a thread pool or a
  :class:`SolveFarm`;
* :class:`SolveFarm` — persistent worker processes (warm engines,
  zero-copy memmap scenario handoff, graceful recycling, crash
  recovery) behind the broker's ``"process"`` backend;
* :class:`SPQService` — stdlib JSON-over-HTTP front-end
  (``POST /query``, ``GET /status``, ``GET /metrics``), exposed as the
  ``repro serve`` CLI subcommand.

Per-query QoS (``deadline_ms`` admission, earliest-deadline-first
scheduling, anytime truncation) lives in :mod:`repro.service.qos`; see
``docs/qos.md`` for the end-to-end contract.
"""

from .broker import BrokerSaturatedError, QueryBroker
from .farm import SolveFarm, WorkerCrashError
from .http import SPQService
from .qos import DeadlineExpiredError, EDFQueue, TaskDeadline
from .store import (
    ScenarioStore,
    StoreStats,
    model_fingerprint,
    relation_fingerprint,
    store_key,
)

__all__ = [
    "BrokerSaturatedError",
    "DeadlineExpiredError",
    "EDFQueue",
    "QueryBroker",
    "SPQService",
    "ScenarioStore",
    "SolveFarm",
    "StoreStats",
    "TaskDeadline",
    "WorkerCrashError",
    "model_fingerprint",
    "relation_fingerprint",
    "store_key",
]
