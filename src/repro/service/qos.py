"""Per-query QoS primitives: deadlines and earliest-deadline-first order.

The serving tier admits each query with an optional ``deadline_ms``
budget.  Three mechanisms turn that budget into latency SLOs:

* **admission control** — work that is already hopeless (deadline
  expired while queued, or non-positive on arrival) is rejected with
  :class:`DeadlineExpiredError` instead of wasting a solver slot;
* **EDF scheduling** — the solve farm's pending queue is ordered by
  absolute expiry time (:class:`EDFQueue`), so tight-deadline queries
  overtake loose ones while deadline-less work keeps FIFO order among
  itself at the back;
* **anytime solving** — whatever budget remains at dispatch time is
  forwarded to the evaluator as ``SPQConfig.deadline_ms``, where expiry
  returns the best incumbent plus a relative optimality gap (see
  :mod:`repro.core.anytime`) rather than an error.

Both classes take an injectable ``clock`` so expiry races are testable
deterministically (no sleeps).
"""

from __future__ import annotations

import time

from ..errors import SPQError


class DeadlineExpiredError(SPQError):
    """The query's latency budget expired before solving could start.

    Raised by broker admission (budget non-positive or expired while
    pending) and by the farm when a queued task's deadline passes before
    a worker picks it up.  Maps to HTTP 504 in the serving layer.
    """


class TaskDeadline:
    """Absolute expiry time for one query, in the scheduler's clock.

    ``deadline_ms`` is the relative budget granted at admission; the
    instance pins it to an absolute instant so queue time counts against
    the budget (a query admitted with 50ms that waits 60ms is dead).
    """

    __slots__ = ("deadline_ms", "_clock", "expires_at")

    def __init__(self, deadline_ms: float, clock=None):
        self.deadline_ms = float(deadline_ms)
        self._clock = time.monotonic if clock is None else clock
        self.expires_at = self._clock() + self.deadline_ms / 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds of budget left (negative once expired)."""
        return (self.expires_at - self._clock()) * 1000.0

    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskDeadline({self.deadline_ms:.0f}ms,"
            f" remaining={self.remaining_ms():.0f}ms)"
        )


class EDFQueue:
    """Earliest-deadline-first queue with a FIFO tail for undeadlined work.

    Entries are ranked by ``(expires_at, seq)``; items without a deadline
    rank as ``+inf`` expiry, so among themselves they keep submission
    order behind every deadlined item.  ``push(..., front=True)``
    re-queues a crash-retried task *in deadline order*: it keeps the
    task's own expiry rank and only takes a sequence number below the
    current minimum, so a retried deadlined task goes ahead of
    equal-deadline entries and a retried deadline-less task goes to the
    head of the FIFO tail — never ahead of tighter-deadline work (that
    would violate EDF; an undeadlined retry must not starve an urgent
    deadlined query).

    A plain list with linear min-scans: the pending queue is bounded by
    the broker's ``max_pending`` (tens, not millions), where O(n) scans
    beat heap bookkeeping — and ``remove()`` of an arbitrary task (the
    crash path) stays trivially correct.
    """

    def __init__(self):
        self._entries: list = []  # (expires_at, seq, item)
        self._seq = 0
        self._front_seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(self, item, deadline: "TaskDeadline | None" = None,
             front: bool = False) -> None:
        """Enqueue ``item``; ``front`` jumps the line at equal expiry only."""
        expires = float("inf") if deadline is None else deadline.expires_at
        if front:
            # Retry discipline: keep the task's own expiry rank.  The
            # below-minimum sequence number puts it ahead of every entry
            # with an *equal* deadline (and, for deadline-less retries,
            # at the head of the +inf FIFO tail) — but an earlier
            # deadline still wins, preserving EDF.
            self._front_seq -= 1
            seq = self._front_seq
        else:
            self._seq += 1
            seq = self._seq
        self._entries.append((expires, seq, item))

    def pop(self):
        """Remove and return the earliest-deadline item (FIFO on ties)."""
        if not self._entries:
            raise IndexError("pop from empty EDFQueue")
        index = min(
            range(len(self._entries)),
            key=lambda i: self._entries[i][:2],
        )
        return self._entries.pop(index)[2]

    def remove(self, item) -> None:
        """Remove a specific queued item (raises ValueError if absent)."""
        for index, entry in enumerate(self._entries):
            if entry[2] is item:
                del self._entries[index]
                return
        raise ValueError("item not in EDFQueue")

    def clear(self) -> list:
        """Drop every entry; returns the items for settlement."""
        items = [entry[2] for entry in self._entries]
        self._entries.clear()
        return items

    def items(self) -> list:
        """Snapshot of queued items in rank order (tests/status)."""
        return [
            entry[2]
            for entry in sorted(self._entries, key=lambda e: e[:2])
        ]
