"""Concurrent package-query broker over a pool of engine sessions.

:class:`QueryBroker` is the serving layer's middle tier: it owns a
dispatch backend for concurrent ``execute()`` calls over one catalog —
a pool of :class:`~repro.core.engine.SPQEngine` sessions sharing a
:class:`~repro.service.store.ScenarioStore` (thread backend), or a
:class:`~repro.service.farm.SolveFarm` of worker processes with
private stores (process backend, where ``broker.store`` is ``None``
unless the caller supplied one).  Three properties make it a serving
layer rather than a loop around the engine:

* **Shared realizations** — scenario generation routes through a store
  (the broker's shared one, or each farm worker's private one fed by
  memmap handoffs), so queries over the same tables and stochastic
  attributes reuse realized matrices (each engine's own evaluation may
  further fan generation across the ``repro.parallel`` executor via
  ``config.n_workers``).
* **Admission control** — at most ``pool_size`` queries run at once and
  at most ``max_pending`` are queued or running; beyond that,
  :class:`BrokerSaturatedError` is raised immediately (the HTTP layer
  maps it to 503) instead of building an unbounded backlog.
* **In-flight deduplication** — a query identical to one currently
  running (same text, method, and overrides) attaches to the running
  evaluation's future instead of being dispatched again.

Two dispatch backends (``config.service_backend`` / ``backend=``):

* ``"thread"`` — engine sessions on a :class:`ThreadPoolExecutor`.
  Zero-copy store sharing within the process, but concurrent MILP
  solves contend on the GIL.
* ``"process"`` — a :class:`~repro.service.farm.SolveFarm` of
  persistent worker processes, each hosting one warm engine; solves
  run truly in parallel, scenario matrices travel between workers as
  read-only memmap handoffs, and crashed workers are replaced with
  their in-flight request retried once.  Workers host *private* stores
  (no broker-side store exists); :meth:`QueryBroker.store_stats`
  reports their farm-wide aggregate.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from ..config import BACKEND_PROCESS, BACKEND_THREAD, DEFAULT_CONFIG, SPQConfig
from ..core.engine import METHOD_SUMMARY_SEARCH, SPQEngine
from ..db.catalog import Catalog
from ..errors import EvaluationError, SPQError
from ..obs import (
    SlowQueryLog,
    TraceRing,
    TraceSession,
    activate,
    merge_histogram_snapshots,
    new_span_id,
    new_trace_id,
    resource_counters,
    stage_histograms,
)
from .farm import SolveFarm
from .qos import DeadlineExpiredError, TaskDeadline
from .store import ScenarioStore

#: Query-text prefix kept in slow-query log entries and trace metadata.
_QUERY_SNIPPET_CHARS = 200


class BrokerSaturatedError(SPQError):
    """Raised when the broker's pending-query ceiling is reached."""


class QueryBroker:
    """Admission-controlled, deduplicating dispatcher for package queries."""

    def __init__(
        self,
        catalog: Catalog,
        config: SPQConfig | None = None,
        store: ScenarioStore | None = None,
        pool_size: int | None = None,
        max_pending: int | None = None,
        backend: str | None = None,
        recycle_after: int | None = None,
    ):
        self.catalog = catalog
        self.config = config if config is not None else DEFAULT_CONFIG
        self.pool_size = (
            pool_size if pool_size is not None else self.config.service_pool_size
        )
        if self.pool_size < 1:
            raise SPQError("pool_size must be >= 1")
        self.backend = (
            backend if backend is not None else self.config.service_backend
        )
        if self.backend not in (BACKEND_THREAD, BACKEND_PROCESS):
            raise SPQError(
                f"unknown service backend {self.backend!r}; expected"
                f" {BACKEND_THREAD!r} or {BACKEND_PROCESS!r}"
            )
        self.recycle_after = (
            recycle_after
            if recycle_after is not None
            else self.config.worker_recycle_after
        )
        self.max_pending = (
            max_pending
            if max_pending is not None
            else (self.config.service_max_pending or 4 * self.pool_size)
        )
        if self.max_pending < self.pool_size:
            self.max_pending = self.pool_size
        # The broker-side store only exists on the thread backend: farm
        # workers host private stores (aggregated via the farm), and a
        # parent-side store would sit unused, reporting permanently-zero
        # stats to operators.  A caller-supplied store is rejected there
        # rather than silently ignored — its budget/spill settings would
        # not be enforced (workers configure theirs from
        # ``scenario_store_budget`` / ``scenario_store_spill``).
        if store is not None and self.backend == BACKEND_PROCESS:
            raise SPQError(
                "the process backend does not take a shared store: farm"
                " workers host private scenario stores, configured via"
                " config.scenario_store_budget / scenario_store_spill"
            )
        self._owns_store = store is None and self.backend == BACKEND_THREAD
        if store is not None:
            self.store = store
        elif self.backend == BACKEND_THREAD:
            self.store = ScenarioStore(
                budget_bytes=self.config.scenario_store_budget,
                spill=self.config.scenario_store_spill,
            )
        else:
            self.store = None
        self._farm: SolveFarm | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._sessions: "queue.SimpleQueue[SPQEngine]" = queue.SimpleQueue()
        if self.backend == BACKEND_PROCESS:
            self._farm = SolveFarm(
                catalog,
                self.config,
                n_workers=self.pool_size,
                recycle_after=self.recycle_after,
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.pool_size, thread_name_prefix="spq-broker"
            )
            # Engine sessions are checked out per evaluation, so one
            # session never serves two queries at once.
            for _ in range(self.pool_size):
                self._sessions.put(
                    SPQEngine(
                        catalog=catalog, config=self.config, store=self.store
                    )
                )
        self._lock = threading.Lock()
        self._inflight: dict[tuple, Future] = {}
        self._pending = 0
        self._closed = False
        self.started_at = time.time()
        # Lifetime counters (read under the lock; surfaced on /metrics).
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._deduplicated = 0
        self._rejected = 0
        # QoS counters: deadline verdicts of finished queries, admission
        # rejections of dead-on-arrival budgets, queue-expired futures,
        # and the last observed optimality gap (0.0 = exact).
        self._deadline_met = 0
        self._deadline_missed = 0
        self._deadline_rejected = 0
        self._deadline_expired = 0
        self._last_gap = 0.0
        #: Bounded store of recent traces behind ``GET /trace/<id>``
        #: (None when tracing is disabled — the whole trace path is then
        #: a no-op check per request).
        self.trace_ring: TraceRing | None = (
            TraceRing(self.config.trace_ring_size)
            if self.config.trace_enabled
            else None
        )
        self._slow_log: SlowQueryLog | None = (
            SlowQueryLog(
                self.config.slow_query_log,
                self.config.slow_query_threshold_s,
                max_bytes=self.config.slow_query_log_max_bytes,
            )
            if self.config.slow_query_log
            else None
        )
        #: Per-submission trace state, keyed by the evaluation future
        #: (dedup-attached callers share both future and trace).
        self._trace_state: dict[Future, dict] = {}
        #: Lifetime delta counter (mirrors repro_delta_applied_total).
        self._deltas_applied = 0
        if self._farm is not None and self.trace_ring is not None:
            self._farm.span_sink = self.trace_ring.add

    # --- submission ---------------------------------------------------------

    def _dedup_key(self, query, method: str, overrides: dict) -> tuple | None:
        """Hashable identity of a request, or None when not dedupable.

        The catalog version is part of the identity: a query submitted
        after :meth:`apply_update` must never attach to a pre-delta
        in-flight evaluation — that would serve a stale answer under a
        fresh submission.
        """
        if not isinstance(query, str):
            return None  # compiled objects dedup by identity only
        try:
            key = (
                query.strip(),
                method,
                tuple(sorted(overrides.items())),
                self.catalog.version,
            )
            hash(key)  # unhashable override values -> not dedupable
            return key
        except TypeError:
            return None

    def submit(
        self,
        query: str,
        method: str = METHOD_SUMMARY_SEARCH,
        **overrides,
    ) -> Future:
        """Dispatch ``query`` onto the pool; returns a Future of
        :class:`~repro.core.package.PackageResult`.

        Raises :class:`BrokerSaturatedError` when ``max_pending`` queries
        are already queued or running, and :class:`SPQError` after
        :meth:`close`.  An identical in-flight request (same text,
        method, overrides) shares the running evaluation's future.

        A ``deadline_ms`` override is QoS admission: a non-positive
        budget is rejected immediately with
        :class:`~repro.service.qos.DeadlineExpiredError`, otherwise the
        budget is pinned at admission (queue time counts against it),
        orders the farm's pending queue earliest-deadline-first, and the
        remainder is forwarded to the evaluator's anytime path.
        """
        deadline = self._admit_deadline(overrides)
        key = self._dedup_key(query, method, overrides)
        with self._lock:
            if self._closed:
                raise SPQError("broker is closed")
            if key is not None:
                inflight = self._inflight.get(key)
                if inflight is not None:
                    self._deduplicated += 1
                    return inflight
            if self._pending >= self.max_pending:
                self._rejected += 1
                raise BrokerSaturatedError(
                    f"broker saturated: {self._pending} queries pending"
                    f" (max {self.max_pending})"
                )
            self._pending += 1
            self._submitted += 1
            state = self._open_trace_locked(query, method, overrides)
            trace = (
                (state["trace_id"], state["root_id"], state["profile"])
                if state is not None
                else None
            )
            try:
                if self._farm is not None:
                    future = self._farm.submit(
                        query, method, overrides, trace, deadline
                    )
                else:
                    future = self._pool.submit(
                        self._run, query, method, overrides, trace, deadline
                    )
            except BaseException:
                # No future, no done-callback: give the admission slot
                # back or the broker saturates permanently.
                self._pending -= 1
                self._submitted -= 1
                if state is not None and self.trace_ring is not None:
                    self.trace_ring.discard(state["trace_id"])
                raise
            if state is not None:
                self._trace_state[future] = state
                future.trace_id = state["trace_id"]
            if key is not None:
                self._inflight[key] = future
        # Attached outside the lock: a future that failed fast runs its
        # callbacks synchronously on this thread, and _retire needs the
        # (non-reentrant) lock.
        future.add_done_callback(lambda f, key=key: self._retire(key, f))
        return future

    def _admit_deadline(self, overrides: dict) -> TaskDeadline | None:
        """Validate ``deadline_ms`` and pin it to an absolute instant.

        Dead-on-arrival budgets (``<= 0``) are refused here, before a
        pool slot is taken — solving work that cannot possibly meet its
        SLO only steals capacity from work that still can.
        """
        deadline_ms = overrides.get("deadline_ms")
        if deadline_ms is None:
            return None
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise EvaluationError("deadline_ms must be a number or None")
        if float(deadline_ms) <= 0:
            with self._lock:
                self._deadline_rejected += 1
            raise DeadlineExpiredError(
                f"deadline_ms={deadline_ms} is already expired; the"
                " request was rejected at admission"
            )
        return TaskDeadline(float(deadline_ms))

    def _open_trace_locked(self, query, method: str, overrides: dict) -> dict | None:
        """Allocate ids + ring entry for one traced submission, or None.

        The check is deliberately cheap when observability is off — one
        attribute test per request, no allocations.
        """
        if self.trace_ring is None and self._slow_log is None:
            return None
        if not overrides.get("trace_enabled", True):
            return None
        snippet = (
            query[:_QUERY_SNIPPET_CHARS].strip()
            if isinstance(query, str)
            else type(query).__name__
        )
        state = {
            "trace_id": new_trace_id(),
            "root_id": new_span_id(),
            "profile": bool(
                overrides.get("profile_stages", self.config.profile_stages)
            ),
            "start_epoch": time.time(),
            "t0": time.perf_counter(),
            "query": snippet,
            "method": method,
        }
        if self.trace_ring is not None:
            self.trace_ring.open(
                state["trace_id"],
                query=snippet,
                method=method,
                backend=self.backend,
            )
        return state

    def execute(
        self,
        query: str,
        method: str = METHOD_SUMMARY_SEARCH,
        **overrides,
    ):
        """Blocking :meth:`submit` — returns the PackageResult."""
        return self.submit(query, method=method, **overrides).result()

    # --- live data ----------------------------------------------------------

    def apply_update(self, table: str, delta) -> dict:
        """Apply a relation delta to ``table`` through the serving layer.

        ``delta`` is a :class:`~repro.db.delta.RelationDelta` or its
        JSON payload (the ``POST /update`` body).  The catalog applies
        it under its own mutation lock (catalog version bumps, the
        fingerprint lineage is extended), stale scenario matrices are
        pruned from the shared store (thread backend) or the delta is
        broadcast to farm workers, who adopt it before their next task
        (process backend).  In-flight queries are not interrupted: they
        finish against their pre-delta snapshot and report the catalog
        version they solved under in ``result.meta``.

        Returns the JSON-ready summary from
        :meth:`~repro.db.catalog.Catalog.apply_delta`.
        """
        from ..db.delta import RelationDelta, lineage
        from ..scale.metrics import scale_metrics

        if not isinstance(delta, RelationDelta):
            delta = RelationDelta.from_payload(delta)
        with self._lock:
            if self._closed:
                raise SPQError("broker is closed")
        t0 = time.perf_counter()
        start_epoch = time.time()
        summary = self.catalog.apply_delta(table, delta)
        scale_metrics.record_delta_applied(summary["dirty_rows"])
        stale = lineage.superseded()
        if self.store is not None:
            summary["store_entries_pruned"] = self.store.prune_fingerprints(
                stale
            )
        if self._farm is not None:
            record = lineage.parent_record(summary["fingerprint"])
            self._farm.broadcast_delta(table, delta.to_payload(), record)
        with self._lock:
            self._deltas_applied += 1
        self._trace_delta(summary, start_epoch, time.perf_counter() - t0)
        return summary

    def _trace_delta(self, summary: dict, start_epoch: float, wall: float) -> None:
        """Record one applied delta as a trace-ring entry and histogram."""
        stage_histograms.observe("delta", wall)
        if self.trace_ring is None:
            return
        trace_id = new_trace_id()
        self.trace_ring.open(
            trace_id,
            query=f"UPDATE {summary['table']}",
            method="delta",
            backend=self.backend,
        )
        self.trace_ring.finish(
            trace_id,
            {
                "trace_id": trace_id,
                "span_id": new_span_id(),
                "parent_id": None,
                "name": "delta",
                "start": start_epoch,
                "wall_s": wall,
                "cpu_s": 0.0,
                "attrs": {
                    "table": summary["table"],
                    "catalog_version": summary["catalog_version"],
                    "dirty_rows": summary["dirty_rows"],
                },
            },
        )

    def _run(self, query, method: str, overrides: dict, trace=None, deadline=None):
        if deadline is not None:
            # Same discipline as the farm's dispatch: queue time counts
            # against the budget, and only the remainder reaches the
            # evaluator's anytime path.
            if deadline.expired():
                raise DeadlineExpiredError(
                    f"deadline ({deadline.deadline_ms:.0f}ms) expired"
                    " while the request was queued"
                )
            overrides = dict(overrides)
            overrides["deadline_ms"] = max(deadline.remaining_ms(), 1.0)
        engine = self._sessions.get()
        # Pinned before the solve: a delta landing mid-evaluation must
        # not relabel a pre-delta answer as post-delta (the soak test's
        # staleness check relies on this being the compile-time version).
        version = self.catalog.version
        try:
            if trace is None:
                return self._stamp_version(
                    engine.execute(query, method=method, **overrides), version
                )
            # Pool threads do not inherit the submitter's contextvars:
            # the session is activated here, parented to the broker's
            # root span so ingested spans nest correctly.
            session = TraceSession(trace[0], profile=bool(trace[2]))
            try:
                with activate(session, parent_id=trace[1]):
                    return self._stamp_version(
                        engine.execute(query, method=method, **overrides),
                        version,
                    )
            finally:
                if self.trace_ring is not None:
                    # payload() mirrors TraceRing.add's signature: spans,
                    # dropped count, convergence events, and per-query
                    # resource charges land in one call.
                    self.trace_ring.add(*session.payload())
        finally:
            self._sessions.put(engine)

    @staticmethod
    def _stamp_version(result, version: int):
        """Attach the catalog version an evaluation ran under."""
        meta = getattr(result, "meta", None)
        if isinstance(meta, dict):
            meta.setdefault("catalog_version", version)
        return result

    def _retire(self, key: tuple | None, future: Future) -> None:
        with self._lock:
            self._pending -= 1
            if future.cancelled() or future.exception() is not None:
                self._failed += 1
                if not future.cancelled() and isinstance(
                    future.exception(), DeadlineExpiredError
                ):
                    self._deadline_expired += 1
            else:
                self._completed += 1
                anytime = getattr(future.result(), "anytime", None)
                if anytime is not None:
                    if anytime.deadline_met:
                        self._deadline_met += 1
                    else:
                        self._deadline_missed += 1
                    if anytime.gap is not None:
                        self._last_gap = float(anytime.gap)
            if key is not None and self._inflight.get(key) is future:
                del self._inflight[key]
            state = self._trace_state.pop(future, None)
        if state is not None:
            try:
                self._finish_trace(state, future)
            except Exception:  # observability must never fail a query
                pass

    def _finish_trace(self, state: dict, future: Future) -> None:
        """Close one trace: root span, histogram, ring, slow-query log."""
        wall = time.perf_counter() - state["t0"]
        if future.cancelled():
            error = "cancelled"
        else:
            exception = future.exception()
            error = type(exception).__name__ if exception is not None else None
        attrs = {"method": state["method"], "backend": self.backend}
        if error is not None:
            attrs["error"] = error
        else:
            anytime = getattr(future.result(), "anytime", None)
            if anytime is not None and not anytime.deadline_met:
                attrs["deadline_missed"] = True
            if anytime is not None and anytime.resources:
                # The per-query resource envelope rides the root span so
                # GET /trace/<id> shows cost next to latency.
                attrs["resources"] = anytime.resources
        root_span = {
            "trace_id": state["trace_id"],
            "span_id": state["root_id"],
            "parent_id": None,
            "name": "query",
            "start": state["start_epoch"],
            "wall_s": wall,
            # Admission-to-retire time is not attributable to one
            # thread's CPU — the evaluation ran elsewhere.
            "cpu_s": 0.0,
            "attrs": attrs,
        }
        stage_histograms.observe("query", wall)
        if self.trace_ring is not None:
            self.trace_ring.finish(state["trace_id"], root_span)
        if self._slow_log is not None:
            entry = {
                "trace_id": state["trace_id"],
                "query": state["query"],
                "method": state["method"],
                "backend": self.backend,
                "error": error,
                "stages": self._stage_breakdown(state["trace_id"]),
            }
            self._slow_log.record(wall, entry)

    def _stage_breakdown(self, trace_id: str) -> dict:
        """Per-stage wall seconds summed from one ring entry's spans."""
        if self.trace_ring is None:
            return {}
        entry = self.trace_ring.get(trace_id)
        if entry is None:
            return {}
        stages: dict[str, float] = {}
        for span in entry["spans"]:
            name = span.get("name", "?")
            stages[name] = stages.get(name, 0.0) + float(span.get("wall_s", 0.0))
        return {name: round(value, 6) for name, value in stages.items()}

    # --- introspection ------------------------------------------------------

    def store_stats(self) -> dict:
        """Scenario-store counters as actually served: the shared store
        on the thread backend, the aggregate over farm workers' private
        stores on the process backend."""
        if self._farm is not None:
            return self._farm.store_stats()
        return self.store.stats().as_dict()

    def scale_stats(self) -> dict:
        """Out-of-core tier (``repro.scale``) counters as actually
        served: this process's registry on the thread backend, the
        aggregate over worker processes on the process backend."""
        from ..scale.metrics import scale_metrics

        local = scale_metrics.snapshot()
        if self._farm is None:
            return local
        # Worker processes do the solving, but deltas are applied (and
        # counted) broker-side before being broadcast: merge the local
        # registry into the farm aggregate.  Solve-side counters are
        # zero locally on this backend, so summing never double-counts.
        merged = self._farm.scale_stats()
        for name, value in local.items():
            merged[name] = merged.get(name, 0) + value
        return merged

    def resource_stats(self) -> dict:
        """Per-query resource accounting counters as actually served.

        The local registry covers broker-side accounting and (on the
        thread backend) every evaluation; the process backend reports
        the farm's per-worker aggregate merged with the local registry
        (solve-side counters are zero locally there, so summing never
        double-counts).
        """
        local = resource_counters.snapshot()
        if self._farm is None:
            return local
        merged = self._farm.resource_stats()
        for name, value in local.items():
            merged[name] = merged.get(name, 0) + value
        return merged

    def stage_histograms(self) -> dict:
        """Per-stage latency histograms as actually served.

        The local registry covers broker root spans and (on the thread
        backend) every engine-side stage; the process backend merges in
        the farm's per-worker aggregate.
        """
        snapshots = [stage_histograms.snapshot()]
        if self._farm is not None:
            snapshots.append(self._farm.stage_histograms())
        return merge_histogram_snapshots(snapshots)

    def status(self) -> dict:
        """Point-in-time serving state (the ``/status`` payload)."""
        with self._lock:
            state = {
                "backend": self.backend,
                "pool_size": self.pool_size,
                "max_pending": self.max_pending,
                "pending": self._pending,
                "inflight_keys": len(self._inflight),
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "deduplicated": self._deduplicated,
                "rejected": self._rejected,
                "deltas_applied": self._deltas_applied,
                "catalog_version": self.catalog.version,
                # Saturation events, under the name monitoring dashboards
                # expect (mirrors repro_broker_rejected_total on /metrics).
                "rejected_total": self._rejected,
                "uptime_s": time.time() - self.started_at,
                "closed": self._closed,
                # Per-query QoS verdicts (docs/qos.md): met/missed count
                # finished queries by deadline outcome, rejected counts
                # dead-on-arrival admissions, expired_queued counts
                # budgets that drained in the queue.
                "deadline": {
                    "met": self._deadline_met,
                    "missed": self._deadline_missed,
                    "rejected": self._deadline_rejected,
                    "expired_queued": self._deadline_expired,
                    "last_gap": self._last_gap,
                },
            }
        state["store"] = self.store_stats()
        state["scale"] = self.scale_stats()
        state["resources"] = self.resource_stats()
        if self._farm is not None:
            state["farm"] = self._farm.status()
        return state

    # --- teardown -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries; drain the pool; close an owned store.

        Idempotent.  A store supplied by the caller is left open.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._farm is not None:
            self._farm.close(wait=wait)
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "QueryBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
