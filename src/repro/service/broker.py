"""Concurrent package-query broker over a pool of engine sessions.

:class:`QueryBroker` is the serving layer's middle tier: it owns a
dispatch backend for concurrent ``execute()`` calls over one catalog —
a pool of :class:`~repro.core.engine.SPQEngine` sessions sharing a
:class:`~repro.service.store.ScenarioStore` (thread backend), or a
:class:`~repro.service.farm.SolveFarm` of worker processes with
private stores (process backend, where ``broker.store`` is ``None``
unless the caller supplied one).  Three properties make it a serving
layer rather than a loop around the engine:

* **Shared realizations** — scenario generation routes through a store
  (the broker's shared one, or each farm worker's private one fed by
  memmap handoffs), so queries over the same tables and stochastic
  attributes reuse realized matrices (each engine's own evaluation may
  further fan generation across the ``repro.parallel`` executor via
  ``config.n_workers``).
* **Admission control** — at most ``pool_size`` queries run at once and
  at most ``max_pending`` are queued or running; beyond that,
  :class:`BrokerSaturatedError` is raised immediately (the HTTP layer
  maps it to 503) instead of building an unbounded backlog.
* **In-flight deduplication** — a query identical to one currently
  running (same text, method, and overrides) attaches to the running
  evaluation's future instead of being dispatched again.

Two dispatch backends (``config.service_backend`` / ``backend=``):

* ``"thread"`` — engine sessions on a :class:`ThreadPoolExecutor`.
  Zero-copy store sharing within the process, but concurrent MILP
  solves contend on the GIL.
* ``"process"`` — a :class:`~repro.service.farm.SolveFarm` of
  persistent worker processes, each hosting one warm engine; solves
  run truly in parallel, scenario matrices travel between workers as
  read-only memmap handoffs, and crashed workers are replaced with
  their in-flight request retried once.  Workers host *private* stores
  (no broker-side store exists); :meth:`QueryBroker.store_stats`
  reports their farm-wide aggregate.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from ..config import BACKEND_PROCESS, BACKEND_THREAD, DEFAULT_CONFIG, SPQConfig
from ..core.engine import METHOD_SUMMARY_SEARCH, SPQEngine
from ..db.catalog import Catalog
from ..errors import SPQError
from .farm import SolveFarm
from .store import ScenarioStore


class BrokerSaturatedError(SPQError):
    """Raised when the broker's pending-query ceiling is reached."""


class QueryBroker:
    """Admission-controlled, deduplicating dispatcher for package queries."""

    def __init__(
        self,
        catalog: Catalog,
        config: SPQConfig | None = None,
        store: ScenarioStore | None = None,
        pool_size: int | None = None,
        max_pending: int | None = None,
        backend: str | None = None,
        recycle_after: int | None = None,
    ):
        self.catalog = catalog
        self.config = config if config is not None else DEFAULT_CONFIG
        self.pool_size = (
            pool_size if pool_size is not None else self.config.service_pool_size
        )
        if self.pool_size < 1:
            raise SPQError("pool_size must be >= 1")
        self.backend = (
            backend if backend is not None else self.config.service_backend
        )
        if self.backend not in (BACKEND_THREAD, BACKEND_PROCESS):
            raise SPQError(
                f"unknown service backend {self.backend!r}; expected"
                f" {BACKEND_THREAD!r} or {BACKEND_PROCESS!r}"
            )
        self.recycle_after = (
            recycle_after
            if recycle_after is not None
            else self.config.worker_recycle_after
        )
        self.max_pending = (
            max_pending
            if max_pending is not None
            else (self.config.service_max_pending or 4 * self.pool_size)
        )
        if self.max_pending < self.pool_size:
            self.max_pending = self.pool_size
        # The broker-side store only exists on the thread backend: farm
        # workers host private stores (aggregated via the farm), and a
        # parent-side store would sit unused, reporting permanently-zero
        # stats to operators.  A caller-supplied store is rejected there
        # rather than silently ignored — its budget/spill settings would
        # not be enforced (workers configure theirs from
        # ``scenario_store_budget`` / ``scenario_store_spill``).
        if store is not None and self.backend == BACKEND_PROCESS:
            raise SPQError(
                "the process backend does not take a shared store: farm"
                " workers host private scenario stores, configured via"
                " config.scenario_store_budget / scenario_store_spill"
            )
        self._owns_store = store is None and self.backend == BACKEND_THREAD
        if store is not None:
            self.store = store
        elif self.backend == BACKEND_THREAD:
            self.store = ScenarioStore(
                budget_bytes=self.config.scenario_store_budget,
                spill=self.config.scenario_store_spill,
            )
        else:
            self.store = None
        self._farm: SolveFarm | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._sessions: "queue.SimpleQueue[SPQEngine]" = queue.SimpleQueue()
        if self.backend == BACKEND_PROCESS:
            self._farm = SolveFarm(
                catalog,
                self.config,
                n_workers=self.pool_size,
                recycle_after=self.recycle_after,
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.pool_size, thread_name_prefix="spq-broker"
            )
            # Engine sessions are checked out per evaluation, so one
            # session never serves two queries at once.
            for _ in range(self.pool_size):
                self._sessions.put(
                    SPQEngine(
                        catalog=catalog, config=self.config, store=self.store
                    )
                )
        self._lock = threading.Lock()
        self._inflight: dict[tuple, Future] = {}
        self._pending = 0
        self._closed = False
        self.started_at = time.time()
        # Lifetime counters (read under the lock; surfaced on /metrics).
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._deduplicated = 0
        self._rejected = 0

    # --- submission ---------------------------------------------------------

    @staticmethod
    def _dedup_key(query, method: str, overrides: dict) -> tuple | None:
        """Hashable identity of a request, or None when not dedupable."""
        if not isinstance(query, str):
            return None  # compiled objects dedup by identity only
        try:
            key = (query.strip(), method, tuple(sorted(overrides.items())))
            hash(key)  # unhashable override values -> not dedupable
            return key
        except TypeError:
            return None

    def submit(
        self,
        query: str,
        method: str = METHOD_SUMMARY_SEARCH,
        **overrides,
    ) -> Future:
        """Dispatch ``query`` onto the pool; returns a Future of
        :class:`~repro.core.package.PackageResult`.

        Raises :class:`BrokerSaturatedError` when ``max_pending`` queries
        are already queued or running, and :class:`SPQError` after
        :meth:`close`.  An identical in-flight request (same text,
        method, overrides) shares the running evaluation's future.
        """
        key = self._dedup_key(query, method, overrides)
        with self._lock:
            if self._closed:
                raise SPQError("broker is closed")
            if key is not None:
                inflight = self._inflight.get(key)
                if inflight is not None:
                    self._deduplicated += 1
                    return inflight
            if self._pending >= self.max_pending:
                self._rejected += 1
                raise BrokerSaturatedError(
                    f"broker saturated: {self._pending} queries pending"
                    f" (max {self.max_pending})"
                )
            self._pending += 1
            self._submitted += 1
            try:
                if self._farm is not None:
                    future = self._farm.submit(query, method, overrides)
                else:
                    future = self._pool.submit(self._run, query, method, overrides)
            except BaseException:
                # No future, no done-callback: give the admission slot
                # back or the broker saturates permanently.
                self._pending -= 1
                self._submitted -= 1
                raise
            if key is not None:
                self._inflight[key] = future
        # Attached outside the lock: a future that failed fast runs its
        # callbacks synchronously on this thread, and _retire needs the
        # (non-reentrant) lock.
        future.add_done_callback(lambda f, key=key: self._retire(key, f))
        return future

    def execute(
        self,
        query: str,
        method: str = METHOD_SUMMARY_SEARCH,
        **overrides,
    ):
        """Blocking :meth:`submit` — returns the PackageResult."""
        return self.submit(query, method=method, **overrides).result()

    def _run(self, query, method: str, overrides: dict):
        engine = self._sessions.get()
        try:
            return engine.execute(query, method=method, **overrides)
        finally:
            self._sessions.put(engine)

    def _retire(self, key: tuple | None, future: Future) -> None:
        with self._lock:
            self._pending -= 1
            if future.cancelled() or future.exception() is not None:
                self._failed += 1
            else:
                self._completed += 1
            if key is not None and self._inflight.get(key) is future:
                del self._inflight[key]

    # --- introspection ------------------------------------------------------

    def store_stats(self) -> dict:
        """Scenario-store counters as actually served: the shared store
        on the thread backend, the aggregate over farm workers' private
        stores on the process backend."""
        if self._farm is not None:
            return self._farm.store_stats()
        return self.store.stats().as_dict()

    def scale_stats(self) -> dict:
        """Out-of-core tier (``repro.scale``) counters as actually
        served: this process's registry on the thread backend, the
        aggregate over worker processes on the process backend."""
        if self._farm is not None:
            return self._farm.scale_stats()
        from ..scale.metrics import scale_metrics

        return scale_metrics.snapshot()

    def status(self) -> dict:
        """Point-in-time serving state (the ``/status`` payload)."""
        with self._lock:
            state = {
                "backend": self.backend,
                "pool_size": self.pool_size,
                "max_pending": self.max_pending,
                "pending": self._pending,
                "inflight_keys": len(self._inflight),
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "deduplicated": self._deduplicated,
                "rejected": self._rejected,
                # Saturation events, under the name monitoring dashboards
                # expect (mirrors repro_broker_rejected_total on /metrics).
                "rejected_total": self._rejected,
                "uptime_s": time.time() - self.started_at,
                "closed": self._closed,
            }
        state["store"] = self.store_stats()
        state["scale"] = self.scale_stats()
        if self._farm is not None:
            state["farm"] = self._farm.status()
        return state

    # --- teardown -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries; drain the pool; close an owned store.

        Idempotent.  A store supplied by the caller is left open.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._farm is not None:
            self._farm.close(wait=wait)
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "QueryBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
