"""Shared, evictable store of realized scenario matrices.

Realized scenario matrices are the dominant memory/CPU cost of stochastic
package query evaluation (the MCDB-style Monte Carlo realization of
Section 3).  :class:`ScenarioStore` shares them *across* engine sessions
and queries: entries are content-keyed on

* a **source fingerprint** — a SHA-256 over the relation's column content
  and the stochastic model's VG functions, so two registrations of the
  same data share entries while any data change invalidates them;
* the **expression** — the canonical sPaQL rendering of the coefficient
  expression (structurally equal expressions from different parses share);
* the **RNG identity** — ``(seed, stream, substream, mode)``, the exact
  key material of :mod:`repro.utils.rngkeys`, so entries can never leak
  across streams or seeds;
* the **scenario range** — entries hold the prefix ``[0, width)`` of the
  scenario-wise stream (scenario ``j`` is a pure function of its RNG key,
  so prefixes are stable); a request for more scenarios generates only
  the missing suffix.

The store is thread-safe with *single-flight* generation: when two
callers race on the same key, one generates and the other waits for the
result — the generation counter increments once and both are served.

Memory is bounded by a configurable byte budget over resident entries.
Under pressure, least-recently-used entries are spilled to disk-backed
``np.memmap`` files (reads stay bit-identical) or, with spilling
disabled, evicted outright (a later request regenerates them).

Stores can also share matrices **across processes** without copying:
:meth:`ScenarioStore.handoff` exports every entry as a content-keyed
memmap-path descriptor (spilling resident ones once), and
:meth:`ScenarioStore.adopt` installs such descriptors read-only after
verifying their content hash.  The solve farm
(:mod:`repro.service.farm`) uses exactly this pair to keep one realized
matrix per content key across its whole worker pool.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..db.expressions import Expr, render
from ..obs import stage

#: Attribute used to cache a model's fingerprint on the instance (the
#: hash covers the full relation content; compute it once per model).
_FINGERPRINT_ATTR = "_spq_content_fingerprint"


def _column_parts(relation, name):
    """Yield a column's content in pieces.

    Relations exposing the chunk protocol (``repro.scale.ColumnStore``)
    are read chunk-at-a-time so fingerprinting never materializes a
    full column; in-memory relations yield the column whole.  The
    hashed byte stream is identical either way.
    """
    if hasattr(relation, "column_chunk") and hasattr(relation, "n_chunks"):
        # max(..., 1): a zero-row store still yields one (empty) part so
        # the column dtype is hashed exactly like the in-memory path.
        for chunk in range(max(relation.n_chunks, 1)):
            yield relation.column_chunk(name, chunk)
        return
    yield relation.column(name)


def relation_fingerprint(relation) -> str:
    """SHA-256 over a relation's column names, dtypes, and content.

    The relation *name* is deliberately excluded: the store is
    content-keyed, so the same data registered under two names shares
    scenario matrices.  Content is hashed in chunk-composable form
    (numeric columns as raw bytes, object columns element-wise), so
    disk-backed and in-memory representations of the same data — and
    chunked versus whole reads — produce one fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(repr(relation.key).encode())
    for name in sorted(relation.column_names):
        digest.update(name.encode())
        first = True
        for part in _column_parts(relation, name):
            part = np.asarray(part)
            if first:
                digest.update(str(part.dtype).encode())
                first = False
            if part.dtype.kind == "O":
                for value in part:
                    digest.update(repr(value).encode())
                    digest.update(b"\x1f")
            else:
                digest.update(np.ascontiguousarray(part).tobytes())
    return digest.hexdigest()


def _vg_state(vg) -> tuple:
    """A VG function's identity minus its bound relation reference.

    VGs descending from :class:`repro.mcdb.VGFunction` contribute their
    :meth:`~repro.mcdb.VGFunction.params_fingerprint` — a stable hash of
    the class plus every constructor parameter — so two configurations
    of the same family (e.g. copulas differing only in ``rho``) can
    never share store entries.  Exotic VG-like objects without the
    method fall back to their pickled state.  The relation's *content*
    is hashed separately (name-free), so two models over
    identically-valued relations with different names share
    fingerprints.
    """
    fingerprint = getattr(vg, "params_fingerprint", None)
    if callable(fingerprint):
        return (type(vg).__module__, type(vg).__qualname__, fingerprint())
    state = dict(vg.__dict__)
    state.pop("_relation", None)
    return (type(vg).__module__, type(vg).__qualname__, sorted(state.items()))


def model_fingerprint(model) -> str:
    """SHA-256 over a stochastic model's relation content and VG functions.

    VG functions are hashed through :func:`_vg_state` (parameter
    fingerprints, or pickled bound state for legacy objects).  If a VG's
    state cannot be serialized, the model gets a unique fallback
    fingerprint — still internally consistent, just never shared with
    another model.  The result is cached on the model instance.
    """
    cached = getattr(model, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(relation_fingerprint(model.relation).encode())
    try:
        payload = pickle.dumps(
            [
                (name, _vg_state(model.vg(name)))
                for name in model.attribute_names
            ],
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest.update(payload)
        fingerprint = digest.hexdigest()
    except Exception:
        fingerprint = f"unpicklable-{uuid.uuid4().hex}"
    try:
        setattr(model, _FINGERPRINT_ATTR, fingerprint)
    except AttributeError:  # pragma: no cover - exotic model classes
        pass
    return fingerprint


def store_key(generator, expr: Expr) -> tuple:
    """Content key for ``expr``'s coefficient matrix under ``generator``."""
    return (
        model_fingerprint(generator.model),
        render(expr),
        (generator.seed, generator.stream, generator.substream, generator.mode),
    )


@dataclass
class StoreStats:
    """Counters exposed on ``/metrics`` and in experiment reports."""

    hits: int = 0
    misses: int = 0
    generations: int = 0
    generated_columns: int = 0
    evictions: int = 0
    spills: int = 0
    adopted: int = 0
    stale_dropped: int = 0
    bytes_resident: int = 0
    bytes_spilled: int = 0
    entries: int = 0
    #: Lifetime bytes of freshly generated scenario columns vs. bytes
    #: served straight from cached matrices — the realized/reused split
    #: of the per-query resource accounting.
    bytes_realized: int = 0
    bytes_reused: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "generations": self.generations,
            "generated_columns": self.generated_columns,
            "evictions": self.evictions,
            "spills": self.spills,
            "adopted": self.adopted,
            "stale_dropped": self.stale_dropped,
            "bytes_resident": self.bytes_resident,
            "bytes_spilled": self.bytes_spilled,
            "entries": self.entries,
            "bytes_realized": self.bytes_realized,
            "bytes_reused": self.bytes_reused,
        }


@dataclass
class _Entry:
    key: tuple
    data: np.ndarray  # resident ndarray or disk-backed np.memmap
    path: str | None = None  # spill file, when data is a memmap
    #: Set while a thread copies this entry to disk outside the lock;
    #: keeps concurrent budget passes from double-spilling it.
    spilling: bool = False
    #: Whether this store may unlink ``path`` on release.  Entries
    #: exported through :meth:`ScenarioStore.handoff` (ownership moves
    #: to the caller) and entries installed by
    #: :meth:`ScenarioStore.adopt` (the file belongs to the exporting
    #: store) are not owned.
    owned: bool = True
    #: Whether this entry was installed by :meth:`ScenarioStore.adopt`.
    #: Adopted entries are never re-exported by :meth:`handoff` — the
    #: exporting store may have superseded the file since (e.g. after
    #: growing the matrix), and re-announcing the stale path would let
    #: it clobber the newer descriptor downstream.
    adopted: bool = False
    #: SHA-256 of the matrix bytes, computed when the entry is written
    #: to disk; lets adopting stores verify the file they open.
    content_hash: str | None = None

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def nbytes(self) -> int:
        return int(self.data.size * self.data.itemsize)

    @property
    def spilled(self) -> bool:
        return self.path is not None


class ScenarioStore:
    """Concurrent, content-keyed cache of scenario coefficient matrices.

    Parameters
    ----------
    budget_bytes:
        Byte budget for *resident* (in-RAM) matrices; ``None`` means
        unlimited.  Spilled matrices do not count against the budget.
    spill:
        Whether over-budget entries are spilled to ``np.memmap`` files
        (``True``, default) or evicted outright (``False``).
    spill_dir:
        Directory for spill files; a private temporary directory is
        created lazily when omitted and removed on :meth:`close`.
    """

    def __init__(
        self,
        budget_bytes: int | None = None,
        spill: bool = True,
        spill_dir: str | None = None,
    ):
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError("budget_bytes must be positive or None")
        self.budget_bytes = budget_bytes
        self.spill = spill
        self._spill_dir = spill_dir
        self._owns_spill_dir = spill_dir is None
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._growing: set[tuple] = set()
        self._cond = threading.Condition()
        self._stats = StoreStats()
        self._closed = False

    # --- lookup / fill ------------------------------------------------------

    def coefficient_matrix(self, key: tuple, n_scenarios: int, fill) -> np.ndarray:
        """The first ``n_scenarios`` coefficient columns under ``key``.

        ``fill(start, stop)`` must return the full-relation columns
        ``[start, stop)`` of the keyed stream; it is invoked (outside the
        store lock) only for columns the store does not yet hold, and at
        most once per missing range even under concurrent requests.

        A closed store degrades to direct generation (``fill(0, n)``)
        rather than failing — callers holding a stale handle keep
        working, they just stop sharing.
        """
        if n_scenarios < 1:
            raise ValueError("n_scenarios must be >= 1")
        with stage("scenario.realize", n_scenarios=int(n_scenarios)) as span:
            return self._coefficient_matrix(key, n_scenarios, fill, span)

    def _coefficient_matrix(self, key: tuple, n_scenarios: int, fill, span):
        if self._closed:
            return fill(0, n_scenarios)
        with self._cond:
            while True:
                if self._closed:
                    break
                entry = self._entries.get(key)
                if entry is not None and entry.width >= n_scenarios:
                    self._stats.hits += 1
                    self._stats.bytes_reused += (
                        entry.data.shape[0] * n_scenarios * entry.data.itemsize
                    )
                    self._entries.move_to_end(key)
                    span.set("hit", True)
                    return entry.data[:, :n_scenarios]
                if key not in self._growing:
                    self._growing.add(key)
                    self._stats.misses += 1
                    span.set("hit", False)
                    start = 0 if entry is None else entry.width
                    break
                # Another thread is realizing this key: wait for it, then
                # re-check (single generation, both callers served).
                self._cond.wait()
        if self._closed:
            return fill(0, n_scenarios)
        try:
            new_columns = np.ascontiguousarray(
                fill(start, n_scenarios), dtype=np.float64
            )
        except BaseException:
            with self._cond:
                self._growing.discard(key)
                self._cond.notify_all()
            raise
        prefix_lost = False
        victims: list[_Entry] = []
        with self._cond:
            self._growing.discard(key)
            entry = self._entries.get(key)
            if entry is not None and entry.width != start:
                entry = None
            if entry is None and start > 0:
                # The stored prefix vanished while the suffix was being
                # generated (store closed, or a concurrent clear()).
                # The suffix alone is not the answer to [0, n): retry
                # from scratch rather than caching a corrupt matrix.
                prefix_lost = True
            else:
                if entry is None:
                    matrix = new_columns
                else:
                    # Growth: append the new suffix after the stored
                    # prefix (reading it back from its memmap if
                    # spilled).  Only this thread can touch the entry's
                    # width — the key is in _growing — so the prefix is
                    # exactly [0, start).
                    matrix = np.empty(
                        (new_columns.shape[0], n_scenarios), dtype=np.float64
                    )
                    matrix[:, :start] = entry.data[:, :start]
                    matrix[:, start:] = new_columns
                    self._release_entry(entry)
                    del self._entries[key]
                self._stats.generations += 1
                self._stats.generated_columns += new_columns.shape[1]
                self._stats.bytes_realized += int(new_columns.nbytes)
                if not self._closed:
                    self._entries[key] = _Entry(key=key, data=matrix)
                victims = self._evict_over_budget()
            self._cond.notify_all()
        if prefix_lost:
            return self._coefficient_matrix(key, n_scenarios, fill, span)
        if victims:
            self._spill_outside_lock(victims)
        return matrix[:, :n_scenarios]

    # --- budget enforcement -------------------------------------------------

    def _resident_bytes(self) -> int:
        return sum(
            e.nbytes
            for e in self._entries.values()
            if not e.spilled and not e.spilling
        )

    def _evict_over_budget(self) -> list[_Entry]:
        """Bring resident bytes under budget (caller holds the lock).

        With spilling disabled, LRU entries are released immediately.
        With spilling enabled, LRU victims are *marked* and returned —
        the disk write happens outside the lock (see
        :meth:`_spill_outside_lock`) so concurrent hits on other keys
        are not stalled behind the copy; marked entries already stop
        counting as resident.  Keys being grown are never victims (the
        grower holds a reference to the prefix).
        """
        if self.budget_bytes is None:
            return []
        victims: list[_Entry] = []
        for key in list(self._entries):
            if self._resident_bytes() <= self.budget_bytes:
                break
            entry = self._entries[key]
            if entry.spilled or entry.spilling or key in self._growing:
                continue
            if self.spill:
                entry.spilling = True
                victims.append(entry)
            else:
                self._release_entry(entry)
                del self._entries[key]
                self._stats.evictions += 1
        return victims

    def _ensure_spill_dir(self) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="spq-store-")
        else:
            os.makedirs(self._spill_dir, exist_ok=True)
        return self._spill_dir

    def _spill_outside_lock(self, victims: list[_Entry]) -> None:
        """Copy marked victims to disk memmaps, then swap them in.

        The resident array stays readable during the copy; the swap
        happens under the lock with an identity check, so a victim that
        was meanwhile released (clear/close) just discards its file.
        """
        with self._cond:
            # Created under the lock: concurrent spillers must agree on
            # one directory, or close() would leak the losers'.
            spill_dir = self._ensure_spill_dir()
        for entry in victims:
            data = entry.data
            path = os.path.join(spill_dir, f"scenario-{uuid.uuid4().hex}.f64")
            spilled = np.memmap(path, dtype=np.float64, mode="w+", shape=data.shape)
            spilled[:] = data
            spilled.flush()
            digest = hashlib.sha256(
                np.ascontiguousarray(data).tobytes()
            ).hexdigest()
            with self._cond:
                if self._entries.get(entry.key) is entry and entry.data is data:
                    entry.data = spilled
                    entry.path = path
                    entry.content_hash = digest
                    entry.spilling = False
                    self._stats.spills += 1
                else:
                    del spilled
                    try:
                        os.unlink(path)
                    except OSError:
                        pass

    # --- cross-process handoff ------------------------------------------------

    def handoff(self) -> dict[tuple, dict]:
        """Export not-yet-exported entries as content-keyed memmap descriptors.

        Resident entries are first written to spill files (reads stay
        bit-identical; the store keeps serving them through the memmap).
        Returns ``{key: {"path", "shape", "dtype", "sha256"}}`` — enough
        for another process to :meth:`adopt` the matrices zero-copy.

        Ownership of the files moves to the caller: this store will no
        longer unlink them on eviction, :meth:`clear`, or :meth:`close`,
        so descriptors stay valid for as long as the caller keeps the
        files (the solve farm deletes its shared spill directory on
        shutdown).  Keys being grown at call time are skipped — they are
        exported by a later handoff.

        Each entry is announced **once**: repeated calls return only
        entries realized (or grown — growth creates a fresh entry) since
        the previous call.  Re-announcing would let a path the caller
        has since discarded clobber a newer descriptor for the same key.
        For the same reason entries installed by :meth:`adopt` are never
        exported — only the store that realized a matrix announces it.
        """
        with self._cond:
            if self._closed:
                return {}
            victims = [
                entry
                for key, entry in self._entries.items()
                if not entry.spilled
                and not entry.spilling
                and key not in self._growing
            ]
            for entry in victims:
                entry.spilling = True
        if victims:
            self._spill_outside_lock(victims)
        descriptors: dict[tuple, dict] = {}
        with self._cond:
            for key, entry in self._entries.items():
                # ``owned`` doubles as the exported-yet marker: handoff
                # clears it, and adopt() installs entries without it.
                if not entry.owned or not entry.spilled or entry.content_hash is None:
                    continue
                entry.owned = False
                descriptors[key] = {
                    "path": entry.path,
                    "shape": tuple(entry.data.shape),
                    "dtype": str(entry.data.dtype),
                    "sha256": entry.content_hash,
                }
        return descriptors

    def adopt(
        self,
        descriptors: dict[tuple, dict],
        stale_fingerprints: "set[str] | None" = None,
    ) -> int:
        """Install matrices exported by another store's :meth:`handoff`.

        Each descriptor's file is opened as a *read-only* memmap and its
        content hash verified before the entry is installed; a missing,
        truncated, or corrupt file is skipped (the matrix simply
        regenerates on demand — adoption is an optimization, never a
        correctness dependency).  Keys already present (or being
        generated) are left alone.  Returns the number of entries
        adopted.

        Descriptors are checked against the fingerprint lineage before
        installation: an entry keyed on a model fingerprint that a delta
        has since superseded is *dropped*, not installed.  Without this,
        a handoff raced against ``apply_delta`` could serve pre-delta
        scenarios for a post-delta query whose generator happened to
        collide on the remaining key fields.  Pass ``stale_fingerprints``
        to override the default (the process-wide
        :data:`repro.db.delta.lineage` registry's superseded set).
        """
        if stale_fingerprints is None:
            from ..db.delta import lineage

            stale_fingerprints = lineage.superseded()
        adopted = 0
        for key, descriptor in descriptors.items():
            if (
                stale_fingerprints
                and isinstance(key, tuple)
                and key
                and key[0] in stale_fingerprints
            ):
                with self._cond:
                    self._stats.stale_dropped += 1
                continue
            with self._cond:
                if self._closed:
                    break
                if key in self._entries or key in self._growing:
                    continue
            try:
                data = np.memmap(
                    descriptor["path"],
                    dtype=np.dtype(descriptor["dtype"]),
                    mode="r",
                    shape=tuple(descriptor["shape"]),
                )
            except (OSError, ValueError, TypeError, KeyError):
                continue
            digest = hashlib.sha256(
                np.ascontiguousarray(data).tobytes()
            ).hexdigest()
            if digest != descriptor.get("sha256"):
                del data
                continue
            with self._cond:
                if self._closed or key in self._entries or key in self._growing:
                    del data
                    continue
                self._entries[key] = _Entry(
                    key=key,
                    data=data,
                    path=descriptor["path"],
                    owned=False,
                    adopted=True,
                    content_hash=digest,
                )
                self._stats.adopted += 1
                adopted += 1
                self._cond.notify_all()
        return adopted

    # --- teardown -----------------------------------------------------------

    @staticmethod
    def _release_entry(entry: _Entry) -> None:
        """Drop an entry's array, closing its memmap and spill file.

        Files this store does not own — entries exported via
        :meth:`handoff` or installed by :meth:`adopt` — are left on
        disk for their owner; only the mapping is closed.
        """
        data = entry.data
        path = entry.path if entry.owned else None
        entry.data = np.empty((0, 0))
        entry.path = None
        if isinstance(data, np.memmap):
            mm = getattr(data, "_mmap", None)
            del data
            if mm is not None:
                try:
                    mm.close()
                except BufferError:  # live views keep the mapping alive
                    pass
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def prune_fingerprints(self, fingerprints: "set[str]") -> int:
        """Drop entries whose model fingerprint is in ``fingerprints``.

        Called after a delta supersedes a fingerprint so already-resident
        pre-delta matrices can't be served to queries that (incorrectly)
        reuse the old fingerprint, and so their memory is reclaimed
        promptly — post-delta queries key on the new fingerprint and
        would never hit them anyway.  Returns the number dropped
        (counted under ``stale_dropped``).
        """
        if not fingerprints:
            return 0
        dropped = 0
        with self._cond:
            victims = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and key[0] in fingerprints
            ]
            for key in victims:
                self._release_entry(self._entries.pop(key))
                self._stats.stale_dropped += 1
                dropped += 1
            if victims:
                self._cond.notify_all()
        return dropped

    def clear(self) -> None:
        """Drop every entry, releasing memmap handles and spill files.

        Counters survive (they describe the store's lifetime); the store
        stays usable.  Idempotent.
        """
        with self._cond:
            for entry in self._entries.values():
                self._release_entry(entry)
            self._entries.clear()
            self._cond.notify_all()

    def close(self) -> None:
        """Release all entries and the private spill directory.  Idempotent.

        A closed store serves subsequent requests by direct generation
        (no caching), so stale handles degrade gracefully.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for entry in self._entries.values():
                self._release_entry(entry)
            self._entries.clear()
            self._cond.notify_all()
        if self._owns_spill_dir and self._spill_dir is not None:
            try:
                os.rmdir(self._spill_dir)
            except OSError:
                pass
            self._spill_dir = None

    def __enter__(self) -> "ScenarioStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --- introspection ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> StoreStats:
        """A point-in-time snapshot of the store's counters."""
        with self._cond:
            snapshot = StoreStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                generations=self._stats.generations,
                generated_columns=self._stats.generated_columns,
                evictions=self._stats.evictions,
                spills=self._stats.spills,
                adopted=self._stats.adopted,
                stale_dropped=self._stats.stale_dropped,
                bytes_resident=self._resident_bytes(),
                bytes_spilled=sum(
                    e.nbytes for e in self._entries.values() if e.spilled
                ),
                entries=len(self._entries),
                bytes_realized=self._stats.bytes_realized,
                bytes_reused=self._stats.bytes_reused,
            )
        return snapshot

    def keys(self) -> list[tuple]:
        """Current entry keys in LRU-to-MRU order (for tests/inspection)."""
        with self._cond:
            return list(self._entries)
