"""Stdlib HTTP front-end for the query broker.

A thin JSON protocol over :class:`http.server.ThreadingHTTPServer` (one
handler thread per connection; actual evaluation concurrency is bounded
by the broker's pool):

``POST /query``
    Request body: ``{"query": "<sPaQL>", "method": "summarysearch",
    "overrides": {"seed": 7, ...}, "deadline_ms": 250}`` (``method``,
    ``overrides``, and ``deadline_ms`` are optional; overrides are
    :class:`repro.config.SPQConfig` fields).  Response:
    ``{"feasible": ..., "objective": ..., "package": {...},
    "deadline_met": ..., "gap": ..., "anytime": {...},
    "wall_time_s": ..., "store": {...}}``.  Errors map to status codes:
    400 (bad request / parse / compile / invalid override value), 409
    (solve failure),
    503 (broker saturated), 504 (deadline expired before any incumbent
    existed — see docs/qos.md), 500 (unexpected).  A deadline that
    expires mid-solve is NOT an error: the response is a 200 carrying
    the best incumbent with ``deadline_met: false`` and its ``gap``.

``POST /update``
    Live-data mutation (docs/live_data.md).  Request body:
    ``{"table": "<name>", "delta": {"inserts": [...], "updates":
    [[key, {col: value}], ...], "deletes": [key, ...]}}``.  Applies the
    delta through :meth:`QueryBroker.apply_update` — catalog version
    bumps, the fingerprint lineage is extended, stale scenario matrices
    are pruned/broadcast — and returns the application summary
    (``catalog_version``, old/new fingerprint, ``dirty_rows``).  Errors:
    400 (malformed delta), 404 (unknown table), 503 (broker closed).

``GET /status``
    Broker pool state, lifetime counters, uptime, store statistics.

``GET /metrics``
    Prometheus text exposition of the same counters
    (``repro_store_hits_total`` etc.) plus the per-stage latency
    histogram family ``repro_stage_seconds``.

``GET /trace/<trace_id>``
    Span tree of one recent query (the bounded broker trace ring; 404
    once evicted or when tracing is disabled).  ``POST /query`` accepts
    an optional ``"trace": true`` field to inline the same document in
    the response (under ``"trace"``), and always returns the
    ``"trace_id"`` when tracing is enabled.

Started from the CLI via ``repro serve`` or embedded via
:class:`SPQService` (``port=0`` binds an ephemeral port for tests).
"""

from __future__ import annotations

import dataclasses
import json
import platform
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from .. import __version__
from ..config import SPQConfig
from ..errors import (
    CompileError,
    EvaluationError,
    ParseError,
    SchemaError,
    SPQError,
    VGFunctionError,
)
from ..obs import histogram_exposition
from .broker import BrokerSaturatedError, QueryBroker
from .qos import DeadlineExpiredError

#: How long ``GET /trace/<id>`` and ``"trace": true`` wait for a trace's
#: root span to land after its future resolves (done-callbacks run just
#: after result waiters wake; this is a bound, not a typical latency).
_TRACE_WAIT_S = 5.0

#: Maximum accepted request body (guards the JSON parse, not the solve).
MAX_BODY_BYTES = 4 * 1024 * 1024


def _json_value(value):
    """Coerce numpy scalars to JSON-serializable python values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_json_value(v) for v in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def result_payload(result, wall_time_s: float) -> dict:
    """JSON document for one PackageResult."""
    payload = {
        "method": result.method,
        "feasible": bool(result.feasible),
        "succeeded": bool(result.succeeded),
        "objective": _json_value(result.objective),
        "epsilon_upper": _json_value(result.epsilon_upper),
        "message": result.message,
        "wall_time_s": wall_time_s,
        "package": None,
        # QoS contract (docs/qos.md): every response states its deadline
        # verdict and optimality gap, deadline or not.
        "deadline_met": True,
        "gap": 0.0 if result.succeeded else None,
    }
    if result.anytime is not None:
        payload["deadline_met"] = bool(result.anytime.deadline_met)
        payload["gap"] = _json_value(result.anytime.gap)
        payload["anytime"] = result.anytime.as_dict()
    meta = getattr(result, "meta", None)
    if isinstance(meta, dict) and "catalog_version" in meta:
        # The catalog version the evaluation compiled against — clients
        # (and the soak harness) use it to detect stale answers after
        # a POST /update.
        payload["catalog_version"] = _json_value(meta["catalog_version"])
    if result.stats is not None:
        payload["stats"] = {
            "n_iterations": result.stats.n_iterations,
            "final_n_scenarios": result.stats.final_n_scenarios,
            "final_n_summaries": result.stats.final_n_summaries,
            "total_time": result.stats.total_time,
            "timed_out": result.stats.timed_out,
        }
    if result.package is not None:
        relation = result.package.to_relation()
        payload["package"] = {
            "total_count": result.package.total_count,
            "n_distinct": result.package.n_distinct,
            "multiplicities": {
                str(k): v for k, v in result.package.key_multiplicities().items()
            },
            "columns": relation.column_names,
            "rows": [
                {k: _json_value(v) for k, v in row.items()}
                for row in relation.iter_rows()
            ],
        }
    return payload


def metrics_text(broker: QueryBroker) -> str:
    """Prometheus text exposition of broker + store + farm counters.

    Every family carries ``# HELP`` and ``# TYPE`` lines, counter names
    end in ``_total``, and per-stage latencies are exported as one
    labeled histogram family (``repro_stage_seconds``); the tier-1
    format test validates all of this with a strict text-format parser.
    """
    status = broker.status()
    store = status.pop("store")
    scale = status.pop("scale")
    resources = status.pop("resources")
    farm = status.pop("farm", None)
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str, value) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {value}")

    def labeled(name: str, kind: str, help_text: str, samples: list) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    # Standard build-info gauge: constant 1, identity in the labels, so
    # dashboards can join every other family against version/runtime.
    labeled(
        "repro_build_info", "gauge",
        "Build and runtime identity of this service (constant 1).",
        [
            f'repro_build_info{{version="{__version__}",'
            f'python="{platform.python_version()}"}} 1'
        ],
    )
    family(
        "repro_store_hits_total", "counter",
        "Scenario-store lookups served from a cached matrix.",
        store["hits"],
    )
    family(
        "repro_store_misses_total", "counter",
        "Scenario-store lookups that required realization.",
        store["misses"],
    )
    family(
        "repro_store_generations_total", "counter",
        "Scenario matrix (re)generations performed by the store.",
        store["generations"],
    )
    family(
        "repro_store_generated_columns_total", "counter",
        "Scenario columns realized by the store.",
        store["generated_columns"],
    )
    family(
        "repro_store_evictions_total", "counter",
        "Store entries evicted outright under the byte budget.",
        store["evictions"],
    )
    family(
        "repro_store_spills_total", "counter",
        "Store entries spilled to memmap files under the byte budget.",
        store["spills"],
    )
    family(
        "repro_store_adopted_total", "counter",
        "Matrices adopted from sibling workers via memmap handoff.",
        store["adopted"],
    )
    family(
        "repro_store_bytes_realized_total", "counter",
        "Scenario-matrix bytes newly realized (generated) by the store.",
        store["bytes_realized"],
    )
    family(
        "repro_store_bytes_reused_total", "counter",
        "Scenario-matrix bytes served from cache instead of regenerated.",
        store["bytes_reused"],
    )
    family(
        "repro_store_bytes_resident", "gauge",
        "Bytes of scenario matrices resident in RAM.",
        store["bytes_resident"],
    )
    family(
        "repro_store_bytes_spilled", "gauge",
        "Bytes of scenario matrices spilled to disk.",
        store["bytes_spilled"],
    )
    family(
        "repro_store_entries", "gauge",
        "Distinct scenario matrices held by the store.",
        store["entries"],
    )
    # Out-of-core tier (repro.scale): stochastic SketchRefine activity
    # and the ColumnStore chunk caches' resident bytes.
    family(
        "repro_scale_runs_total", "counter",
        "Completed stochastic SketchRefine evaluations.",
        scale["runs"],
    )
    family(
        "repro_scale_partitions_total", "counter",
        "Partitions processed across SketchRefine evaluations.",
        scale["partitions"],
    )
    family(
        "repro_scale_refines_total", "counter",
        "Per-partition refine solves executed.",
        scale["refines"],
    )
    family(
        "repro_scale_sketch_seconds_total", "counter",
        "Wall seconds spent in SketchRefine sketch solves.",
        scale["sketch_seconds"],
    )
    family(
        "repro_scale_refine_seconds_total", "counter",
        "Wall seconds spent in SketchRefine refine solves.",
        scale["refine_seconds"],
    )
    family(
        "repro_scale_index_hits_total", "counter",
        "Partition-index lookups answered from the persisted index.",
        scale["index_hits"],
    )
    family(
        "repro_scale_index_misses_total", "counter",
        "Partition-index lookups that re-partitioned from pilot stats.",
        scale["index_misses"],
    )
    family(
        "repro_scale_chunk_hits_total", "counter",
        "ColumnStore chunk-cache lookups served from resident chunks.",
        scale["chunk_hits"],
    )
    family(
        "repro_scale_chunk_misses_total", "counter",
        "ColumnStore chunk-cache lookups that decoded from disk.",
        scale["chunk_misses"],
    )
    # Per-query resource accounting (docs/observability.md): lifetime
    # totals across evaluations, farm-aggregated on the process backend.
    family(
        "repro_resource_queries_total", "counter",
        "Queries with a completed resource-accounting envelope.",
        resources.get("queries_accounted", 0),
    )
    family(
        "repro_resource_cpu_seconds_total", "counter",
        "Solver-thread CPU seconds consumed by accounted queries.",
        resources.get("query_cpu_seconds", 0.0),
    )
    family(
        "repro_resource_lp_solves_total", "counter",
        "LP relaxation solves executed across all evaluations.",
        resources.get("lp_solves", 0),
    )
    # Live-data tier (docs/live_data.md): applied deltas and the
    # delta-scoped invalidation/reuse they triggered.
    family(
        "repro_delta_applied_total", "counter",
        "Relation deltas applied through the catalog.",
        scale["deltas_applied"],
    )
    family(
        "repro_delta_rows_dirty_total", "counter",
        "Rows dirtied by applied relation deltas.",
        scale["delta_rows_dirty"],
    )
    family(
        "repro_delta_partitions_dirty_total", "counter",
        "Partitions re-refined by delta-repair solves.",
        scale["delta_partitions_dirty"],
    )
    family(
        "repro_delta_partitions_reused_total", "counter",
        "Untouched partitions whose sub-packages were reused verbatim.",
        scale["delta_partitions_reused"],
    )
    family(
        "repro_delta_index_refreshes_total", "counter",
        "Partition-index entries spliced from a pre-delta ancestor.",
        scale["delta_index_refreshes"],
    )
    family(
        "repro_delta_repair_fallbacks_total", "counter",
        "Delta-repair solves that failed validation and re-ran cold.",
        scale["delta_repair_fallbacks"],
    )
    family(
        "repro_store_stale_dropped_total", "counter",
        "Scenario-store descriptors refused or pruned as pre-delta stale.",
        store["stale_dropped"],
    )
    family(
        "repro_scale_resident_bytes", "gauge",
        "Bytes resident across live ColumnStore chunk caches.",
        scale["resident_bytes"],
    )
    family(
        "repro_scale_resident_peak_bytes", "gauge",
        "High-water mark of ColumnStore resident bytes.",
        scale["resident_peak_bytes"],
    )
    family(
        "repro_broker_submitted_total", "counter",
        "Queries admitted by the broker.",
        status["submitted"],
    )
    family(
        "repro_broker_completed_total", "counter",
        "Queries completed successfully.",
        status["completed"],
    )
    family(
        "repro_broker_failed_total", "counter",
        "Queries that failed or were cancelled.",
        status["failed"],
    )
    family(
        "repro_broker_deduplicated_total", "counter",
        "Submissions attached to an identical in-flight evaluation.",
        status["deduplicated"],
    )
    family(
        "repro_broker_rejected_total", "counter",
        "Submissions rejected by admission control (saturated).",
        status["rejected_total"],
    )
    deadline = status["deadline"]
    family(
        "repro_deadline_met_total", "counter",
        "Finished queries that met their latency deadline (or had none).",
        deadline["met"],
    )
    family(
        "repro_deadline_missed_total", "counter",
        "Finished queries that returned a truncated anytime incumbent.",
        deadline["missed"],
    )
    family(
        "repro_deadline_rejected_total", "counter",
        "Submissions rejected at admission with a dead-on-arrival budget.",
        deadline["rejected"],
    )
    family(
        "repro_deadline_expired_total", "counter",
        "Queued queries whose deadline drained before a worker was free.",
        deadline["expired_queued"],
    )
    family(
        "repro_query_gap", "gauge",
        "Relative optimality gap of the last finished query (0 = exact).",
        deadline["last_gap"],
    )
    family(
        "repro_broker_pending", "gauge",
        "Queries currently queued or running.",
        status["pending"],
    )
    family(
        "repro_broker_pool_size", "gauge",
        "Configured evaluation concurrency.",
        status["pool_size"],
    )
    family(
        "repro_service_uptime_seconds", "gauge",
        "Seconds since the broker started.",
        f"{status['uptime_s']:.3f}",
    )
    if farm is not None:
        family(
            "repro_farm_workers_busy", "gauge",
            "Farm workers currently evaluating a task.",
            farm["busy"],
        )
        family(
            "repro_farm_workers_idle", "gauge",
            "Farm workers ready for a task.",
            farm["idle"],
        )
        family(
            "repro_farm_queued", "gauge",
            "Tasks waiting for an idle farm worker.",
            farm["queued"],
        )
        family(
            "repro_farm_handoff_entries", "gauge",
            "Distinct scenario matrices in the farm handoff registry.",
            farm["handoff_entries"],
        )
        family(
            "repro_farm_recycled_total", "counter",
            "Workers retired and replaced after recycle_after tasks.",
            farm["recycled_total"],
        )
        family(
            "repro_farm_crashed_total", "counter",
            "Worker processes that died unexpectedly.",
            farm["crashed_total"],
        )
        family(
            "repro_farm_retried_total", "counter",
            "In-flight tasks requeued after a worker crash.",
            farm["retried_total"],
        )
        # Per-worker series: one labeled sample per live worker.
        labeled(
            "repro_farm_worker_busy", "gauge",
            "Whether a farm worker is evaluating a task (by worker id).",
            [
                f'repro_farm_worker_busy{{worker="{worker["id"]}"}}'
                f' {1 if worker["state"] == "busy" else 0}'
                for worker in farm["workers"]
            ],
        )
        labeled(
            "repro_farm_worker_tasks_total", "counter",
            "Tasks completed by a farm worker (by worker id).",
            [
                f'repro_farm_worker_tasks_total{{worker="{worker["id"]}"}}'
                f' {worker["tasks_completed"]}'
                for worker in farm["workers"]
            ],
        )
    # Per-stage latency histograms (trace spans observe into these even
    # when the ring is disabled -- they only need an active session).
    lines.extend(
        histogram_exposition(
            "repro_stage_seconds",
            "Wall seconds per traced pipeline stage.",
            broker.stage_histograms(),
        )
    )
    return "\n".join(lines) + "\n"


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes /query, /status, /metrics onto the server's broker."""

    server: "SPQService"
    protocol_version = "HTTP/1.1"

    # --- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _respond(self, code: int, payload, content_type="application/json") -> None:
        body = (
            payload.encode()
            if isinstance(payload, str)
            else json.dumps(payload).encode()
        )
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, kind: str, message: str) -> None:
        # Error paths may leave an unread request body in the socket
        # (e.g. an oversized POST rejected before draining); closing the
        # connection keeps HTTP/1.1 keep-alive framing intact.
        self.close_connection = True
        self._respond(code, {"error": {"kind": kind, "message": message}})

    # --- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/status":
            self._respond(200, {"status": "ok", **self.server.broker.status()})
        elif self.path == "/metrics":
            self._respond(
                200, metrics_text(self.server.broker), "text/plain; version=0.0.4"
            )
        elif self.path.startswith("/trace/"):
            self._get_trace(self.path[len("/trace/"):])
        else:
            self._error(404, "not-found", f"no route {self.path!r}")

    def _get_trace(self, trace_id: str) -> None:
        ring = self.server.broker.trace_ring
        if ring is None:
            self._error(
                404, "tracing-disabled",
                "tracing is disabled (config.trace_enabled = False)",
            )
            return
        tree = ring.tree(trace_id, wait_s=_TRACE_WAIT_S)
        if tree is None:
            self._error(
                404, "unknown-trace",
                f"no trace {trace_id!r} (unknown id, or evicted from the"
                f" ring of {ring.capacity})",
            )
            return
        self._respond(200, tree)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path not in ("/query", "/update"):
            self._error(404, "not-found", f"no route {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, "bad-request", "body required (JSON, <= 4 MiB)")
            return
        try:
            request = json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError) as error:
            self._error(400, "bad-request", f"invalid JSON: {error}")
            return
        if self.path == "/update":
            self._post_update(request)
            return
        if not isinstance(request, dict) or not isinstance(
            request.get("query"), str
        ):
            self._error(400, "bad-request", 'expected {"query": "<sPaQL>", ...}')
            return
        method = request.get("method", "summarysearch")
        overrides = request.get("overrides", {})
        if not isinstance(overrides, dict):
            self._error(400, "bad-request", '"overrides" must be an object')
            return
        unknown = set(overrides) - {f.name for f in dataclasses.fields(SPQConfig)}
        if unknown:
            self._error(
                400, "bad-request", f"unknown override(s): {sorted(unknown)}"
            )
            return
        if request.get("deadline_ms") is not None:
            # Top-level deadline_ms is sugar for the override (and wins
            # over a duplicate inside "overrides").
            overrides = {**overrides, "deadline_ms": request["deadline_ms"]}
        want_trace = bool(request.get("trace", False))
        started = time.perf_counter()
        try:
            future = self.server.broker.submit(
                request["query"], method=method, **overrides
            )
            result = future.result()
        except BrokerSaturatedError as error:
            self._error(503, "saturated", str(error))
            return
        except (ParseError, CompileError, SchemaError, VGFunctionError) as error:
            self._error(400, "parse", str(error))
            return
        except DeadlineExpiredError as error:
            self._error(504, "deadline-expired", str(error))
            return
        except EvaluationError as error:
            # Bad client-supplied config values (e.g. a non-numeric
            # deadline_ms) are malformed requests, not solve failures.
            self._error(400, "bad-request", str(error))
            return
        except SPQError as error:
            self._error(409, "solve", str(error))
            return
        except Exception as error:  # noqa: BLE001 - surface as JSON 500
            self._error(500, "internal", f"{type(error).__name__}: {error}")
            return
        payload = result_payload(result, time.perf_counter() - started)
        self._finish_query(payload, future, want_trace)

    def _post_update(self, request) -> None:
        """``POST /update`` — apply one relation delta (docs/live_data.md)."""
        if not isinstance(request, dict) or not isinstance(
            request.get("table"), str
        ):
            self._error(
                400, "bad-request",
                'expected {"table": "<name>", "delta": {...}}',
            )
            return
        delta = request.get("delta")
        if not isinstance(delta, dict):
            self._error(400, "bad-request", '"delta" must be an object')
            return
        try:
            summary = self.server.broker.apply_update(request["table"], delta)
        except SchemaError as error:
            message = str(error)
            if "unknown table" in message:
                self._error(404, "unknown-table", message)
            else:
                self._error(400, "bad-delta", message)
            return
        except SPQError as error:
            self._error(503, "unavailable", str(error))
            return
        except Exception as error:  # noqa: BLE001 - surface as JSON 500
            self._error(500, "internal", f"{type(error).__name__}: {error}")
            return
        self._respond(200, {"status": "ok", **summary})

    def _finish_query(self, payload: dict, future, want_trace: bool) -> None:
        payload["store"] = self.server.broker.store_stats()
        trace_id = getattr(future, "trace_id", None)
        ring = self.server.broker.trace_ring
        if trace_id is not None and ring is not None:
            payload["trace_id"] = trace_id
            if want_trace:
                # The root span lands in a done-callback, which may run
                # a beat after future.result() wakes us: wait on the
                # ring's condition, not just a snapshot.
                payload["trace"] = ring.tree(trace_id, wait_s=_TRACE_WAIT_S)
        self._respond(200, payload)


class SPQService(ThreadingHTTPServer):
    """The package-query HTTP service: a ThreadingHTTPServer + broker.

    ``port=0`` binds an ephemeral port (see :attr:`server_port`), which
    is what the end-to-end tests and the smoke script use.  The service
    does not own the broker unless ``own_broker=True`` (then
    :meth:`shutdown` also closes the broker and its store).
    """

    daemon_threads = True
    #: Listen backlog.  The stdlib default of 5 resets connections under
    #: a concurrent-client burst on a loaded host (the accept loop
    #: competes with handler threads for the GIL while handshakes queue);
    #: admission control — not the TCP backlog — is the intended place
    #: to shed load.
    request_queue_size = 128

    def __init__(
        self,
        broker: QueryBroker,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
        own_broker: bool = False,
    ):
        super().__init__((host, port), _ServiceHandler)
        self.broker = broker
        self.verbose = verbose
        self.own_broker = own_broker
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        return (self.server_address[0], self.server_port)

    def start_background(self) -> "SPQService":
        """Serve on a daemon thread (tests and embedded use)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="spq-service", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving; join the background thread; close owned broker."""
        super().shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.server_close()
        if self.own_broker:
            self.broker.close()
