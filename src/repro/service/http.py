"""Stdlib HTTP front-end for the query broker.

A thin JSON protocol over :class:`http.server.ThreadingHTTPServer` (one
handler thread per connection; actual evaluation concurrency is bounded
by the broker's pool):

``POST /query``
    Request body: ``{"query": "<sPaQL>", "method": "summarysearch",
    "overrides": {"seed": 7, ...}}`` (``method`` and ``overrides`` are
    optional; overrides are :class:`repro.config.SPQConfig` fields).
    Response: ``{"feasible": ..., "objective": ..., "package": {...},
    "wall_time_s": ..., "store": {...}}``.  Errors map to status codes:
    400 (bad request / parse / compile), 409 (solve/evaluation failure),
    503 (broker saturated), 500 (unexpected).

``GET /status``
    Broker pool state, lifetime counters, uptime, store statistics.

``GET /metrics``
    Prometheus text exposition of the same counters
    (``repro_store_hits_total`` etc.).

Started from the CLI via ``repro serve`` or embedded via
:class:`SPQService` (``port=0`` binds an ephemeral port for tests).
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..config import SPQConfig
from ..errors import (
    CompileError,
    ParseError,
    SchemaError,
    SPQError,
    VGFunctionError,
)
from .broker import BrokerSaturatedError, QueryBroker

#: Maximum accepted request body (guards the JSON parse, not the solve).
MAX_BODY_BYTES = 4 * 1024 * 1024


def _json_value(value):
    """Coerce numpy scalars to JSON-serializable python values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_json_value(v) for v in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def result_payload(result, wall_time_s: float) -> dict:
    """JSON document for one PackageResult."""
    payload = {
        "method": result.method,
        "feasible": bool(result.feasible),
        "succeeded": bool(result.succeeded),
        "objective": _json_value(result.objective),
        "epsilon_upper": _json_value(result.epsilon_upper),
        "message": result.message,
        "wall_time_s": wall_time_s,
        "package": None,
    }
    if result.stats is not None:
        payload["stats"] = {
            "n_iterations": result.stats.n_iterations,
            "final_n_scenarios": result.stats.final_n_scenarios,
            "final_n_summaries": result.stats.final_n_summaries,
            "total_time": result.stats.total_time,
            "timed_out": result.stats.timed_out,
        }
    if result.package is not None:
        relation = result.package.to_relation()
        payload["package"] = {
            "total_count": result.package.total_count,
            "n_distinct": result.package.n_distinct,
            "multiplicities": {
                str(k): v for k, v in result.package.key_multiplicities().items()
            },
            "columns": relation.column_names,
            "rows": [
                {k: _json_value(v) for k, v in row.items()}
                for row in relation.iter_rows()
            ],
        }
    return payload


def metrics_text(broker: QueryBroker) -> str:
    """Prometheus text exposition of broker + store + farm counters."""
    status = broker.status()
    store = status.pop("store")
    scale = status.pop("scale")
    farm = status.pop("farm", None)
    lines = []

    def counter(name: str, value, kind: str = "counter") -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {value}")

    counter("repro_store_hits_total", store["hits"])
    counter("repro_store_misses_total", store["misses"])
    counter("repro_store_generations_total", store["generations"])
    counter("repro_store_generated_columns_total", store["generated_columns"])
    counter("repro_store_evictions_total", store["evictions"])
    counter("repro_store_spills_total", store["spills"])
    counter("repro_store_adopted_total", store["adopted"])
    counter("repro_store_bytes_resident", store["bytes_resident"], "gauge")
    counter("repro_store_bytes_spilled", store["bytes_spilled"], "gauge")
    counter("repro_store_entries", store["entries"], "gauge")
    # Out-of-core tier (repro.scale): stochastic SketchRefine activity
    # and the ColumnStore chunk caches' resident bytes.
    counter("repro_scale_runs_total", scale["runs"])
    counter("repro_scale_partitions", scale["partitions"])
    counter("repro_scale_refines_total", scale["refines"])
    counter("repro_scale_sketch_seconds", scale["sketch_seconds"])
    counter("repro_scale_refine_seconds", scale["refine_seconds"])
    counter("repro_scale_index_hits_total", scale["index_hits"])
    counter("repro_scale_index_misses_total", scale["index_misses"])
    counter("repro_scale_resident_bytes", scale["resident_bytes"], "gauge")
    counter(
        "repro_scale_resident_peak_bytes",
        scale["resident_peak_bytes"],
        "gauge",
    )
    counter("repro_broker_submitted_total", status["submitted"])
    counter("repro_broker_completed_total", status["completed"])
    counter("repro_broker_failed_total", status["failed"])
    counter("repro_broker_deduplicated_total", status["deduplicated"])
    counter("repro_broker_rejected_total", status["rejected_total"])
    counter("repro_broker_pending", status["pending"], "gauge")
    counter("repro_broker_pool_size", status["pool_size"], "gauge")
    counter("repro_service_uptime_seconds", f"{status['uptime_s']:.3f}", "gauge")
    if farm is not None:
        counter("repro_farm_workers_busy", farm["busy"], "gauge")
        counter("repro_farm_workers_idle", farm["idle"], "gauge")
        counter("repro_farm_queued", farm["queued"], "gauge")
        counter("repro_farm_handoff_entries", farm["handoff_entries"], "gauge")
        counter("repro_farm_recycled_total", farm["recycled_total"])
        counter("repro_farm_crashed_total", farm["crashed_total"])
        counter("repro_farm_retried_total", farm["retried_total"])
        # Per-worker gauges: one labeled time series per live worker.
        lines.append("# TYPE repro_farm_worker_busy gauge")
        for worker in farm["workers"]:
            busy = 1 if worker["state"] == "busy" else 0
            lines.append(
                f'repro_farm_worker_busy{{worker="{worker["id"]}"}} {busy}'
            )
        lines.append("# TYPE repro_farm_worker_tasks_total counter")
        for worker in farm["workers"]:
            lines.append(
                f'repro_farm_worker_tasks_total{{worker="{worker["id"]}"}}'
                f' {worker["tasks_completed"]}'
            )
    return "\n".join(lines) + "\n"


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes /query, /status, /metrics onto the server's broker."""

    server: "SPQService"
    protocol_version = "HTTP/1.1"

    # --- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _respond(self, code: int, payload, content_type="application/json") -> None:
        body = (
            payload.encode()
            if isinstance(payload, str)
            else json.dumps(payload).encode()
        )
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, kind: str, message: str) -> None:
        # Error paths may leave an unread request body in the socket
        # (e.g. an oversized POST rejected before draining); closing the
        # connection keeps HTTP/1.1 keep-alive framing intact.
        self.close_connection = True
        self._respond(code, {"error": {"kind": kind, "message": message}})

    # --- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/status":
            self._respond(200, {"status": "ok", **self.server.broker.status()})
        elif self.path == "/metrics":
            self._respond(
                200, metrics_text(self.server.broker), "text/plain; version=0.0.4"
            )
        else:
            self._error(404, "not-found", f"no route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path != "/query":
            self._error(404, "not-found", f"no route {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, "bad-request", "body required (JSON, <= 4 MiB)")
            return
        try:
            request = json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError) as error:
            self._error(400, "bad-request", f"invalid JSON: {error}")
            return
        if not isinstance(request, dict) or not isinstance(
            request.get("query"), str
        ):
            self._error(400, "bad-request", 'expected {"query": "<sPaQL>", ...}')
            return
        method = request.get("method", "summarysearch")
        overrides = request.get("overrides", {})
        if not isinstance(overrides, dict):
            self._error(400, "bad-request", '"overrides" must be an object')
            return
        unknown = set(overrides) - {f.name for f in dataclasses.fields(SPQConfig)}
        if unknown:
            self._error(
                400, "bad-request", f"unknown override(s): {sorted(unknown)}"
            )
            return
        started = time.perf_counter()
        try:
            result = self.server.broker.execute(
                request["query"], method=method, **overrides
            )
        except BrokerSaturatedError as error:
            self._error(503, "saturated", str(error))
            return
        except (ParseError, CompileError, SchemaError, VGFunctionError) as error:
            self._error(400, "parse", str(error))
            return
        except SPQError as error:
            self._error(409, "solve", str(error))
            return
        except Exception as error:  # noqa: BLE001 - surface as JSON 500
            self._error(500, "internal", f"{type(error).__name__}: {error}")
            return
        payload = result_payload(result, time.perf_counter() - started)
        payload["store"] = self.server.broker.store_stats()
        self._respond(200, payload)


class SPQService(ThreadingHTTPServer):
    """The package-query HTTP service: a ThreadingHTTPServer + broker.

    ``port=0`` binds an ephemeral port (see :attr:`server_port`), which
    is what the end-to-end tests and the smoke script use.  The service
    does not own the broker unless ``own_broker=True`` (then
    :meth:`shutdown` also closes the broker and its store).
    """

    daemon_threads = True
    #: Listen backlog.  The stdlib default of 5 resets connections under
    #: a concurrent-client burst on a loaded host (the accept loop
    #: competes with handler threads for the GIL while handshakes queue);
    #: admission control — not the TCP backlog — is the intended place
    #: to shed load.
    request_queue_size = 128

    def __init__(
        self,
        broker: QueryBroker,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
        own_broker: bool = False,
    ):
        super().__init__((host, port), _ServiceHandler)
        self.broker = broker
        self.verbose = verbose
        self.own_broker = own_broker
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        return (self.server_address[0], self.server_port)

    def start_background(self) -> "SPQService":
        """Serve on a daemon thread (tests and embedded use)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="spq-service", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving; join the background thread; close owned broker."""
        super().shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.server_close()
        if self.own_broker:
            self.broker.close()
