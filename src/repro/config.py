"""Runtime configuration for stochastic package query evaluation.

The paper's algorithms expose a number of knobs (Algorithm 1 and 2
headers): the number of out-of-sample validation scenarios ``M_hat``, the
initial number of optimization scenarios ``M0`` and its increment ``m``,
the summary-count increment ``z``, and the user approximation bound
``epsilon``.  :class:`SPQConfig` bundles these together with
implementation knobs (solver backend, summary-generation strategy, seeds,
limits) so that an entire evaluation is reproducible from one object.

The paper's defaults (``M_hat = 1e6``/``1e7``, four-hour time limits) are
impractical for a test suite; the library defaults are scaled down but
every experiment script accepts paper-scale values.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .errors import EvaluationError

#: Seeding streams; keep values stable, they feed RNG key derivation.
STREAM_OPTIMIZATION = 0
STREAM_VALIDATION = 1
STREAM_EXPECTATION = 2
STREAM_DATASET = 3
STREAM_PROBE = 4
STREAM_PARTITION = 5

#: Summary generation strategies (Section 5.5).
SUMMARY_IN_MEMORY = "in-memory"
SUMMARY_TUPLE_WISE = "tuple-wise"
SUMMARY_SCENARIO_WISE = "scenario-wise"

_SUMMARY_STRATEGIES = (SUMMARY_IN_MEMORY, SUMMARY_TUPLE_WISE, SUMMARY_SCENARIO_WISE)

#: Solver backends implemented in ``repro.solver``.
SOLVER_HIGHS = "highs"
SOLVER_BRANCH_BOUND = "branch-bound"

_SOLVER_BACKENDS = (SOLVER_HIGHS, SOLVER_BRANCH_BOUND)

#: Serving-layer dispatch backends (``repro.service.broker``).
BACKEND_THREAD = "thread"
BACKEND_PROCESS = "process"

_SERVICE_BACKENDS = (BACKEND_THREAD, BACKEND_PROCESS)


@dataclass
class SPQConfig:
    """All knobs controlling one stochastic package query evaluation.

    Attributes mirror the symbols used in the paper where applicable:

    * ``n_validation_scenarios`` — ``M̂``, out-of-sample validation size.
    * ``n_initial_scenarios`` — ``M``, initial optimization scenarios.
    * ``scenario_increment`` — ``m``, added to ``M`` on validation failure.
    * ``summary_increment`` — ``z``, added to ``Z`` when a feasible but
      insufficiently accurate solution is found (Algorithm 2, line 9).
    * ``epsilon`` — user approximation error bound (``ε ≥ ε_min``).
    * ``max_scenarios`` — cap on ``M`` before declaring failure (the paper
      grows ``M`` up to 1000 before declaring TPC-H Q8 infeasible).
    """

    # --- Monte Carlo sizes -------------------------------------------------
    n_validation_scenarios: int = 10_000
    n_initial_scenarios: int = 100
    scenario_increment: int = 100
    max_scenarios: int = 1_000

    # --- SummarySearch -----------------------------------------------------
    initial_summaries: int = 1
    summary_increment: int = 1
    epsilon: float = 0.10
    summary_strategy: str = SUMMARY_IN_MEMORY
    #: Maximum CSA-Solve iterations before falling back to the best
    #: solution in the history (guards against slow α oscillation).
    max_csa_iterations: int = 25
    #: Maximum number of quality-refinement rounds (Z-growth steps taken
    #: after a feasible solution exists, Algorithm 2 line 9) before the
    #: best feasible solution is accepted.  ``None`` reproduces the
    #: paper's unbounded behaviour (grow Z all the way to M).
    max_quality_rounds: int | None = 8
    #: Use the convergence-acceleration trick of Section 5.5 (tuple-wise
    #: max for tuples in the incumbent solution when α decreases).
    convergence_acceleration: bool = True

    # --- expectation estimation (Section 3.2) ------------------------------
    #: Number of Monte Carlo scenarios averaged to estimate E[t_i.A] when
    #: the VG function has no closed-form mean.
    n_expectation_scenarios: int = 2_000
    #: Prefer analytic means when the VG function provides them.
    analytic_expectations: bool = True

    # --- bounds probing (Appendix B, assumption A1) -------------------------
    #: Scenarios sampled to estimate empirical value bounds (s̲, s̄) when
    #: the VG support is unbounded.
    n_probe_scenarios: int = 64

    # --- incremental & parallel evaluation ----------------------------------
    #: Reuse the deterministic MILP block across solver iterations: the
    #: base model is built and materialized once per evaluation, each
    #: SAA/CSA iteration clones it and appends only its indicator rows,
    #: and the previous iteration's solution seeds the next solve as a
    #: MIP start.  Warm starts guarantee iterations never regress below
    #: the previous solution; at the default (tight) ``mip_gap`` results
    #: are identical with the flag on or off, while under a loose gap the
    #: warm-started path may return a better within-gap package.
    incremental_solves: bool = True
    #: Worker processes for scenario-matrix generation (1 = sequential).
    #: Chunking is keyed by scenario/block identity, so results are
    #: bit-identical to sequential generation for any worker count.
    n_workers: int = 1

    # --- stochastic model construction ---------------------------------------
    #: VG-registry overrides ``("Attr=kind:param=value,...", ...)`` applied
    #: wherever a catalog is assembled from this config — the CLI's
    #: ``--table``/``--workload`` registration and
    #: ``QuerySpec.build_dataset`` both route through
    #: :func:`repro.mcdb.apply_vg_overrides`.  Each entry replaces (or
    #: adds) one stochastic attribute with a VG built by name from the
    #: registry (see :func:`repro.mcdb.vg_names`), e.g.
    #: ``"Gain=gaussian_copula:base_column=exp_gain,rho=0.6,group_column=sector"``.
    vg_overrides: tuple = ()

    # --- serving (repro.service) --------------------------------------------
    #: Byte budget for resident scenario matrices in the shared
    #: ScenarioStore (None = unlimited).  Under pressure the store spills
    #: LRU entries to np.memmap files (or evicts, see
    #: ``scenario_store_spill``) without changing query results.
    scenario_store_budget: int | None = None
    #: Whether the store spills over-budget entries to disk-backed
    #: memmaps (True) or evicts them outright (False).
    scenario_store_spill: bool = True
    #: Engine sessions (worker threads) in the QueryBroker's pool.
    service_pool_size: int = 4
    #: Admission-control ceiling on queued+running broker queries;
    #: ``None`` defaults to ``4 * service_pool_size``.
    service_max_pending: int | None = None
    #: Dispatch backend for concurrent queries: ``"thread"`` (engine
    #: sessions on a thread pool — solves contend on the GIL) or
    #: ``"process"`` (a SolveFarm of persistent worker processes with
    #: memmap scenario handoff, worker recycling, and crash recovery).
    service_backend: str = BACKEND_THREAD
    #: Gracefully restart a farm worker after this many completed
    #: queries (bounds per-process memory growth); ``None`` never
    #: recycles.  Process backend only.
    worker_recycle_after: int | None = None

    # --- out-of-core scale tier (repro.scale) --------------------------------
    #: Partition count for the stochastic SketchRefine driver (method
    #: ``"sketchrefine"``): active tuples are quantile-cut into this many
    #: groups of similar pilot behaviour, one sketch representative each.
    #: Clamped to the number of active tuples.
    scale_n_partitions: int = 16
    #: Pilot scenarios realized (stream ``STREAM_PARTITION``, cached in
    #: the shared scenario store) to estimate per-tuple mean/variance for
    #: partitioning and the sketch representatives' parameters.
    scale_pilot_scenarios: int = 16
    #: Rows per on-disk chunk when relations are written to columnar
    #: storage (``Relation.to_disk``, ``read_csv_to_store``, the chunked
    #: dataset builders).
    scale_chunk_rows: int = 65_536
    #: Byte budget for a ColumnStore's resident chunk cache (None =
    #: unbounded).  Applies to stores opened through this config (the
    #: CLI's ``--scale-out`` path); peak usage is surfaced as the
    #: ``repro_scale_resident_peak_bytes`` gauge.
    scale_resident_budget: int | None = None
    #: Auto-route threshold: a stochastic query whose active-tuple count
    #: reaches this routes from ``summarysearch`` to the scale driver
    #: (``None`` disables auto-routing; the CLI's ``--scale-out`` sets
    #: it).  Explicit ``method="sketchrefine"`` requests always use the
    #: driver regardless.
    scale_threshold_rows: int | None = None
    #: Delta-scoped repair: after a relation delta, the scale driver may
    #: splice the partition index (re-labeling only dirty rows) and reuse
    #: clean partitions' refined sub-packages from the previous solve of
    #: the same query, re-refining only dirty partitions and re-validating
    #: the combined package out-of-sample (see ``docs/live_data.md``).
    #: Disabling forces every post-delta solve down the cold path.
    scale_delta_reuse: bool = True

    # --- observability (repro.obs) ------------------------------------------
    #: Record trace spans for every evaluation (parse/compile/solve/
    #: validate stages, plus broker/worker spans when serving).  The
    #: disabled path reduces every instrumentation point to a shared
    #: no-op object; enabled overhead is bounded by the warm-query
    #: benchmark (<2%, ``benchmarks/bench_service.py``).
    trace_enabled: bool = True
    #: Completed traces kept in the broker's in-memory ring for
    #: ``GET /trace/<id>`` (oldest evicted beyond this).
    trace_ring_size: int = 256
    #: Aggregate per-stage *self* time (wall minus children) into the
    #: process-wide flat profile (``repro.obs.profile.stage_profile``;
    #: printed by ``repro run --profile-stages``).
    profile_stages: bool = False
    #: Broker queries slower than this are appended to the slow-query
    #: JSONL log; ``None`` uses the log's default (1s) when a log path
    #: is set.
    slow_query_threshold_s: float | None = None
    #: Path of the slow-query JSONL log; ``None`` disables it.
    slow_query_log: str | None = None
    #: Rotate the slow-query log (copy-truncate to ``<path>.1``) once an
    #: append would push it past this many bytes; ``None`` never rotates.
    slow_query_log_max_bytes: int | None = None

    # --- solving -----------------------------------------------------------
    solver: str = SOLVER_HIGHS
    solver_time_limit: float = 60.0
    mip_gap: float = 1e-6
    #: Fallback multiplicity bound when no finite bound is derivable from
    #: the query (see silp.varbounds); ``None`` raises instead.
    default_multiplicity_bound: int | None = None

    # --- reproducibility ---------------------------------------------------
    seed: int = 42

    # --- evaluation budget ---------------------------------------------------
    time_limit: float = 3600.0
    #: Per-query latency budget in milliseconds (QoS tier).  ``None``
    #: leaves only ``time_limit`` in force.  When set, evaluation runs
    #: *anytime*: on expiry the best validated incumbent found so far is
    #: returned with a relative optimality gap (``PackageResult.anytime``)
    #: instead of raising a timeout.  The serving layer rejects
    #: already-expired work at admission and orders the solve farm's
    #: pending queue earliest-deadline-first (see ``docs/qos.md``).
    deadline_ms: float | None = None

    def effective_time_limit(self) -> float:
        """The per-evaluation wall budget in seconds.

        The tighter of the batch ``time_limit`` and the per-query
        ``deadline_ms``; evaluators build their :class:`Deadline` from
        this so a QoS deadline and the paper's run budget share one
        enforcement path.
        """
        if self.deadline_ms is None:
            return self.time_limit
        return min(self.time_limit, self.deadline_ms / 1000.0)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`EvaluationError` if any knob is out of range."""
        if self.n_validation_scenarios < 1:
            raise EvaluationError("n_validation_scenarios must be >= 1")
        if self.n_initial_scenarios < 1:
            raise EvaluationError("n_initial_scenarios must be >= 1")
        if self.scenario_increment < 1:
            raise EvaluationError("scenario_increment must be >= 1")
        if self.max_scenarios < self.n_initial_scenarios:
            raise EvaluationError("max_scenarios must be >= n_initial_scenarios")
        if self.initial_summaries < 1:
            raise EvaluationError("initial_summaries must be >= 1")
        if self.summary_increment < 1:
            raise EvaluationError("summary_increment must be >= 1")
        if self.epsilon < 0:
            raise EvaluationError("epsilon must be nonnegative")
        if self.summary_strategy not in _SUMMARY_STRATEGIES:
            raise EvaluationError(
                f"unknown summary_strategy {self.summary_strategy!r};"
                f" expected one of {_SUMMARY_STRATEGIES}"
            )
        if self.solver not in _SOLVER_BACKENDS:
            raise EvaluationError(
                f"unknown solver {self.solver!r}; expected one of {_SOLVER_BACKENDS}"
            )
        if self.time_limit <= 0:
            raise EvaluationError("time_limit must be positive")
        if self.deadline_ms is not None:
            if isinstance(self.deadline_ms, bool) or not isinstance(
                self.deadline_ms, (int, float)
            ):
                raise EvaluationError("deadline_ms must be a number or None")
            if self.deadline_ms <= 0:
                raise EvaluationError("deadline_ms must be positive or None")
        if self.n_workers < 1:
            raise EvaluationError("n_workers must be >= 1")
        if isinstance(self.vg_overrides, str):
            raise EvaluationError(
                "vg_overrides must be a sequence of specs, not a bare string"
            )
        for spec in self.vg_overrides:
            # Fail fast on malformed specs/unknown families; construction
            # is relation-free so this is safe at validation time.
            from .mcdb.stochastic import parse_attribute_vg

            parse_attribute_vg(spec)
        if self.scenario_store_budget is not None and self.scenario_store_budget < 1:
            raise EvaluationError("scenario_store_budget must be positive or None")
        if self.service_pool_size < 1:
            raise EvaluationError("service_pool_size must be >= 1")
        if self.service_max_pending is not None and self.service_max_pending < 1:
            raise EvaluationError("service_max_pending must be positive or None")
        if self.service_backend not in _SERVICE_BACKENDS:
            raise EvaluationError(
                f"unknown service_backend {self.service_backend!r};"
                f" expected one of {_SERVICE_BACKENDS}"
            )
        if self.worker_recycle_after is not None and self.worker_recycle_after < 1:
            raise EvaluationError("worker_recycle_after must be >= 1 or None")
        if self.scale_n_partitions < 1:
            raise EvaluationError("scale_n_partitions must be >= 1")
        if self.scale_pilot_scenarios < 2:
            raise EvaluationError(
                "scale_pilot_scenarios must be >= 2 (variance needs two draws)"
            )
        if self.scale_chunk_rows < 1:
            raise EvaluationError("scale_chunk_rows must be >= 1")
        if self.scale_resident_budget is not None and self.scale_resident_budget < 1:
            raise EvaluationError("scale_resident_budget must be positive or None")
        if self.scale_threshold_rows is not None and self.scale_threshold_rows < 1:
            raise EvaluationError("scale_threshold_rows must be >= 1 or None")
        if self.trace_ring_size < 1:
            raise EvaluationError("trace_ring_size must be >= 1")
        if self.slow_query_threshold_s is not None and self.slow_query_threshold_s < 0:
            raise EvaluationError("slow_query_threshold_s must be >= 0 or None")
        if self.slow_query_log_max_bytes is not None and (
            self.slow_query_log_max_bytes < 1
        ):
            raise EvaluationError(
                "slow_query_log_max_bytes must be >= 1 or None"
            )

    def replace(self, **changes) -> "SPQConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


#: A conservative default configuration used across tests and examples.
DEFAULT_CONFIG = SPQConfig()


def paper_scale_config() -> SPQConfig:
    """Configuration matching the paper's experimental setup (Section 6).

    Only use this for long-running experiments: validation uses one
    million scenarios and the time limit is four hours.
    """
    return SPQConfig(
        n_validation_scenarios=1_000_000,
        n_initial_scenarios=100,
        scenario_increment=100,
        max_scenarios=1_000,
        time_limit=4 * 3600.0,
        solver_time_limit=4 * 3600.0,
    )
