"""Matrix-form MILP construction with indicator-constraint support.

The SAA/CSA formulations (Sections 3.1 and 4.1) need, per probabilistic
constraint and per scenario/summary, an *indicator constraint*
``y = 1 ⟹ Σ s_ij·x_i ⊙ v`` plus a cardinality constraint over the
indicators.  CPLEX supports indicators natively; here they are encoded
with data-derived big-M values, which is exact when variable bounds are
finite (they are — ``silp.varbounds`` guarantees it):

* ``y=1 ⟹ a·x ≥ v``   becomes   ``a·x − (v − lo)·y ≥ lo``
* ``y=1 ⟹ a·x ≤ v``   becomes   ``a·x + (hi − v)·y ≤ hi``

where ``lo/hi`` bound ``a·x`` over the variable box.  If the implication
is vacuous (``lo ≥ v`` resp. ``hi ≤ v``) no row is emitted; if it is
unsatisfiable the indicator is pinned to zero.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..errors import SolverError
from .result import MILPResult

SENSE_MIN = "minimize"
SENSE_MAX = "maximize"


class MILPBuilder:
    """Incrementally builds ``min/max c·x  s.t.  lb ≤ Ax ≤ ub, x ∈ box``."""

    def __init__(self) -> None:
        self._names: list[str] = []
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._integer: list[bool] = []
        self._rows: list[tuple[np.ndarray, np.ndarray]] = []
        self._row_lb: list[float] = []
        self._row_ub: list[float] = []
        self._objective: dict[int, float] = {}
        self._sense = SENSE_MIN

    # --- variables ---------------------------------------------------------------

    def add_variable(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = np.inf,
        integer: bool = True,
    ) -> int:
        """Register one decision variable; returns its index."""
        if lb > ub:
            raise SolverError(f"variable {name!r} has lb {lb} > ub {ub}")
        self._names.append(name)
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        self._integer.append(bool(integer))
        return len(self._names) - 1

    def add_variables(
        self,
        prefix: str,
        count: int,
        lb=0.0,
        ub=np.inf,
        integer: bool = True,
    ) -> np.ndarray:
        """Vector helper: returns the indices of ``count`` new variables."""
        lbs = np.broadcast_to(np.asarray(lb, dtype=float), (count,))
        ubs = np.broadcast_to(np.asarray(ub, dtype=float), (count,))
        start = len(self._names)
        for i in range(count):
            self.add_variable(f"{prefix}[{i}]", lbs[i], ubs[i], integer)
        return np.arange(start, start + count)

    @property
    def n_variables(self) -> int:
        return len(self._names)

    @property
    def n_constraints(self) -> int:
        return len(self._rows)

    def variable_bounds(self, index: int) -> tuple[float, float]:
        """The (lb, ub) box of variable ``index``."""
        return self._lb[index], self._ub[index]

    # --- constraints ----------------------------------------------------------------

    def add_constraint(
        self,
        indices,
        coefficients,
        lb: float = -np.inf,
        ub: float = np.inf,
    ) -> int:
        """Add ``lb ≤ Σ coefficients·x[indices] ≤ ub``."""
        idx = np.asarray(indices, dtype=np.int64)
        coef = np.asarray(coefficients, dtype=float)
        if idx.shape != coef.shape:
            raise SolverError("indices and coefficients must have equal shape")
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_variables):
            raise SolverError("constraint references unknown variable index")
        if lb > ub:
            raise SolverError(f"constraint has lb {lb} > ub {ub}")
        self._rows.append((idx, coef))
        self._row_lb.append(float(lb))
        self._row_ub.append(float(ub))
        return len(self._rows) - 1

    def row_value_bounds(self, indices, coefficients) -> tuple[float, float]:
        """Range of ``Σ c·x`` over the current variable box."""
        idx = np.asarray(indices, dtype=np.int64)
        coef = np.asarray(coefficients, dtype=float)
        lo = hi = 0.0
        lbs = np.asarray(self._lb)[idx]
        ubs = np.asarray(self._ub)[idx]
        low_terms = np.minimum(coef * lbs, coef * ubs)
        high_terms = np.maximum(coef * lbs, coef * ubs)
        lo = float(low_terms.sum())
        hi = float(high_terms.sum())
        return lo, hi

    def add_indicator(
        self,
        binary_index: int,
        indices,
        coefficients,
        op: str,
        rhs: float,
    ) -> None:
        """Encode ``x[binary_index] = 1 ⟹ Σ c·x ⊙ rhs`` via big-M."""
        lb, ub = self.variable_bounds(binary_index)
        if not (lb >= 0 and ub <= 1 and self._integer[binary_index]):
            raise SolverError("indicator variable must be binary")
        lo, hi = self.row_value_bounds(indices, coefficients)
        if not np.isfinite(lo) or not np.isfinite(hi):
            raise SolverError(
                "indicator constraints need finite variable bounds for the"
                " big-M encoding (see silp.varbounds)"
            )
        idx = np.append(np.asarray(indices, dtype=np.int64), binary_index)
        coef = np.asarray(coefficients, dtype=float)
        if op == ">=":
            if lo >= rhs:
                return  # implication always holds
            if hi < rhs:
                # y = 1 can never satisfy the inner constraint: pin y = 0.
                self.add_constraint([binary_index], [1.0], ub=0.0)
                return
            big_m = rhs - lo
            self.add_constraint(idx, np.append(coef, -big_m), lb=lo)
        elif op == "<=":
            if hi <= rhs:
                return
            if lo > rhs:
                self.add_constraint([binary_index], [1.0], ub=0.0)
                return
            big_m = hi - rhs
            self.add_constraint(idx, np.append(coef, big_m), ub=hi)
        else:
            raise SolverError(f"indicator operator must be <= or >=, got {op!r}")

    # --- objective -------------------------------------------------------------------

    def set_objective(self, indices, coefficients, sense: str = SENSE_MIN) -> None:
        """Set the (sparse) linear objective and its sense."""
        if sense not in (SENSE_MIN, SENSE_MAX):
            raise SolverError(f"unknown objective sense {sense!r}")
        idx = np.asarray(indices, dtype=np.int64)
        coef = np.asarray(coefficients, dtype=float)
        if idx.shape != coef.shape:
            raise SolverError("indices and coefficients must have equal shape")
        self._objective = {int(i): float(c) for i, c in zip(idx, coef)}
        self._sense = sense

    # --- materialization ---------------------------------------------------------------

    def to_arrays(self):
        """Materialize ``(c, A, row_lb, row_ub, var_lb, var_ub, integrality)``.

        ``c`` is in *minimization* form (negated for maximize); callers
        translate objective values back via :meth:`objective_sign`.
        """
        n = self.n_variables
        c = np.zeros(n)
        for i, v in self._objective.items():
            c[i] = v
        if self._sense == SENSE_MAX:
            c = -c
        if self._rows:
            data, rows, cols = [], [], []
            for r, (idx, coef) in enumerate(self._rows):
                rows.extend([r] * len(idx))
                cols.extend(idx.tolist())
                data.extend(coef.tolist())
            matrix = sparse.csr_matrix(
                (data, (rows, cols)), shape=(len(self._rows), n)
            )
        else:
            matrix = sparse.csr_matrix((0, n))
        return (
            c,
            matrix,
            np.asarray(self._row_lb),
            np.asarray(self._row_ub),
            np.asarray(self._lb),
            np.asarray(self._ub),
            np.asarray(self._integer, dtype=bool),
        )

    @property
    def sense(self) -> str:
        return self._sense

    def objective_value(self, x: np.ndarray) -> float:
        """Evaluate the objective at ``x`` in the caller's sense."""
        return float(sum(c * x[i] for i, c in self._objective.items()))

    # --- solving ----------------------------------------------------------------------

    def solve(
        self,
        backend: str = "highs",
        time_limit: float | None = None,
        mip_gap: float = 1e-6,
    ) -> MILPResult:
        """Solve with the requested backend; returns a :class:`MILPResult`."""
        from .branch_bound import solve_with_branch_bound
        from .highs import solve_with_highs

        if backend == "highs":
            return solve_with_highs(self, time_limit=time_limit, mip_gap=mip_gap)
        if backend == "branch-bound":
            return solve_with_branch_bound(
                self, time_limit=time_limit, mip_gap=mip_gap
            )
        raise SolverError(f"unknown solver backend {backend!r}")

    def check_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Verify ``x`` against all rows and bounds (testing aid)."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_variables,):
            return False
        lbs = np.asarray(self._lb)
        ubs = np.asarray(self._ub)
        if np.any(x < lbs - tol) or np.any(x > ubs + tol):
            return False
        integers = np.asarray(self._integer, dtype=bool)
        if np.any(np.abs(x[integers] - np.round(x[integers])) > tol):
            return False
        for (idx, coef), lb, ub in zip(self._rows, self._row_lb, self._row_ub):
            value = float(coef @ x[idx])
            if value < lb - tol or value > ub + tol:
                return False
        return True
