"""Matrix-form MILP construction with indicator-constraint support.

The SAA/CSA formulations (Sections 3.1 and 4.1) need, per probabilistic
constraint and per scenario/summary, an *indicator constraint*
``y = 1 ⟹ Σ s_ij·x_i ⊙ v`` plus a cardinality constraint over the
indicators.  CPLEX supports indicators natively; here they are encoded
with data-derived big-M values, which is exact when variable bounds are
finite (they are — ``silp.varbounds`` guarantees it):

* ``y=1 ⟹ a·x ≥ v``   becomes   ``a·x − (v − lo)·y ≥ lo``
* ``y=1 ⟹ a·x ≤ v``   becomes   ``a·x + (hi − v)·y ≤ hi``

where ``lo/hi`` bound ``a·x`` over the variable box.  If the implication
is vacuous (``lo ≥ v`` resp. ``hi ≤ v``) no row is emitted; if it is
unsatisfiable the indicator is pinned to zero.

The builder also supports *incremental* reuse across closely related
models, which is how SummarySearch avoids rebuilding the deterministic
block of the DILP on every CSA iteration:

* :meth:`clone` copies a built base model in O(n) (sharing immutable row
  and cache storage) — the SAA/CSA loops clone a retained base template
  and append only their per-iteration indicator rows;
* :meth:`checkpoint` / :meth:`rollback` are the in-place alternative for
  single-consumer retain-and-append workflows;
* :meth:`to_arrays` caches the sparse rows it has already materialized
  and stacks new rows on top instead of re-building the full triplet
  list;
* :meth:`set_warm_start` records a candidate solution (e.g. the previous
  iteration's incumbent) that the backends use as a MIP start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..errors import SolverError
from .result import MILPResult

SENSE_MIN = "minimize"
SENSE_MAX = "maximize"


@dataclass(frozen=True)
class BuilderCheckpoint:
    """Restorable snapshot of a :class:`MILPBuilder`'s state.

    Only counts and the objective are stored: the builder is append-only,
    so rolling back means truncating to the recorded sizes.
    """

    n_variables: int
    n_constraints: int
    objective: dict
    sense: str


class MILPBuilder:
    """Incrementally builds ``min/max c·x  s.t.  lb ≤ Ax ≤ ub, x ∈ box``."""

    def __init__(self) -> None:
        self._names: list[str] = []
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._integer: list[bool] = []
        self._rows: list[tuple[np.ndarray, np.ndarray]] = []
        self._row_lb: list[float] = []
        self._row_ub: list[float] = []
        self._objective: dict[int, float] = {}
        self._sense = SENSE_MIN
        #: Materialized-CSR cache: (n_rows, data, indices, indptr) of the
        #: row block already converted by a previous ``to_arrays`` call.
        self._csr_cache: tuple[int, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._warm_start: np.ndarray | None = None
        #: (n_variables, n_constraints) the hint was last validated at;
        #: lets repeated validated_warm_start() calls skip the re-check.
        self._warm_start_valid_for: tuple[int, int] | None = None
        #: Bounds-as-arrays cache; entries are append-only, so a cache of
        #: the right length is current (rollback invalidates explicitly:
        #: rollback-then-append could restore the old length).
        self._bounds_cache: tuple[np.ndarray, np.ndarray] | None = None

    # --- variables ---------------------------------------------------------------

    def add_variable(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = np.inf,
        integer: bool = True,
    ) -> int:
        """Register one decision variable; returns its index."""
        if lb > ub:
            raise SolverError(f"variable {name!r} has lb {lb} > ub {ub}")
        self._names.append(name)
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        self._integer.append(bool(integer))
        return len(self._names) - 1

    def add_variables(
        self,
        prefix: str,
        count: int,
        lb=0.0,
        ub=np.inf,
        integer: bool = True,
    ) -> np.ndarray:
        """Vector helper: returns the indices of ``count`` new variables."""
        lbs = np.broadcast_to(np.asarray(lb, dtype=float), (count,))
        ubs = np.broadcast_to(np.asarray(ub, dtype=float), (count,))
        if np.any(lbs > ubs):
            bad = int(np.argmax(lbs > ubs))
            raise SolverError(
                f"variable {prefix}[{bad}] has lb {lbs[bad]} > ub {ubs[bad]}"
            )
        start = len(self._names)
        self._names.extend(f"{prefix}[{i}]" for i in range(count))
        self._lb.extend(lbs.astype(float).tolist())
        self._ub.extend(ubs.astype(float).tolist())
        self._integer.extend([bool(integer)] * count)
        return np.arange(start, start + count)

    @property
    def n_variables(self) -> int:
        return len(self._names)

    @property
    def n_constraints(self) -> int:
        return len(self._rows)

    def variable_bounds(self, index: int) -> tuple[float, float]:
        """The (lb, ub) box of variable ``index``."""
        return self._lb[index], self._ub[index]

    # --- constraints ----------------------------------------------------------------

    def add_constraint(
        self,
        indices,
        coefficients,
        lb: float = -np.inf,
        ub: float = np.inf,
    ) -> int:
        """Add ``lb ≤ Σ coefficients·x[indices] ≤ ub``."""
        idx = np.asarray(indices, dtype=np.int64)
        coef = np.asarray(coefficients, dtype=float)
        if idx.shape != coef.shape:
            raise SolverError("indices and coefficients must have equal shape")
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_variables):
            raise SolverError("constraint references unknown variable index")
        if lb > ub:
            raise SolverError(f"constraint has lb {lb} > ub {ub}")
        self._rows.append((idx, coef))
        self._row_lb.append(float(lb))
        self._row_ub.append(float(ub))
        return len(self._rows) - 1

    def _bound_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self._bounds_cache is None or len(self._bounds_cache[0]) != len(self._lb):
            self._bounds_cache = (
                np.asarray(self._lb, dtype=float),
                np.asarray(self._ub, dtype=float),
            )
        return self._bounds_cache

    def row_value_bounds(self, indices, coefficients) -> tuple[float, float]:
        """Range of ``Σ c·x`` over the current variable box."""
        idx = np.asarray(indices, dtype=np.int64)
        coef = np.asarray(coefficients, dtype=float)
        lo = hi = 0.0
        all_lbs, all_ubs = self._bound_arrays()
        lbs = all_lbs[idx]
        ubs = all_ubs[idx]
        low_terms = np.minimum(coef * lbs, coef * ubs)
        high_terms = np.maximum(coef * lbs, coef * ubs)
        lo = float(low_terms.sum())
        hi = float(high_terms.sum())
        return lo, hi

    def add_indicator(
        self,
        binary_index: int,
        indices,
        coefficients,
        op: str,
        rhs: float,
    ) -> None:
        """Encode ``x[binary_index] = 1 ⟹ Σ c·x ⊙ rhs`` via big-M."""
        lb, ub = self.variable_bounds(binary_index)
        if not (lb >= 0 and ub <= 1 and self._integer[binary_index]):
            raise SolverError("indicator variable must be binary")
        lo, hi = self.row_value_bounds(indices, coefficients)
        if not np.isfinite(lo) or not np.isfinite(hi):
            raise SolverError(
                "indicator constraints need finite variable bounds for the"
                " big-M encoding (see silp.varbounds)"
            )
        idx = np.append(np.asarray(indices, dtype=np.int64), binary_index)
        coef = np.asarray(coefficients, dtype=float)
        if op == ">=":
            if lo >= rhs:
                return  # implication always holds
            if hi < rhs:
                # y = 1 can never satisfy the inner constraint: pin y = 0.
                self.add_constraint([binary_index], [1.0], ub=0.0)
                return
            big_m = rhs - lo
            self.add_constraint(idx, np.append(coef, -big_m), lb=lo)
        elif op == "<=":
            if hi <= rhs:
                return
            if lo > rhs:
                self.add_constraint([binary_index], [1.0], ub=0.0)
                return
            big_m = hi - rhs
            self.add_constraint(idx, np.append(coef, big_m), ub=hi)
        else:
            raise SolverError(f"indicator operator must be <= or >=, got {op!r}")

    # --- objective -------------------------------------------------------------------

    def set_objective(self, indices, coefficients, sense: str = SENSE_MIN) -> None:
        """Set the (sparse) linear objective and its sense."""
        if sense not in (SENSE_MIN, SENSE_MAX):
            raise SolverError(f"unknown objective sense {sense!r}")
        idx = np.asarray(indices, dtype=np.int64)
        coef = np.asarray(coefficients, dtype=float)
        if idx.shape != coef.shape:
            raise SolverError("indices and coefficients must have equal shape")
        self._objective = {int(i): float(c) for i, c in zip(idx, coef)}
        self._sense = sense

    # --- incremental reuse --------------------------------------------------------------

    def checkpoint(self) -> BuilderCheckpoint:
        """Snapshot the current state for a later :meth:`rollback`."""
        return BuilderCheckpoint(
            n_variables=self.n_variables,
            n_constraints=self.n_constraints,
            objective=dict(self._objective),
            sense=self._sense,
        )

    def rollback(self, cp: BuilderCheckpoint) -> None:
        """Truncate back to ``cp``: drop later variables, rows, objective.

        Rows materialized by an earlier :meth:`to_arrays` call and still
        within the checkpoint stay cached, so re-appending rows after a
        rollback only pays for the new rows.
        """
        if cp.n_variables > self.n_variables or cp.n_constraints > self.n_constraints:
            raise SolverError(
                "cannot roll back to a checkpoint taken from a larger model"
            )
        del self._names[cp.n_variables:]
        del self._lb[cp.n_variables:]
        del self._ub[cp.n_variables:]
        del self._integer[cp.n_variables:]
        del self._rows[cp.n_constraints:]
        del self._row_lb[cp.n_constraints:]
        del self._row_ub[cp.n_constraints:]
        self._objective = dict(cp.objective)
        self._sense = cp.sense
        self._warm_start = None
        self._warm_start_valid_for = None
        # Length alone cannot detect rollback-then-append, so drop the
        # bounds cache outright.
        self._bounds_cache = None
        if self._csr_cache is not None and self._csr_cache[0] > cp.n_constraints:
            k = cp.n_constraints
            _, data, indices, indptr = self._csr_cache
            nnz = int(indptr[k])
            self._csr_cache = (k, data[:nnz], indices[:nnz], indptr[: k + 1])

    def clone(self) -> "MILPBuilder":
        """Independent copy sharing immutable row/cache storage.

        Rows are append-only ``(indices, coefficients)`` pairs that are
        never mutated in place, so the clone shares them (and the
        materialized-CSR cache) with the original: cloning a base model
        is O(n) list copies, and solving the clone only materializes the
        rows appended after the clone point.  The warm-start hint is not
        carried over.
        """
        other = MILPBuilder()
        other._names = list(self._names)
        other._lb = list(self._lb)
        other._ub = list(self._ub)
        other._integer = list(self._integer)
        other._rows = list(self._rows)
        other._row_lb = list(self._row_lb)
        other._row_ub = list(self._row_ub)
        other._objective = dict(self._objective)
        other._sense = self._sense
        other._csr_cache = self._csr_cache
        other._bounds_cache = self._bounds_cache
        return other

    # --- warm starts -------------------------------------------------------------------

    def set_warm_start(self, x) -> None:
        """Record a candidate solution used as a MIP start by the backends.

        Pass ``None`` to clear.  The hint is only used when it is feasible
        for the model at solve time (see :meth:`validated_warm_start`), so
        a stale hint is harmless.
        """
        self._warm_start_valid_for = None
        if x is None:
            self._warm_start = None
            return
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.n_variables,):
            raise SolverError(
                f"warm start has {arr.shape} values; model has"
                f" {self.n_variables} variables"
            )
        self._warm_start = arr.copy()

    def validated_warm_start(self, tol: float = 1e-6) -> np.ndarray | None:
        """The warm-start hint, or None if absent/stale/infeasible.

        A successful check is memoized against the model shape, so the
        formulation-time validation and the backend's solve-time call
        cost one feasibility sweep in total.
        """
        hint = self._warm_start
        if hint is None or hint.shape != (self.n_variables,):
            return None
        shape = (self.n_variables, self.n_constraints)
        if self._warm_start_valid_for == shape:
            return hint
        if self.check_feasible(hint, tol):
            self._warm_start_valid_for = shape
            return hint
        return None

    # --- materialization ---------------------------------------------------------------

    def to_arrays(self):
        """Materialize ``(c, A, row_lb, row_ub, var_lb, var_ub, integrality)``.

        ``c`` is in *minimization* form (negated for maximize); callers
        translate objective values back via :meth:`objective_sign`.
        """
        n = self.n_variables
        c = np.zeros(n)
        if self._objective:
            count = len(self._objective)
            keys = np.fromiter(self._objective.keys(), dtype=np.int64, count=count)
            vals = np.fromiter(self._objective.values(), dtype=float, count=count)
            c[keys] = vals
        if self._sense == SENSE_MAX:
            c = -c
        matrix = self._materialize_matrix(n)
        return (
            c,
            matrix,
            np.asarray(self._row_lb),
            np.asarray(self._row_ub),
            np.asarray(self._lb),
            np.asarray(self._ub),
            np.asarray(self._integer, dtype=bool),
        )

    def _materialize_matrix(self, n: int) -> sparse.csr_matrix:
        """CSR of all rows, reusing the cached prefix from earlier calls.

        Rows are append-only (rollback only truncates, trimming the cache
        with it), so a cached row block is always a valid prefix; only
        rows added since the last materialization need triplet building.
        """
        m = len(self._rows)
        if m == 0:
            return sparse.csr_matrix((0, n))
        k = 0
        if self._csr_cache is not None and self._csr_cache[0] <= m:
            k = self._csr_cache[0]
        blocks = []
        if k:
            _, data, indices, indptr = self._csr_cache
            # Rows added before any later variables can only reference
            # variables that existed then, so widening the shape is safe.
            blocks.append(
                sparse.csr_matrix((data, indices, indptr), shape=(k, n))
            )
        if m > k:
            data, rows, cols = [], [], []
            for r in range(k, m):
                idx, coef = self._rows[r]
                rows.extend([r - k] * len(idx))
                cols.extend(idx.tolist())
                data.extend(coef.tolist())
            blocks.append(
                sparse.csr_matrix((data, (rows, cols)), shape=(m - k, n))
            )
        matrix = blocks[0] if len(blocks) == 1 else sparse.vstack(
            blocks, format="csr"
        )
        self._csr_cache = (m, matrix.data, matrix.indices, matrix.indptr)
        return matrix

    @property
    def sense(self) -> str:
        return self._sense

    def objective_value(self, x: np.ndarray) -> float:
        """Evaluate the objective at ``x`` in the caller's sense."""
        return float(sum(c * x[i] for i, c in self._objective.items()))

    # --- solving ----------------------------------------------------------------------

    def solve(
        self,
        backend: str = "highs",
        time_limit: float | None = None,
        mip_gap: float = 1e-6,
    ) -> MILPResult:
        """Solve with the requested backend; returns a :class:`MILPResult`."""
        from .branch_bound import solve_with_branch_bound
        from .highs import solve_with_highs

        if backend == "highs":
            return solve_with_highs(self, time_limit=time_limit, mip_gap=mip_gap)
        if backend == "branch-bound":
            return solve_with_branch_bound(
                self, time_limit=time_limit, mip_gap=mip_gap
            )
        raise SolverError(f"unknown solver backend {backend!r}")

    def check_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Verify ``x`` against all rows and bounds.

        Vectorized through the cached CSR materialization, so repeated
        checks (e.g. warm-start validation per solve) cost one sparse
        mat-vec rather than a Python loop over rows.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_variables,):
            return False
        lbs, ubs = self._bound_arrays()
        if np.any(x < lbs - tol) or np.any(x > ubs + tol):
            return False
        integers = np.asarray(self._integer, dtype=bool)
        if np.any(np.abs(x[integers] - np.round(x[integers])) > tol):
            return False
        if self._rows:
            values = self._materialize_matrix(self.n_variables) @ x
            if np.any(values < np.asarray(self._row_lb) - tol) or np.any(
                values > np.asarray(self._row_ub) + tol
            ):
                return False
        return True
