"""Solver result object shared by all backends."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

STATUS_OPTIMAL = "optimal"
STATUS_FEASIBLE = "feasible"  # stopped early with an incumbent
STATUS_INFEASIBLE = "infeasible"
STATUS_UNBOUNDED = "unbounded"
STATUS_TIME_LIMIT = "time_limit"  # stopped early with no incumbent
STATUS_ERROR = "error"


@dataclass
class MILPResult:
    """Outcome of one MILP solve.

    ``x`` is ``None`` unless a feasible assignment was found
    (``optimal``/``feasible``).  ``objective`` is reported in the caller's
    sense (maximization objectives are not negated).
    """

    status: str
    x: np.ndarray | None = None
    objective: float | None = None
    solve_time: float = 0.0
    n_nodes: int = 0
    gap: float | None = None
    message: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def has_solution(self) -> bool:
        return self.x is not None

    @property
    def is_optimal(self) -> bool:
        return self.status == STATUS_OPTIMAL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        obj = "-" if self.objective is None else f"{self.objective:.6g}"
        return (
            f"MILPResult(status={self.status!r}, objective={obj},"
            f" time={self.solve_time:.3f}s, nodes={self.n_nodes})"
        )
