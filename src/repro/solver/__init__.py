"""MILP solving layer.

The paper uses IBM CPLEX; this layer provides the same capabilities on an
open stack: a matrix-form :class:`MILPBuilder` with indicator-constraint
support (big-M encoding equivalent to CPLEX indicator constraints), a
HiGHS backend through ``scipy.optimize.milp``, and a self-contained
LP-based branch-and-bound used as a fallback and as a differential-testing
oracle.
"""

from .model import BuilderCheckpoint, MILPBuilder
from .result import MILPResult, STATUS_OPTIMAL, STATUS_INFEASIBLE, STATUS_UNBOUNDED, STATUS_TIME_LIMIT, STATUS_FEASIBLE
from .highs import solve_with_highs
from .branch_bound import solve_with_branch_bound

__all__ = [
    "BuilderCheckpoint",
    "MILPBuilder",
    "MILPResult",
    "STATUS_OPTIMAL",
    "STATUS_INFEASIBLE",
    "STATUS_UNBOUNDED",
    "STATUS_TIME_LIMIT",
    "STATUS_FEASIBLE",
    "solve_with_highs",
    "solve_with_branch_bound",
]
