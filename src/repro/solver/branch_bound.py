"""From-scratch LP-based branch and bound.

A compact MILP solver built on ``scipy.optimize.linprog`` (HiGHS LP):
best-bound node selection, most-fractional branching, incumbent pruning
with a relative-gap stop.  It exists for two reasons:

* a fallback when the HiGHS MILP interface is unavailable or behaves
  unexpectedly, mirroring how the paper's system treats the solver as a
  replaceable component;
* a differential-testing oracle — the test suite cross-checks it against
  HiGHS on randomized small instances.

It is intended for the small CSA problems (Θ(N·Z·K) coefficients); Naïve's
giant SAA problems should use the HiGHS backend.
"""

from __future__ import annotations

import heapq
import itertools
import time
from contextvars import ContextVar

import numpy as np
from scipy.optimize import linprog

from ..obs.events import KIND_SOLVER_NODE, emit, events_enabled
from ..obs.resources import charge
from .model import SENSE_MAX
from .result import (
    MILPResult,
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_TIME_LIMIT,
    STATUS_UNBOUNDED,
)

#: Integrality tolerance: LP values closer than this to an integer count
#: as integral.
_INT_TOL = 1e-6

#: Floor for per-node LP time limits: HiGHS treats tiny/zero limits as
#: an instant give-up, which would turn "almost out of budget" into "no
#: node ever solves".
_MIN_LP_BUDGET = 0.01

#: Simplex iterations accumulated by ``_solve_relaxation`` calls within
#: the current solve (reset at every ``solve_with_branch_bound`` entry).
#: A ContextVar rather than a return-tuple extension keeps the
#: ``_solve_relaxation`` signature stable for the deadline/fake-clock
#: test doubles that wrap it.
_LP_ITERS: ContextVar = ContextVar("repro_bb_lp_iters", default=0)


def _solve_relaxation(c, a_ub, b_ub, var_lb, var_ub, time_limit=None):
    """LP relaxation with current variable box; returns (status, x, obj).

    ``time_limit`` clamps the single HiGHS LP solve so one expensive
    node can never overshoot the caller's deadline; hitting it reports
    ``"limit"`` (distinct from a numerical ``"error"``).
    """
    bounds = np.column_stack([var_lb, var_ub])
    options = None
    if time_limit is not None:
        options = {"time_limit": max(float(time_limit), _MIN_LP_BUDGET)}
    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=bounds,
        method="highs",
        options=options,
    )
    charge("lp_solves")
    _LP_ITERS.set(_LP_ITERS.get() + int(getattr(res, "nit", 0) or 0))
    if res.status == 0:
        return "optimal", res.x, float(res.fun)
    if res.status == 1:
        return "limit", None, np.inf
    if res.status == 2:
        return "infeasible", None, np.inf
    if res.status == 3:
        return "unbounded", None, -np.inf
    return "error", None, np.inf


def _to_inequality_form(matrix, row_lb, row_ub):
    """Convert two-sided rows into ``A_ub x ≤ b_ub`` form."""
    blocks = []
    rhs = []
    dense = matrix.toarray() if hasattr(matrix, "toarray") else np.asarray(matrix)
    finite_ub = np.isfinite(row_ub)
    if np.any(finite_ub):
        blocks.append(dense[finite_ub])
        rhs.append(row_ub[finite_ub])
    finite_lb = np.isfinite(row_lb)
    if np.any(finite_lb):
        blocks.append(-dense[finite_lb])
        rhs.append(-row_lb[finite_lb])
    if not blocks:
        return None, None
    return np.vstack(blocks), np.concatenate(rhs)


def solve_with_branch_bound(
    builder,
    time_limit: float | None = None,
    mip_gap: float = 1e-6,
    max_nodes: int = 200_000,
    clock=None,
) -> MILPResult:
    """Solve the builder's model by branch and bound.

    The solver is *anytime*: when ``time_limit`` expires (or the node
    budget runs out) it returns the best incumbent found so far as
    ``STATUS_FEASIBLE`` with ``gap`` set to the relative distance between
    the incumbent and the best open LP bound (``meta["best_bound"]``, in
    the caller's sense).  The deadline is enforced *inside* nodes too:
    every LP relaxation is clamped to the remaining budget, so a single
    expensive node cannot overshoot it.  ``clock`` (default
    ``time.perf_counter``) is injectable for deterministic tests.
    """
    clock = time.perf_counter if clock is None else clock
    c, matrix, row_lb, row_ub, var_lb, var_ub, integrality = builder.to_arrays()
    a_ub, b_ub = _to_inequality_form(matrix, row_lb, row_ub)
    started = clock()
    deadline = None if time_limit is None else started + float(time_limit)
    _LP_ITERS.set(0)
    sign = -1.0 if builder.sense == SENSE_MAX else 1.0

    def remaining():
        return None if deadline is None else deadline - clock()

    # A feasible warm-start hint is a true MIP start: it seeds the
    # incumbent (so best-bound pruning kicks in from the first node) and
    # is the fallback answer when the root relaxation fails numerically.
    hint = builder.validated_warm_start()

    status, x0, bound0 = _solve_relaxation(
        c, a_ub, b_ub, var_lb, var_ub, time_limit=remaining()
    )
    if status == "infeasible":
        return MILPResult(status=STATUS_INFEASIBLE, solve_time=_since(started, clock))
    if status == "unbounded":
        return MILPResult(status=STATUS_UNBOUNDED, solve_time=_since(started, clock))
    if status in ("error", "limit"):
        if hint is not None:
            x = _snap(hint, integrality)
            return MILPResult(
                status=STATUS_FEASIBLE,
                x=x,
                objective=builder.objective_value(x),
                solve_time=_since(started, clock),
                message=(
                    "root LP hit the deadline; warm-start incumbent returned"
                    if status == "limit"
                    else "LP relaxation failed; warm-start incumbent returned"
                ),
            )
        if status == "limit":
            return MILPResult(
                status=STATUS_TIME_LIMIT,
                solve_time=_since(started, clock),
                message="root LP hit the deadline before any incumbent",
            )
        return MILPResult(status=STATUS_INFEASIBLE, solve_time=_since(started, clock),
                          message="LP relaxation failed")

    incumbent_x: np.ndarray | None = None
    incumbent_obj = np.inf
    if hint is not None:
        incumbent_x = _snap(hint, integrality)
        incumbent_obj = float(c @ incumbent_x)
    counter = itertools.count()
    # Heap of (lp_bound, tiebreak, var_lb, var_ub, lp_x).
    heap = [(bound0, next(counter), var_lb.copy(), var_ub.copy(), x0)]
    n_nodes = 0
    stopped: str | None = None  # "nodes" | "deadline" when cut short
    # Best-first order makes the just-popped bound the global best bound
    # over all open nodes — exactly the dual side of the anytime gap.
    best_bound = bound0

    # Convergence stream (repro.obs.events): one record per expanded
    # node / new incumbent, in the caller's objective sense.  Non-final
    # records are suppressed when the gap would wobble upward (the
    # ``max(1, |incumbent|)`` denominator can shrink across incumbent
    # improvements), so the emitted gap series is non-increasing and
    # the terminal ``final=True`` record carries exactly the gap the
    # MILPResult returns.  All of this is dark unless a trace session
    # is active.
    emit_events = events_enabled()
    last_emitted_gap = np.inf

    def current_gap(bound):
        if incumbent_x is None or not np.isfinite(bound):
            return None
        return max(
            0.0, (incumbent_obj - bound) / max(1.0, abs(incumbent_obj))
        )

    def emit_node(bound, gap, final=False):
        nonlocal last_emitted_gap
        if not emit_events:
            return
        if gap is not None:
            if not final and gap > last_emitted_gap:
                return
            last_emitted_gap = min(last_emitted_gap, gap)
        emit(
            KIND_SOLVER_NODE,
            t=_since(started, clock),
            incumbent=None if incumbent_x is None else sign * incumbent_obj,
            best_bound=None if bound is None or not np.isfinite(bound) else sign * bound,
            gap=gap,
            nodes=n_nodes,
            lp_iters=_LP_ITERS.get(),
            final=final,
        )

    emit_node(bound0, current_gap(bound0))

    while heap:
        bound, _, lb, ub, x = heapq.heappop(heap)
        if n_nodes + 1 > max_nodes:
            stopped, best_bound = "nodes", bound
            break
        if deadline is not None and clock() > deadline:
            stopped, best_bound = "deadline", bound
            break
        n_nodes += 1
        emit_node(bound, current_gap(bound))
        if incumbent_x is not None and bound >= incumbent_obj - _gap_slack(
            incumbent_obj, mip_gap
        ):
            continue  # pruned by bound
        frac_index = _most_fractional(x, integrality)
        if frac_index is None:
            # Integral: new incumbent (bounds guarantee improvement).
            candidate = _snap(x, integrality)
            obj = float(c @ candidate)
            if obj < incumbent_obj:
                incumbent_obj = obj
                incumbent_x = candidate
                emit_node(bound, current_gap(bound))
            continue
        value = x[frac_index]
        for branch in ("down", "up"):
            new_lb = lb.copy()
            new_ub = ub.copy()
            if branch == "down":
                new_ub[frac_index] = np.floor(value)
            else:
                new_lb[frac_index] = np.ceil(value)
            if new_lb[frac_index] > new_ub[frac_index]:
                continue
            child_status, child_x, child_bound = _solve_relaxation(
                c, a_ub, b_ub, new_lb, new_ub, time_limit=remaining()
            )
            if child_status != "optimal":
                # "limit" children are dropped, not retried: their LP hit
                # the remaining budget, so the outer deadline check stops
                # the search on the next pop anyway.
                continue
            if incumbent_x is not None and child_bound >= incumbent_obj - _gap_slack(
                incumbent_obj, mip_gap
            ):
                continue
            heapq.heappush(
                heap, (child_bound, next(counter), new_lb, new_ub, child_x)
            )

    elapsed = _since(started, clock)
    if incumbent_x is None:
        if stopped is not None:
            emit_node(best_bound, None, final=True)
            return MILPResult(
                status=STATUS_TIME_LIMIT, solve_time=elapsed, n_nodes=n_nodes,
                message=f"stopped on {stopped} before any incumbent",
            )
        return MILPResult(
            status=STATUS_INFEASIBLE, solve_time=elapsed, n_nodes=n_nodes
        )
    objective = builder.objective_value(incumbent_x)
    if stopped is None:
        # Search space exhausted: the incumbent is proven optimal (to
        # mip_gap), so the anytime gap is zero by construction.
        emit_node(incumbent_obj, 0.0, final=True)
        return MILPResult(
            status=STATUS_OPTIMAL,
            x=incumbent_x,
            objective=objective,
            solve_time=elapsed,
            n_nodes=n_nodes,
            gap=0.0,
            meta={"best_bound": objective},
        )
    gap = max(0.0, (incumbent_obj - best_bound) / max(1.0, abs(incumbent_obj)))
    emit_node(best_bound, gap, final=True)
    return MILPResult(
        status=STATUS_FEASIBLE,
        x=incumbent_x,
        objective=objective,
        solve_time=elapsed,
        n_nodes=n_nodes,
        gap=gap,
        meta={"best_bound": sign * best_bound, "stopped": stopped},
        message=f"stopped on {stopped}: incumbent within {gap:.4g} of the best bound",
    )


def _since(started: float, clock=time.perf_counter) -> float:
    return clock() - started


def _gap_slack(incumbent_obj: float, mip_gap: float) -> float:
    return abs(incumbent_obj) * mip_gap


def _most_fractional(x: np.ndarray, integrality: np.ndarray):
    """Index of the integer variable farthest from integrality, or None."""
    fractional = np.abs(x - np.round(x))
    fractional[~integrality] = 0.0
    index = int(np.argmax(fractional))
    if fractional[index] <= _INT_TOL:
        return None
    return index


def _snap(x: np.ndarray, integrality: np.ndarray) -> np.ndarray:
    out = np.array(x, dtype=float)
    out[integrality] = np.round(out[integrality])
    out[out == 0.0] = 0.0
    return out
