"""HiGHS MILP backend via ``scipy.optimize.milp``."""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from .result import (
    MILPResult,
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_TIME_LIMIT,
    STATUS_UNBOUNDED,
    STATUS_ERROR,
)

#: scipy.optimize.milp status codes.
_SCIPY_OPTIMAL = 0
_SCIPY_INFEASIBLE = 2
_SCIPY_UNBOUNDED = 3
_SCIPY_LIMIT = 1  # iteration or time limit


def solve_with_highs(
    builder,
    time_limit: float | None = None,
    mip_gap: float = 1e-6,
) -> MILPResult:
    """Solve the builder's model with HiGHS and normalize the outcome."""
    c, matrix, row_lb, row_ub, var_lb, var_ub, integrality = builder.to_arrays()
    options: dict = {"mip_rel_gap": max(mip_gap, 0.0), "presolve": True}
    if time_limit is not None:
        options["time_limit"] = max(float(time_limit), 0.01)
    constraints = (
        LinearConstraint(matrix, row_lb, row_ub) if matrix.shape[0] else ()
    )
    started = time.perf_counter()
    res = milp(
        c=c,
        constraints=constraints,
        integrality=integrality.astype(int),
        bounds=Bounds(var_lb, var_ub),
        options=options,
    )
    elapsed = time.perf_counter() - started
    if res.status == _SCIPY_OPTIMAL:
        x = _round_integers(res.x, integrality)
        return MILPResult(
            status=STATUS_OPTIMAL,
            x=x,
            objective=builder.objective_value(x),
            solve_time=elapsed,
            gap=float(res.mip_gap) if res.mip_gap is not None else None,
            message=str(res.message),
        )
    if res.status == _SCIPY_INFEASIBLE:
        return MILPResult(
            status=STATUS_INFEASIBLE, solve_time=elapsed, message=str(res.message)
        )
    if res.status == _SCIPY_UNBOUNDED:
        return MILPResult(
            status=STATUS_UNBOUNDED, solve_time=elapsed, message=str(res.message)
        )
    if res.status == _SCIPY_LIMIT and res.x is not None:
        # Limit hit but HiGHS returned an incumbent.
        x = _round_integers(res.x, integrality)
        return MILPResult(
            status=STATUS_FEASIBLE,
            x=x,
            objective=builder.objective_value(x),
            solve_time=elapsed,
            gap=float(res.mip_gap) if res.mip_gap is not None else None,
            message=str(res.message),
        )
    if res.status == _SCIPY_LIMIT:
        return MILPResult(
            status=STATUS_TIME_LIMIT, solve_time=elapsed, message=str(res.message)
        )
    return MILPResult(
        status=STATUS_ERROR, solve_time=elapsed, message=str(res.message)
    )


def _round_integers(x: np.ndarray, integrality: np.ndarray) -> np.ndarray:
    """Snap integer variables to exact integers (HiGHS returns floats)."""
    out = np.array(x, dtype=float)
    out[integrality] = np.round(out[integrality])
    # Guard against -0.0 which confuses downstream equality checks.
    out[out == 0.0] = 0.0
    return out
