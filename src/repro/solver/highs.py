"""HiGHS MILP backend via ``scipy.optimize.milp``.

``scipy.optimize.milp`` has no MIP-start parameter, so a warm-start hint
(see ``MILPBuilder.set_warm_start``) is used as a *guaranteed incumbent*
instead: when the solver hits its limit without a solution (or errors
out) the feasible hint is returned as a feasible result, and when the
solver returns a worse incumbent than the hint, the hint wins.  This
makes warm-started solves never worse than the previous iteration's
solution, which is the property the incremental SummarySearch loop needs.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..obs.resources import charge
from .result import (
    MILPResult,
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_TIME_LIMIT,
    STATUS_UNBOUNDED,
    STATUS_ERROR,
)

#: scipy.optimize.milp status codes.
_SCIPY_OPTIMAL = 0
_SCIPY_INFEASIBLE = 2
_SCIPY_UNBOUNDED = 3
_SCIPY_LIMIT = 1  # iteration or time limit


def solve_with_highs(
    builder,
    time_limit: float | None = None,
    mip_gap: float = 1e-6,
) -> MILPResult:
    """Solve the builder's model with HiGHS and normalize the outcome."""
    c, matrix, row_lb, row_ub, var_lb, var_ub, integrality = builder.to_arrays()
    hint = builder.validated_warm_start()
    options: dict = {"mip_rel_gap": max(mip_gap, 0.0), "presolve": True}
    if time_limit is not None:
        options["time_limit"] = max(float(time_limit), 0.01)
    constraints = (
        LinearConstraint(matrix, row_lb, row_ub) if matrix.shape[0] else ()
    )
    started = time.perf_counter()
    res = milp(
        c=c,
        constraints=constraints,
        integrality=integrality.astype(int),
        bounds=Bounds(var_lb, var_ub),
        options=options,
    )
    elapsed = time.perf_counter() - started
    charge("lp_solves")
    if res.status == _SCIPY_OPTIMAL:
        # "Optimal" includes gap-terminated solves (mip_rel_gap > 0), so
        # the incumbent can still trail a good warm-start hint.
        x = _better_of(c, hint, _round_integers(res.x, integrality),
                       integrality)
        return MILPResult(
            status=STATUS_OPTIMAL,
            x=x,
            objective=builder.objective_value(x),
            solve_time=elapsed,
            gap=_gap_for(c, x, res),
            message=str(res.message),
        )
    if res.status == _SCIPY_INFEASIBLE:
        return MILPResult(
            status=STATUS_INFEASIBLE, solve_time=elapsed, message=str(res.message)
        )
    if res.status == _SCIPY_UNBOUNDED:
        return MILPResult(
            status=STATUS_UNBOUNDED, solve_time=elapsed, message=str(res.message)
        )
    if res.status == _SCIPY_LIMIT and res.x is not None:
        # Limit hit but HiGHS returned an incumbent; a warm-start hint
        # that beats the incumbent supersedes it.
        x = _better_of(c, hint, _round_integers(res.x, integrality),
                       integrality)
        return MILPResult(
            status=STATUS_FEASIBLE,
            x=x,
            objective=builder.objective_value(x),
            solve_time=elapsed,
            gap=_gap_for(c, x, res),
            message=str(res.message),
        )
    if res.status == _SCIPY_LIMIT:
        if hint is not None:
            return _hint_result(builder, c, hint, integrality, elapsed, res)
        return MILPResult(
            status=STATUS_TIME_LIMIT,
            solve_time=elapsed,
            message=str(res.message),
            meta=_bound_meta(builder, res, stopped="limit"),
        )
    # Remaining statuses are solver errors (infeasible/unbounded returned
    # above); a feasible hint still salvages an incumbent.
    if hint is not None:
        return _hint_result(builder, c, hint, integrality, elapsed, res)
    return MILPResult(
        status=STATUS_ERROR,
        solve_time=elapsed,
        message=str(res.message),
        meta=_bound_meta(builder, res),
    )


#: Minimum (minimized-sense) improvement before the hint supersedes the
#: solver's incumbent — exact ties keep the solver's solution so that
#: warm-started and cold runs return identical packages.
_HINT_TOL = 1e-9


def _better_of(c, hint, x, integrality) -> np.ndarray:
    """The better of the solver's incumbent and the warm-start hint."""
    if hint is None or float(c @ hint) >= float(c @ x) - _HINT_TOL:
        return x
    return _round_integers(hint, integrality)


def _gap_for(c, x, res) -> float | None:
    """Relative MIP gap of the *returned* ``x`` against the dual bound.

    When the warm-start hint supersedes the solver's incumbent the
    reported gap must describe the hint, not the discarded solution;
    recomputing from the dual bound covers both cases uniformly.
    """
    bound = getattr(res, "mip_dual_bound", None)
    if bound is None or not np.isfinite(bound):
        return float(res.mip_gap) if res.mip_gap is not None else None
    value = float(c @ x)
    return abs(value - float(bound)) / max(1.0, abs(value))


def _dual_bound(res) -> float | None:
    """HiGHS's dual (best) bound on the minimized objective, if finite."""
    bound = getattr(res, "mip_dual_bound", None)
    if bound is None or not np.isfinite(bound):
        return None
    return float(bound)


def _bound_meta(builder, res, stopped: str | None = None) -> dict:
    """``meta`` for a limit/error outcome: the caller-sense best bound.

    Matches the branch-and-bound backend's convention
    (``meta["best_bound"]``) so :mod:`repro.core.anytime` can report a
    sound objective-bound gap even when HiGHS stopped with no incumbent
    and no warm-start hint was available.
    """
    bound = _dual_bound(res)
    if bound is None:
        return {}
    from .model import SENSE_MAX

    sign = -1.0 if builder.sense == SENSE_MAX else 1.0
    meta = {"best_bound": sign * bound}
    if stopped is not None:
        meta["stopped"] = stopped
    return meta


def _hint_result(builder, c, hint, integrality, elapsed, res) -> MILPResult:
    """Fall back to the feasible warm-start hint as the incumbent."""
    x = _round_integers(hint, integrality)
    return MILPResult(
        status=STATUS_FEASIBLE,
        x=x,
        objective=builder.objective_value(x),
        solve_time=elapsed,
        gap=_gap_for(c, x, res),
        message=f"warm-start incumbent returned ({res.message})",
        meta=_bound_meta(builder, res, stopped="limit"),
    )


def _round_integers(x: np.ndarray, integrality: np.ndarray) -> np.ndarray:
    """Snap integer variables to exact integers (HiGHS returns floats)."""
    out = np.array(x, dtype=float)
    out[integrality] = np.round(out[integrality])
    # Guard against -0.0 which confuses downstream equality checks.
    out[out == 0.0] = 0.0
    return out
