"""Hand-written lexer for sPaQL.

Produces a flat token list ending in an EOF token.  Comments use SQL's
``--`` to end of line.  Numbers support decimal and scientific notation;
strings are single-quoted with ``''`` escaping.
"""

from __future__ import annotations

from ..errors import ParseError
from .tokens import (
    KEYWORDS,
    KIND_EOF,
    KIND_IDENT,
    KIND_KEYWORD,
    KIND_NUMBER,
    KIND_OP,
    KIND_STRING,
    OPERATORS,
    Token,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize sPaQL source text (raises :class:`ParseError` on bad input)."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def column(pos: int) -> int:
        return pos - line_start + 1

    while i < n:
        ch = text[i]
        # -- whitespace / newlines ------------------------------------------
        if ch in " \t\r":
            i += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            line_start = i
            continue
        # -- comments ---------------------------------------------------------
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        # -- strings ----------------------------------------------------------
        if ch == "'":
            start = i
            i += 1
            chunks: list[str] = []
            while True:
                if i >= n:
                    raise ParseError("unterminated string literal", line, column(start))
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(text[i])
                i += 1
            tokens.append(Token(KIND_STRING, "".join(chunks), line, column(start)))
            continue
        # -- numbers ----------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    i = j
                    while i < n and text[i].isdigit():
                        i += 1
            literal = text[start:i]
            if literal.count(".") > 1:
                raise ParseError(
                    f"malformed number {literal!r}", line, column(start)
                )
            tokens.append(Token(KIND_NUMBER, literal, line, column(start)))
            continue
        # -- identifiers / keywords --------------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KIND_KEYWORD, upper, line, column(start)))
            else:
                tokens.append(Token(KIND_IDENT, word, line, column(start)))
            continue
        # -- operators ---------------------------------------------------------
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(KIND_OP, op, line, column(i)))
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, column(i))
    tokens.append(Token(KIND_EOF, "", line, column(i)))
    return tokens
