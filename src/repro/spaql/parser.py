"""Recursive-descent parser for sPaQL (Appendix A, Figure 8).

Grammar sketch::

    query      := SELECT PACKAGE '(' '*' ')' [AS ident]
                  FROM ident [REPEAT number] [WHERE predicate]
                  SUCH THAT constraint (AND constraint)*
                  [objective]
    constraint := COUNT '(' '*' ')' (BETWEEN num AND num | cmp num)
                | [EXPECTED] SUM '(' expr ')'
                      (BETWEEN num AND num | cmp num)
                      [WITH PROBABILITY cmp num]
    objective  := (MINIMIZE | MAXIMIZE)
                  ( [EXPECTED] SUM '(' expr ')'
                  | PROBABILITY OF SUM '(' expr ')' cmp num
                  | COUNT '(' '*' ')' )

``expr`` is the shared arithmetic/boolean expression language of
``repro.db.expressions`` with standard precedence.  ``SUM(f) BETWEEN a
AND b`` desugars into two constraints at parse time.
"""

from __future__ import annotations

from ..db.expressions import (
    Attr,
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    FuncCall,
    Not,
    UnaryOp,
)
from ..errors import ParseError
from .lexer import tokenize
from .nodes import (
    CountConstraint,
    PackageQuery,
    ProbabilisticConstraint,
    SumConstraint,
    SumObjective,
    ProbabilityObjective,
    SENSE_MAXIMIZE,
    SENSE_MINIMIZE,
)
from .tokens import KIND_EOF, KIND_IDENT, KIND_KEYWORD, KIND_NUMBER, KIND_STRING, Token

_COMPARE_OPS = ("<=", ">=", "<>", "<", ">", "=")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # --- token utilities -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != KIND_EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(
            f"{message}, found {token.describe()}", token.line, token.column
        )

    def expect_keyword(self, *words: str) -> Token:
        if self.current.is_keyword(*words):
            return self.advance()
        raise self.error(f"expected {' or '.join(words)}")

    def expect_op(self, *ops: str) -> Token:
        if self.current.is_op(*ops):
            return self.advance()
        raise self.error(f"expected {' or '.join(repr(o) for o in ops)}")

    def expect_ident(self, what: str) -> str:
        if self.current.kind == KIND_IDENT:
            return self.advance().value
        raise self.error(f"expected {what}")

    def accept_keyword(self, *words: str) -> bool:
        if self.current.is_keyword(*words):
            self.advance()
            return True
        return False

    # --- query ------------------------------------------------------------------

    def parse_query(self) -> PackageQuery:
        self.expect_keyword("SELECT")
        self.expect_keyword("PACKAGE")
        self.expect_op("(")
        self.expect_op("*")
        self.expect_op(")")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("package alias")
        self.expect_keyword("FROM")
        table = self.expect_ident("table name")
        repeat = None
        if self.accept_keyword("REPEAT"):
            repeat = int(self.parse_signed_number())
            if repeat < 0:
                raise self.error("REPEAT limit must be nonnegative")
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_or()
        constraints: list = []
        if self.current.is_keyword("SUCH"):
            self.expect_keyword("SUCH")
            self.expect_keyword("THAT")
            constraints.extend(self.parse_constraint())
            while self.accept_keyword("AND"):
                constraints.extend(self.parse_constraint())
        objective = None
        if self.current.is_keyword("MINIMIZE", "MAXIMIZE"):
            objective = self.parse_objective()
        if self.current.kind != KIND_EOF:
            raise self.error("unexpected trailing input")
        return PackageQuery(
            table=table,
            alias=alias,
            repeat=repeat,
            where=where,
            constraints=tuple(constraints),
            objective=objective,
        )

    # --- constraints ---------------------------------------------------------------

    def parse_constraint(self) -> list:
        if self.current.is_keyword("COUNT"):
            return [self.parse_count_constraint()]
        expected = self.accept_keyword("EXPECTED")
        self.expect_keyword("SUM")
        self.expect_op("(")
        expr = self.parse_or()
        self.expect_op(")")
        if self.accept_keyword("BETWEEN"):
            low = self.parse_signed_number()
            self.expect_keyword("AND")
            high = self.parse_signed_number()
            if low > high:
                raise self.error("BETWEEN bounds must satisfy low <= high")
            return [
                SumConstraint(expr, ">=", low, expected=expected),
                SumConstraint(expr, "<=", high, expected=expected),
            ]
        op = self.expect_op(*_COMPARE_OPS).value
        rhs = self.parse_signed_number()
        if self.current.is_keyword("WITH"):
            if expected:
                raise self.error(
                    "EXPECTED and WITH PROBABILITY cannot be combined"
                )
            self.expect_keyword("WITH")
            self.expect_keyword("PROBABILITY")
            prob_op = self.expect_op("<=", ">=").value
            p = self.parse_signed_number()
            if not 0.0 < p < 1.0:
                raise self.error("probability threshold must lie in (0, 1)")
            return [ProbabilisticConstraint(expr, op, rhs, prob_op, p)]
        return [SumConstraint(expr, op, rhs, expected=expected)]

    def parse_count_constraint(self) -> CountConstraint:
        self.expect_keyword("COUNT")
        self.expect_op("(")
        self.expect_op("*")
        self.expect_op(")")
        if self.accept_keyword("BETWEEN"):
            low = self.parse_signed_number()
            self.expect_keyword("AND")
            high = self.parse_signed_number()
            if low > high:
                raise self.error("BETWEEN bounds must satisfy low <= high")
            return CountConstraint(low=low, high=high)
        op = self.expect_op(*_COMPARE_OPS).value
        value = self.parse_signed_number()
        return CountConstraint(op=op, value=value)

    # --- objective ------------------------------------------------------------------

    def parse_objective(self):
        sense_token = self.expect_keyword("MINIMIZE", "MAXIMIZE")
        sense = SENSE_MINIMIZE if sense_token.value == "MINIMIZE" else SENSE_MAXIMIZE
        if self.accept_keyword("PROBABILITY"):
            self.expect_keyword("OF")
            self.expect_keyword("SUM")
            self.expect_op("(")
            expr = self.parse_or()
            self.expect_op(")")
            op = self.expect_op(*_COMPARE_OPS).value
            rhs = self.parse_signed_number()
            return ProbabilityObjective(sense, expr, op, rhs)
        if self.current.is_keyword("COUNT"):
            self.expect_keyword("COUNT")
            self.expect_op("(")
            self.expect_op("*")
            self.expect_op(")")
            return SumObjective(sense, Const(1), expected=False)
        expected = self.accept_keyword("EXPECTED")
        self.expect_keyword("SUM")
        self.expect_op("(")
        expr = self.parse_or()
        self.expect_op(")")
        return SumObjective(sense, expr, expected=expected)

    # --- expressions -------------------------------------------------------------------

    def parse_signed_number(self) -> float:
        negative = False
        while self.current.is_op("-", "+"):
            if self.advance().value == "-":
                negative = not negative
        if self.current.kind != KIND_NUMBER:
            raise self.error("expected a numeric literal")
        value = _number(self.advance().value)
        return -value if negative else value

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.current.is_keyword("OR"):
            self.advance()
            left = BoolOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.current.is_keyword("AND") and self._and_continues_predicate():
            self.advance()
            left = BoolOp("AND", left, self.parse_not())
        return left

    def _and_continues_predicate(self) -> bool:
        """Inside SUCH THAT, ``AND`` separates constraints; inside a
        parenthesized predicate or WHERE clause it is a boolean operator.
        The constraint parser never recurses into :meth:`parse_and` with a
        pending constraint keyword, so ``AND`` followed by a constraint
        head (COUNT/SUM/EXPECTED) is a separator, not an operator."""
        lookahead = self.tokens[self.pos + 1]
        return not lookahead.is_keyword("COUNT", "SUM", "EXPECTED")

    def parse_not(self) -> Expr:
        if self.current.is_keyword("NOT"):
            self.advance()
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        if self.current.is_op(*_COMPARE_OPS):
            op = self.advance().value
            right = self.parse_additive()
            return Compare(op, left, right)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.current.is_op("+", "-"):
            op = self.advance().value
            left = BinOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.current.is_op("*", "/"):
            op = self.advance().value
            left = BinOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.current.is_op("-"):
            self.advance()
            return UnaryOp("-", self.parse_unary())
        if self.current.is_op("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_power()

    def parse_power(self) -> Expr:
        base = self.parse_primary()
        if self.current.is_op("^"):
            self.advance()
            return BinOp("^", base, self.parse_unary())
        return base

    def parse_primary(self) -> Expr:
        token = self.current
        if token.kind == KIND_NUMBER:
            self.advance()
            return Const(_number(token.value))
        if token.kind == KIND_STRING:
            self.advance()
            return Const(token.value)
        if token.is_op("("):
            self.advance()
            inner = self.parse_or()
            self.expect_op(")")
            return inner
        if token.kind == KIND_IDENT:
            name = self.advance().value
            if self.current.is_op("("):
                self.advance()
                args = [self.parse_or()]
                while self.current.is_op(","):
                    self.advance()
                    args.append(self.parse_or())
                self.expect_op(")")
                return FuncCall(name, tuple(args))
            return Attr(name)
        raise self.error("expected an expression")


def _number(literal: str) -> float:
    if "." in literal or "e" in literal or "E" in literal:
        return float(literal)
    return int(literal)


def parse_query(text: str) -> PackageQuery:
    """Parse sPaQL text into a :class:`PackageQuery` AST."""
    return _Parser(tokenize(text)).parse_query()


def parse_standalone_expression(text: str) -> Expr:
    """Parse a bare expression (used by ``db.expressions.parse_expression``)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_or()
    if parser.current.kind != KIND_EOF:
        raise parser.error("unexpected trailing input")
    return expr
