"""sPaQL abstract syntax tree.

The AST mirrors the surface syntax (Figure 8's railroad diagram):
constraint nodes keep their written form (``COUNT(*) BETWEEN``,
``EXPECTED SUM``, ``WITH PROBABILITY``) so the pretty-printer can
round-trip queries; normalization into the SILP IR happens in
``repro.silp.compile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..db.expressions import Expr

#: Comparison operators allowed in package constraints.
CONSTRAINT_OPS = ("<=", ">=", "=", "<", ">")

SENSE_MINIMIZE = "minimize"
SENSE_MAXIMIZE = "maximize"


@dataclass(frozen=True)
class CountConstraint:
    """``COUNT(*) ⊙ v`` or ``COUNT(*) BETWEEN lo AND hi``."""

    low: Optional[float] = None
    high: Optional[float] = None
    op: Optional[str] = None
    value: Optional[float] = None

    def __post_init__(self):
        between = self.low is not None or self.high is not None
        simple = self.op is not None
        if between == simple:
            raise ValueError("CountConstraint is either BETWEEN or a comparison")


@dataclass(frozen=True)
class SumConstraint:
    """``[EXPECTED] SUM(f) ⊙ v``."""

    expr: Expr
    op: str
    rhs: float
    expected: bool = False


@dataclass(frozen=True)
class ProbabilisticConstraint:
    """``SUM(f) ⊙ v WITH PROBABILITY ⊙p p``.

    ``prob_op`` is ``>=`` or ``<=``; the ``<=`` form is sugar that the
    compiler rewrites by flipping the inner constraint (Section 2.3).
    """

    expr: Expr
    op: str
    rhs: float
    prob_op: str
    probability: float


Constraint = Union[CountConstraint, SumConstraint, ProbabilisticConstraint]


@dataclass(frozen=True)
class SumObjective:
    """``MINIMIZE/MAXIMIZE [EXPECTED] SUM(f)``."""

    sense: str
    expr: Expr
    expected: bool = False


@dataclass(frozen=True)
class ProbabilityObjective:
    """``MINIMIZE/MAXIMIZE PROBABILITY OF SUM(f) ⊙ v``."""

    sense: str
    expr: Expr
    op: str
    rhs: float


Objective = Union[SumObjective, ProbabilityObjective]


@dataclass(frozen=True)
class PackageQuery:
    """A parsed sPaQL query."""

    table: str
    alias: Optional[str] = None
    repeat: Optional[int] = None
    where: Optional[Expr] = None
    constraints: tuple = field(default_factory=tuple)
    objective: Optional[Objective] = None

    @property
    def probabilistic_constraints(self) -> list[ProbabilisticConstraint]:
        return [
            c for c in self.constraints if isinstance(c, ProbabilisticConstraint)
        ]

    def without_probabilistic_constraints(self) -> "PackageQuery":
        """The query ``Q₀`` of Algorithm 2: all chance constraints removed."""
        kept = tuple(
            c for c in self.constraints if not isinstance(c, ProbabilisticConstraint)
        )
        return PackageQuery(
            table=self.table,
            alias=self.alias,
            repeat=self.repeat,
            where=self.where,
            constraints=kept,
            objective=self.objective,
        )
