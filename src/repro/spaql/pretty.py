"""Pretty-printer for sPaQL ASTs.

``format_query`` emits canonical sPaQL text that parses back to an
equivalent AST (property-tested round trip).
"""

from __future__ import annotations

from ..db.expressions import render
from .nodes import (
    CountConstraint,
    PackageQuery,
    ProbabilisticConstraint,
    SumConstraint,
    SumObjective,
    ProbabilityObjective,
    SENSE_MINIMIZE,
)


def _format_number(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def format_constraint(constraint) -> str:
    """Render one constraint node as sPaQL text."""
    if isinstance(constraint, CountConstraint):
        if constraint.op is not None:
            return f"COUNT(*) {constraint.op} {_format_number(constraint.value)}"
        return (
            f"COUNT(*) BETWEEN {_format_number(constraint.low)}"
            f" AND {_format_number(constraint.high)}"
        )
    if isinstance(constraint, SumConstraint):
        prefix = "EXPECTED " if constraint.expected else ""
        return (
            f"{prefix}SUM({render(constraint.expr)}) {constraint.op}"
            f" {_format_number(constraint.rhs)}"
        )
    if isinstance(constraint, ProbabilisticConstraint):
        return (
            f"SUM({render(constraint.expr)}) {constraint.op}"
            f" {_format_number(constraint.rhs)}"
            f" WITH PROBABILITY {constraint.prob_op}"
            f" {_format_number(constraint.probability)}"
        )
    raise TypeError(f"unknown constraint node {type(constraint).__name__}")


def format_objective(objective) -> str:
    """Render the objective node as sPaQL text."""
    word = "MINIMIZE" if objective.sense == SENSE_MINIMIZE else "MAXIMIZE"
    if isinstance(objective, SumObjective):
        prefix = "EXPECTED " if objective.expected else ""
        return f"{word} {prefix}SUM({render(objective.expr)})"
    if isinstance(objective, ProbabilityObjective):
        return (
            f"{word} PROBABILITY OF SUM({render(objective.expr)})"
            f" {objective.op} {_format_number(objective.rhs)}"
        )
    raise TypeError(f"unknown objective node {type(objective).__name__}")


def format_query(query: PackageQuery) -> str:
    """Render a :class:`PackageQuery` as canonical sPaQL text."""
    lines = ["SELECT PACKAGE(*)" + (f" AS {query.alias}" if query.alias else "")]
    from_line = f"FROM {query.table}"
    if query.repeat is not None:
        from_line += f" REPEAT {query.repeat}"
    lines.append(from_line)
    if query.where is not None:
        lines.append(f"WHERE {render(query.where)}")
    if query.constraints:
        lines.append("SUCH THAT")
        formatted = [format_constraint(c) for c in query.constraints]
        lines.append(" AND\n".join("    " + text for text in formatted))
    if query.objective is not None:
        lines.append(format_objective(query.objective))
    return "\n".join(lines)
