"""sPaQL: the stochastic package query language (Appendix A).

sPaQL extends PaQL (itself an extension of SQL) with ``EXPECTED``
constraints/objectives and ``WITH PROBABILITY`` (chance) constraints,
plus ``PROBABILITY OF`` objectives.  This package provides the lexer,
AST, recursive-descent parser, and a pretty-printer whose output
round-trips through the parser.
"""

from .nodes import (
    PackageQuery,
    CountConstraint,
    SumConstraint,
    ProbabilisticConstraint,
    SumObjective,
    ProbabilityObjective,
)
from .parser import parse_query, parse_standalone_expression
from .pretty import format_query

__all__ = [
    "PackageQuery",
    "CountConstraint",
    "SumConstraint",
    "ProbabilisticConstraint",
    "SumObjective",
    "ProbabilityObjective",
    "parse_query",
    "parse_standalone_expression",
    "format_query",
]
