"""Token definitions for the sPaQL lexer."""

from __future__ import annotations

from dataclasses import dataclass

#: Reserved words, uppercase.  Identifiers matching these (case
#: insensitively) lex as keywords.
KEYWORDS = frozenset(
    {
        "SELECT",
        "PACKAGE",
        "AS",
        "FROM",
        "REPEAT",
        "WHERE",
        "SUCH",
        "THAT",
        "AND",
        "OR",
        "NOT",
        "BETWEEN",
        "SUM",
        "COUNT",
        "EXPECTED",
        "WITH",
        "PROBABILITY",
        "OF",
        "MAXIMIZE",
        "MINIMIZE",
    }
)

#: Multi-character operators must be listed before their prefixes.
OPERATORS = ("<=", ">=", "<>", "<", ">", "=", "+", "-", "*", "/", "^", "(", ")", ",")

KIND_KEYWORD = "KEYWORD"
KIND_IDENT = "IDENT"
KIND_NUMBER = "NUMBER"
KIND_STRING = "STRING"
KIND_OP = "OP"
KIND_EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        """Whether this token is one of the given keywords."""
        return self.kind == KIND_KEYWORD and self.value in words

    def is_op(self, *ops: str) -> bool:
        """Whether this token is one of the given operators."""
        return self.kind == KIND_OP and self.value in ops

    def describe(self) -> str:
        """Human-readable token description for error messages."""
        if self.kind == KIND_EOF:
            return "end of query"
        return f"{self.value!r}"
