"""Convergence event streams: trace-scoped ``emit()`` records.

Spans answer *where time went*; events answer *how the answer got
better while it went*.  An *event* is a plain dict — ``kind``, an epoch
``ts``, an optional solve-relative ``t``, and free-form fields — recorded
into the active :class:`~repro.obs.trace.TraceSession` alongside its
spans, so events ride the exact same payloads across the solve farm's
forkserver boundary and surface on ``GET /trace/<id>`` and
``repro trace --convergence``.

Three producers feed the channel:

* ``solver/branch_bound.py`` emits a :data:`KIND_SOLVER_NODE` record per
  expanded node and per incumbent improvement —
  ``(t, incumbent, best_bound, gap, nodes, lp_iters)`` in the caller's
  objective sense — plus a terminal record (``final=True``) whose ``gap``
  equals the returned :class:`~repro.solver.result.MILPResult` gap and,
  through the engine's envelope, the ``AnytimeResult`` gap;
* SummarySearch/CSA emit a :data:`KIND_CSA_ROUND` record per
  optimize/validate round (the ε-trajectory of Section 5.4);
* the scale driver emits a :data:`KIND_REFINE_OUTCOME` record per
  refined partition.

Like :func:`~repro.obs.trace.stage`, the disabled path is one
ContextVar read: :func:`emit` returns ``False`` without touching the
arguments' dict when no session is active.  Sessions cap their event
list (``TraceSession.max_events``) so a runaway solve loop cannot hold
unbounded memory per query; overflow is counted, never silently lost.
"""

from __future__ import annotations

import time

from .trace import current_session

#: Branch-and-bound convergence: one record per expanded node / new
#: incumbent, fields ``t, incumbent, best_bound, gap, nodes, lp_iters``.
KIND_SOLVER_NODE = "solver.node"

#: SummarySearch/CSA ε-trajectory: one record per optimize/validate
#: round, fields ``t, iteration, q, epsilon_upper, feasible, objective``.
KIND_CSA_ROUND = "csa.round"

#: SketchRefine per-partition refine outcome, fields
#: ``t, partition, status, final_m, solve_time, validate_time``.
KIND_REFINE_OUTCOME = "refine.outcome"


def events_enabled() -> bool:
    """Whether an active trace session is collecting events."""
    return current_session() is not None


def emit(kind: str, *, t: float | None = None, **fields) -> bool:
    """Record one convergence event on the active trace session.

    ``t`` is the producer's solve-relative clock (seconds since its own
    start) — the natural x-axis for gap-over-time; ``ts`` (epoch) is
    stamped here for cross-producer ordering.  Returns whether an event
    was recorded (``False`` when tracing is off).
    """
    session = current_session()
    if session is None:
        return False
    event = {"kind": kind, "ts": time.time()}
    if t is not None:
        event["t"] = float(t)
    event.update(fields)
    session.add_event(event)
    return True


def solver_events(events) -> list[dict]:
    """The branch-and-bound convergence series, in emission order."""
    return [e for e in events or () if e.get("kind") == KIND_SOLVER_NODE]


def epsilon_events(events) -> list[dict]:
    """The CSA ε-trajectory series, in emission order."""
    return [e for e in events or () if e.get("kind") == KIND_CSA_ROUND]


def refine_events(events) -> list[dict]:
    """Per-partition refine outcomes, in emission order."""
    return [e for e in events or () if e.get("kind") == KIND_REFINE_OUTCOME]


def _fmt(value, digits: int = 6) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def format_convergence(document: dict, width: int = 72) -> str:
    """ASCII gap-over-time view of one trace document's event stream.

    ``document`` is a ``/trace`` payload (or ``engine.last_trace``):
    the event list is read from its ``events`` key.  Three sections,
    each omitted when its producer emitted nothing: the solver
    gap-over-time bars, the CSA ε-trajectory table, and the refine
    outcome tally.
    """
    events = document.get("events") or []
    lines: list[str] = []
    solver = solver_events(events)
    if solver:
        lines.append("solver convergence (gap over time):")
        gaps = [e.get("gap") for e in solver]
        finite = [g for g in gaps if g is not None]
        top = max(finite) if finite else 0.0
        bar_width = max(10, width - 46)
        for event in solver:
            gap = event.get("gap")
            frac = 0.0 if not top or gap is None else min(1.0, gap / top)
            bar = "#" * max(0, round(frac * bar_width))
            marker = " *" if event.get("final") else ""
            lines.append(
                f"  t={_fmt(event.get('t'), 4):>8}s"
                f" gap={_fmt(gap):>10}"
                f" inc={_fmt(event.get('incumbent'), 6):>10}"
                f" bound={_fmt(event.get('best_bound'), 6):>10}"
                f" n={_fmt(event.get('nodes')):>5}"
                f" lp={_fmt(event.get('lp_iters')):>6}"
                f" |{bar}{marker}"
            )
    eps = epsilon_events(events)
    if eps:
        if lines:
            lines.append("")
        lines.append("CSA epsilon trajectory:")
        lines.append("  iter     q    eps_upper   feasible    objective")
        for event in eps:
            lines.append(
                f"  {_fmt(event.get('iteration')):>4}"
                f" {_fmt(event.get('q')):>5}"
                f" {_fmt(event.get('epsilon_upper')):>12}"
                f" {_fmt(event.get('feasible')):>10}"
                f" {_fmt(event.get('objective')):>12}"
            )
    refines = refine_events(events)
    if refines:
        if lines:
            lines.append("")
        tally: dict[str, int] = {}
        for event in refines:
            status = str(event.get("status"))
            tally[status] = tally.get(status, 0) + 1
        summary = ", ".join(f"{k}={v}" for k, v in sorted(tally.items()))
        lines.append(f"refine outcomes ({len(refines)} partitions): {summary}")
        for event in refines:
            lines.append(
                f"  partition={_fmt(event.get('partition')):>4}"
                f" status={_fmt(event.get('status')):>12}"
                f" final_m={_fmt(event.get('final_m')):>6}"
                f" solve={_fmt(event.get('solve_time'), 4):>8}s"
                f" validate={_fmt(event.get('validate_time'), 4):>8}s"
            )
    dropped = document.get("events_dropped") or 0
    if dropped:
        if lines:
            lines.append("")
        lines.append(f"({dropped} events dropped at the session cap)")
    if not lines:
        return "no convergence events recorded"
    return "\n".join(lines)
