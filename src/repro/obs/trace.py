"""Trace spans: ``with stage("solve"): ...`` instrumentation.

A *span* is a plain dict — ``trace_id`` / ``span_id`` / ``parent_id``,
stage name, epoch start, wall and CPU-thread seconds, and free-form
``attrs`` (cache hit/miss, scenario count, solver status, partition
id).  Plain dicts because spans must cross the solve farm's forkserver
boundary inside done messages and land in JSON responses unchanged.

Instrumented code calls :func:`stage`, which is a **no-op returning a
shared null object** unless a :class:`TraceSession` has been activated
on the current context (``contextvars``), so the disabled path costs
one ContextVar read per call site.  Sessions are activated explicitly:

* by the engine, when it roots its own trace (CLI / library use);
* by the broker, on the pool thread (thread backend) — thread-pool
  threads do **not** inherit the submitter's contextvars;
* by the farm worker, parented to the broker's root span id carried in
  the task payload, so worker-side spans re-parent correctly when the
  broker ingests them into the :class:`TraceRing`.

The ring is the bounded in-memory store behind ``GET /trace/<id>``:
oldest trace evicted beyond capacity, with a condition variable so the
HTTP layer can wait for a trace to complete — ``Future.set_result``
wakes result waiters *before* running done-callbacks, so the broker's
root span may land just after ``execute()`` returns.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar

from .metrics import stage_histograms
from .profile import stage_profile

#: The active (session, parent_span_id, parent_stage) frame, or None.
_CURRENT: ContextVar = ContextVar("repro_obs_frame", default=None)

_span_counter = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh span id, unique across farm worker processes.

    The pid is read per call, not at import: forkserver workers all
    fork from one preloaded server process, so an import-time pid would
    collide across every worker.
    """
    return f"{os.getpid():x}-{next(_span_counter):x}"


class TraceSession:
    """Span accumulator for one traced evaluation (one per query)."""

    __slots__ = (
        "trace_id", "spans", "max_spans", "dropped", "profile",
        "events", "max_events", "events_dropped", "resources",
    )

    def __init__(
        self,
        trace_id: str,
        max_spans: int = 2048,
        profile: bool = False,
        max_events: int = 4096,
    ):
        self.trace_id = trace_id
        self.spans: list[dict] = []
        self.max_spans = max_spans
        #: Spans discarded once ``max_spans`` was reached (a runaway
        #: solve loop must not hold unbounded memory per query).
        self.dropped = 0
        #: Feed finished spans into the flat self-time profile
        #: (``SPQConfig.profile_stages``).
        self.profile = profile
        #: Convergence events (:mod:`repro.obs.events`), bounded like
        #: spans: a per-node solver stream must not hold unbounded
        #: memory per query.
        self.events: list[dict] = []
        self.max_events = max_events
        self.events_dropped = 0
        #: Trace-scoped resource charges (:func:`repro.obs.resources.charge`).
        self.resources: dict[str, float] = {}

    def add(self, span: dict) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    def add_event(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        self.events.append(event)

    def charge(self, name: str, amount: float = 1.0) -> None:
        # Single-query accumulator: touched from the one thread (or
        # worker process) evaluating this query, so a plain dict += is
        # safe here where the process-wide registries need locks.
        self.resources[name] = self.resources.get(name, 0.0) + amount

    def payload(self) -> tuple:
        """The done-message tuple shipped across the farm boundary.

        Mirrored by :meth:`TraceRing.add`'s signature, so the broker can
        install ``trace_ring.add`` directly as the farm's span sink.
        """
        return (
            self.trace_id, self.spans, self.dropped,
            self.events, self.events_dropped, self.resources,
        )


def current_session() -> TraceSession | None:
    """The session active on this context, or None (tracing off)."""
    frame = _CURRENT.get()
    return frame[0] if frame is not None else None


@contextmanager
def activate(session: TraceSession, parent_id: str | None = None):
    """Activate ``session`` on the current context.

    Spans recorded inside nest under ``parent_id`` (the broker's root
    span when crossing a thread or process boundary, None for a
    self-rooted trace).
    """
    token = _CURRENT.set((session, parent_id, None))
    try:
        yield session
    finally:
        _CURRENT.reset(token)


class _NullStage:
    """The shared do-nothing stage returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key, value) -> "_NullStage":
        return self


_NULL_STAGE = _NullStage()


class _Stage:
    """A live span under construction (returned by :func:`stage`)."""

    __slots__ = (
        "_frame", "name", "attrs", "span_id", "_token",
        "_start_epoch", "_start_wall", "_start_cpu", "child_wall",
    )

    def __init__(self, frame, name: str, attrs: dict):
        self._frame = frame
        self.name = name
        self.attrs = attrs
        #: Wall time accumulated by direct children; self time is
        #: ``wall - child_wall`` (feeds the flat profile).
        self.child_wall = 0.0

    def set(self, key: str, value) -> "_Stage":
        """Attach one attribute; chainable."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "_Stage":
        self.span_id = new_span_id()
        session = self._frame[0]
        self._token = _CURRENT.set((session, self.span_id, self))
        self._start_epoch = time.time()
        self._start_cpu = time.thread_time()
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._start_wall
        cpu = time.thread_time() - self._start_cpu
        _CURRENT.reset(self._token)
        session, parent_id, parent_stage = self._frame
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        session.add(
            {
                "trace_id": session.trace_id,
                "span_id": self.span_id,
                "parent_id": parent_id,
                "name": self.name,
                "start": self._start_epoch,
                "wall_s": wall,
                "cpu_s": cpu,
                "attrs": self.attrs,
            }
        )
        if parent_stage is not None:
            parent_stage.child_wall += wall
        stage_histograms.observe(self.name, wall)
        if session.profile:
            stage_profile.add(self.name, max(0.0, wall - self.child_wall), wall)
        return False


def stage(name: str, **attrs):
    """A context manager recording one span, or a no-op when untraced."""
    frame = _CURRENT.get()
    if frame is None:
        return _NULL_STAGE
    return _Stage(frame, name, attrs)


def span_tree(
    spans, trace_id: str | None = None, complete: bool = True, dropped: int = 0
) -> dict:
    """Nest flat spans into the tree document served on ``/trace``.

    The root is the span with no parent (the broker's ``query`` span,
    or the engine's ``execute`` for self-rooted traces).  Orphans —
    spans whose parent was dropped at the session cap, or worker spans
    that arrived before their root — attach under the root rather than
    vanishing.
    """
    nodes: "OrderedDict[str, dict]" = OrderedDict()
    for span in sorted(spans, key=lambda s: s.get("start", 0.0)):
        node = dict(span)
        node["children"] = []
        nodes[node["span_id"]] = node
    root = None
    orphans = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        elif node.get("parent_id") is None and root is None:
            root = node
        else:
            orphans.append(node)
    if root is None and orphans:
        root = orphans.pop(0)
    for node in orphans:
        root["children"].append(node)
    return {
        "trace_id": trace_id,
        "complete": complete,
        "n_spans": len(nodes),
        "dropped": dropped,
        "root": root,
    }


class TraceRing:
    """Bounded in-memory store of recent traces (oldest evicted)."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._entries)

    def open(self, trace_id: str, **meta) -> None:
        """Register a trace at admission (evicting the oldest if full)."""
        with self._cond:
            self._entries.pop(trace_id, None)
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            self._entries[trace_id] = {
                "spans": [],
                "meta": dict(meta),
                "complete": False,
                "dropped": 0,
                "events": [],
                "events_dropped": 0,
                "resources": {},
            }

    def add(
        self,
        trace_id: str,
        spans,
        dropped: int = 0,
        events=None,
        events_dropped: int = 0,
        resources=None,
    ) -> None:
        """Ingest one session's payload for an open trace (no-op once
        evicted).  The signature matches :meth:`TraceSession.payload`."""
        if (
            not spans and not dropped and not events
            and not events_dropped and not resources
        ):
            return
        with self._cond:
            entry = self._entries.get(trace_id)
            if entry is None:
                return
            entry["spans"].extend(spans)
            entry["dropped"] += dropped
            if events:
                entry["events"].extend(events)
            entry["events_dropped"] += events_dropped
            if resources:
                for name, amount in resources.items():
                    entry["resources"][name] = (
                        entry["resources"].get(name, 0.0) + amount
                    )

    def finish(self, trace_id: str, root_span: dict | None = None, **meta) -> None:
        """Mark a trace complete (appending its root span) and wake waiters."""
        with self._cond:
            entry = self._entries.get(trace_id)
            if entry is None:
                return
            if root_span is not None:
                entry["spans"].append(root_span)
            entry["meta"].update(meta)
            entry["complete"] = True
            self._cond.notify_all()

    def discard(self, trace_id: str) -> None:
        """Drop a trace whose evaluation never dispatched."""
        with self._cond:
            self._entries.pop(trace_id, None)

    def get(self, trace_id: str, wait_s: float = 0.0) -> dict | None:
        """Snapshot one trace, optionally waiting for it to complete.

        Returns None for unknown/evicted ids.  An incomplete trace is
        returned as-is once ``wait_s`` elapses — partial beats nothing.
        """
        deadline = time.monotonic() + wait_s
        with self._cond:
            while True:
                entry = self._entries.get(trace_id)
                if entry is None:
                    return None
                if entry["complete"]:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return {
                "trace_id": trace_id,
                "complete": entry["complete"],
                "spans": list(entry["spans"]),
                "meta": dict(entry["meta"]),
                "dropped": entry["dropped"],
                "events": list(entry.get("events", ())),
                "events_dropped": entry.get("events_dropped", 0),
                "resources": dict(entry.get("resources", ())),
            }

    def tree(self, trace_id: str, wait_s: float = 0.0) -> dict | None:
        """The span tree document for one trace, or None if unknown."""
        entry = self.get(trace_id, wait_s=wait_s)
        if entry is None:
            return None
        tree = span_tree(
            entry["spans"],
            trace_id,
            complete=entry["complete"],
            dropped=entry["dropped"],
        )
        tree["events"] = entry["events"]
        tree["events_dropped"] = entry["events_dropped"]
        if entry["resources"]:
            tree["resources"] = entry["resources"]
        if entry["meta"]:
            tree["meta"] = entry["meta"]
        return tree
