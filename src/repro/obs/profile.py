"""Flat per-stage profiles and trace renderers.

Two consumers of the span stream:

* :class:`StageProfile` — the opt-in ``SPQConfig.profile_stages`` hook:
  every finished span adds its *self time* (wall minus direct
  children's wall) to a process-wide flat profile, so a long run
  answers "where did the time go" without storing any spans.  This is
  the measurement ROADMAP item 3 ("vectorized hot path, profile-first,
  no single >30% component") reads.
* The ``repro trace`` CLI renderers — :func:`format_waterfall` draws a
  span tree as an offset-scaled waterfall, :func:`format_top_table`
  ranks stages by aggregated self time.  Both operate on the JSON
  documents served by ``GET /trace/<id>`` (see :func:`trace_document`
  for the accepted shapes).
"""

from __future__ import annotations

import threading


class StageProfile:
    """Flat self-time aggregation across every traced evaluation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, dict] = {}

    def add(self, stage: str, self_s: float, wall_s: float) -> None:
        with self._lock:
            entry = self._stages.get(stage)
            if entry is None:
                entry = self._stages[stage] = {
                    "self_s": 0.0, "wall_s": 0.0, "count": 0,
                }
            entry["self_s"] += self_s
            entry["wall_s"] += wall_s
            entry["count"] += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {name: dict(entry) for name, entry in self._stages.items()}

    def reset(self) -> None:
        with self._lock:
            self._stages = {}

    def table(self, top: int | None = 10) -> str:
        """The top-N self-time table for this profile."""
        return format_top_table(self.snapshot(), top=top)


#: The process-wide profile sessions feed when ``profile_stages`` is on.
stage_profile = StageProfile()


# --- span-tree helpers -----------------------------------------------------


def iter_tree(node):
    """Depth-first iteration over a span tree node and its children."""
    if node is None:
        return
    yield node
    for child in node.get("children", ()):
        yield from iter_tree(child)


def aggregate_self_times(root) -> dict:
    """Per-stage ``{self_s, wall_s, count}`` over one span tree."""
    aggregated: dict[str, dict] = {}
    for node in iter_tree(root):
        wall = float(node.get("wall_s", 0.0))
        child_wall = sum(
            float(child.get("wall_s", 0.0)) for child in node.get("children", ())
        )
        entry = aggregated.setdefault(
            node.get("name", "?"), {"self_s": 0.0, "wall_s": 0.0, "count": 0}
        )
        entry["self_s"] += max(0.0, wall - child_wall)
        entry["wall_s"] += wall
        entry["count"] += 1
    return aggregated


def trace_document(doc) -> tuple:
    """Normalize a trace JSON document to ``(trace_id, root_node)``.

    Accepts, in order of preference: a ``GET /trace/<id>`` document
    (or ``repro run --trace-out`` file) with a ``"root"`` key, a saved
    ``POST /query`` response with an inlined ``"trace"``, a raw
    ``{"spans": [...]}`` dump, or a bare span node.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    inlined = doc.get("trace")
    if isinstance(inlined, dict):
        doc = inlined
    if "root" in doc:
        return doc.get("trace_id"), doc["root"]
    if isinstance(doc.get("spans"), list):
        from .trace import span_tree

        tree = span_tree(doc["spans"], doc.get("trace_id"))
        return tree["trace_id"], tree["root"]
    if "name" in doc and "wall_s" in doc:
        return doc.get("trace_id"), doc
    raise ValueError(
        "not a trace document: expected a 'root' span tree, a 'spans'"
        " list, or a single span object"
    )


# --- renderers -------------------------------------------------------------


def format_waterfall(root, width: int = 48, max_spans: int = 60) -> str:
    """Render a span tree as an indented, offset-scaled waterfall."""
    if root is None:
        return "(empty trace)"
    t0 = float(root.get("start", 0.0))
    total = max(float(root.get("wall_s", 0.0)), 1e-9)
    lines: list[str] = []
    shown = 0
    omitted = 0

    def walk(node, depth: int) -> None:
        nonlocal shown, omitted
        if shown >= max_spans:
            omitted += sum(1 for _ in iter_tree(node))
            return
        shown += 1
        wall = float(node.get("wall_s", 0.0))
        offset = max(0.0, float(node.get("start", t0)) - t0)
        left = min(width - 1, int(round(offset / total * width)))
        bar_width = max(1, min(width - left, int(round(wall / total * width))))
        bar = " " * left + "#" * bar_width
        label = f"{'  ' * depth}{node.get('name', '?')}"
        lines.append(f"{label:<30s} |{bar:<{width}s}| {wall * 1000.0:10.2f} ms")
        for child in node.get("children", ()):
            walk(child, depth + 1)

    walk(root, 0)
    if omitted:
        lines.append(f"... {omitted} more span(s) omitted (--width/--top)")
    return "\n".join(lines)


def format_top_table(aggregated: dict, top: int | None = 10) -> str:
    """Render per-stage self times as a ranked table."""
    if not aggregated:
        return "(no spans)"
    total_self = sum(entry["self_s"] for entry in aggregated.values()) or 1e-9
    rows = sorted(
        aggregated.items(), key=lambda item: item[1]["self_s"], reverse=True
    )
    if top is not None:
        rows = rows[:top]
    lines = [
        f"{'stage':<20s} {'count':>6s} {'self(s)':>10s} {'self%':>7s}"
        f" {'wall(s)':>10s}"
    ]
    for name, entry in rows:
        lines.append(
            f"{name:<20s} {entry['count']:>6d} {entry['self_s']:>10.3f}"
            f" {entry['self_s'] / total_self * 100.0:>6.1f}%"
            f" {entry['wall_s']:>10.3f}"
        )
    return "\n".join(lines)
