"""Shared counters and per-stage latency histograms.

:class:`LockedCounters` is the atomic-increment helper every
process-wide registry builds on (``repro.scale.metrics`` and the trace
layer alike): a plain dict behind one lock, because CPython's ``+=`` on
instance attributes is *not* atomic under the broker's thread pool
(LOAD / BINARY_ADD / STORE interleave across threads and lose updates).

:class:`StageHistograms` aggregates observed stage durations into
fixed-bucket histograms, exported on ``/metrics`` in the Prometheus
text format as::

    repro_stage_seconds_bucket{stage="solve",le="0.1"} 12
    repro_stage_seconds_sum{stage="solve"} 3.41
    repro_stage_seconds_count{stage="solve"} 17

Snapshots are plain dicts so farm workers can ship them across the
forkserver boundary with every done message; the farm merges them with
:func:`merge_histogram_snapshots` exactly like store-stats snapshots
(departed workers' last reports absorbed into totals).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Histogram bucket upper bounds, in seconds.  Sub-millisecond buckets
#: catch cache-hit parse/compile stages; the top buckets cover long
#: MILP solves (the paper's four-hour budgets land in ``+Inf``).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class LockedCounters:
    """Named float counters guarded by one lock (thread-safe ``+=``)."""

    def __init__(self, names: tuple = ()):
        self._lock = threading.Lock()
        self._values = {name: 0.0 for name in names}

    def add(self, name: str, delta: float = 1.0) -> None:
        """Atomically increment ``name`` by ``delta`` (creating it at 0)."""
        with self._lock:
            self._values[name] = self._values.get(name, 0.0) + delta

    def add_many(self, deltas: dict) -> None:
        """Apply several increments under one lock acquisition."""
        with self._lock:
            for name, delta in deltas.items():
                self._values[name] = self._values.get(name, 0.0) + delta

    def get(self, name: str) -> float:
        with self._lock:
            return self._values.get(name, 0.0)

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter."""
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        """Zero every counter, keeping the key set."""
        with self._lock:
            self._values = {name: 0.0 for name in self._values}


class StageHistograms:
    """Per-stage duration histograms with fixed bucket bounds."""

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._stages: dict[str, dict] = {}

    def observe(self, stage: str, seconds: float) -> None:
        """Record one duration for ``stage``."""
        seconds = float(seconds)
        with self._lock:
            entry = self._stages.get(stage)
            if entry is None:
                entry = self._stages[stage] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            # bisect_left: the first bucket whose bound >= seconds, so an
            # observation exactly on a bound counts toward it (``le``).
            entry["counts"][bisect_left(self.buckets, seconds)] += 1
            entry["sum"] += seconds
            entry["count"] += 1

    def snapshot(self) -> dict:
        """Deep-copied ``{stage: {"counts", "sum", "count"}}``."""
        with self._lock:
            return {
                stage: {
                    "counts": list(entry["counts"]),
                    "sum": entry["sum"],
                    "count": entry["count"],
                }
                for stage, entry in self._stages.items()
            }

    def reset(self) -> None:
        """Drop every stage (tests only)."""
        with self._lock:
            self._stages = {}


def merge_histogram_snapshots(snapshots) -> dict:
    """Element-wise sum of histogram snapshots (farm aggregation)."""
    merged: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for stage, entry in snap.items():
            agg = merged.get(stage)
            if agg is None:
                merged[stage] = {
                    "counts": list(entry["counts"]),
                    "sum": float(entry["sum"]),
                    "count": int(entry["count"]),
                }
                continue
            counts = agg["counts"]
            for i, value in enumerate(entry["counts"]):
                counts[i] += value
            agg["sum"] += float(entry["sum"])
            agg["count"] += int(entry["count"])
    return merged


def histogram_exposition(
    name: str, help_text: str, snapshot: dict, buckets: tuple = DEFAULT_BUCKETS
) -> list[str]:
    """Prometheus text-format lines for one labeled histogram family."""
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} histogram"]
    for stage in sorted(snapshot):
        entry = snapshot[stage]
        cumulative = 0
        for bound, count in zip(buckets, entry["counts"]):
            cumulative += count
            lines.append(
                f'{name}_bucket{{stage="{stage}",le="{bound:g}"}} {cumulative}'
            )
        cumulative += entry["counts"][len(buckets)]
        lines.append(f'{name}_bucket{{stage="{stage}",le="+Inf"}} {cumulative}')
        lines.append(f'{name}_sum{{stage="{stage}"}} {entry["sum"]}')
        lines.append(f'{name}_count{{stage="{stage}"}} {entry["count"]}')
    return lines


#: The process-wide histogram registry every finished span reports into;
#: farm workers ship snapshots of theirs back with each done message.
stage_histograms = StageHistograms()
