"""Observability for the query pipeline (``repro.obs``).

Five cooperating pieces, all dependency-free and cheap when unused:

* :mod:`repro.obs.trace` — lightweight trace spans recorded through
  ``with stage("solve"):`` context managers woven through the engine,
  the scale driver, and the serving layer; a bounded
  :class:`~repro.obs.trace.TraceRing` keeps recent span trees for
  ``GET /trace/<id>``.
* :mod:`repro.obs.metrics` — the shared :class:`LockedCounters`
  atomic-increment helper and per-stage latency histograms exported on
  ``/metrics`` as ``repro_stage_seconds_bucket{stage=...}``.
* :mod:`repro.obs.profile` — flat per-stage self-time aggregation
  (``SPQConfig.profile_stages``) plus the waterfall / top-N renderers
  behind the ``repro trace`` CLI.
* :mod:`repro.obs.events` — trace-scoped convergence event streams
  (branch-and-bound gap-over-time, CSA ε-trajectory, refine outcomes)
  rendered by ``repro trace --convergence``.
* :mod:`repro.obs.resources` — per-query resource accounting (CPU,
  peak-RSS delta, scenario bytes, LP solves, chunk-cache hit ratio)
  attached to root spans and ``AnytimeResult`` envelopes and exported
  as ``repro_resource_*`` metric families.

Trace context propagates across the solve farm's forkserver boundary
the same way store-stats snapshots do: the broker ships
``(trace_id, parent_span_id)`` in the task payload, the worker records
spans under that parent, and ships them back with the done message.
"""

from .events import (
    KIND_CSA_ROUND,
    KIND_REFINE_OUTCOME,
    KIND_SOLVER_NODE,
    emit,
    epsilon_events,
    events_enabled,
    format_convergence,
    refine_events,
    solver_events,
)
from .metrics import (
    DEFAULT_BUCKETS,
    LockedCounters,
    StageHistograms,
    histogram_exposition,
    merge_histogram_snapshots,
    stage_histograms,
)
from .profile import (
    StageProfile,
    aggregate_self_times,
    format_top_table,
    format_waterfall,
    stage_profile,
    trace_document,
)
from .resources import (
    QueryResourceProbe,
    RESOURCE_COUNTER_FIELDS,
    charge,
    merge_resource_snapshots,
    resource_counters,
)
from .slowlog import SlowQueryLog
from .trace import (
    TraceRing,
    TraceSession,
    activate,
    current_session,
    new_span_id,
    new_trace_id,
    span_tree,
    stage,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "KIND_CSA_ROUND",
    "KIND_REFINE_OUTCOME",
    "KIND_SOLVER_NODE",
    "LockedCounters",
    "QueryResourceProbe",
    "RESOURCE_COUNTER_FIELDS",
    "SlowQueryLog",
    "StageHistograms",
    "StageProfile",
    "TraceRing",
    "TraceSession",
    "activate",
    "aggregate_self_times",
    "charge",
    "current_session",
    "emit",
    "epsilon_events",
    "events_enabled",
    "format_convergence",
    "format_top_table",
    "format_waterfall",
    "histogram_exposition",
    "merge_histogram_snapshots",
    "merge_resource_snapshots",
    "new_span_id",
    "new_trace_id",
    "refine_events",
    "resource_counters",
    "solver_events",
    "span_tree",
    "stage",
    "stage_histograms",
    "stage_profile",
    "trace_document",
]
