"""Per-query resource accounting.

Answers *what one query cost* beyond wall time: CPU seconds, peak-RSS
growth, scenario bytes realized vs. served from the store, LP solve
count, and the out-of-core chunk-cache hit ratio.  Two cooperating
pieces:

* :func:`charge` — a trace-scoped counter increment (``lp_solves`` from
  the solver backends); charges land on the active
  :class:`~repro.obs.trace.TraceSession` (riding its payload across the
  forkserver boundary) *and* on the process-lifetime
  :data:`resource_counters` exported as ``repro_resource_*`` families on
  ``/metrics`` (farm workers ship snapshots with every done message;
  the farm merges them exactly like store/scale stats).
* :class:`QueryResourceProbe` — created by the engine around one
  evaluation; samples thread-CPU, ``ru_maxrss``, store stats, and scale
  metrics at entry, and on :meth:`~QueryResourceProbe.finish` folds the
  deltas plus the session's charges into one dict attached to the root
  span and the ``AnytimeResult`` envelope.

Store/scale deltas are process-wide registries, so under concurrent
queries in one process (thread backend) attribution is approximate —
one query's probe window can absorb a neighbour's bytes.  On the
process farm each worker runs one query at a time, so there the deltas
are exact.
"""

from __future__ import annotations

import time

from .metrics import LockedCounters
from .trace import current_session

try:  # POSIX-only; the accounting degrades gracefully without it.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

#: Lifetime-monotonic process totals behind the ``repro_resource_*``
#: metric families.  Farm-aggregated by summation with departed
#: workers' last snapshots absorbed into totals (the store-stats rule).
RESOURCE_COUNTER_FIELDS = (
    "queries_accounted",
    "query_cpu_seconds",
    "lp_solves",
)

resource_counters = LockedCounters(RESOURCE_COUNTER_FIELDS)


def merge_resource_snapshots(snapshots) -> dict:
    """Key-wise sum of :data:`resource_counters` snapshots."""
    merged: dict[str, float] = {name: 0.0 for name in RESOURCE_COUNTER_FIELDS}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.items():
            merged[name] = merged.get(name, 0.0) + float(value)
    return merged


def charge(name: str, amount: float = 1.0) -> None:
    """Count one resource use against the process and the active query.

    Always lands on :data:`resource_counters`; additionally lands on the
    current trace session (when one is active) so the per-query view on
    the envelope and root span can report it.
    """
    resource_counters.add(name, amount)
    session = current_session()
    if session is not None:
        session.charge(name, amount)


def peak_rss_kb() -> int | None:
    """This process's lifetime peak RSS in KiB, or None if unavailable."""
    if _resource is None:
        return None
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


def _store_snapshot(store) -> dict | None:
    if store is None:
        return None
    try:
        return store.stats().as_dict()
    except Exception:
        return None


def _scale_snapshot() -> dict:
    # Imported lazily: repro.scale imports repro.obs.metrics at module
    # load, and this module is part of the repro.obs package.
    from ..scale.metrics import scale_metrics

    return scale_metrics.snapshot()


def _delta(after: dict | None, before: dict | None, key: str) -> int:
    if after is None or before is None:
        return 0
    return max(0, int(after.get(key, 0)) - int(before.get(key, 0)))


class QueryResourceProbe:
    """Samples process counters around one evaluation (engine-owned)."""

    __slots__ = ("_store", "_cpu0", "_rss0", "_store0", "_scale0")

    def __init__(self, store=None):
        self._store = store
        self._cpu0 = time.thread_time()
        self._rss0 = peak_rss_kb()
        self._store0 = _store_snapshot(store)
        self._scale0 = _scale_snapshot()

    def finish(self, session=None) -> dict:
        """The per-query resource document; also feeds process totals.

        ``session`` contributes its trace-scoped charges (``lp_solves``
        from the solver backends).  Keys with no usable source (no
        store, non-POSIX RSS) are reported as 0/None rather than
        omitted, so consumers can rely on the shape.
        """
        cpu_s = max(0.0, time.thread_time() - self._cpu0)
        rss1 = peak_rss_kb()
        store1 = _store_snapshot(self._store)
        scale1 = _scale_snapshot()
        chunk_hits = _delta(scale1, self._scale0, "chunk_hits")
        chunk_misses = _delta(scale1, self._scale0, "chunk_misses")
        chunk_total = chunk_hits + chunk_misses
        charges = dict(session.resources) if session is not None else {}
        usage = {
            "cpu_s": cpu_s,
            "max_rss_delta_kb": (
                None
                if rss1 is None or self._rss0 is None
                else max(0, rss1 - self._rss0)
            ),
            "scenario_bytes_realized": _delta(
                store1, self._store0, "bytes_realized"
            ),
            "scenario_bytes_reused": _delta(store1, self._store0, "bytes_reused"),
            "lp_solves": int(charges.get("lp_solves", 0)),
            "chunk_cache_hits": chunk_hits,
            "chunk_cache_misses": chunk_misses,
            "chunk_cache_hit_ratio": (
                None if chunk_total == 0 else chunk_hits / chunk_total
            ),
        }
        resource_counters.add_many(
            {"queries_accounted": 1, "query_cpu_seconds": cpu_s}
        )
        return usage
