"""Slow-query JSONL log.

One JSON object per line for every broker query whose wall time crosses
the configured threshold (``SPQConfig.slow_query_log`` /
``slow_query_threshold_s``, or ``repro serve --slow-query-log``).  Each
entry carries the trace id (so a slow line can be chased into
``GET /trace/<id>`` while the ring still holds it) and the per-stage
wall-time breakdown summed from the trace's spans.

Appends are serialized under one lock; the file is opened per record —
slow queries are rare by definition, and an always-open handle would
complicate log rotation.  When ``max_bytes`` is set
(``SPQConfig.slow_query_log_max_bytes``), a write that would push the
file past the cap first rotates it: the current contents move to
``<path>.1`` (replacing any previous rotation) and the live file
restarts empty, bounding disk use to roughly two generations.  Because
no handle stays open between records, an atomic rename gives the
copy-truncate effect without the copy.
"""

from __future__ import annotations

import json
import os
import threading

#: Threshold applied when a log path is configured without one.
DEFAULT_THRESHOLD_S = 1.0


class SlowQueryLog:
    """Threshold-gated JSONL appender for slow queries."""

    def __init__(
        self,
        path: str,
        threshold_s: float | None = None,
        max_bytes: int | None = None,
    ):
        self.path = path
        self.threshold_s = (
            DEFAULT_THRESHOLD_S if threshold_s is None else float(threshold_s)
        )
        #: Rotation cap; None disables rotation (unbounded log).
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._lock = threading.Lock()

    def _rotate_locked(self, incoming: int) -> None:
        """Move the live file aside if ``incoming`` bytes would overflow it."""
        if self.max_bytes is None:
            return
        try:
            size = os.path.getsize(self.path)
        except OSError:  # no file yet — nothing to rotate
            return
        if size and size + incoming > self.max_bytes:
            os.replace(self.path, self.path + ".1")

    def record(self, wall_s: float, entry: dict) -> bool:
        """Append one entry if ``wall_s`` crosses the threshold.

        Returns whether the entry was written.  I/O errors propagate to
        the caller (the broker swallows them — observability must never
        fail a query).
        """
        if wall_s < self.threshold_s:
            return False
        line = json.dumps(
            {"wall_s": round(float(wall_s), 6), **entry},
            sort_keys=True,
            default=str,
        )
        data = line + "\n"
        with self._lock:
            self._rotate_locked(len(data.encode("utf-8")))
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(data)
        return True
