"""Slow-query JSONL log.

One JSON object per line for every broker query whose wall time crosses
the configured threshold (``SPQConfig.slow_query_log`` /
``slow_query_threshold_s``, or ``repro serve --slow-query-log``).  Each
entry carries the trace id (so a slow line can be chased into
``GET /trace/<id>`` while the ring still holds it) and the per-stage
wall-time breakdown summed from the trace's spans.

Appends are serialized under one lock; the file is opened per record —
slow queries are rare by definition, and an always-open handle would
complicate log rotation.
"""

from __future__ import annotations

import json
import threading

#: Threshold applied when a log path is configured without one.
DEFAULT_THRESHOLD_S = 1.0


class SlowQueryLog:
    """Threshold-gated JSONL appender for slow queries."""

    def __init__(self, path: str, threshold_s: float | None = None):
        self.path = path
        self.threshold_s = (
            DEFAULT_THRESHOLD_S if threshold_s is None else float(threshold_s)
        )
        self._lock = threading.Lock()

    def record(self, wall_s: float, entry: dict) -> bool:
        """Append one entry if ``wall_s`` crosses the threshold.

        Returns whether the entry was written.  I/O errors propagate to
        the caller (the broker swallows them — observability must never
        fail a query).
        """
        if wall_s < self.threshold_s:
            return False
        line = json.dumps(
            {"wall_s": round(float(wall_s), 6), **entry},
            sort_keys=True,
            default=str,
        )
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        return True
