"""Monte Carlo database substrate (MCDB-style).

Implements the probabilistic data model of Section 2.2: uncertain
attribute values are random variables realized by user-defined **VG
functions**; a *scenario* is one realization of every random variable in
the relation.  Scenarios are i.i.d. across an RNG *stream*; optimization,
validation, and expectation-estimation use disjoint streams (Sections
3.1–3.2).  Generation supports both the *tuple-wise* and *scenario-wise*
seeding strategies of Section 5.5.
"""

from .vg import VGFunction, make_vg, parse_vg_expr, register_vg, vg_names
from .distributions import (
    GaussianNoiseVG,
    ParetoNoiseVG,
    UniformNoiseVG,
    ExponentialNoiseVG,
    StudentTNoiseVG,
)
from .gbm import GeometricBrownianMotionVG
from .integration import DiscreteVariantsVG, build_integration_variants
from .bootstrap import BootstrapVG, EmpiricalBootstrapVG
from .copula import GaussianCopulaVG
from .mixture import MixtureVG
from .stochastic import StochasticModel, apply_vg_overrides
from .scenarios import ScenarioGenerator, MODE_SCENARIO_WISE, MODE_TUPLE_WISE
from .expectation import ExpectationEstimator

__all__ = [
    "VGFunction",
    "register_vg",
    "make_vg",
    "parse_vg_expr",
    "vg_names",
    "GaussianNoiseVG",
    "ParetoNoiseVG",
    "UniformNoiseVG",
    "ExponentialNoiseVG",
    "StudentTNoiseVG",
    "GeometricBrownianMotionVG",
    "DiscreteVariantsVG",
    "build_integration_variants",
    "BootstrapVG",
    "EmpiricalBootstrapVG",
    "GaussianCopulaVG",
    "MixtureVG",
    "StochasticModel",
    "apply_vg_overrides",
    "ScenarioGenerator",
    "MODE_SCENARIO_WISE",
    "MODE_TUPLE_WISE",
    "ExpectationEstimator",
]
