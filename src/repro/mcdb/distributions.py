"""Noise-model VG functions over a deterministic base column.

The Galaxy workload (Section 6.1, Table 3) models telescope readings as
the original value plus Gaussian or Pareto noise, with the noise scale
either shared by all tuples (``σ``) or randomized per tuple (``σ*``).
These VG functions implement ``value_i = base_i + noise_i`` with
independent per-row noise; each row is its own block.

All of them expose closed-form means where they exist (Pareto with shape
``a ≤ 1`` has no finite mean — the Galaxy Q5–Q8 queries deliberately use
``a = 1``, which is why the paper estimates expectations empirically) and
finite support bounds where they exist (feeding Appendix B's bounds).
"""

from __future__ import annotations

import numpy as np

from ..errors import VGFunctionError
from .vg import VGFunction, register_vg


def _per_row(param, n: int, name: str) -> np.ndarray:
    """Broadcast a scalar or per-row parameter to shape ``(n,)``."""
    arr = np.asarray(param, dtype=float)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.shape != (n,):
        raise VGFunctionError(f"{name} must be scalar or have one value per row")
    return arr


class _NoiseVG(VGFunction):
    """Common machinery: value = base column + independent noise."""

    def __init__(self, base_column: str):
        super().__init__()
        self.base_column = base_column
        self._base: np.ndarray | None = None

    def _after_bind(self, relation) -> None:
        self._base = np.asarray(relation.column(self.base_column), dtype=float)
        self._check_params(relation.n_rows)

    def _check_params(self, n: int) -> None:
        """Validate/broadcast distribution parameters after binding."""

    @property
    def base(self) -> np.ndarray:
        """The resolved per-row base-column values."""
        self._require_bound()
        assert self._base is not None
        return self._base

    def _noise(self, rows: np.ndarray, rng, size: int) -> np.ndarray:
        raise NotImplementedError

    def _sample_block(self, block_index, rng, size):
        rows = self.blocks[block_index]
        return self.base[rows, None] + self._noise(rows, rng, size)

    def sample_all(self, rng):
        """One scenario: base values plus one vectorized noise draw."""
        rows = np.arange(self.n_rows)
        return self.base + self._noise(rows, rng, 1)[:, 0]


@register_vg("gaussian")
class GaussianNoiseVG(_NoiseVG):
    """``base + Normal(0, σ_i)`` — Galaxy Q1–Q4.

    ``sigma`` may be a scalar (the paper's ``σ`` case) or per-row array
    (the ``σ*`` case, where per-tuple deviations were drawn as
    ``|Normal(0, σ*)|`` at dataset-construction time).
    """

    def __init__(self, base_column: str, sigma):
        super().__init__(base_column)
        self._sigma_param = sigma
        self._sigma: np.ndarray | None = None

    def _check_params(self, n: int) -> None:
        self._sigma = _per_row(self._sigma_param, n, "sigma")
        if np.any(self._sigma < 0):
            raise VGFunctionError("sigma must be nonnegative")

    def _noise(self, rows, rng, size):
        assert self._sigma is not None
        return rng.normal(0.0, 1.0, size=(len(rows), size)) * self._sigma[rows, None]

    def mean(self):
        """``E[value_i] = base_i`` (the noise is centered)."""
        return self.base.copy()

    # Gaussian noise is unbounded: keep default infinite support.


@register_vg("pareto")
class ParetoNoiseVG(_NoiseVG):
    """``base + Pareto(scale m_i, shape a_i)`` — Galaxy Q5–Q8.

    Classical (Type I) Pareto: noise ≥ m, density ``a mᵃ / x^{a+1}``.
    The mean is ``a·m/(a−1)`` for ``a > 1`` and infinite otherwise, in
    which case :meth:`mean` returns ``None`` and the engine falls back to
    Monte Carlo estimation (what the paper's prototype does throughout).
    """

    def __init__(self, base_column: str, scale, shape):
        super().__init__(base_column)
        self._scale_param = scale
        self._shape_param = shape
        self._scale: np.ndarray | None = None
        self._shape: np.ndarray | None = None

    def _check_params(self, n: int) -> None:
        self._scale = _per_row(self._scale_param, n, "scale")
        self._shape = _per_row(self._shape_param, n, "shape")
        if np.any(self._scale <= 0) or np.any(self._shape <= 0):
            raise VGFunctionError("Pareto scale and shape must be positive")

    def _noise(self, rows, rng, size):
        assert self._scale is not None and self._shape is not None
        raw = rng.pareto(self._shape[rows, None], size=(len(rows), size))
        return (raw + 1.0) * self._scale[rows, None]

    def mean(self):
        """``base + a·m/(a−1)`` for shape ``a > 1``; ``None`` otherwise."""
        assert self._scale is not None and self._shape is not None
        if np.any(self._shape <= 1.0):
            return None
        return self.base + self._shape * self._scale / (self._shape - 1.0)

    def support(self):
        """Noise is at least the scale ``m``: support ``[base+m, ∞)``."""
        assert self._scale is not None
        lo = self.base + self._scale
        return lo, np.full(self.n_rows, np.inf)


@register_vg("uniform")
class UniformNoiseVG(_NoiseVG):
    """``base + Uniform(lo, hi)`` with per-row or scalar bounds."""

    def __init__(self, base_column: str, low, high):
        super().__init__(base_column)
        self._low_param = low
        self._high_param = high
        self._low: np.ndarray | None = None
        self._high: np.ndarray | None = None

    def _check_params(self, n: int) -> None:
        self._low = _per_row(self._low_param, n, "low")
        self._high = _per_row(self._high_param, n, "high")
        if np.any(self._low > self._high):
            raise VGFunctionError("uniform noise requires low <= high")

    def _noise(self, rows, rng, size):
        assert self._low is not None and self._high is not None
        u = rng.random(size=(len(rows), size))
        lo = self._low[rows, None]
        hi = self._high[rows, None]
        return lo + u * (hi - lo)

    def mean(self):
        """``base + (low + high) / 2``."""
        assert self._low is not None and self._high is not None
        return self.base + 0.5 * (self._low + self._high)

    def support(self):
        """Exact finite support ``[base+low, base+high]``."""
        assert self._low is not None and self._high is not None
        return self.base + self._low, self.base + self._high


@register_vg("exponential")
class ExponentialNoiseVG(_NoiseVG):
    """``base + (Exponential(rate) − 1/rate)`` — zero-mean exponential noise."""

    def __init__(self, base_column: str, rate, centered: bool = True):
        super().__init__(base_column)
        self._rate_param = rate
        self.centered = centered
        self._rate: np.ndarray | None = None

    def _check_params(self, n: int) -> None:
        self._rate = _per_row(self._rate_param, n, "rate")
        if np.any(self._rate <= 0):
            raise VGFunctionError("exponential rate must be positive")

    def _noise(self, rows, rng, size):
        assert self._rate is not None
        scale = 1.0 / self._rate[rows, None]
        noise = rng.exponential(scale, size=(len(rows), size))
        if self.centered:
            noise = noise - scale
        return noise

    def mean(self):
        """``base`` when centered, else ``base + 1/rate``."""
        assert self._rate is not None
        if self.centered:
            return self.base.copy()
        return self.base + 1.0 / self._rate

    def support(self):
        """Lower-bounded: ``[base − 1/rate, ∞)`` centered, ``[base, ∞)`` raw."""
        assert self._rate is not None
        shift = -1.0 / self._rate if self.centered else np.zeros(self.n_rows)
        return self.base + shift, np.full(self.n_rows, np.inf)


@register_vg("student_t")
class StudentTNoiseVG(_NoiseVG):
    """``base + scale · t(ν)`` — heavy-tailed symmetric noise.

    Mean exists (and is the base value) only for ``ν > 1``.
    """

    def __init__(self, base_column: str, dof, scale=1.0):
        super().__init__(base_column)
        self._dof_param = dof
        self._scale_param = scale
        self._dof: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def _check_params(self, n: int) -> None:
        self._dof = _per_row(self._dof_param, n, "dof")
        self._scale = _per_row(self._scale_param, n, "scale")
        if np.any(self._dof <= 0):
            raise VGFunctionError("degrees of freedom must be positive")
        if np.any(self._scale <= 0):
            raise VGFunctionError("scale must be positive")

    def _noise(self, rows, rng, size):
        assert self._dof is not None and self._scale is not None
        raw = rng.standard_t(self._dof[rows, None], size=(len(rows), size))
        return raw * self._scale[rows, None]

    def mean(self):
        """``base`` for ``ν > 1``; ``None`` otherwise (undefined mean)."""
        assert self._dof is not None
        if np.any(self._dof <= 1.0):
            return None
        return self.base.copy()
