"""Expectation precomputation (Section 3.2).

The paper estimates every ``E[t_i.A]`` during a precomputation phase by
averaging ``M̂`` scenarios with running averages, then appends the
estimates to the table; solutions are therefore always feasible with
respect to expectation constraints, and validation can focus on the
probabilistic constraints.

This module reproduces that phase with two improvements that preserve the
semantics:

* when the VG function has a closed-form mean (Gaussian noise, GBM,
  discrete integration mixtures) the analytic value is used — it is what
  the running average converges to;
* when it does not (Pareto with shape 1 has no finite mean — Galaxy
  Q5–Q8), a chunked Monte Carlo running average over a dedicated RNG
  stream is used, exactly like the paper.

Expectations of arbitrary constraint expressions ``E[f(t_i)]`` use
linearity when ``f`` is affine in the stochastic attributes, and Monte
Carlo otherwise.
"""

from __future__ import annotations

import numpy as np

from ..config import SPQConfig, STREAM_EXPECTATION
from ..db.expressions import Expr, affine_in, attributes_of, evaluate
from .scenarios import MODE_SCENARIO_WISE, ScenarioGenerator
from .stochastic import StochasticModel

#: Scenario chunk evaluated at a time during Monte Carlo averaging.
_CHUNK = 256


class ExpectationEstimator:
    """Estimates per-tuple expectations of attributes and expressions.

    With a shared scenario ``store`` attached, Monte-Carlo means are
    content-keyed and reused across queries: the estimate is a pure
    function of (relation content, VG functions, seed, scenario count),
    so a repeated query skips the averaging loop entirely.  Analytic
    means are never stored — they are cheaper than the lookup.
    """

    def __init__(self, model: StochasticModel, config: SPQConfig, store=None):
        self.model = model
        self.relation = model.relation
        self.config = config
        self._store = store
        self._generator = ScenarioGenerator(
            model, config.seed, STREAM_EXPECTATION, mode=MODE_SCENARIO_WISE
        )
        self._attribute_means: dict[str, np.ndarray] = {}
        self._expression_means: dict[int, np.ndarray] = {}

    def _stored_mean(self, label: str, compute) -> np.ndarray:
        """Serve a Monte-Carlo mean vector from the shared store.

        The derived vector is stored as a one-column entry; the scenario
        count and seed are part of the key, so changing either
        regenerates rather than reusing a stale estimate.
        """
        if self._store is None:
            return compute()
        from ..service.store import model_fingerprint

        key = (
            model_fingerprint(self.model),
            f"mean:{label}@{self.config.n_expectation_scenarios}",
            (self.config.seed, STREAM_EXPECTATION, 0, "mean"),
        )
        column = self._store.coefficient_matrix(
            key, 1, lambda start, stop: compute()[:, None]
        )
        return np.asarray(column[:, 0])

    # --- attribute means ---------------------------------------------------------

    def attribute_mean(self, name: str) -> np.ndarray:
        """``E[t_i.A]`` per tuple (cached)."""
        if name in self._attribute_means:
            return self._attribute_means[name]
        vg = self.model.vg(name)
        mean = vg.mean() if self.config.analytic_expectations else None
        if mean is None:
            mean = self._stored_mean(
                name, lambda: self._monte_carlo_attribute_mean(name)
            )
        self._attribute_means[name] = np.asarray(mean, dtype=float)
        return self._attribute_means[name]

    def _monte_carlo_attribute_mean(self, name: str) -> np.ndarray:
        """Running average over the expectation stream (Section 3.2)."""
        total = np.zeros(self.relation.n_rows, dtype=float)
        n = self.config.n_expectation_scenarios
        for j in range(n):
            total += self._generator.realize(name, j)
        return total / n

    # --- expression means ----------------------------------------------------------

    def expression_mean(self, expr: Expr) -> np.ndarray:
        """``E[f(t_i)]`` per tuple for a constraint/objective expression."""
        key = id(expr)
        if key in self._expression_means:
            return self._expression_means[key]
        names = attributes_of(expr)
        stochastic = set(self.model.stochastic_subset(sorted(names)))
        if not stochastic:
            values = evaluate(expr, self.relation.columns_mapping())
            mean = np.broadcast_to(
                np.asarray(values, dtype=float), (self.relation.n_rows,)
            ).astype(float)
        elif affine_in(expr, stochastic):
            # Linearity of expectation: substitute each stochastic
            # attribute with its per-tuple mean.
            substitutes = dict(self.relation.columns_mapping())
            for name in stochastic:
                substitutes[name] = self.attribute_mean(name)
            values = evaluate(expr, substitutes)
            mean = np.broadcast_to(
                np.asarray(values, dtype=float), (self.relation.n_rows,)
            ).astype(float)
        else:
            from ..db.expressions import render

            mean = self._stored_mean(
                render(expr), lambda: self._monte_carlo_expression_mean(expr)
            )
        self._expression_means[key] = mean
        return mean

    def _monte_carlo_expression_mean(self, expr: Expr) -> np.ndarray:
        total = np.zeros(self.relation.n_rows, dtype=float)
        n = self.config.n_expectation_scenarios
        done = 0
        while done < n:
            chunk = min(_CHUNK, n - done)
            matrix = self._chunk_matrix(expr, done, chunk)
            total += matrix.sum(axis=1)
            done += chunk
        return total / n

    def _chunk_matrix(self, expr: Expr, start: int, count: int) -> np.ndarray:
        """Coefficient matrix for scenarios ``[start, start+count)``."""
        names = attributes_of(expr)
        stochastic = self.model.stochastic_subset(sorted(names))
        realized = {}
        for name in stochastic:
            columns = np.empty((self.relation.n_rows, count), dtype=float)
            for offset in range(count):
                columns[:, offset] = self._generator.realize(name, start + offset)
            realized[name] = columns

        def resolver(attr: str) -> np.ndarray:
            if attr in realized:
                return realized[attr]
            return np.asarray(self.relation.column(attr), dtype=float)[:, None]

        values = evaluate(expr, resolver)
        return np.broadcast_to(values, (self.relation.n_rows, count)).astype(
            float, copy=False
        )
