"""Stochastic model: which attributes of a relation are uncertain.

A :class:`StochasticModel` maps attribute names to bound VG functions.
Stochastic attributes do not exist as materialized columns in the base
relation (their values are unknown, shown as "?" in Figure 1); they come
into existence per scenario.  Deterministic attributes are served from
the relation itself.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..errors import SchemaError, VGFunctionError
from .vg import VGFunction


class StochasticModel:
    """Binds VG functions to the stochastic attributes of one relation."""

    def __init__(self, relation, attributes: Mapping[str, VGFunction]):
        if not attributes:
            raise VGFunctionError("a stochastic model needs at least one attribute")
        self.relation = relation
        self._vgs: dict[str, VGFunction] = {}
        for name, vg in attributes.items():
            if relation.has_column(name):
                raise SchemaError(
                    f"stochastic attribute {name!r} clashes with a"
                    f" deterministic column of {relation.name!r}"
                )
            self._vgs[name] = vg.bind(relation) if not vg.bound else vg
        # Stable integer ids feed RNG key derivation.
        self._attr_ids = {name: i for i, name in enumerate(sorted(self._vgs))}

    # --- lookups -------------------------------------------------------------

    @property
    def attribute_names(self) -> list[str]:
        return sorted(self._vgs)

    def is_stochastic(self, name: str) -> bool:
        """Whether ``name`` is one of this model's stochastic attributes."""
        return name in self._vgs

    def vg(self, name: str) -> VGFunction:
        """The bound VG function for attribute ``name``."""
        try:
            return self._vgs[name]
        except KeyError:
            raise SchemaError(
                f"no stochastic attribute {name!r};"
                f" available: {self.attribute_names}"
            ) from None

    def attr_id(self, name: str) -> int:
        """Stable integer id of attribute ``name`` (feeds RNG keys)."""
        self.vg(name)
        return self._attr_ids[name]

    def stochastic_subset(self, names: Iterable[str]) -> list[str]:
        """The stochastic attributes among ``names`` (order-stable)."""
        return [n for n in names if n in self._vgs]

    # --- consistency -----------------------------------------------------------

    def check_against(self, relation) -> None:
        """Verify the model was built for ``relation`` (same row count/key)."""
        if relation.n_rows != self.relation.n_rows:
            raise SchemaError(
                "stochastic model row count does not match relation"
                f" ({self.relation.n_rows} vs {relation.n_rows})"
            )
        if not np.array_equal(relation.key_values(), self.relation.key_values()):
            raise SchemaError("stochastic model key column does not match relation")

    # --- analytic structure -----------------------------------------------------

    def mean(self, name: str) -> np.ndarray | None:
        """Per-row analytic mean of ``name`` (None if unavailable)."""
        return self.vg(name).mean()

    def support(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Per-row support interval of ``name``."""
        return self.vg(name).support()
