"""Stochastic model: which attributes of a relation are uncertain.

A :class:`StochasticModel` maps attribute names to bound VG functions.
Stochastic attributes do not exist as materialized columns in the base
relation (their values are unknown, shown as "?" in Figure 1); they come
into existence per scenario.  Deterministic attributes are served from
the relation itself.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..errors import SchemaError, VGFunctionError
from .vg import VGFunction, parse_vg_expr


class StochasticModel:
    """Binds VG functions to the stochastic attributes of one relation."""

    def __init__(self, relation, attributes: Mapping[str, VGFunction]):
        if not attributes:
            raise VGFunctionError("a stochastic model needs at least one attribute")
        self.relation = relation
        self._vgs: dict[str, VGFunction] = {}
        for name, vg in attributes.items():
            if relation.has_column(name):
                raise SchemaError(
                    f"stochastic attribute {name!r} clashes with a"
                    f" deterministic column of {relation.name!r}"
                )
            self._vgs[name] = vg.bind(relation) if not vg.bound else vg
        # Stable integer ids feed RNG key derivation.
        self._attr_ids = {name: i for i, name in enumerate(sorted(self._vgs))}

    # --- lookups -------------------------------------------------------------

    @property
    def attribute_names(self) -> list[str]:
        """Sorted names of the stochastic attributes."""
        return sorted(self._vgs)

    def is_stochastic(self, name: str) -> bool:
        """Whether ``name`` is one of this model's stochastic attributes."""
        return name in self._vgs

    def vg(self, name: str) -> VGFunction:
        """The bound VG function for attribute ``name``."""
        try:
            return self._vgs[name]
        except KeyError:
            raise SchemaError(
                f"no stochastic attribute {name!r};"
                f" available: {self.attribute_names}"
            ) from None

    def attr_id(self, name: str) -> int:
        """Stable integer id of attribute ``name`` (feeds RNG keys)."""
        self.vg(name)
        return self._attr_ids[name]

    def stochastic_subset(self, names: Iterable[str]) -> list[str]:
        """The stochastic attributes among ``names`` (order-stable)."""
        return [n for n in names if n in self._vgs]

    # --- consistency -----------------------------------------------------------

    def check_against(self, relation) -> None:
        """Verify the model was built for ``relation`` (same row count/key)."""
        if relation.n_rows != self.relation.n_rows:
            raise SchemaError(
                "stochastic model row count does not match relation"
                f" ({self.relation.n_rows} vs {relation.n_rows})"
            )
        if not np.array_equal(relation.key_values(), self.relation.key_values()):
            raise SchemaError("stochastic model key column does not match relation")

    # --- analytic structure -----------------------------------------------------

    def mean(self, name: str) -> np.ndarray | None:
        """Per-row analytic mean of ``name`` (None if unavailable)."""
        return self.vg(name).mean()

    def support(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Per-row support interval of ``name``."""
        return self.vg(name).support()


def parse_attribute_vg(spec: str) -> tuple[str, VGFunction]:
    """Split one ``Attr=kind:param=value,...`` override into (name, VG).

    The right-hand side is a registry expression (see
    :func:`repro.mcdb.vg.parse_vg_expr`); the VG comes back unbound.
    """
    name, eq, expr = spec.partition("=")
    name = name.strip()
    if not eq or not name:
        raise VGFunctionError(
            f"bad VG override {spec!r}: expected Attr=kind:param=value,..."
        )
    return name, parse_vg_expr(expr)


def apply_vg_overrides(relation, model, specs) -> "StochasticModel | None":
    """Apply ``Attr=kind:param=value,...`` overrides to a relation's model.

    Each spec in ``specs`` replaces (or adds) one stochastic attribute of
    ``model`` with a registry-built VG bound to ``relation``.  ``model``
    may be ``None`` (a purely deterministic relation); the result is then
    a fresh model holding only the overrides.  Returns ``model``
    unchanged when ``specs`` is empty.

    This is the single implementation behind ``SPQConfig.vg_overrides``,
    the CLI ``--vg`` flag, and ``QuerySpec.build_dataset``'s override
    hook.
    """
    specs = list(specs or ())
    if not specs:
        return model
    attributes: dict[str, VGFunction] = (
        {name: model.vg(name) for name in model.attribute_names}
        if model is not None
        else {}
    )
    for spec in specs:
        name, vg = parse_attribute_vg(spec)
        attributes[name] = vg
    return StochasticModel(relation, attributes)
