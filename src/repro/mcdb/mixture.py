"""Mixture VG function: weighted composition of registered VG families.

Composability is what lets new workloads be expressed without touching
the engine: a regime-switching market, for instance, is a two-component
mixture of Gaussian copulas — calm (low correlation, positive drift) and
crisis (high correlation, negative drift) — with the *same* query
machinery running unchanged on top.

Two composition modes:

* ``shared=True`` (default) — one component is chosen per *scenario* and
  realizes the whole relation.  The shared choice correlates every row
  (a regime), so the mixture is a single independence block.
* ``shared=False`` — each row independently chooses a component per
  scenario.  All components must then be per-row independent (singleton
  blocks), and so is the mixture.

Components can be any bound-compatible :class:`VGFunction` instances,
including other mixtures.  Means compose by linearity when every
component has a closed form; supports compose as the envelope.
"""

from __future__ import annotations

import numpy as np

from ..errors import VGFunctionError
from .vg import VGFunction, register_vg


@register_vg("mixture")
class MixtureVG(VGFunction):
    """Weighted mixture over component VG functions (see module docstring).

    Parameters
    ----------
    components:
        Sequence of :class:`VGFunction` instances (at least one).  They
        are bound to the mixture's relation when the mixture binds.
    weights:
        Per-component selection probabilities; nonnegative, normalized
        internally.  Defaults to uniform.
    shared:
        Whether one component choice per scenario applies to every row
        (``True``) or each row chooses independently (``False``).
    """

    def __init__(self, components, weights=None, shared: bool = True):
        super().__init__()
        components = list(components)
        if not components:
            raise VGFunctionError("a mixture needs at least one component")
        for component in components:
            if not isinstance(component, VGFunction):
                raise VGFunctionError(
                    "mixture components must be VGFunction instances"
                )
        if weights is None:
            weights = [1.0] * len(components)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(components),):
            raise VGFunctionError("weights must match the number of components")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise VGFunctionError("weights must be nonnegative with positive sum")
        self.components = components
        self.weights = weights / weights.sum()
        self.shared = bool(shared)
        self._cum_weights: np.ndarray | None = None

    # --- binding -------------------------------------------------------------

    def bind(self, relation) -> "MixtureVG":
        """Bind the components first, then the mixture itself."""
        for component in self.components:
            if component.bound:
                if component._relation is not relation:
                    raise VGFunctionError(
                        "mixture component is already bound to a different"
                        " relation"
                    )
            else:
                component.bind(relation)
        return super().bind(relation)

    def _build_blocks(self, relation):
        if self.shared:
            # The scenario-level regime choice correlates every row.
            return [np.arange(relation.n_rows)]
        for component in self.components:
            if component.n_blocks != relation.n_rows:
                raise VGFunctionError(
                    "shared=False requires per-row independent components"
                    f" ({type(component).__name__} has correlated blocks)"
                )
        return super()._build_blocks(relation)

    def _after_bind(self, relation) -> None:
        self._cum_weights = np.cumsum(self.weights)

    def _choose(self, rng: np.random.Generator, size) -> np.ndarray:
        """Component index draws via the inverse-CDF of the weights."""
        return np.searchsorted(
            self._cum_weights, rng.random(size=size), side="right"
        ).clip(max=len(self.components) - 1)

    # --- sampling ------------------------------------------------------------

    def _sample_block(self, block_index, rng, size):
        if self.shared:
            choices = self._choose(rng, size)
            out = np.empty((self.n_rows, size), dtype=float)
            # One draw per scenario from the chosen component; sequential
            # in scenario order so the stream is reproducible.
            for j in range(size):
                out[:, j] = self.components[int(choices[j])].sample_all(rng)
            return out
        # Per-row: the block is a single row; every component draws its
        # candidate values and the chosen one is kept per scenario (all
        # components consume the stream, keeping draw order fixed).
        row = int(self.blocks[block_index][0])
        choices = self._choose(rng, size)
        candidates = [
            component.sample_block(
                int(component.block_of_rows(np.array([row]))[0]), rng, size
            )[0]
            for component in self.components
        ]
        out = np.choose(choices, candidates)
        return out[None, :]

    def sample_all(self, rng):
        """One scenario: one regime draw (shared) or per-row choices."""
        if self.shared:
            choice = int(self._choose(rng, None))
            return self.components[choice].sample_all(rng)
        choices = self._choose(rng, self.n_rows)
        candidates = np.stack(
            [component.sample_all(rng) for component in self.components]
        )
        return candidates[choices, np.arange(self.n_rows)]

    # --- analytic structure ----------------------------------------------------

    def mean(self):
        """Weighted component means, when every component has one."""
        means = [component.mean() for component in self.components]
        if any(m is None for m in means):
            return None
        return np.einsum("c,cr->r", self.weights, np.stack(means))

    def support(self):
        """Envelope of the component supports."""
        los, his = zip(*(component.support() for component in self.components))
        return np.min(np.stack(los), axis=0), np.max(np.stack(his), axis=0)
