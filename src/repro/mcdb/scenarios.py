"""Scenario generation with reproducible, stream-separated seeding.

A *scenario* realizes every stochastic attribute of a relation (Section
2.2).  Scenario identity is stable: scenario ``j`` of a given stream is
the same realization no matter when or how often it is generated, which
is what lets SummarySearch re-generate chosen scenarios while building
summaries (Section 5.5) and lets the validator use a fixed out-of-sample
scenario set (Section 3.2).

Two generation modes mirror the paper's two strategies:

* ``MODE_SCENARIO_WISE`` — RNG keyed by ``(seed, stream, attr, j)``; one
  vectorized draw realizes all tuples of scenario ``j``.  Generating a
  single scenario costs Θ(N); restricting to a subset of rows does not
  reduce the cost (the paper's Θ(NM) sort complexity).
* ``MODE_TUPLE_WISE`` — RNG keyed by ``(seed, stream, attr, block)``; one
  draw realizes all ``M`` scenarios of one independence block.
  Restricting generation to the blocks that intersect a package costs
  Θ(PM) (the paper's tuple-wise sort complexity), but scenario sets are
  tied to the chosen ``M``.

The two modes produce different (but identically distributed) streams;
each is internally reproducible.
"""

from __future__ import annotations

import numpy as np

from ..db.expressions import Expr, attributes_of, evaluate
from ..errors import EvaluationError
from ..utils.rngkeys import make_generator
from .stochastic import StochasticModel

MODE_SCENARIO_WISE = "scenario"
MODE_TUPLE_WISE = "tuple"

_MODES = (MODE_SCENARIO_WISE, MODE_TUPLE_WISE)


class ScenarioGenerator:
    """Reproducible scenario access for one (relation, model, stream)."""

    def __init__(
        self,
        model: StochasticModel,
        seed: int,
        stream: int,
        mode: str = MODE_SCENARIO_WISE,
        substream: int = 0,
    ):
        if mode not in _MODES:
            raise EvaluationError(f"unknown scenario mode {mode!r}; expected {_MODES}")
        self.model = model
        self.relation = model.relation
        self.seed = seed
        self.stream = stream
        self.mode = mode
        #: Distinguishes disjoint scenario sets within one stream (the
        #: validator uses one substream per scenario chunk so that chunked
        #: generation is reproducible at fixed chunk size).
        self.substream = substream

    # --- raw attribute realizations -------------------------------------------

    def realize(self, attr: str, scenario: int, n_scenarios: int | None = None):
        """One full-relation realization of ``attr`` in scenario ``scenario``.

        In tuple-wise mode the total scenario count ``n_scenarios`` must
        be supplied (the per-block draw is sized by it); the call costs a
        full Θ(N·M) regeneration, mirroring the strategy's trade-off.
        """
        vg = self.model.vg(attr)
        attr_id = self.model.attr_id(attr)
        if self.mode == MODE_SCENARIO_WISE:
            rng = make_generator(self.seed, self.stream, self.substream, attr_id, scenario)
            return vg.sample_all(rng)
        if n_scenarios is None:
            raise EvaluationError(
                "tuple-wise realization of a single scenario requires n_scenarios"
            )
        if not 0 <= scenario < n_scenarios:
            raise EvaluationError("scenario index out of range")
        matrix = self.matrix(attr, n_scenarios)
        return matrix[:, scenario]

    def matrix(
        self,
        attr: str,
        n_scenarios: int,
        rows: np.ndarray | None = None,
        block_provider=None,
    ) -> np.ndarray:
        """Realizations of ``attr``: shape ``(len(rows), n_scenarios)``.

        ``rows`` restricts generation to the given row positions; only
        tuple-wise mode exploits the restriction to reduce work.

        ``block_provider`` substitutes for the sequential tuple-wise
        per-block draws when supplied — a callable
        ``(attr, block_ids, n_scenarios) -> iterable[(block_id, values)]``
        that must realize exactly the same ``(seed, stream, substream,
        attr, block)``-keyed draws; the parallel executor uses it to fan
        blocks out across workers while this method keeps the single
        copy of the scatter/reassembly logic.
        """
        if n_scenarios < 1:
            raise EvaluationError("n_scenarios must be >= 1")
        vg = self.model.vg(attr)
        attr_id = self.model.attr_id(attr)
        n_rows = self.relation.n_rows
        if self.mode == MODE_SCENARIO_WISE:
            out = np.empty(
                (n_rows if rows is None else len(rows), n_scenarios), dtype=float
            )
            for j in range(n_scenarios):
                rng = make_generator(self.seed, self.stream, self.substream, attr_id, j)
                full = vg.sample_all(rng)
                out[:, j] = full if rows is None else full[rows]
            return out
        # Tuple-wise: visit only blocks intersecting `rows`.
        if rows is None:
            block_ids = list(range(vg.n_blocks))
            out = np.empty((n_rows, n_scenarios), dtype=float)
            position = np.arange(n_rows)
        else:
            rows = np.asarray(rows)
            block_ids = sorted(set(vg.block_of_rows(rows).tolist()))
            out = np.empty((len(rows), n_scenarios), dtype=float)
            position = np.full(n_rows, -1, dtype=np.int64)
            position[rows] = np.arange(len(rows))
        if block_provider is not None:
            pairs = block_provider(attr, block_ids, n_scenarios)
        else:
            pairs = self._draw_blocks(vg, attr_id, block_ids, n_scenarios)
        for b, values in pairs:
            block_rows = vg.blocks[b]
            mask = position[block_rows] >= 0
            out[position[block_rows[mask]], :] = values[mask, :]
        return out

    def _draw_blocks(self, vg, attr_id: int, block_ids, n_scenarios: int):
        """Sequential per-block draws for the tuple-wise strategy."""
        for b in block_ids:
            rng = make_generator(self.seed, self.stream, self.substream, attr_id, b)
            yield b, vg.sample_block(b, rng, n_scenarios)

    # --- expression coefficients -----------------------------------------------

    def coefficient_matrix(
        self,
        expr: Expr,
        n_scenarios: int,
        rows: np.ndarray | None = None,
        matrix_provider=None,
    ) -> np.ndarray:
        """Per-scenario coefficient vectors for ``SUM(expr)`` constraints.

        Evaluates ``expr`` with deterministic columns broadcast across
        scenarios and stochastic attributes realized per scenario.
        Output shape: ``(len(rows), n_scenarios)``.

        ``matrix_provider`` substitutes for :meth:`matrix` when supplied
        (same signature); the parallel executor uses it to fan attribute
        realization out across workers while the expression evaluation
        stays in-process.
        """
        names = attributes_of(expr)
        stochastic = [n for n in sorted(names) if self.model.is_stochastic(n)]
        n_out = self.relation.n_rows if rows is None else len(np.asarray(rows))
        if not stochastic:
            values = self._deterministic_vector(expr, rows)
            return np.broadcast_to(values[:, None], (n_out, n_scenarios)).copy()
        provider = matrix_provider if matrix_provider is not None else self.matrix
        realized = {
            name: provider(name, n_scenarios, rows=rows) for name in stochastic
        }

        def resolver(name: str) -> np.ndarray:
            if name in realized:
                return realized[name]
            column = self.relation.column(name)
            restricted = column if rows is None else column[np.asarray(rows)]
            return np.asarray(restricted, dtype=float)[:, None]

        result = evaluate(expr, resolver)
        return np.broadcast_to(result, (n_out, n_scenarios)).astype(float, copy=False)

    def coefficient_scenario(
        self,
        expr: Expr,
        scenario: int,
        n_scenarios: int | None = None,
    ) -> np.ndarray:
        """One full-relation coefficient vector for scenario ``scenario``."""
        names = attributes_of(expr)
        stochastic = [n for n in sorted(names) if self.model.is_stochastic(n)]
        if not stochastic:
            return self._deterministic_vector(expr, None)
        realized = {
            name: self.realize(name, scenario, n_scenarios) for name in stochastic
        }

        def resolver(name: str) -> np.ndarray:
            if name in realized:
                return realized[name]
            return np.asarray(self.relation.column(name), dtype=float)

        values = evaluate(expr, resolver)
        return np.broadcast_to(values, (self.relation.n_rows,)).astype(
            float, copy=False
        )

    def _deterministic_vector(self, expr: Expr, rows) -> np.ndarray:
        values = evaluate(expr, self.relation.columns_mapping())
        values = np.broadcast_to(
            np.asarray(values, dtype=float), (self.relation.n_rows,)
        )
        if rows is not None:
            values = values[np.asarray(rows)]
        return values.astype(float)


class ScenarioCache:
    """Grow-only cache of coefficient matrices for one generator.

    Naïve accumulates scenarios across iterations (Algorithm 1, line 9);
    with scenario-wise keys, scenario ``j`` is stable as ``M`` grows, so
    the cache only generates the *new* columns when asked for a larger
    matrix.  Keys are expression identities (one entry per constraint).

    With ``n_workers > 1`` the new columns are realized in parallel
    worker processes, chunked by scenario id — cache contents stay
    bit-identical to sequential generation (see ``repro.parallel``).

    When a shared :class:`repro.service.ScenarioStore` is supplied, the
    matrices live in the store under content keys instead of this
    instance, so concurrent and repeated queries over the same data
    reuse one realization (the store enforces the byte budget and
    eviction policy); this cache then only contributes the generation
    callback.  Without a store the private dict behaviour is unchanged.
    """

    def __init__(
        self,
        generator: ScenarioGenerator,
        n_workers: int = 1,
        executor=None,
        store=None,
    ):
        if generator.mode != MODE_SCENARIO_WISE:
            raise EvaluationError(
                "ScenarioCache requires scenario-wise mode (prefix-stable sets)"
            )
        if executor is not None and executor.generator is not generator:
            raise EvaluationError(
                "ScenarioCache executor must wrap the cache's own generator"
            )
        self.generator = generator
        self.n_workers = max(1, int(n_workers))
        #: Shared ParallelScenarioExecutor (e.g. the evaluation context's)
        #: so one worker pool serves every consumer of this generator.
        self._executor = executor
        self._owns_executor = False
        #: Shared ScenarioStore (owned by its creator, never closed here).
        self._store = store
        #: id(expr) -> (expr, content key).  The Expr is pinned so its
        #: id cannot be recycled for a different expression.
        self._store_keys: dict[int, tuple[Expr, tuple]] = {}
        self._cache: dict[int, tuple[Expr, np.ndarray]] = {}

    def _new_columns(self, expr: Expr, start: int, stop: int) -> np.ndarray:
        if self._executor is None:
            # Imported lazily: repro.parallel builds on this module.  At
            # n_workers=1 the executor is a sequential pass-through, so
            # this is the single code path for both configurations.
            from ..parallel.executor import ParallelScenarioExecutor

            self._executor = ParallelScenarioExecutor(
                self.generator, self.n_workers
            )
            self._owns_executor = True
        return self._executor.coefficient_columns(expr, range(start, stop))

    def _content_key(self, expr: Expr) -> tuple:
        cached = self._store_keys.get(id(expr))
        if cached is not None:
            return cached[1]
        # Imported lazily: repro.service builds on this module.
        from ..service.store import store_key

        key = store_key(self.generator, expr)
        self._store_keys[id(expr)] = (expr, key)
        return key

    def coefficient_matrix(self, expr: Expr, n_scenarios: int) -> np.ndarray:
        """The first ``n_scenarios`` coefficient columns of ``expr``.

        Grow-only: asking for a larger ``n_scenarios`` generates only
        the new suffix (delegated to the shared store when attached).
        """
        if self._store is not None:
            return self._store.coefficient_matrix(
                self._content_key(expr),
                n_scenarios,
                lambda start, stop: self._new_columns(expr, start, stop),
            )
        key = id(expr)
        cached = self._cache.get(key)
        if cached is not None and cached[1].shape[1] >= n_scenarios:
            return cached[1][:, :n_scenarios]
        start = 0 if cached is None else cached[1].shape[1]
        new_cols = self._new_columns(expr, start, n_scenarios)
        matrix = (
            new_cols if cached is None else np.hstack([cached[1], new_cols])
        )
        self._cache[key] = (expr, matrix)
        return matrix

    def close(self) -> None:
        """Shut down the worker pool, if this cache created it.  Idempotent.

        A shared (injected) executor stays attached — its owner manages
        its lifecycle — and so does a shared scenario store.  A closed
        cache stays sequential: it never silently resurrects a pool on
        the next fill.
        """
        if self._executor is not None and self._owns_executor:
            self._executor.close()
            self._executor = None
            self._owns_executor = False
            self.n_workers = 1

    def clear(self) -> None:
        """Drop all locally cached matrices and content keys.

        The worker pool, if any, survives; a shared store's entries are
        its owner's to manage (``ScenarioStore.clear`` releases memmap
        handles and spill files).  Idempotent.
        """
        self._cache.clear()
        self._store_keys.clear()

    @property
    def cached_bytes(self) -> int:
        """Total bytes of locally (non-store) cached matrices."""
        return sum(m.nbytes for _, m in self._cache.values())


def probe_value_bounds(
    generator: ScenarioGenerator,
    expr: Expr,
    n_probe: int,
    rows: np.ndarray | None = None,
) -> tuple[float, float]:
    """Empirical (min, max) of per-tuple coefficients over probe scenarios.

    Used as the fallback for Appendix B's assumption (A1) when the VG
    support gives no finite analytic bound (see ``core.approx``).
    """
    matrix = generator.coefficient_matrix(expr, n_probe, rows=rows)
    return float(matrix.min()), float(matrix.max())
