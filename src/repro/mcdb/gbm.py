"""Geometric-Brownian-motion VG function for the Portfolio workload.

Section 6.1: "future prices are generated according to a geometric
Brownian motion", and "tuples referring to the same stock are correlated
to one another" — e.g. the 1-day and 1-week gains of the same stock share
one Brownian path, while different stocks are independent.

For a stock with current price ``S₀``, drift ``μ``, and volatility ``σ``,
the price at horizon ``t`` (in days) is

    ``S_t = S₀ · exp((μ − σ²/2)·t + σ·W_t)``

with ``W_t`` a standard Brownian motion.  The *gain* attribute of a tuple
that sells at horizon ``t`` is ``S_t − S₀``.  Correlation across horizons
of the same stock is realized by building ``W`` from shared increments.
"""

from __future__ import annotations

import numpy as np

from ..errors import VGFunctionError
from .vg import VGFunction, grouped_blocks, register_vg


@register_vg("gbm")
class GeometricBrownianMotionVG(VGFunction):
    """Per-stock correlated GBM gains.

    Parameters
    ----------
    price_column, drift_column, volatility_column, horizon_column:
        Column names holding ``S₀``, ``μ`` (per day), ``σ`` (per √day),
        and the sell horizon ``t`` in days.
    group_column:
        Column identifying the stock; rows with equal values form one
        correlated block sharing a Brownian path.
    """

    def __init__(
        self,
        price_column: str = "price",
        drift_column: str = "drift",
        volatility_column: str = "volatility",
        horizon_column: str = "sell_in_days",
        group_column: str = "stock",
    ):
        super().__init__()
        self.price_column = price_column
        self.drift_column = drift_column
        self.volatility_column = volatility_column
        self.horizon_column = horizon_column
        self.group_column = group_column
        self._price: np.ndarray | None = None
        self._drift: np.ndarray | None = None
        self._vol: np.ndarray | None = None
        self._horizon: np.ndarray | None = None
        # Fast-path state: set when all blocks share one horizon grid.
        self._uniform: dict | None = None

    def _build_blocks(self, relation):
        return grouped_blocks(relation.column(self.group_column))

    def _after_bind(self, relation) -> None:
        self._price = np.asarray(relation.column(self.price_column), dtype=float)
        self._drift = np.asarray(relation.column(self.drift_column), dtype=float)
        self._vol = np.asarray(relation.column(self.volatility_column), dtype=float)
        self._horizon = np.asarray(relation.column(self.horizon_column), dtype=float)
        if np.any(self._price <= 0):
            raise VGFunctionError("stock prices must be positive")
        if np.any(self._vol < 0):
            raise VGFunctionError("volatility must be nonnegative")
        if np.any(self._horizon <= 0):
            raise VGFunctionError("sell horizons must be positive")
        for rows in self.blocks:
            for col, name in ((self._drift, "drift"), (self._vol, "volatility")):
                if np.ptp(col[rows]) != 0:
                    raise VGFunctionError(
                        f"{name} must be constant within a stock block"
                    )
        self._detect_uniform_grid()

    def _detect_uniform_grid(self) -> None:
        """Enable the vectorized path when every block uses one horizon grid.

        All built-in datasets satisfy this (each row group has the same
        set of sell horizons), turning :meth:`sample_all` into a handful
        of array operations instead of a Python loop over thousands of
        stocks.
        """
        assert self._horizon is not None
        blocks = self.blocks
        first = np.sort(np.unique(self._horizon[blocks[0]]))
        grids_match = all(
            np.array_equal(np.sort(np.unique(self._horizon[rows])), first)
            for rows in blocks
        )
        if not grids_match:
            self._uniform = None
            return
        horizon_index = {t: k for k, t in enumerate(first.tolist())}
        row_block = np.empty(self.n_rows, dtype=np.int64)
        row_step = np.empty(self.n_rows, dtype=np.int64)
        for b, rows in enumerate(blocks):
            row_block[rows] = b
            for r in rows:
                row_step[r] = horizon_index[float(self._horizon[r])]
        self._uniform = {
            "grid": first,
            "dt": np.diff(np.concatenate([[0.0], first])),
            "row_block": row_block,
            "row_step": row_step,
        }

    # --- sampling ------------------------------------------------------------

    def _gains_from_w(self, rows: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Gains for ``rows`` given Brownian values ``w`` at their horizons.

        ``w`` has shape ``(len(rows), size)``.
        """
        assert self._price is not None
        s0 = self._price[rows][:, None]
        mu = self._drift[rows][:, None]
        sigma = self._vol[rows][:, None]
        t = self._horizon[rows][:, None]
        log_growth = (mu - 0.5 * sigma**2) * t + sigma * w
        return s0 * (np.exp(log_growth) - 1.0)

    def _sample_block(self, block_index, rng, size):
        rows = self.blocks[block_index]
        horizons = self._horizon[rows]
        grid = np.sort(np.unique(horizons))
        dt = np.diff(np.concatenate([[0.0], grid]))
        # Brownian path at the grid points, for `size` scenarios.
        increments = rng.normal(0.0, 1.0, size=(len(grid), size)) * np.sqrt(dt)[:, None]
        w_grid = np.cumsum(increments, axis=0)
        step_of_row = np.searchsorted(grid, horizons)
        w = w_grid[step_of_row, :]
        return self._gains_from_w(rows, w)

    def sample_all(self, rng):
        """One scenario; vectorized when all blocks share a horizon grid."""
        if self._uniform is None:
            return super().sample_all(rng)
        u = self._uniform
        n_blocks = len(self.blocks)
        n_steps = len(u["grid"])
        increments = rng.normal(0.0, 1.0, size=(n_blocks, n_steps)) * np.sqrt(u["dt"])
        w_grid = np.cumsum(increments, axis=1)
        w = w_grid[u["row_block"], u["row_step"]][:, None]
        rows = np.arange(self.n_rows)
        return self._gains_from_w(rows, w)[:, 0]

    # --- analytic structure ----------------------------------------------------

    def mean(self):
        """``E[gain] = S₀(e^{μt} − 1)`` (closed form for GBM)."""
        assert self._price is not None
        return self._price * (np.exp(self._drift * self._horizon) - 1.0)

    def support(self):
        """Prices stay positive, so gains are bounded below by ``−S₀``."""
        assert self._price is not None
        return -self._price.copy(), np.full(self.n_rows, np.inf)
