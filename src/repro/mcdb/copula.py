"""Gaussian-copula VG function: correlated draws across a column group.

The independent noise families of :mod:`repro.mcdb.distributions` perturb
every row in isolation, which cannot express the Portfolio use case's
co-moving asset returns (Section 6.1).  :class:`GaussianCopulaVG` draws
*correlated* standard normals within each group of rows (e.g. stocks of
one sector) and maps them through per-row location/scale marginals::

    value_i = base_i + scale_i * z_i,       z ~ N(0, C) within each block

The correlation structure ``C`` comes from one of three sources:

* ``rho`` — a single equicorrelation coefficient applied within every
  block.  For ``0 <= rho <= 1`` the draws use the one-factor
  representation ``z_i = sqrt(rho) * g_block + sqrt(1-rho) * eps_i``
  (one shared market shock per block), which vectorizes over the whole
  relation and keeps realization within a small constant factor of
  independent Gaussian noise (see ``benchmarks/bench_vg.py``).
* ``correlation`` — an explicit ``(k, k)`` correlation matrix; every
  block must then have exactly ``k`` rows.  Drawn via Cholesky.
* ``history_columns`` — per-row historical observation columns; the
  within-block correlation matrix is *estimated* from them
  (``np.corrcoef`` over the block's rows) and drawn via Cholesky.

Blocks are defined by ``group_column`` (rows with equal values form one
correlated block; ``None`` makes the whole relation a single block), so
the existing block-keyed RNG substreams of :mod:`repro.mcdb.scenarios`
and the parallel executor apply unchanged — parallel realization stays
bit-identical to sequential for any worker count.
"""

from __future__ import annotations

import numpy as np

from ..errors import VGFunctionError
from .vg import VGFunction, grouped_blocks, register_vg

#: Jitter ladder for Cholesky of (possibly singular) estimated matrices.
_CHOLESKY_JITTERS = (0.0, 1e-10, 1e-8, 1e-6)


def cholesky_correlation(matrix: np.ndarray, what: str) -> np.ndarray:
    """Cholesky factor of a correlation matrix, with graceful jitter.

    Sample correlation matrices are PSD but can be singular (fewer
    observations than rows); a tiny ridge ``(C + eps*I) / (1 + eps)``
    restores positive definiteness without visibly changing the
    distribution.  Raises :class:`VGFunctionError` naming ``what`` when
    the matrix is not a valid correlation matrix at all.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise VGFunctionError(f"{what} must be a square correlation matrix")
    if not np.allclose(np.diag(matrix), 1.0, atol=1e-8):
        raise VGFunctionError(f"{what} must have unit diagonal")
    if not np.allclose(matrix, matrix.T, atol=1e-8):
        raise VGFunctionError(f"{what} must be symmetric")
    eye = np.eye(matrix.shape[0])
    for jitter in _CHOLESKY_JITTERS:
        try:
            return np.linalg.cholesky((matrix + jitter * eye) / (1.0 + jitter))
        except np.linalg.LinAlgError:
            continue
    raise VGFunctionError(f"{what} is not positive semi-definite")


def equicorrelation_matrix(k: int, rho: float) -> np.ndarray:
    """The ``(k, k)`` matrix with 1 on the diagonal and ``rho`` elsewhere.

    Positive semi-definite iff ``-1/(k-1) <= rho <= 1``.
    """
    return np.full((k, k), float(rho)) + (1.0 - float(rho)) * np.eye(k)


@register_vg("gaussian_copula")
class GaussianCopulaVG(VGFunction):
    """Correlated Gaussian draws within row groups (see module docstring).

    Parameters
    ----------
    base_column:
        Column holding the per-row location (e.g. the expected gain).
    scale:
        Marginal standard deviation: a scalar, a per-row array, or the
        name of a column to read per-row scales from.
    rho:
        Equicorrelation coefficient within each block (``-1 <= rho <= 1``;
        negative values must satisfy ``rho >= -1/(k-1)`` for the largest
        block size ``k``).  Mutually exclusive with ``correlation`` and
        ``history_columns``.  Defaults to ``0.0`` (independent rows)
        when no correlation source is given.
    correlation:
        Explicit ``(k, k)`` correlation matrix shared by every block
        (all blocks must have exactly ``k`` rows).
    history_columns:
        Names of columns holding historical observations (one column per
        past period); the within-block correlation is estimated from
        them at bind time.
    group_column:
        Column whose equal values define the correlated blocks; ``None``
        correlates the entire relation as one block.
    """

    def __init__(
        self,
        base_column: str,
        scale=1.0,
        rho: float | None = None,
        correlation=None,
        history_columns=None,
        group_column: str | None = None,
    ):
        super().__init__()
        sources = sum(
            source is not None for source in (rho, correlation, history_columns)
        )
        if sources > 1:
            raise VGFunctionError(
                "give exactly one of rho, correlation, or history_columns"
            )
        if sources == 0:
            rho = 0.0
        if rho is not None and not -1.0 <= float(rho) <= 1.0:
            raise VGFunctionError("rho must lie in [-1, 1]")
        self.base_column = base_column
        self.scale = scale
        self.rho = None if rho is None else float(rho)
        self.correlation = (
            None if correlation is None else np.asarray(correlation, dtype=float)
        )
        if isinstance(history_columns, str):
            history_columns = [history_columns]
        self.history_columns = (
            None if history_columns is None else tuple(history_columns)
        )
        self.group_column = group_column
        self._base: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        #: Per-block Cholesky factors (None on the one-factor fast path).
        self._chols: list[np.ndarray] | None = None

    # --- binding -------------------------------------------------------------

    def _build_blocks(self, relation):
        if self.group_column is None:
            return [np.arange(relation.n_rows)]
        return grouped_blocks(relation.column(self.group_column))

    def _after_bind(self, relation) -> None:
        self._base = np.asarray(relation.column(self.base_column), dtype=float)
        self._scale = self._resolve_scale(relation)
        if self._one_factor:
            # PSD for every block size is implied by rho >= 0; nothing to
            # factor — draws use the shared-shock representation.
            self._chols = None
        elif self.correlation is not None:
            k = self.correlation.shape[0] if self.correlation.ndim == 2 else -1
            for rows in self.blocks:
                if len(rows) != k:
                    raise VGFunctionError(
                        f"correlation matrix is {k}x{k} but a"
                        f" {self.group_column!r} block has {len(rows)} rows"
                    )
            chol = cholesky_correlation(self.correlation, "correlation")
            self._chols = [chol] * len(self.blocks)
        elif self.history_columns is not None:
            self._chols = [
                self._estimated_cholesky(relation, rows) for rows in self.blocks
            ]
        else:  # negative equicorrelation: one factor per block size
            chol_by_size: dict[int, np.ndarray] = {}
            for rows in self.blocks:
                k = len(rows)
                if k not in chol_by_size:
                    chol_by_size[k] = cholesky_correlation(
                        equicorrelation_matrix(k, self.rho),
                        f"equicorrelation rho={self.rho} at block size {k}",
                    )
            self._chols = [chol_by_size[len(rows)] for rows in self.blocks]

    @property
    def _one_factor(self) -> bool:
        """Whether the vectorized shared-shock representation applies."""
        return self.rho is not None and self.rho >= 0.0

    def _resolve_scale(self, relation) -> np.ndarray:
        if isinstance(self.scale, str):
            values = np.asarray(relation.column(self.scale), dtype=float)
        else:
            values = np.asarray(self.scale, dtype=float)
            if values.ndim == 0:
                values = np.full(relation.n_rows, float(values))
        if values.shape != (relation.n_rows,):
            raise VGFunctionError(
                "scale must be a scalar, a column name, or one value per row"
            )
        if np.any(values < 0):
            raise VGFunctionError("scale must be nonnegative")
        return values

    def _estimated_cholesky(self, relation, rows: np.ndarray) -> np.ndarray:
        history = np.stack(
            [
                np.asarray(relation.column(name), dtype=float)[rows]
                for name in self.history_columns
            ],
            axis=1,
        )
        if history.shape[1] < 2:
            raise VGFunctionError(
                "history_columns needs at least two observation columns"
            )
        if np.any(history.std(axis=1) == 0):
            raise VGFunctionError(
                "history_columns have zero variance for some rows;"
                " cannot estimate a correlation matrix"
            )
        if len(rows) == 1:
            return np.ones((1, 1))
        corr = np.corrcoef(history)
        np.fill_diagonal(corr, 1.0)
        return cholesky_correlation(
            np.clip(corr, -1.0, 1.0), "estimated correlation"
        )

    # --- sampling ------------------------------------------------------------

    def _correlated_normals(
        self, block_index: int, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        k = len(self.blocks[block_index])
        if self._one_factor:
            shared = rng.normal(0.0, 1.0, size=(1, size))
            own = rng.normal(0.0, 1.0, size=(k, size))
            return np.sqrt(self.rho) * shared + np.sqrt(1.0 - self.rho) * own
        return self._chols[block_index] @ rng.normal(0.0, 1.0, size=(k, size))

    def _sample_block(self, block_index, rng, size):
        rows = self.blocks[block_index]
        z = self._correlated_normals(block_index, rng, size)
        return self._base[rows, None] + self._scale[rows, None] * z

    def sample_all(self, rng):
        """One scenario, vectorized on the one-factor path (see module)."""
        if not self._one_factor:
            return super().sample_all(rng)
        # Vectorized one-factor path: one shared shock per block plus one
        # idiosyncratic shock per row, two draws total per scenario.
        shared = rng.normal(0.0, 1.0, size=self.n_blocks)
        own = rng.normal(0.0, 1.0, size=self.n_rows)
        z = (
            np.sqrt(self.rho) * shared[self._block_of_row]
            + np.sqrt(1.0 - self.rho) * own
        )
        return self._base + self._scale * z

    # --- analytic structure ----------------------------------------------------

    def mean(self):
        """``E[value_i] = base_i`` (the copula noise is centered)."""
        self._require_bound()
        return self._base.copy()

    # Gaussian marginals are unbounded: keep the default infinite support.
