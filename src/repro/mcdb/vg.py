"""VG-function framework.

A VG ("variable generation") function produces realizations of one
stochastic attribute for every tuple of a relation.  Independence
structure is expressed through *blocks*: rows within a block may be
arbitrarily correlated (e.g. trades on the same stock share a Brownian
path, Section 6.1), while distinct blocks are statistically independent.
The block partition is what makes both of the paper's summary-generation
strategies (Section 5.5) possible:

* **tuple-wise** generation seeds one RNG per *block* and draws all ``M``
  realizations for that block at once;
* **scenario-wise** generation seeds one RNG per *scenario* and draws one
  realization of every block.

Subclasses implement :meth:`_sample_block`; a vectorized
:meth:`sample_all` fast path may be overridden when the block loop is a
bottleneck (all built-in VG functions do).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import VGFunctionError


class VGFunction(ABC):
    """Base class for variable-generation functions.

    A VG function must be *bound* to a relation before sampling; binding
    resolves column references and fixes the block partition.  Bound
    instances are immutable with respect to sampling: the same RNG state
    always produces the same realizations.
    """

    def __init__(self) -> None:
        self._relation = None
        self._blocks: list[np.ndarray] | None = None
        self._block_of_row: np.ndarray | None = None

    # --- binding -------------------------------------------------------------

    def bind(self, relation) -> "VGFunction":
        """Resolve columns against ``relation`` and build the block partition."""
        self._relation = relation
        self._blocks = self._build_blocks(relation)
        n = relation.n_rows
        covered = np.full(n, -1, dtype=np.int64)
        for b, rows in enumerate(self._blocks):
            if np.any(covered[rows] != -1):
                raise VGFunctionError("blocks must be disjoint")
            covered[rows] = b
        if np.any(covered < 0):
            raise VGFunctionError("blocks must cover every row of the relation")
        self._block_of_row = covered
        self._after_bind(relation)
        return self

    def _build_blocks(self, relation) -> list[np.ndarray]:
        """Default partition: every row is its own (independent) block."""
        return [np.array([i]) for i in range(relation.n_rows)]

    def _after_bind(self, relation) -> None:
        """Hook for subclasses to precompute bound state."""

    @property
    def bound(self) -> bool:
        return self._relation is not None

    def _require_bound(self):
        if self._relation is None:
            raise VGFunctionError(
                f"{type(self).__name__} must be bound to a relation before use"
            )
        return self._relation

    @property
    def n_rows(self) -> int:
        return self._require_bound().n_rows

    @property
    def blocks(self) -> list[np.ndarray]:
        self._require_bound()
        assert self._blocks is not None
        return self._blocks

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def block_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Block index for each given row position."""
        self._require_bound()
        assert self._block_of_row is not None
        return self._block_of_row[rows]

    # --- sampling ------------------------------------------------------------

    @abstractmethod
    def _sample_block(
        self, block_index: int, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Draw ``size`` i.i.d. realizations of one block.

        Returns an array of shape ``(block_len, size)``.
        """

    def sample_block(
        self, block_index: int, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Public wrapper around :meth:`_sample_block` with shape checking."""
        self._require_bound()
        values = np.asarray(self._sample_block(block_index, rng, size), dtype=float)
        expected = (len(self.blocks[block_index]), size)
        if values.shape != expected:
            raise VGFunctionError(
                f"{type(self).__name__}._sample_block returned shape"
                f" {values.shape}, expected {expected}"
            )
        return values

    def sample_all(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one full scenario (one value per row), vectorized.

        The default implementation loops blocks with a single shared RNG;
        subclasses override it with vectorized logic.  Both paths must
        produce the same *distribution* (not the same bit stream).
        """
        relation = self._require_bound()
        out = np.empty(relation.n_rows, dtype=float)
        for b, rows in enumerate(self.blocks):
            out[rows] = self._sample_block(b, rng, 1)[:, 0]
        return out

    # --- analytic structure ----------------------------------------------------

    def mean(self) -> np.ndarray | None:
        """Per-row expectation, if available in closed form (else ``None``).

        Used by the expectation-precomputation phase (Section 3.2) to skip
        Monte Carlo averaging.
        """
        return None

    def support(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row support interval ``(lo, hi)``; ±inf where unbounded.

        Feeds the objective-value bounds of Appendix B (assumption A1).
        """
        n = self.n_rows
        return np.full(n, -np.inf), np.full(n, np.inf)


def grouped_blocks(values: np.ndarray) -> list[np.ndarray]:
    """Partition row positions by equal values of ``values``.

    Used by VG functions whose correlation structure is keyed by a
    grouping column (e.g. stock symbol).  Blocks preserve first-occurrence
    order, making the partition deterministic.
    """
    order: dict = {}
    for i, v in enumerate(np.asarray(values).tolist()):
        order.setdefault(v, []).append(i)
    return [np.asarray(rows, dtype=np.int64) for rows in order.values()]
