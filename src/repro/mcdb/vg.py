"""VG-function framework and the pluggable VG registry.

A VG ("variable generation") function produces realizations of one
stochastic attribute for every tuple of a relation.  Independence
structure is expressed through *blocks*: rows within a block may be
arbitrarily correlated (e.g. trades on the same stock share a Brownian
path, Section 6.1), while distinct blocks are statistically independent.
The block partition is what makes both of the paper's summary-generation
strategies (Section 5.5) possible:

* **tuple-wise** generation seeds one RNG per *block* and draws all ``M``
  realizations for that block at once;
* **scenario-wise** generation seeds one RNG per *scenario* and draws one
  realization of every block.

Subclasses implement :meth:`_sample_block`; a vectorized
:meth:`sample_all` fast path may be overridden when the block loop is a
bottleneck (all built-in VG functions do).

The **registry** makes VG families constructible by name: decorate a
class with :func:`register_vg` and it becomes reachable from
:func:`make_vg`, the workload specs, ``SPQConfig.vg_overrides``, and the
CLI's ``--vg`` flag without the caller importing the class.  Every
:class:`VGFunction` also exposes :meth:`~VGFunction.params_fingerprint`,
a stable hash of its constructor parameters that feeds the shared
:class:`repro.service.ScenarioStore` content keys — two VGs differing
only in a parameter can never share cached scenario matrices.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
from abc import ABC, abstractmethod

import numpy as np

from ..errors import VGFunctionError

#: Instance attributes written by :meth:`VGFunction.bind` (and the
#: fingerprint cache itself); everything else in ``__dict__`` is treated
#: as a constructor parameter by :meth:`VGFunction.params_fingerprint`.
_BINDING_FIELDS = frozenset(
    {"_relation", "_blocks", "_block_of_row", "_params_fp"}
)


class VGFunction(ABC):
    """Base class for variable-generation functions.

    A VG function must be *bound* to a relation before sampling; binding
    resolves column references and fixes the block partition.  Bound
    instances are immutable with respect to sampling: the same RNG state
    always produces the same realizations.
    """

    def __init__(self) -> None:
        self._relation = None
        self._blocks: list[np.ndarray] | None = None
        self._block_of_row: np.ndarray | None = None
        self._params_fp: str | None = None

    # --- binding -------------------------------------------------------------

    def bind(self, relation) -> "VGFunction":
        """Resolve columns against ``relation`` and build the block partition."""
        # Snapshot the constructor-parameter fingerprint before any bound
        # state lands in __dict__, so it is identical pre- and post-bind.
        self.params_fingerprint()
        self._relation = relation
        self._blocks = self._build_blocks(relation)
        n = relation.n_rows
        covered = np.full(n, -1, dtype=np.int64)
        for b, rows in enumerate(self._blocks):
            if np.any(covered[rows] != -1):
                raise VGFunctionError("blocks must be disjoint")
            covered[rows] = b
        if np.any(covered < 0):
            raise VGFunctionError("blocks must cover every row of the relation")
        self._block_of_row = covered
        self._after_bind(relation)
        return self

    def _build_blocks(self, relation) -> list[np.ndarray]:
        """Default partition: every row is its own (independent) block."""
        return [np.array([i]) for i in range(relation.n_rows)]

    def _after_bind(self, relation) -> None:
        """Hook for subclasses to precompute bound state."""

    @property
    def bound(self) -> bool:
        """Whether :meth:`bind` has attached a relation."""
        return self._relation is not None

    def _require_bound(self):
        if self._relation is None:
            raise VGFunctionError(
                f"{type(self).__name__} must be bound to a relation before use"
            )
        return self._relation

    @property
    def n_rows(self) -> int:
        """Row count of the bound relation."""
        return self._require_bound().n_rows

    @property
    def blocks(self) -> list[np.ndarray]:
        """The independence partition: row positions of each block."""
        self._require_bound()
        assert self._blocks is not None
        return self._blocks

    @property
    def n_blocks(self) -> int:
        """Number of independence blocks."""
        return len(self.blocks)

    def block_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Block index for each given row position."""
        self._require_bound()
        assert self._block_of_row is not None
        return self._block_of_row[rows]

    # --- sampling ------------------------------------------------------------

    @abstractmethod
    def _sample_block(
        self, block_index: int, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Draw ``size`` i.i.d. realizations of one block.

        Returns an array of shape ``(block_len, size)``.
        """

    def sample_block(
        self, block_index: int, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Public wrapper around :meth:`_sample_block` with shape checking."""
        self._require_bound()
        values = np.asarray(self._sample_block(block_index, rng, size), dtype=float)
        expected = (len(self.blocks[block_index]), size)
        if values.shape != expected:
            raise VGFunctionError(
                f"{type(self).__name__}._sample_block returned shape"
                f" {values.shape}, expected {expected}"
            )
        return values

    def sample_all(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one full scenario (one value per row), vectorized.

        The default implementation loops blocks with a single shared RNG;
        subclasses override it with vectorized logic.  Both paths must
        produce the same *distribution* (not the same bit stream).
        """
        relation = self._require_bound()
        out = np.empty(relation.n_rows, dtype=float)
        for b, rows in enumerate(self.blocks):
            out[rows] = self._sample_block(b, rng, 1)[:, 0]
        return out

    # --- analytic structure ----------------------------------------------------

    def mean(self) -> np.ndarray | None:
        """Per-row expectation, if available in closed form (else ``None``).

        Used by the expectation-precomputation phase (Section 3.2) to skip
        Monte Carlo averaging.
        """
        return None

    def support(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row support interval ``(lo, hi)``; ±inf where unbounded.

        Feeds the objective-value bounds of Appendix B (assumption A1).
        """
        n = self.n_rows
        return np.full(n, -np.inf), np.full(n, np.inf)

    # --- cloning ----------------------------------------------------------------

    def unbound_copy(self) -> "VGFunction":
        """A fresh, bindable instance with the same constructor parameters.

        The out-of-core tier (``repro.scale``) evaluates partitions of a
        relation as standalone sub-relations, which needs the original
        model's VG families re-bound to each partition.  The copy shares
        parameter objects with the original (parameters are treated as
        immutable) but carries no binding, and nested VG parameters —
        e.g. a mixture's components — are recursively copied, so binding
        the copy can never mutate the original's bound state.  Stale
        subclass bound state (resolved column arrays and the like) is
        intentionally left in place: :meth:`bind` recomputes all of it
        via ``_after_bind``.

        Per-row *array* parameters resolved against the original
        relation (e.g. a per-row ``sigma``) keep their full length and
        will fail their shape check when re-bound to a shorter
        partition; families parameterized by column names re-resolve
        cleanly.
        """
        clone = copy.copy(self)
        clone._relation = None
        clone._blocks = None
        clone._block_of_row = None
        for name, value in list(clone.__dict__.items()):
            if name in _BINDING_FIELDS:
                continue
            clone.__dict__[name] = _copy_nested_vgs(value)
        return clone

    # --- identity ---------------------------------------------------------------

    def params_fingerprint(self) -> str:
        """Stable SHA-256 hex digest of this VG's type and parameters.

        The digest covers the class identity plus every constructor
        parameter (everything in ``__dict__`` except bound state), so two
        instances of the same family with different parameters always
        fingerprint differently, while binding a VG never changes its
        fingerprint.  :func:`repro.service.store.model_fingerprint` folds
        it into the :class:`~repro.service.ScenarioStore` content keys,
        which is what rules out false cache hits between VG
        configurations.  The value is computed once (on first call or at
        :meth:`bind`, whichever comes first) and cached.
        """
        if self._params_fp is None:
            digest = hashlib.sha256()
            digest.update(type(self).__module__.encode())
            digest.update(b"\x00")
            digest.update(type(self).__qualname__.encode())
            for name in sorted(self.__dict__):
                if name in _BINDING_FIELDS:
                    continue
                digest.update(b"\x00")
                digest.update(name.encode())
                digest.update(b"=")
                digest.update(_canonical_param(self.__dict__[name]))
            self._params_fp = digest.hexdigest()
        return self._params_fp


def _copy_nested_vgs(value):
    """Replace VG functions inside a parameter value with unbound copies."""
    if isinstance(value, VGFunction):
        return value.unbound_copy()
    if isinstance(value, list):
        return [_copy_nested_vgs(v) for v in value]
    if isinstance(value, tuple):
        return tuple(_copy_nested_vgs(v) for v in value)
    return value


def _canonical_param(value) -> bytes:
    """A stable byte rendering of one constructor parameter.

    Handles the parameter kinds the built-in families use — scalars,
    strings, arrays, nested VG functions, and containers of those — and
    falls back to a pickle digest for anything else.
    """
    if isinstance(value, VGFunction):
        return b"vg:" + value.params_fingerprint().encode()
    if isinstance(value, np.ndarray):
        body = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        return f"nd:{value.shape}:{value.dtype}:{body}".encode()
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value).encode()
    if isinstance(value, (list, tuple)):
        return b"seq:[" + b",".join(_canonical_param(v) for v in value) + b"]"
    if isinstance(value, dict):
        return b"map:{" + b",".join(
            _canonical_param(k) + b":" + _canonical_param(value[k])
            for k in sorted(value, key=repr)
        ) + b"}"
    try:
        return b"pkl:" + hashlib.sha256(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).digest()
    except Exception:  # pragma: no cover - unpicklable custom params
        return b"repr:" + repr(value).encode()


# --- registry -----------------------------------------------------------------

#: Global name → VGFunction subclass registry (see :func:`register_vg`).
_VG_REGISTRY: dict[str, type] = {}


def register_vg(name: str):
    """Class decorator registering a :class:`VGFunction` under ``name``.

    Registered families are constructible by :func:`make_vg` (and hence
    from workload specs, ``SPQConfig.vg_overrides``, and the CLI's
    ``--vg`` flag).  Names are case-insensitive and must be unique; a
    *different* class may not claim a taken name.  Re-registering the
    same class — or a same-named class from the same module, which is
    what ``importlib.reload`` produces — replaces the entry, so module
    reloads are safe.

    Usage::

        @register_vg("my_noise")
        class MyNoiseVG(VGFunction): ...
    """
    key = name.strip().lower()
    if not key:
        raise VGFunctionError("VG registry names must be non-empty")

    def decorate(cls: type) -> type:
        existing = _VG_REGISTRY.get(key)
        if (
            existing is not None
            and existing is not cls
            and (existing.__module__, existing.__qualname__)
            != (cls.__module__, cls.__qualname__)
        ):
            raise VGFunctionError(
                f"VG name {key!r} is already registered to"
                f" {existing.__qualname__}"
            )
        _VG_REGISTRY[key] = cls
        return cls

    return decorate


def vg_names() -> list[str]:
    """Sorted names of all registered VG families."""
    return sorted(_VG_REGISTRY)


def make_vg(name: str, **params) -> VGFunction:
    """Construct a registered VG family by name.

    ``params`` are passed to the family's constructor as keyword
    arguments; a wrong or missing parameter raises
    :class:`VGFunctionError` naming the family (rather than a bare
    ``TypeError``), so registry-driven callers (CLI, workload specs) get
    actionable messages.
    """
    key = name.strip().lower()
    cls = _VG_REGISTRY.get(key)
    if cls is None:
        raise VGFunctionError(
            f"unknown VG family {name!r}; registered: {vg_names()}"
        )
    try:
        return cls(**params)
    except VGFunctionError:
        raise
    except (TypeError, ValueError) as error:
        # Wrong keyword names, and constructor-level coercion failures
        # (e.g. float("abc")), both surface as actionable registry errors.
        raise VGFunctionError(
            f"bad parameters for VG family {key!r}: {error}"
        ) from None


def parse_vg_expr(text: str) -> VGFunction:
    """Build a VG from a ``kind:param=value,...`` registry expression.

    This is the textual surface shared by the CLI ``--vg`` flag,
    ``SPQConfig.vg_overrides``, and :meth:`QuerySpec.build_dataset
    <repro.workloads.spec.QuerySpec.build_dataset>`:

    * ``kind`` is a registered family name (see :func:`vg_names`);
    * each ``param=value`` becomes a constructor keyword argument;
    * values parse as ``int``, then ``float``, then the literals
      ``true``/``false``/``none``; anything else stays a string (column
      names resolve at bind time);
    * ``+`` inside a value builds a list (e.g. ``cols=h0+h1+h2``).

    Example: ``gaussian_copula:base=exp_gain,scale=gain_sd,rho=0.6,group=sector``.
    """
    kind, _, params_text = text.strip().partition(":")
    kind = kind.strip()
    if not kind:
        raise VGFunctionError(
            f"bad VG expression {text!r}: expected kind:param=value,..."
        )
    params = {}
    for part in filter(None, (p.strip() for p in params_text.split(","))):
        key, eq, raw = part.partition("=")
        if not eq or not key.strip():
            raise VGFunctionError(
                f"bad VG parameter {part!r} in {text!r}: expected param=value"
            )
        params[key.strip()] = _parse_param_value(raw.strip())
    return make_vg(kind, **params)


def _parse_param_value(raw: str):
    """Parse one textual parameter value (int/float/bool/None/str/list).

    Numeric parsing is attempted before list-splitting so scientific
    notation (``1e+3``) stays a single number; ``+`` only builds a list
    when the whole token is not a number.
    """
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered == "none":
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    if "+" in raw:
        return [_parse_param_value(v) for v in raw.split("+")]
    return raw


def grouped_blocks(values: np.ndarray) -> list[np.ndarray]:
    """Partition row positions by equal values of ``values``.

    Used by VG functions whose correlation structure is keyed by a
    grouping column (e.g. stock symbol).  Blocks preserve first-occurrence
    order, making the partition deterministic.
    """
    order: dict = {}
    for i, v in enumerate(np.asarray(values).tolist()):
        order.setdefault(v, []).append(i)
    return [np.asarray(rows, dtype=np.int64) for rows in order.values()]
