"""Data-integration uncertainty: discrete mixtures over source variants.

The TPC-H workload (Section 6.1) simulates integrating ``D`` data sources
into one table: each original value is replaced by ``D`` possible
variations, anchored so their mean is the original value, with the
variations drawn from an Exponential, Poisson, Uniform, or Student's-t
perturbation model.  A scenario then realizes each attribute by picking
one of its ``D`` variants uniformly at random (a discrete distribution
per tuple), independently across tuples.
"""

from __future__ import annotations

import numpy as np

from ..errors import VGFunctionError
from .vg import VGFunction, register_vg

#: Perturbation families supported by :func:`build_integration_variants`.
INTEGRATION_FAMILIES = ("exponential", "poisson", "uniform", "student-t")


def build_integration_variants(
    base: np.ndarray,
    n_sources: int,
    family: str,
    rng: np.random.Generator,
    spread: float = 1.0,
    family_param: float | None = None,
) -> np.ndarray:
    """Generate the ``(n_rows, D)`` variant matrix for one attribute.

    Each row's ``D`` source values are the original value plus centered
    perturbations from the requested family, then re-centered so the row
    mean equals the original value exactly ("the mean of these D values is
    anchored around the original value").

    ``family_param`` carries the distribution parameter from Table 3
    (rate λ for exponential, λ for Poisson, ν for Student's t; ignored
    for uniform, which uses ``spread`` as its half-width).
    """
    if n_sources < 1:
        raise VGFunctionError("n_sources must be >= 1")
    if family not in INTEGRATION_FAMILIES:
        raise VGFunctionError(
            f"unknown integration family {family!r};"
            f" expected one of {INTEGRATION_FAMILIES}"
        )
    base = np.asarray(base, dtype=float)
    shape = (len(base), n_sources)
    if family == "exponential":
        lam = 1.0 if family_param is None else float(family_param)
        if lam <= 0:
            raise VGFunctionError("exponential rate must be positive")
        noise = rng.exponential(1.0 / lam, size=shape) - 1.0 / lam
    elif family == "poisson":
        lam = 1.0 if family_param is None else float(family_param)
        if lam <= 0:
            raise VGFunctionError("poisson rate must be positive")
        noise = rng.poisson(lam, size=shape).astype(float) - lam
    elif family == "uniform":
        noise = rng.uniform(-spread, spread, size=shape)
    else:  # student-t
        dof = 2.0 if family_param is None else float(family_param)
        if dof <= 0:
            raise VGFunctionError("student-t degrees of freedom must be positive")
        noise = rng.standard_t(dof, size=shape) * spread
    noise = noise * (spread if family in ("exponential", "poisson") else 1.0)
    variants = base[:, None] + noise
    # Re-center each row so the D source values average to the original.
    variants += (base - variants.mean(axis=1))[:, None]
    return variants


@register_vg("discrete")
class DiscreteVariantsVG(VGFunction):
    """Uniform draw over ``D`` per-tuple variants.

    ``variants`` has shape ``(n_rows, D)``; each scenario independently
    picks, for each row, one of its ``D`` columns.  Means and supports
    are exact (finite discrete distribution), so expectation
    precomputation is analytic for this VG.
    """

    def __init__(self, variants: np.ndarray):
        super().__init__()
        self.variants = np.asarray(variants, dtype=float)
        if self.variants.ndim != 2 or self.variants.shape[1] < 1:
            raise VGFunctionError("variants must have shape (n_rows, D) with D >= 1")

    @property
    def n_sources(self) -> int:
        """Number of integrated sources ``D`` (variant columns)."""
        return self.variants.shape[1]

    def _after_bind(self, relation) -> None:
        if self.variants.shape[0] != relation.n_rows:
            raise VGFunctionError(
                f"variants cover {self.variants.shape[0]} rows,"
                f" relation has {relation.n_rows}"
            )

    def _sample_block(self, block_index, rng, size):
        rows = self.blocks[block_index]
        choices = rng.integers(0, self.n_sources, size=(len(rows), size))
        return self.variants[rows[:, None], choices]

    def sample_all(self, rng):
        """One scenario: an independent variant pick per row."""
        choices = rng.integers(0, self.n_sources, size=self.n_rows)
        return self.variants[np.arange(self.n_rows), choices]

    def mean(self):
        """Per-row mean of the ``D`` variants (exact)."""
        return self.variants.mean(axis=1)

    def support(self):
        """Per-row (min, max) over the ``D`` variants (exact, finite)."""
        return self.variants.min(axis=1), self.variants.max(axis=1)
