"""Bootstrap VG functions: resample historical observations.

A common alternative to parametric models (Section 1 mentions forecasts
built directly from historical data): each scenario draws from an
empirical sample matrix of past observations.  :class:`BootstrapVG`
resamples raw observations given as a matrix; :class:`EmpiricalBootstrapVG`
reads the observations from relation columns, re-centers them as
residuals around a fitted base column, and resamples those — the
standard residual bootstrap.

Two resampling modes (both classes):

* ``joint=True`` (default) — one historical *observation* (column) is
  drawn per scenario and applied to every tuple, preserving the
  cross-tuple dependence present in the history (e.g. same-day returns
  of different stocks co-move).  The whole relation is one block.
* ``joint=False`` — each tuple independently draws one of its own
  historical values; tuples are independent blocks.

Means and supports are exact (finite empirical distribution), so
expectation precomputation is analytic.
"""

from __future__ import annotations

import numpy as np

from ..errors import VGFunctionError
from .vg import VGFunction, register_vg


@register_vg("bootstrap")
class BootstrapVG(VGFunction):
    """Empirical resampling over an ``(n_rows, n_observations)`` matrix."""

    def __init__(self, observations: np.ndarray, joint: bool = True):
        super().__init__()
        self.observations = np.asarray(observations, dtype=float)
        if self.observations.ndim != 2 or self.observations.shape[1] < 1:
            raise VGFunctionError(
                "observations must have shape (n_rows, n_observations)"
            )
        self.joint = joint

    @property
    def n_observations(self) -> int:
        """Number of historical observations (columns) per row."""
        return self.observations.shape[1]

    def _build_blocks(self, relation):
        if self.joint:
            return [np.arange(relation.n_rows)]
        return super()._build_blocks(relation)

    def _after_bind(self, relation) -> None:
        if self.observations.shape[0] != relation.n_rows:
            raise VGFunctionError(
                f"observations cover {self.observations.shape[0]} rows,"
                f" relation has {relation.n_rows}"
            )

    def _sample_block(self, block_index, rng, size):
        rows = self.blocks[block_index]
        if self.joint:
            # One historical column per scenario, shared by all rows.
            choices = rng.integers(0, self.n_observations, size=size)
            return self.observations[np.ix_(rows, choices)]
        choices = rng.integers(0, self.n_observations, size=(len(rows), size))
        return self.observations[rows[:, None], choices]

    def sample_all(self, rng):
        """One scenario: a shared (joint) or per-row observation draw."""
        if self.joint:
            choice = int(rng.integers(0, self.n_observations))
            return self.observations[:, choice].copy()
        choices = rng.integers(0, self.n_observations, size=self.n_rows)
        return self.observations[np.arange(self.n_rows), choices]

    def mean(self):
        """Per-row empirical mean of the observation matrix."""
        return self.observations.mean(axis=1)

    def support(self):
        """Per-row (min, max) of the observation matrix (exact, finite)."""
        return self.observations.min(axis=1), self.observations.max(axis=1)


@register_vg("empirical_bootstrap")
class EmpiricalBootstrapVG(BootstrapVG):
    """Residual bootstrap around a fitted column, fed by relation columns.

    The fitted value of each row comes from ``base_column``; its
    residuals are the row's values in ``observation_columns`` minus
    their own mean.  Each scenario resamples one residual (jointly
    across rows by default — see :class:`BootstrapVG`) and adds it to
    the fitted value::

        value_i = base_i + (obs_i[d] - mean_d(obs_i))     for a drawn d

    Unlike :class:`BootstrapVG`, all inputs are resolved from the bound
    relation, so the VG is declarable from the registry surface (the
    CLI ``--vg`` flag, ``SPQConfig.vg_overrides``, workload specs)::

        empirical_bootstrap:base_column=exp_gain,observation_columns=h0+h1+h2

    Parameters
    ----------
    base_column:
        Column holding the fitted per-row value the residuals recenter on.
    observation_columns:
        Names of columns holding historical observations (at least two);
        one column per past period.
    joint:
        Resampling mode, as in :class:`BootstrapVG` (default ``True``,
        preserving cross-row dependence present in the history).
    """

    def __init__(self, base_column: str, observation_columns, joint: bool = True):
        VGFunction.__init__(self)
        observation_columns = (
            [observation_columns]
            if isinstance(observation_columns, str)
            else list(observation_columns)
        )
        if len(observation_columns) < 2:
            raise VGFunctionError(
                "empirical_bootstrap needs at least two observation columns"
            )
        self.base_column = base_column
        self.observation_columns = tuple(observation_columns)
        self.joint = bool(joint)
        #: Built at bind time: fitted base + recentered residuals.
        self.observations = np.empty((0, 0))

    def _after_bind(self, relation) -> None:
        base = np.asarray(relation.column(self.base_column), dtype=float)
        history = np.stack(
            [
                np.asarray(relation.column(name), dtype=float)
                for name in self.observation_columns
            ],
            axis=1,
        )
        residuals = history - history.mean(axis=1, keepdims=True)
        self.observations = base[:, None] + residuals

    def mean(self):
        """Exactly the fitted base column (residuals are recentered)."""
        self._require_bound()
        return super().mean()

    def support(self):
        """Per-row (min, max) of the rebuilt observation matrix."""
        self._require_bound()
        return super().support()
