"""Bootstrap VG function: resample historical observations.

A common alternative to parametric models (Section 1 mentions forecasts
built directly from historical data): each scenario draws from an
empirical sample matrix of past observations.

Two resampling modes:

* ``joint=True`` (default) — one historical *observation* (column) is
  drawn per scenario and applied to every tuple, preserving the
  cross-tuple dependence present in the history (e.g. same-day returns
  of different stocks co-move).  The whole relation is one block.
* ``joint=False`` — each tuple independently draws one of its own
  historical values; tuples are independent blocks.

Means and supports are exact (finite empirical distribution), so
expectation precomputation is analytic.
"""

from __future__ import annotations

import numpy as np

from ..errors import VGFunctionError
from .vg import VGFunction


class BootstrapVG(VGFunction):
    """Empirical resampling over an ``(n_rows, n_observations)`` matrix."""

    def __init__(self, observations: np.ndarray, joint: bool = True):
        super().__init__()
        self.observations = np.asarray(observations, dtype=float)
        if self.observations.ndim != 2 or self.observations.shape[1] < 1:
            raise VGFunctionError(
                "observations must have shape (n_rows, n_observations)"
            )
        self.joint = joint

    @property
    def n_observations(self) -> int:
        return self.observations.shape[1]

    def _build_blocks(self, relation):
        if self.joint:
            return [np.arange(relation.n_rows)]
        return super()._build_blocks(relation)

    def _after_bind(self, relation) -> None:
        if self.observations.shape[0] != relation.n_rows:
            raise VGFunctionError(
                f"observations cover {self.observations.shape[0]} rows,"
                f" relation has {relation.n_rows}"
            )

    def _sample_block(self, block_index, rng, size):
        rows = self.blocks[block_index]
        if self.joint:
            # One historical column per scenario, shared by all rows.
            choices = rng.integers(0, self.n_observations, size=size)
            return self.observations[np.ix_(rows, choices)]
        choices = rng.integers(0, self.n_observations, size=(len(rows), size))
        return self.observations[rows[:, None], choices]

    def sample_all(self, rng):
        if self.joint:
            choice = int(rng.integers(0, self.n_observations))
            return self.observations[:, choice].copy()
        choices = rng.integers(0, self.n_observations, size=self.n_rows)
        return self.observations[np.arange(self.n_rows), choices]

    def mean(self):
        return self.observations.mean(axis=1)

    def support(self):
        return self.observations.min(axis=1), self.observations.max(axis=1)
