"""Synthetic TPC-H dataset with data-integration uncertainty.

The paper extracts ~117,600 tuples from the TPC-H benchmark and
simulates integrating ``D`` data sources: each attribute value is
replaced by a discrete distribution over ``D`` variations anchored on
the original value, sampled from an Exponential, Poisson, Uniform, or
Student's-t perturbation model (Section 6.1, Table 3).

This builder synthesizes a lineitem-like table — quantities uniform in
1..50 and revenue = quantity × unit price × (1 − discount), matching
TPC-H's pricing structure at a smaller monetary scale so the paper's
query thresholds (revenue ≥ 1000 over ≤ 10 transactions with ≤ 15 total
quantity) remain meaningfully selective — then attaches
``DiscreteVariantsVG`` models to both ``Quantity`` and ``Revenue``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.relation import Relation
from ..errors import EvaluationError
from ..mcdb.integration import (
    INTEGRATION_FAMILIES,
    DiscreteVariantsVG,
    build_integration_variants,
)
from ..mcdb.stochastic import StochasticModel
from ..utils.rngkeys import spawn_dataset_rng


@dataclass(frozen=True)
class TpchParams:
    """Configuration for one synthetic integrated TPC-H table.

    ``family`` and ``family_param`` follow Table 3 (e.g. Exponential with
    λ=1, Poisson λ∈{1,2}, Uniform(0,1), Student's t with ν=2);
    ``n_sources`` is the paper's ``D`` (3 or 10).
    """

    n_rows: int = 117_600
    n_sources: int = 3
    family: str = "exponential"
    family_param: float | None = None
    quantity_spread: float = 1.5
    revenue_spread: float = 150.0
    #: Smallest base quantity.  The default (1) matches TPC-H; the
    #: infeasible query Q8 uses a bulk-order extract (min 8 > its bound
    #: v = 7), making the chance constraint unsatisfiable for any
    #: nonempty package — reproducing the paper's one infeasible query.
    min_quantity: int = 1
    seed: int = 42
    name: str = "tpch"


def build_tpch(params: TpchParams) -> tuple[Relation, StochasticModel]:
    """Build the integrated TPC-H relation and its stochastic model."""
    if params.n_rows < 1:
        raise EvaluationError("tpch dataset needs at least one row")
    if params.family not in INTEGRATION_FAMILIES:
        raise EvaluationError(
            f"unknown integration family {params.family!r};"
            f" expected one of {INTEGRATION_FAMILIES}"
        )
    if params.n_sources < 1:
        raise EvaluationError("n_sources (D) must be >= 1")
    rng = spawn_dataset_rng(
        params.seed, f"{params.name}:{params.n_rows}:{params.n_sources}"
    )
    if not 1 <= params.min_quantity <= 50:
        raise EvaluationError("min_quantity must lie in [1, 50]")
    n = params.n_rows
    quantity = rng.integers(params.min_quantity, 51, size=n).astype(float)
    # Clipped at 120 so that reaching the paper's revenue threshold
    # (1000) genuinely competes with the quantity chance constraints
    # (v ∈ {7, 10, 15}): cheap-quantity/high-revenue free lunches are rare.
    unit_price = np.round(
        np.clip(np.exp(rng.normal(np.log(55.0), 0.6, size=n)), 10.0, 120.0), 2
    )
    discount = np.round(rng.uniform(0.0, 0.10, size=n), 4)
    revenue = np.round(quantity * unit_price * (1.0 - discount), 2)
    relation = Relation(
        params.name,
        {
            "orderkey": np.arange(n, dtype=np.int64),
            "quantity": quantity,
            "unit_price": unit_price,
            "discount": discount,
            "revenue": revenue,
        },
    )
    quantity_variants = build_integration_variants(
        quantity,
        params.n_sources,
        params.family,
        rng,
        spread=params.quantity_spread,
        family_param=params.family_param,
    )
    # Quantities are counts: keep variants nonnegative.
    quantity_variants = np.maximum(quantity_variants, 0.0)
    revenue_variants = build_integration_variants(
        revenue,
        params.n_sources,
        params.family,
        rng,
        spread=params.revenue_spread,
        family_param=params.family_param,
    )
    revenue_variants = np.maximum(revenue_variants, 0.0)
    model = StochasticModel(
        relation,
        {
            "Quantity": DiscreteVariantsVG(quantity_variants),
            "Revenue": DiscreteVariantsVG(revenue_variants),
        },
    )
    return relation, model
