"""Synthetic Portfolio dataset (Yahoo-Finance-like stock universe).

The paper uses 6,895 stocks with actual prices on 2018-01-02 and
forecasts future prices by geometric Brownian motion with per-stock
parameters estimated from history; each tuple is a *trade* — buy one
share now, sell at a given horizon — so one stock yields one tuple per
horizon, and tuples of the same stock share a Brownian path (Section
6.1).  The "2-day" datasets hold horizons {1, 2} days (≈14,000 tuples),
the "1-week" datasets horizons {1,…,7} (≈48,000 tuples), and the hard
queries restrict to the 30% most volatile stocks.

This builder synthesizes a stock universe with realistic price,
volatility, and drift cross-sections:

* prices: lognormal, ~$5–$500 (equity-market-like);
* annualized volatility: lognormal around ~35%, converted to per-√day;
* daily drift: small, slightly positive on average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.relation import Relation
from ..errors import EvaluationError
from ..mcdb.gbm import GeometricBrownianMotionVG
from ..mcdb.stochastic import StochasticModel
from ..utils.rngkeys import spawn_dataset_rng

HORIZONS_TWO_DAY = (1.0, 2.0)
HORIZONS_ONE_WEEK = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)

#: Trading days per year, for annualized-to-daily volatility conversion.
_TRADING_DAYS = 252.0


@dataclass(frozen=True)
class PortfolioParams:
    """Configuration for one synthetic Stock_Investments table."""

    n_stocks: int = 7_000
    horizons: tuple = HORIZONS_TWO_DAY
    volatile_only: bool = False
    volatile_fraction: float = 0.30
    seed: int = 42
    name: str = "stock_investments"


def build_portfolio(params: PortfolioParams) -> tuple[Relation, StochasticModel]:
    """Build the Stock_Investments relation and its GBM model."""
    if params.n_stocks < 1:
        raise EvaluationError("portfolio dataset needs at least one stock")
    if not params.horizons or any(h <= 0 for h in params.horizons):
        raise EvaluationError("sell horizons must be positive")
    rng = spawn_dataset_rng(params.seed, f"{params.name}:{params.n_stocks}")
    n = params.n_stocks
    prices = np.clip(np.exp(rng.normal(3.6, 0.9, size=n)), 5.0, 500.0)
    annual_vol = np.clip(np.exp(rng.normal(np.log(0.35), 0.45, size=n)), 0.10, 1.50)
    daily_vol = annual_vol / np.sqrt(_TRADING_DAYS)
    daily_drift = rng.normal(0.0004, 0.0012, size=n)

    if params.volatile_only:
        cutoff = np.quantile(daily_vol, 1.0 - params.volatile_fraction)
        keep = np.nonzero(daily_vol >= cutoff)[0]
        prices, daily_vol, daily_drift = (
            prices[keep],
            daily_vol[keep],
            daily_drift[keep],
        )
        n = len(keep)
        stock_ids = keep
    else:
        stock_ids = np.arange(n)

    horizons = np.asarray(params.horizons, dtype=float)
    n_h = len(horizons)
    relation = Relation(
        params.name,
        {
            "stock": np.repeat([f"S{int(s):05d}" for s in stock_ids], n_h),
            "price": np.round(np.repeat(prices, n_h), 2),
            "drift": np.repeat(daily_drift, n_h),
            "volatility": np.repeat(daily_vol, n_h),
            "sell_in_days": np.tile(horizons, n),
        },
    )
    vg = GeometricBrownianMotionVG(
        price_column="price",
        drift_column="drift",
        volatility_column="volatility",
        horizon_column="sell_in_days",
        group_column="stock",
    )
    model = StochasticModel(relation, {"Gain": vg})
    return relation, model
