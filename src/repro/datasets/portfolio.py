"""Synthetic Portfolio dataset (Yahoo-Finance-like stock universe).

The paper uses 6,895 stocks with actual prices on 2018-01-02 and
forecasts future prices by geometric Brownian motion with per-stock
parameters estimated from history; each tuple is a *trade* — buy one
share now, sell at a given horizon — so one stock yields one tuple per
horizon, and tuples of the same stock share a Brownian path (Section
6.1).  The "2-day" datasets hold horizons {1, 2} days (≈14,000 tuples),
the "1-week" datasets horizons {1,…,7} (≈48,000 tuples), and the hard
queries restrict to the 30% most volatile stocks.

This builder synthesizes a stock universe with realistic price,
volatility, and drift cross-sections:

* prices: lognormal, ~$5–$500 (equity-market-like);
* annualized volatility: lognormal around ~35%, converted to per-√day;
* daily drift: small, slightly positive on average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.relation import Relation
from ..errors import EvaluationError
from ..mcdb.gbm import GeometricBrownianMotionVG
from ..mcdb.stochastic import StochasticModel
from ..utils.rngkeys import spawn_dataset_rng

HORIZONS_TWO_DAY = (1.0, 2.0)
HORIZONS_ONE_WEEK = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)

#: Trading days per year, for annualized-to-daily volatility conversion.
_TRADING_DAYS = 252.0


@dataclass(frozen=True)
class PortfolioParams:
    """Configuration for one synthetic Stock_Investments table."""

    n_stocks: int = 7_000
    horizons: tuple = HORIZONS_TWO_DAY
    volatile_only: bool = False
    volatile_fraction: float = 0.30
    seed: int = 42
    name: str = "stock_investments"


def build_portfolio(params: PortfolioParams) -> tuple[Relation, StochasticModel]:
    """Build the Stock_Investments relation and its GBM model."""
    if params.n_stocks < 1:
        raise EvaluationError("portfolio dataset needs at least one stock")
    if not params.horizons or any(h <= 0 for h in params.horizons):
        raise EvaluationError("sell horizons must be positive")
    rng = spawn_dataset_rng(params.seed, f"{params.name}:{params.n_stocks}")
    n = params.n_stocks
    prices = np.clip(np.exp(rng.normal(3.6, 0.9, size=n)), 5.0, 500.0)
    annual_vol = np.clip(np.exp(rng.normal(np.log(0.35), 0.45, size=n)), 0.10, 1.50)
    daily_vol = annual_vol / np.sqrt(_TRADING_DAYS)
    daily_drift = rng.normal(0.0004, 0.0012, size=n)

    if params.volatile_only:
        cutoff = np.quantile(daily_vol, 1.0 - params.volatile_fraction)
        keep = np.nonzero(daily_vol >= cutoff)[0]
        prices, daily_vol, daily_drift = (
            prices[keep],
            daily_vol[keep],
            daily_drift[keep],
        )
        n = len(keep)
        stock_ids = keep
    else:
        stock_ids = np.arange(n)

    horizons = np.asarray(params.horizons, dtype=float)
    n_h = len(horizons)
    relation = Relation(
        params.name,
        {
            "stock": np.repeat([f"S{int(s):05d}" for s in stock_ids], n_h),
            "price": np.round(np.repeat(prices, n_h), 2),
            "drift": np.repeat(daily_drift, n_h),
            "volatility": np.repeat(daily_vol, n_h),
            "sell_in_days": np.tile(horizons, n),
        },
    )
    vg = GeometricBrownianMotionVG(
        price_column="price",
        drift_column="drift",
        volatility_column="volatility",
        horizon_column="sell_in_days",
        group_column="stock",
    )
    model = StochasticModel(relation, {"Gain": vg})
    return relation, model


# --- out-of-core builder -------------------------------------------------------


def build_portfolio_store(
    params: PortfolioParams,
    path,
    chunk_rows: int | None = None,
    resident_budget: int | None = None,
):
    """Synthesize a Stock_Investments table straight onto disk.

    Bit-identical to :func:`build_portfolio` followed by
    ``Relation.to_disk`` — the per-stock parameter draws use the same
    RNG calls in the same order — but the expanded per-trade rows are
    streamed to the column store in chunks, so resident memory is
    ``O(n_stocks)`` parameter vectors plus one chunk, never the full
    ``n_stocks x len(horizons)`` relation.  Returns ``(store, model)``
    with the GBM model bound to the store (``resident_budget`` bounds
    the store's chunk cache).
    """
    from ..scale.columnar import (
        ColumnStore,
        ColumnStoreWriter,
        DEFAULT_CHUNK_ROWS,
    )

    if params.n_stocks < 1:
        raise EvaluationError("portfolio dataset needs at least one stock")
    if not params.horizons or any(h <= 0 for h in params.horizons):
        raise EvaluationError("sell horizons must be positive")
    rng = spawn_dataset_rng(params.seed, f"{params.name}:{params.n_stocks}")
    n = params.n_stocks
    prices = np.clip(np.exp(rng.normal(3.6, 0.9, size=n)), 5.0, 500.0)
    annual_vol = np.clip(np.exp(rng.normal(np.log(0.35), 0.45, size=n)), 0.10, 1.50)
    daily_vol = annual_vol / np.sqrt(_TRADING_DAYS)
    daily_drift = rng.normal(0.0004, 0.0012, size=n)

    if params.volatile_only:
        cutoff = np.quantile(daily_vol, 1.0 - params.volatile_fraction)
        keep = np.nonzero(daily_vol >= cutoff)[0]
        prices, daily_vol, daily_drift = (
            prices[keep],
            daily_vol[keep],
            daily_drift[keep],
        )
        n = len(keep)
        stock_ids = keep
    else:
        stock_ids = np.arange(n)

    horizons = np.asarray(params.horizons, dtype=float)
    n_h = len(horizons)
    chunk_rows = chunk_rows or DEFAULT_CHUNK_ROWS
    rounded_prices = np.round(prices, 2)
    writer = ColumnStoreWriter(
        path, name=params.name, key="id", chunk_rows=chunk_rows
    )
    stocks_per_batch = max(1, chunk_rows // n_h)
    for start in range(0, n, stocks_per_batch):
        stop = min(start + stocks_per_batch, n)
        batch = slice(start, stop)
        count = stop - start
        writer.append(
            {
                "stock": np.repeat(
                    np.array(
                        [f"S{int(s):05d}" for s in stock_ids[batch]],
                        dtype=object,
                    ),
                    n_h,
                ),
                "price": np.repeat(rounded_prices[batch], n_h),
                "drift": np.repeat(daily_drift[batch], n_h),
                "volatility": np.repeat(daily_vol[batch], n_h),
                "sell_in_days": np.tile(horizons, count),
            }
        )
    writer.close()
    store = ColumnStore(str(path), resident_budget=resident_budget)
    vg = GeometricBrownianMotionVG(
        price_column="price",
        drift_column="drift",
        volatility_column="volatility",
        horizon_column="sell_in_days",
        group_column="stock",
    )
    model = StochasticModel(store, {"Gain": vg})
    return store, model


# --- correlated universe (sector co-movement) ---------------------------------

#: Uncertainty models the correlated builder can attach (see
#: :func:`build_correlated_portfolio`).
CORRELATED_MODELS = (
    "independent",
    "copula",
    "copula-historical",
    "regime",
    "bootstrap",
)


@dataclass(frozen=True)
class CorrelatedPortfolioParams:
    """Configuration for one sector-correlated Stock_Investments table.

    Attributes
    ----------
    n_stocks:
        Universe size; one 1-day trade (row) per stock.
    n_sectors:
        Number of sectors; stocks are assigned round-robin so sector
        blocks are balanced.
    rho:
        Within-sector equicorrelation of daily gains (also drives the
        synthetic gain history the ``copula-historical`` and
        ``bootstrap`` models estimate from).
    model:
        Which uncertainty model to attach — one of
        :data:`CORRELATED_MODELS`:

        * ``"independent"`` — Gaussian copula with ``rho = 0`` (the
          diversification baseline);
        * ``"copula"`` — :class:`~repro.mcdb.GaussianCopulaVG` with the
          given ``rho`` grouped by sector;
        * ``"copula-historical"`` — the same copula but with the
          correlation matrix *estimated* from the history columns;
        * ``"regime"`` — a :class:`~repro.mcdb.MixtureVG` of a calm
          (low-correlation, optimistic) and a crisis (high-correlation,
          pessimistic) copula, the classic "correlations spike in a
          crash" market;
        * ``"bootstrap"`` — :class:`~repro.mcdb.EmpiricalBootstrapVG`
          jointly resampling the historical gain residuals.
    history_days:
        Number of synthetic past trading days materialized as columns
        ``h0..h{history_days-1}`` (per-stock realized daily gains).
    seed:
        Dataset-construction seed (independent of scenario streams).
    name:
        Relation name registered in the catalog.
    """

    n_stocks: int = 500
    n_sectors: int = 8
    rho: float = 0.6
    model: str = "copula"
    history_days: int = 120
    seed: int = 42
    name: str = "stock_investments"


def build_correlated_portfolio(
    params: CorrelatedPortfolioParams,
) -> tuple[Relation, StochasticModel]:
    """Build a sector-correlated Stock_Investments relation and model.

    Every stock is a single 1-day trade with an expected gain
    (``exp_gain``), a gain standard deviation (``gain_sd``), a sector,
    and ``history_days`` columns of realized past daily gains drawn with
    the same sector co-movement the scenario models assume.  The
    stochastic ``Gain`` attribute is built through the VG registry
    (:func:`repro.mcdb.make_vg`), so the returned model is exactly what
    a ``--vg`` declaration would produce.
    """
    if params.n_stocks < 1:
        raise EvaluationError("correlated portfolio needs at least one stock")
    if not 1 <= params.n_sectors <= params.n_stocks:
        raise EvaluationError("n_sectors must be in [1, n_stocks]")
    if not 0.0 <= params.rho <= 1.0:
        raise EvaluationError("sector correlation rho must be in [0, 1]")
    if params.model not in CORRELATED_MODELS:
        raise EvaluationError(
            f"unknown correlated model {params.model!r};"
            f" expected one of {CORRELATED_MODELS}"
        )
    if params.history_days < 2:
        raise EvaluationError("history_days must be >= 2")
    from ..mcdb import make_vg
    from ..mcdb.mixture import MixtureVG

    rng = spawn_dataset_rng(
        params.seed, f"{params.name}:corr:{params.n_stocks}:{params.n_sectors}"
    )
    n = params.n_stocks
    prices = np.clip(np.exp(rng.normal(3.6, 0.9, size=n)), 5.0, 500.0)
    annual_vol = np.clip(np.exp(rng.normal(np.log(0.35), 0.45, size=n)), 0.10, 1.50)
    daily_vol = annual_vol / np.sqrt(_TRADING_DAYS)
    daily_drift = rng.normal(0.0004, 0.0012, size=n)
    sector_ids = np.arange(n) % params.n_sectors

    exp_gain = prices * daily_drift
    gain_sd = prices * daily_vol

    # Synthetic realized history: one-factor sector co-movement matching
    # the rho the parametric models assume, so the estimated-correlation
    # and bootstrap variants are fit to consistent data.
    shared = rng.normal(size=(params.n_sectors, params.history_days))
    own = rng.normal(size=(n, params.history_days))
    z = np.sqrt(params.rho) * shared[sector_ids] + np.sqrt(1.0 - params.rho) * own
    history = exp_gain[:, None] + gain_sd[:, None] * z

    columns = {
        "stock": np.array([f"S{i:05d}" for i in range(n)], dtype=object),
        "sector": np.array(
            [f"SEC{int(s):02d}" for s in sector_ids], dtype=object
        ),
        "price": np.round(prices, 2),
        "exp_gain": exp_gain,
        "gain_sd": gain_sd,
        # Regime anchors: optimistic calm-market and pessimistic
        # crisis-market expected gains (the mixture mean stays exp_gain).
        "calm_gain": exp_gain + 0.5 * gain_sd,
        "crisis_gain": exp_gain - 2.0 * gain_sd,
    }
    for d in range(params.history_days):
        columns[f"h{d}"] = history[:, d]
    relation = Relation(params.name, columns)

    history_columns = [f"h{d}" for d in range(params.history_days)]
    if params.model == "independent":
        vg = make_vg(
            "gaussian_copula",
            base_column="exp_gain",
            scale="gain_sd",
            rho=0.0,
            group_column="sector",
        )
    elif params.model == "copula":
        vg = make_vg(
            "gaussian_copula",
            base_column="exp_gain",
            scale="gain_sd",
            rho=params.rho,
            group_column="sector",
        )
    elif params.model == "copula-historical":
        vg = make_vg(
            "gaussian_copula",
            base_column="exp_gain",
            scale="gain_sd",
            history_columns=history_columns,
            group_column="sector",
        )
    elif params.model == "regime":
        calm = make_vg(
            "gaussian_copula",
            base_column="calm_gain",
            scale="gain_sd",
            rho=min(params.rho, 0.2),
            group_column="sector",
        )
        crisis = make_vg(
            "gaussian_copula",
            base_column="crisis_gain",
            scale="gain_sd",
            rho=min(0.95, params.rho + 0.3),
            group_column="sector",
        )
        vg = MixtureVG([calm, crisis], weights=[0.8, 0.2])
    else:  # bootstrap
        vg = make_vg(
            "empirical_bootstrap",
            base_column="exp_gain",
            observation_columns=history_columns,
            joint=True,
        )
    model = StochasticModel(relation, {"Gain": vg})
    return relation, model
