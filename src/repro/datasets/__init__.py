"""Synthetic workload datasets (Section 6.1, Appendix C).

The paper's experiments use three data sources we cannot redistribute
(SDSS Galaxy extracts, Yahoo Finance stock histories, TPC-H dbgen
output).  These builders generate synthetic equivalents that preserve
every property the queries exercise: base-value distributions, the noise
models of Table 3, per-stock GBM correlation structure, volatile-subset
extraction, and D-source integration uncertainty.  Each builder returns
``(relation, stochastic_model)`` ready for catalog registration and is
deterministic given its seed.
"""

from .galaxy import build_galaxy, GalaxyParams
from .portfolio import (
    build_portfolio,
    PortfolioParams,
    build_correlated_portfolio,
    CorrelatedPortfolioParams,
)
from .tpch import build_tpch, TpchParams

__all__ = [
    "build_galaxy",
    "GalaxyParams",
    "build_portfolio",
    "PortfolioParams",
    "build_correlated_portfolio",
    "CorrelatedPortfolioParams",
    "build_tpch",
    "TpchParams",
]
