"""Synthetic Galaxy dataset (SDSS-like sky readings).

The paper extracts 55,000–274,000 tuples from the Sloan Digital Sky
Survey; each tuple holds color components of a small sky region, and the
telescope-reading uncertainty is modeled as Gaussian or Pareto noise on
the reading (Table 3).  The stochastic attribute queried is the r-band
Petrosian magnitude ``Petromag_r``.

This builder synthesizes base ``petromag_r`` values with the
right-skewed, bounded shape of real SDSS magnitude catalogs (bright
sources are rare), plus sky coordinates for realism.  Noise parameters
follow Table 3 exactly:

* ``sigma`` — one shared noise scale (the σ rows);
* ``sigma_star`` — per-tuple scales drawn as ``|Normal(0, σ*)|`` (the σ*
  rows);
* Pareto noise uses scale = shape = 1 for the σ rows and per-tuple scale
  for the σ* rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.relation import Relation
from ..errors import EvaluationError
from ..mcdb.distributions import GaussianNoiseVG, ParetoNoiseVG
from ..mcdb.stochastic import StochasticModel
from ..utils.rngkeys import spawn_dataset_rng

NOISE_GAUSSIAN = "gaussian"
NOISE_PARETO = "pareto"

#: Magnitude range of the synthetic catalog (typical SDSS r-band span).
#: The bright floor is chosen so the paper's Table 3 thresholds keep
#: their intended tension: the five brightest regions sum to ≈ 37.5,
#: making SUM ≥ 40 (Q1) binding and SUM ≤ 50 (Q3) satisfiable at p = 0.9.
#: Clipping creates a small bright-end atom, so the brightest-five sum is
#: stable across all dataset scales of the Figure 7 sweep.
_MAG_LOW, _MAG_HIGH = 7.5, 22.0


@dataclass(frozen=True)
class GalaxyParams:
    """Configuration for one synthetic Galaxy table.

    ``randomized_scale`` selects the σ* rows of Table 3: per-tuple noise
    scales drawn as ``|Normal(0, scale)|`` at build time.
    """

    n_rows: int = 55_000
    noise: str = NOISE_GAUSSIAN
    scale: float = 2.0
    pareto_shape: float = 1.0
    randomized_scale: bool = False
    seed: int = 42
    name: str = "galaxy"


def build_galaxy(params: GalaxyParams) -> tuple[Relation, StochasticModel]:
    """Build the Galaxy relation and its stochastic model."""
    if params.n_rows < 1:
        raise EvaluationError("galaxy dataset needs at least one row")
    if params.noise not in (NOISE_GAUSSIAN, NOISE_PARETO):
        raise EvaluationError(f"unknown galaxy noise model {params.noise!r}")
    rng = spawn_dataset_rng(params.seed, f"{params.name}:{params.n_rows}")
    n = params.n_rows
    # Right-skewed magnitudes: faint sources dominate, clipped to range.
    base = _MAG_HIGH - rng.gamma(shape=3.0, scale=2.0, size=n)
    base = np.clip(base, _MAG_LOW, _MAG_HIGH)
    right_ascension = rng.uniform(0.0, 360.0, size=n)
    declination = np.degrees(np.arcsin(rng.uniform(-1.0, 1.0, size=n)))
    relation = Relation(
        params.name,
        {
            "petromag_r": np.round(base, 4),
            "ra": np.round(right_ascension, 5),
            "dec": np.round(declination, 5),
        },
    )
    if params.randomized_scale:
        scales = np.abs(rng.normal(0.0, params.scale, size=n))
        scales = np.maximum(scales, 1e-3)  # degenerate zero-noise rows
    else:
        scales = params.scale
    if params.noise == NOISE_GAUSSIAN:
        vg = GaussianNoiseVG("petromag_r", scales)
    else:
        vg = ParetoNoiseVG("petromag_r", scales, params.pareto_shape)
    model = StochasticModel(relation, {"Petromag_r": vg})
    return relation, model
