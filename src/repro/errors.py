"""Exception taxonomy for the stochastic package query engine.

Every error raised by this library derives from :class:`SPQError`, so
callers can catch a single type at API boundaries.  The hierarchy mirrors
the pipeline stages: language (parse), compilation, data model, solving,
and query evaluation.
"""

from __future__ import annotations


class SPQError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(SPQError):
    """Raised when sPaQL text cannot be tokenized or parsed.

    Carries the offending position so callers can render a caret
    diagnostic.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        if self.line:
            return f"{self.message} (line {self.line}, column {self.column})"
        return self.message


class CompileError(SPQError):
    """Raised when a parsed query cannot be compiled into a SILP.

    Examples: unknown table, unknown attribute, non-linear objective,
    probabilistic constraint on a purely deterministic attribute.
    """


class SchemaError(SPQError):
    """Raised on inconsistent relation construction or column access."""


class VGFunctionError(SPQError):
    """Raised when a VG function is mis-specified or mis-used."""


class SolverError(SPQError):
    """Raised when the underlying MILP solver fails unexpectedly."""


class InfeasibleError(SolverError):
    """Raised when a (deterministic) model is proven infeasible."""


class UnboundedError(SolverError):
    """Raised when a model is unbounded.

    For package queries this almost always means the multiplicity
    upper-bound derivation failed; see ``silp.varbounds``.
    """


class EvaluationError(SPQError):
    """Raised when query evaluation cannot proceed (e.g. bad parameters)."""


class TimeLimitExceeded(SPQError):
    """Raised internally when an evaluation exceeds its wall-clock budget."""

    def __init__(self, message: str = "time limit exceeded", elapsed: float = 0.0):
        super().__init__(message)
        self.elapsed = elapsed
