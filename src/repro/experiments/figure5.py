"""Figure 5: scalability with the number of optimization scenarios M.

Each query runs at a sweep of *fixed* scenario counts (no growth: the
evaluation gets exactly ``M`` scenarios and one shot).  Reported per
(query, method, M): response time, feasibility rate, and the empirical
approximation ratio ``1 + ε̂`` relative to the best feasible objective
found by any method at any M for that query.

Paper shapes: Naïve's time grows steeply with M and its feasibility rate
stays low (missing points in the paper are solver failures);
SummarySearch is feasible already at small M with ratios close to 1.
"""

from __future__ import annotations

import argparse

from ..utils.textable import TextTable
from ..workloads import WORKLOADS
from .report import add_common_arguments, default_scale, experiment_config
from .runner import (
    best_feasible_objective,
    feasibility_rate,
    mean_ratio,
    mean_time,
    run_seeds,
)

METHODS = ("summarysearch", "naive")
DEFAULT_SWEEP = (10, 20, 40, 80)


def run_figure5(
    workloads: list[str],
    config,
    n_runs: int,
    scale: int | None,
    data_seed: int,
    sweep=DEFAULT_SWEEP,
    queries: list[str] | None = None,
) -> TextTable:
    """Run the Figure 5 M-sweep and return its report table."""
    table = TextTable(
        ["query", "method", "M", "feasibility rate", "avg time (s)", "1+eps-hat"]
    )
    for workload_name in workloads:
        for spec in WORKLOADS[workload_name]:
            if queries and spec.name.lower() not in queries:
                continue
            workload_scale = default_scale(workload_name, scale)
            maximize = "MAXIMIZE" in spec.spaql.upper()
            per_method: dict[tuple, list] = {}
            all_outcomes = []
            for method in METHODS:
                for m in sweep:
                    fixed = config.replace(
                        n_initial_scenarios=m,
                        max_scenarios=m,
                        initial_summaries=spec.default_summaries,
                    )
                    outcomes = run_seeds(
                        spec, method, fixed, n_runs,
                        scale=workload_scale, data_seed=data_seed,
                    )
                    per_method[(method, m)] = outcomes
                    all_outcomes.extend(outcomes)
            best = best_feasible_objective(all_outcomes, maximize)
            for method in METHODS:
                for m in sweep:
                    outcomes = per_method[(method, m)]
                    table.add_row(
                        [
                            spec.qualified_name,
                            method,
                            m,
                            feasibility_rate(outcomes),
                            mean_time(outcomes),
                            mean_ratio(outcomes, best, maximize),
                        ]
                    )
    return table


def main(argv=None) -> None:
    """CLI wrapper (see module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_common_arguments(parser)
    parser.add_argument(
        "--workload",
        action="append",
        choices=sorted(WORKLOADS),
        help="workloads to run (default: all three)",
    )
    parser.add_argument("--query", action="append")
    parser.add_argument(
        "--sweep",
        type=int,
        nargs="+",
        default=list(DEFAULT_SWEEP),
        help="scenario counts M to test",
    )
    args = parser.parse_args(argv)
    workloads = args.workload or sorted(WORKLOADS)
    queries = [q.lower() for q in args.query] if args.query else None
    config = experiment_config(args)
    print("Figure 5: scalability with number of optimization scenarios")
    table = run_figure5(
        workloads, config, args.runs, args.scale, args.data_seed,
        sweep=tuple(args.sweep), queries=queries,
    )
    print(table.render())


if __name__ == "__main__":
    main()
