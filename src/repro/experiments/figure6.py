"""Figure 6: effect of the number of summaries Z (Portfolio workload).

With M fixed (a value where SummarySearch reaches 100% feasibility), Z
sweeps from 1 up to M (expressed as percentages of M, as in the paper).
Naïve at the same fixed M is the comparison point.  Reported: response
time, feasibility rate, and ``1 + ε̂``.

Paper shapes: response time is mostly flat in Z; the ratio improves as Z
grows; pushing Z to 100% of M makes CSA coincide with SAA, so
feasibility degrades toward Naïve's (overfitting to the scenario draw).
"""

from __future__ import annotations

import argparse

from ..utils.textable import TextTable
from ..workloads import WORKLOADS
from .report import add_common_arguments, default_scale, experiment_config
from .runner import (
    best_feasible_objective,
    feasibility_rate,
    mean_ratio,
    mean_time,
    run_seeds,
)

DEFAULT_PERCENTS = (1, 10, 25, 50, 100)
DEFAULT_M = 40


def run_figure6(
    config,
    n_runs: int,
    scale: int | None,
    data_seed: int,
    n_scenarios: int = DEFAULT_M,
    percents=DEFAULT_PERCENTS,
    queries: list[str] | None = None,
) -> TextTable:
    """Run the Figure 6 Z-sweep and return its report table."""
    table = TextTable(
        ["query", "method", "Z (% of M)", "feasibility rate",
         "avg time (s)", "1+eps-hat"]
    )
    workload_scale = default_scale("portfolio", scale)
    for spec in WORKLOADS["portfolio"]:
        if queries and spec.name.lower() not in queries:
            continue
        per_setting: dict[str, list] = {}
        all_outcomes = []
        for percent in percents:
            z = max(1, round(n_scenarios * percent / 100))
            fixed = config.replace(
                n_initial_scenarios=n_scenarios,
                max_scenarios=n_scenarios,
                initial_summaries=z,
            )
            outcomes = run_seeds(
                spec, "summarysearch", fixed, n_runs,
                scale=workload_scale, data_seed=data_seed,
            )
            per_setting[f"ss:{percent}"] = outcomes
            all_outcomes.extend(outcomes)
        naive_config = config.replace(
            n_initial_scenarios=n_scenarios, max_scenarios=n_scenarios
        )
        naive_outcomes = run_seeds(
            spec, "naive", naive_config, n_runs,
            scale=workload_scale, data_seed=data_seed,
        )
        all_outcomes.extend(naive_outcomes)
        best = best_feasible_objective(all_outcomes, maximize=True)
        for percent in percents:
            outcomes = per_setting[f"ss:{percent}"]
            table.add_row(
                [
                    spec.qualified_name,
                    "summarysearch",
                    percent,
                    feasibility_rate(outcomes),
                    mean_time(outcomes),
                    mean_ratio(outcomes, best, maximize=True),
                ]
            )
        table.add_row(
            [
                spec.qualified_name,
                "naive",
                "-",
                feasibility_rate(naive_outcomes),
                mean_time(naive_outcomes),
                mean_ratio(naive_outcomes, best, maximize=True),
            ]
        )
    return table


def main(argv=None) -> None:
    """CLI wrapper (see module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_common_arguments(parser)
    parser.add_argument("--query", action="append")
    parser.add_argument("--scenarios", type=int, default=DEFAULT_M,
                        help="fixed M for the sweep")
    parser.add_argument("--percents", type=int, nargs="+",
                        default=list(DEFAULT_PERCENTS))
    args = parser.parse_args(argv)
    queries = [q.lower() for q in args.query] if args.query else None
    config = experiment_config(args)
    print("Figure 6: effect of the number of summaries (Portfolio)")
    table = run_figure6(
        config, args.runs, args.scale, args.data_seed,
        n_scenarios=args.scenarios, percents=tuple(args.percents),
        queries=queries,
    )
    print(table.render())


if __name__ == "__main__":
    main()
