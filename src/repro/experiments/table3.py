"""Table 3: detailed description of datasets and queries (Appendix C).

Prints the workload catalog exactly as encoded in ``repro.workloads`` —
the reproduction's ground truth for every other experiment.  With
``--queries`` the full sPaQL text of each query is printed too
(Figure 9's templates instantiated).
"""

from __future__ import annotations

import argparse

from ..utils.textable import TextTable
from ..workloads import WORKLOADS


def build_table() -> TextTable:
    """The Table 3 workload-description table."""
    table = TextTable(
        ["workload", "query", "uncertainty", "feasible", "interaction", "p", "v"]
    )
    for workload_name in ("galaxy", "portfolio", "tpch"):
        for spec in WORKLOADS[workload_name]:
            table.add_row(
                [
                    spec.workload,
                    spec.name,
                    spec.uncertainty,
                    spec.feasible,
                    spec.interaction,
                    spec.probability,
                    spec.bound,
                ]
            )
    return table


def main(argv=None) -> None:
    """CLI wrapper (see module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", action="store_true",
                        help="also print each query's sPaQL text")
    args = parser.parse_args(argv)
    print("Table 3: datasets and queries")
    print(build_table().render())
    if args.queries:
        for specs in WORKLOADS.values():
            for spec in specs:
                print(f"\n-- {spec.qualified_name} ({spec.uncertainty})")
                print(spec.spaql)


if __name__ == "__main__":
    main()
