"""Report helpers shared by the experiment scripts."""

from __future__ import annotations

import argparse

from ..config import SPQConfig


def experiment_config(args: argparse.Namespace) -> SPQConfig:
    """Build the scaled-down (or paper-scale) evaluation config."""
    if getattr(args, "paper_scale", False):
        return SPQConfig(
            n_validation_scenarios=1_000_000,
            n_initial_scenarios=100,
            scenario_increment=100,
            max_scenarios=1_000,
            n_expectation_scenarios=10_000,
            epsilon=args.epsilon,
            time_limit=4 * 3600.0,
            solver_time_limit=4 * 3600.0,
            seed=args.seed,
        )
    return SPQConfig(
        n_validation_scenarios=args.validation_scenarios,
        n_initial_scenarios=args.initial_scenarios,
        scenario_increment=args.scenario_increment,
        max_scenarios=args.max_scenarios,
        n_expectation_scenarios=args.expectation_scenarios,
        epsilon=args.epsilon,
        time_limit=args.time_limit,
        solver_time_limit=args.solver_time_limit,
        seed=args.seed,
    )


def format_store_stats(stats: dict | None) -> str:
    """One-line scenario-store summary for experiment reports.

    ``stats`` is a :meth:`repro.service.ScenarioStore.stats` dict (also
    carried on :class:`repro.experiments.runner.RunOutcome.store_stats`).
    """
    if not stats:
        return "scenario store: (not used)"
    return (
        "scenario store: "
        f"{stats['hits']} hits, {stats['misses']} misses,"
        f" {stats['generations']} generations"
        f" ({stats['generated_columns']} columns),"
        f" {stats['evictions']} evictions, {stats['spills']} spills,"
        f" {stats['bytes_resident']} B resident,"
        f" {stats['bytes_spilled']} B spilled"
    )


def add_common_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI knobs shared by every experiment script."""
    parser.add_argument("--runs", type=int, default=3,
                        help="i.i.d. runs per configuration (paper: 10)")
    parser.add_argument("--scale", type=int, default=None,
                        help="dataset scale (rows or stocks); default: scaled-down")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--data-seed", type=int, default=42)
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument("--validation-scenarios", type=int, default=5_000)
    parser.add_argument("--initial-scenarios", type=int, default=20)
    parser.add_argument("--scenario-increment", type=int, default=20)
    parser.add_argument("--max-scenarios", type=int, default=200)
    parser.add_argument("--expectation-scenarios", type=int, default=1_000)
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="per-run wall-clock budget (paper: 4h)")
    parser.add_argument("--solver-time-limit", type=float, default=20.0)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full experimental settings")


#: Scaled-down default dataset sizes per workload (paper sizes are 55k
#: rows / 7k stocks / 117.6k rows; see EXPERIMENTS.md for the mapping).
DEFAULT_SCALES = {"galaxy": 2_000, "portfolio": 250, "tpch": 2_000}


def default_scale(workload: str, requested: int | None) -> int:
    """Workload-specific dataset scale (requested or scaled-down default)."""
    return requested if requested is not None else DEFAULT_SCALES[workload]
