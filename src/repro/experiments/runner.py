"""Shared experiment machinery: multi-seed runs and summary metrics.

The paper's protocol (Section 6.1): each query runs 10 times with
different seeds for the optimization scenarios; the *feasibility rate*
is the fraction of runs producing a validation-feasible solution;
accuracy is ``1 + ε̂`` with ``ε̂ = ω/ω* − 1`` where ``ω*`` is the best
feasible objective found by any method.  Response times are cumulative
over the optimize/validate iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..config import SPQConfig
from ..core.engine import SPQEngine
from ..db.catalog import Catalog
from ..workloads.spec import QuerySpec


@dataclass
class RunOutcome:
    """Result of one (query, method, seed) evaluation."""

    workload: str
    query: str
    method: str
    seed: int
    feasible: bool
    objective: float | None
    total_time: float
    n_iterations: int
    final_n_scenarios: int
    final_n_summaries: int | None
    timed_out: bool
    declared_infeasible: bool
    #: Snapshot of the shared ScenarioStore's counters at completion
    #: (None when the run did not route through a store).
    store_stats: dict | None = None


def _materialize(spec: QuerySpec, scale: int | None, data_seed: int):
    relation, model = spec.build_dataset(scale, seed=data_seed)
    catalog = Catalog()
    catalog.register(relation, model)
    return catalog


def run_query(
    spec: QuerySpec,
    method: str,
    config: SPQConfig,
    scale: int | None = None,
    data_seed: int = 42,
    catalog: Catalog | None = None,
    store=None,
) -> RunOutcome:
    """Evaluate one workload query once and summarize the outcome.

    ``store`` optionally routes scenario realization through a shared
    :class:`repro.service.ScenarioStore`, so repeated evaluations over
    the same dataset and seed reuse realized matrices.
    """
    if catalog is None:
        catalog = _materialize(spec, scale, data_seed)
    engine = SPQEngine(catalog=catalog, config=config, store=store)
    result = engine.execute(spec.spaql, method=method)
    stats = result.stats
    return RunOutcome(
        workload=spec.workload,
        query=spec.name,
        method=method,
        seed=config.seed,
        feasible=result.feasible,
        objective=result.objective,
        total_time=stats.total_time if stats else 0.0,
        n_iterations=stats.n_iterations if stats else 0,
        final_n_scenarios=stats.final_n_scenarios if stats else 0,
        final_n_summaries=stats.final_n_summaries if stats else None,
        timed_out=stats.timed_out if stats else False,
        declared_infeasible=stats.declared_infeasible if stats else False,
        store_stats=store.stats().as_dict() if store is not None else None,
    )


def run_seeds(
    spec: QuerySpec,
    method: str,
    config: SPQConfig,
    n_runs: int,
    scale: int | None = None,
    data_seed: int = 42,
    store=None,
) -> list[RunOutcome]:
    """Run a query ``n_runs`` times with i.i.d. optimization seeds.

    The dataset is built once (fixed ``data_seed``); only the scenario
    streams vary across runs, matching the paper's protocol.  Each run
    routes realization through a :class:`repro.service.ScenarioStore`.
    Without a caller-supplied ``store``, a private store is scoped *per
    run* and closed before the next one starts: store keys include the
    seed, so distinct-seed runs can never share entries — a longer-lived
    private store would only accumulate dead matrices.  Pass an explicit
    ``store`` to share realizations across calls that genuinely overlap
    (same data and seed).
    """
    from ..service.store import ScenarioStore

    catalog = _materialize(spec, scale, data_seed)
    outcomes = []
    for run in range(n_runs):
        run_config = config.replace(seed=config.seed + 1000 * run)
        if store is not None:
            run_store = store
        else:
            run_store = ScenarioStore(
                budget_bytes=config.scenario_store_budget,
                spill=config.scenario_store_spill,
            )
        try:
            outcomes.append(
                run_query(
                    spec,
                    method,
                    run_config,
                    scale,
                    data_seed,
                    catalog=catalog,
                    store=run_store,
                )
            )
        finally:
            if store is None:
                run_store.close()
    return outcomes


# --- metrics ---------------------------------------------------------------------


def feasibility_rate(outcomes: Iterable[RunOutcome]) -> float:
    """Fraction of outcomes that reached validation feasibility."""
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    return sum(1 for o in outcomes if o.feasible) / len(outcomes)


def mean_time(outcomes: Iterable[RunOutcome]) -> float:
    """Mean total response time across outcomes."""
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    return float(np.mean([o.total_time for o in outcomes]))


def confidence_95(values: Sequence[float]) -> float:
    """Half-width of a normal 95% confidence interval (paper's shading)."""
    values = np.asarray(list(values), dtype=float)
    if len(values) < 2:
        return 0.0
    return float(1.96 * values.std(ddof=1) / np.sqrt(len(values)))


def best_feasible_objective(
    outcomes: Iterable[RunOutcome], maximize: bool
) -> float | None:
    """``ω*``: best feasible objective across all methods/runs."""
    values = [o.objective for o in outcomes if o.feasible and o.objective is not None]
    if not values:
        return None
    return max(values) if maximize else min(values)


def approximation_ratio(
    objective: float | None, best: float | None, maximize: bool
) -> float | None:
    """``1 + ε̂``: how far an objective is from the best feasible one."""
    if objective is None or best is None:
        return None
    if maximize:
        if objective <= 0:
            return None
        return max(1.0, best / objective)
    if best <= 0:
        return None
    return max(1.0, objective / best)


def mean_ratio(
    outcomes: Iterable[RunOutcome], best: float | None, maximize: bool
) -> float | None:
    """Average ``1 + ε̂`` over the feasible runs."""
    ratios = [
        approximation_ratio(o.objective, best, maximize)
        for o in outcomes
        if o.feasible
    ]
    ratios = [r for r in ratios if r is not None]
    if not ratios:
        return None
    return float(np.mean(ratios))
