"""Figure 4: end-to-end time to reach 100% feasibility rate.

For every query of the selected workloads, both algorithms run
``--runs`` times with i.i.d. optimization seeds.  Reported per
(query, method): the final feasibility rate, the average cumulative
response time (with 95% confidence half-width), the average number of
optimize/validate iterations, and the final scenario count ``M``.

Paper shapes to expect: SummarySearch reaches 100% feasibility on every
feasible query; Naïve only on a minority, and where both succeed
SummarySearch is typically faster by orders of magnitude; TPC-H Q8 is
declared infeasible by both (with SummarySearch faster at declaring it).
"""

from __future__ import annotations

import argparse

from ..utils.textable import TextTable
from ..workloads import WORKLOADS
from .report import (
    add_common_arguments,
    default_scale,
    experiment_config,
    format_store_stats,
)
from .runner import confidence_95, feasibility_rate, mean_time, run_seeds

METHODS = ("summarysearch", "naive")


def run_figure4(
    workloads: list[str],
    config,
    n_runs: int,
    scale: int | None,
    data_seed: int,
    queries: list[str] | None = None,
    store_totals: dict | None = None,
) -> TextTable:
    """Run the Figure 4 protocol and return its report table.

    Each (query, method) pair gets its *own* scenario store, scoped to
    its ``run_seeds`` call: sharing across methods would let whichever
    method runs second skip realization and bias the timing comparison
    against the paper's cold-per-method protocol, and a figure-wide
    store would hold every matrix until the figure finishes.  Pass a
    dict as ``store_totals`` to accumulate the per-call store counters
    for the report footer.
    """
    table = TextTable(
        [
            "query",
            "method",
            "feasibility rate",
            "avg time (s)",
            "ci95 (s)",
            "avg iters",
            "final M",
        ]
    )
    for workload_name in workloads:
        for spec in WORKLOADS[workload_name]:
            if queries and spec.name.lower() not in queries:
                continue
            workload_scale = default_scale(workload_name, scale)
            for method in METHODS:
                method_config = config.replace(
                    initial_summaries=spec.default_summaries
                )
                outcomes = run_seeds(
                    spec,
                    method,
                    method_config,
                    n_runs,
                    scale=workload_scale,
                    data_seed=data_seed,
                )
                if store_totals is not None and outcomes:
                    final = outcomes[-1].store_stats or {}
                    for counter, value in final.items():
                        store_totals[counter] = (
                            store_totals.get(counter, 0) + value
                        )
                times = [o.total_time for o in outcomes]
                table.add_row(
                    [
                        spec.qualified_name,
                        method,
                        feasibility_rate(outcomes),
                        mean_time(outcomes),
                        confidence_95(times),
                        sum(o.n_iterations for o in outcomes) / len(outcomes),
                        max(o.final_n_scenarios for o in outcomes),
                    ]
                )
    return table


def main(argv=None) -> None:
    """CLI wrapper (see module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_common_arguments(parser)
    parser.add_argument(
        "--workload",
        action="append",
        choices=sorted(WORKLOADS),
        help="workloads to run (default: all three)",
    )
    parser.add_argument(
        "--query",
        action="append",
        help="restrict to specific queries (e.g. --query q1 --query q5)",
    )
    args = parser.parse_args(argv)
    workloads = args.workload or sorted(WORKLOADS)
    queries = [q.lower() for q in args.query] if args.query else None
    config = experiment_config(args)
    print("Figure 4: time to reach feasibility, Naive vs SummarySearch")
    store_totals: dict = {}
    table = run_figure4(
        workloads, config, args.runs, args.scale, args.data_seed, queries,
        store_totals=store_totals,
    )
    print(table.render())
    print(format_store_stats(store_totals or None))


if __name__ == "__main__":
    main()
