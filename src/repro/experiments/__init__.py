"""Experiment harness regenerating the paper's tables and figures.

Each module reproduces one exhibit from Section 6 at a configurable
scale (the defaults are laptop-sized; pass ``--paper-scale`` flags for
the original sizes):

* ``table3``  — the workload description table (Appendix C).
* ``figure4`` — time to reach 100% feasibility rate, Naïve vs
  SummarySearch, per query.
* ``figure5`` — scalability with the number of optimization scenarios M.
* ``figure6`` — effect of the number of summaries Z (Portfolio).
* ``figure7`` — scalability with dataset size N (Galaxy).

Run e.g. ``python -m repro.experiments.figure4 --workload galaxy``.
"""

from .runner import RunOutcome, run_query, run_seeds, feasibility_rate

__all__ = ["RunOutcome", "run_query", "run_seeds", "feasibility_rate"]
