"""Figure 7: scalability with dataset size N (Galaxy workload).

The Galaxy table grows across a sweep of sizes (the paper: 55k → 274k;
scaled default: 1k → 8k) with M fixed at 56 for Q1–Q7 and 562 (scaled:
halved sweep base × 10) for the hard Pareto query Q8, Z = 1 throughout.
Reported per (query, method, N): time, feasibility rate, ``1 + ε̂``.

Paper shapes: both methods slow down as N grows; SummarySearch stays
feasible with good ratios, while Naïve times out or stays infeasible on
most queries (Q3, Q4, Q7 being its easy exceptions).
"""

from __future__ import annotations

import argparse

from ..utils.textable import TextTable
from ..workloads import WORKLOADS
from .report import add_common_arguments, experiment_config
from .runner import (
    best_feasible_objective,
    feasibility_rate,
    mean_ratio,
    mean_time,
    run_seeds,
)

METHODS = ("summarysearch", "naive")
DEFAULT_SIZES = (1_000, 2_000, 4_000, 8_000)
#: Fixed scenario counts, as in the paper (M=56; Q8 uses 10x more).
DEFAULT_M = 56
DEFAULT_M_Q8 = 562


def run_figure7(
    config,
    n_runs: int,
    data_seed: int,
    sizes=DEFAULT_SIZES,
    queries: list[str] | None = None,
    n_scenarios: int = DEFAULT_M,
    n_scenarios_q8: int = DEFAULT_M_Q8,
) -> TextTable:
    """Run the Figure 7 N-sweep and return its report table."""
    table = TextTable(
        ["query", "method", "N", "feasibility rate", "avg time (s)", "1+eps-hat"]
    )
    for spec in WORKLOADS["galaxy"]:
        if queries and spec.name.lower() not in queries:
            continue
        m = n_scenarios_q8 if spec.name == "Q8" else n_scenarios
        fixed = config.replace(
            n_initial_scenarios=m, max_scenarios=m, initial_summaries=1
        )
        per_size: dict[tuple, list] = {}
        all_outcomes = []
        for size in sizes:
            for method in METHODS:
                outcomes = run_seeds(
                    spec, method, fixed, n_runs, scale=size, data_seed=data_seed
                )
                per_size[(method, size)] = outcomes
                all_outcomes.extend(outcomes)
        best = best_feasible_objective(all_outcomes, maximize=False)
        for method in METHODS:
            for size in sizes:
                outcomes = per_size[(method, size)]
                table.add_row(
                    [
                        spec.qualified_name,
                        method,
                        size,
                        feasibility_rate(outcomes),
                        mean_time(outcomes),
                        mean_ratio(outcomes, best, maximize=False),
                    ]
                )
    return table


def main(argv=None) -> None:
    """CLI wrapper (see module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_common_arguments(parser)
    parser.add_argument("--query", action="append")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--scenarios", type=int, default=DEFAULT_M)
    parser.add_argument("--scenarios-q8", type=int, default=DEFAULT_M_Q8)
    args = parser.parse_args(argv)
    queries = [q.lower() for q in args.query] if args.query else None
    config = experiment_config(args)
    print("Figure 7: scalability with dataset size (Galaxy)")
    table = run_figure7(
        config, args.runs, args.data_seed, sizes=tuple(args.sizes),
        queries=queries, n_scenarios=args.scenarios,
        n_scenarios_q8=args.scenarios_q8,
    )
    print(table.render())


if __name__ == "__main__":
    main()
