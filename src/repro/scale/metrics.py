"""Process-wide counters for the out-of-core tier.

The serving layer surfaces these on ``/status`` (as the ``"scale"``
section) and ``/metrics`` (as ``repro_scale_*`` time series).  Counters
are lifetime-monotonic within one process; on the process backend each
solve-farm worker ships its snapshot with every completed task and the
farm aggregates them exactly like the scenario-store counters (dead and
recycled workers' last reports are absorbed into farm totals).

Gauges track the resident bytes of every live :class:`ColumnStore` chunk
cache in the process — ``resident_bytes`` is the current total,
``resident_peak_bytes`` the high-water mark — which is what the scale
smoke test asserts stays under the configured budget.
"""

from __future__ import annotations

import threading

from ..obs.metrics import LockedCounters

#: Lifetime-monotonic counter fields (farm-aggregated by summation, with
#: departed workers' last snapshots absorbed into totals).
COUNTER_FIELDS = (
    "runs",
    "partitions",
    "refines",
    "sketch_seconds",
    "refine_seconds",
    "index_hits",
    "index_misses",
    "chunk_hits",
    "chunk_misses",
    "deltas_applied",
    "delta_rows_dirty",
    "delta_partitions_dirty",
    "delta_partitions_reused",
    "delta_index_refreshes",
    "delta_repair_fallbacks",
)

#: Point-in-time gauges (farm-aggregated over live workers only).
GAUGE_FIELDS = ("resident_bytes", "resident_peak_bytes")


class ScaleMetrics:
    """Thread-safe counter/gauge registry for one process.

    Counters ride on :class:`repro.obs.metrics.LockedCounters` — the
    shared atomic-increment helper — because these are updated from the
    broker's pool threads concurrently, where a bare ``+=`` on instance
    attributes loses updates (LOAD/ADD/STORE interleave).  The resident
    gauges need a compare-against-peak under the same critical section,
    so they keep a dedicated lock.
    """

    def __init__(self) -> None:
        self._counters = LockedCounters(COUNTER_FIELDS)
        self._gauge_lock = threading.Lock()
        self._resident = 0
        self._resident_peak = 0

    # --- driver counters -----------------------------------------------------

    def record_run(
        self,
        n_partitions: int,
        n_refines: int,
        sketch_seconds: float,
        refine_seconds: float,
    ) -> None:
        """Record one completed stochastic SketchRefine evaluation."""
        self._counters.add_many(
            {
                "runs": 1,
                "partitions": int(n_partitions),
                "refines": int(n_refines),
                "sketch_seconds": float(sketch_seconds),
                "refine_seconds": float(refine_seconds),
            }
        )

    def record_index_lookup(self, hit: bool) -> None:
        """Record one partition-index lookup outcome."""
        self._counters.add("index_hits" if hit else "index_misses")

    def record_chunk_lookup(self, hit: bool) -> None:
        """Record one ColumnStore chunk-cache lookup outcome."""
        self._counters.add("chunk_hits" if hit else "chunk_misses")

    def record_delta_applied(self, n_dirty_rows: int) -> None:
        """Record one applied relation delta."""
        self._counters.add_many(
            {"deltas_applied": 1, "delta_rows_dirty": int(n_dirty_rows)}
        )

    def record_delta_repair(
        self, n_dirty_partitions: int, n_reused_partitions: int
    ) -> None:
        """Record one delta-scoped repair solve's partition reuse."""
        self._counters.add_many(
            {
                "delta_partitions_dirty": int(n_dirty_partitions),
                "delta_partitions_reused": int(n_reused_partitions),
            }
        )

    def record_delta_index_refresh(self) -> None:
        """Record one delta-scoped partition-index refresh (splice)."""
        self._counters.add("delta_index_refreshes")

    def record_delta_repair_fallback(self) -> None:
        """Record one repair solve that failed validation and re-ran cold."""
        self._counters.add("delta_repair_fallbacks")

    # --- resident-byte gauges ------------------------------------------------

    def add_resident(self, delta: int) -> None:
        """Adjust the live ColumnStore resident-byte gauge by ``delta``."""
        with self._gauge_lock:
            self._resident = max(0, self._resident + int(delta))
            if self._resident > self._resident_peak:
                self._resident_peak = self._resident

    # --- snapshots ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter and gauge."""
        out = {
            name: (
                int(value)
                if float(value).is_integer() and "seconds" not in name
                else float(value)
            )
            for name, value in self._counters.snapshot().items()
        }
        with self._gauge_lock:
            out["resident_bytes"] = self._resident
            out["resident_peak_bytes"] = self._resident_peak
        return out

    def reset(self) -> None:
        """Zero every counter and gauge (tests only)."""
        self._counters.reset()
        with self._gauge_lock:
            self._resident = 0
            self._resident_peak = 0


#: The process-wide registry every ColumnStore and driver reports into.
scale_metrics = ScaleMetrics()
